//! The dispatcher: sessions → servers through any DBP online algorithm.
//!
//! The central subtlety is *noisy clairvoyance*: the algorithm decides
//! placements from **predicted** departures while the world runs on
//! **actual** ones. [`PredictedLens`] wraps any
//! [`OnlineAlgorithm`] and swaps each item's departure for its prediction
//! on the way in — consistently in both `on_arrival` and `on_departure`,
//! so stateful algorithms (HA's per-type loads, CDFF's rows) stay
//! internally coherent even when reality disagrees with the forecast.
//! Capacity can never be violated by a wrong prediction (sizes are exact);
//! only the *cost* degrades — which is exactly what the
//! `prediction-noise` experiment measures.

use std::collections::HashMap;

use dbp_core::algorithm::{OnlineAlgorithm, Placement, SimView};
use dbp_core::bin_state::BinId;
use dbp_core::cost::Area;
use dbp_core::engine::{self, RunMetrics};
use dbp_core::error::EngineError;
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::item::{Item, ItemId};
use dbp_core::time::Time;
use dbp_core::trace::{EventSink, NoopSink};

use crate::session::{SessionRequest, Tier};

/// Wraps an algorithm so it sees predicted departures instead of actual
/// ones. `predictions[item.id]` must hold the predicted *departure time*
/// for every item the engine will deliver.
pub struct PredictedLens<A> {
    inner: A,
    predictions: Vec<Time>,
    /// The predicted view of each in-flight item, replayed on departure.
    in_flight: HashMap<ItemId, Item>,
}

impl<A: OnlineAlgorithm> PredictedLens<A> {
    /// Wraps `inner`; `predictions` is indexed by item id and must cover
    /// all `expected_items` ids the engine will deliver. A short table is
    /// rejected up front with [`EngineError::MissingPrediction`] naming
    /// the first uncovered item — instead of an index panic mid-run.
    pub fn new(
        inner: A,
        predictions: Vec<Time>,
        expected_items: usize,
    ) -> Result<PredictedLens<A>, EngineError> {
        if predictions.len() < expected_items {
            return Err(EngineError::MissingPrediction {
                item: ItemId(predictions.len() as u32),
            });
        }
        Ok(PredictedLens {
            inner,
            predictions,
            in_flight: HashMap::new(),
        })
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    fn predicted_view(&self, item: &Item) -> Item {
        // Ids past the table are engine-synthesized (re-admission clones
        // under fault injection carry fresh ids); for those the engine's
        // own departure is the best available forecast.
        let predicted_departure = self
            .predictions
            .get(item.id.index())
            .copied()
            .unwrap_or(item.departure);
        Item::new(item.id, item.arrival, predicted_departure, item.size)
    }
}

impl<A: OnlineAlgorithm> OnlineAlgorithm for PredictedLens<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
        let seen = self.predicted_view(item);
        self.in_flight.insert(item.id, seen);
        self.inner.on_arrival(view, &seen)
    }

    fn on_departure(&mut self, item: &Item, bin: BinId, bin_closed: bool) {
        // Forward the SAME view the algorithm saw at arrival, so its
        // internal bookkeeping (type loads, row maps) balances.
        let seen = self.in_flight.remove(&item.id).unwrap_or(*item);
        self.inner.on_departure(&seen, bin, bin_closed);
    }

    fn on_compact(&mut self, retained: &[ItemId], old_len: usize) {
        // Re-key the in-flight views to the new dense id space so the
        // matching `on_departure` still finds them.
        let mut in_flight = HashMap::with_capacity(self.in_flight.len());
        for (new, &old) in retained.iter().enumerate() {
            if let Some(seen) = self.in_flight.remove(&old) {
                let id = ItemId(new as u32);
                in_flight.insert(id, Item::new(id, seen.arrival, seen.departure, seen.size));
            }
        }
        self.in_flight = in_flight;
        // Re-index the prediction table: retained rows already arrived (a
        // placeholder suffices — only arrivals read the table), while
        // forecasts for items yet to arrive shift from `old_len..` down to
        // `retained.len()..`, keeping future ids aligned.
        if !self.predictions.is_empty() {
            let tail: Vec<Time> = self
                .predictions
                .get(old_len..)
                .map(|t| t.to_vec())
                .unwrap_or_default();
            let mut predictions = Vec::with_capacity(retained.len() + tail.len());
            for &old in retained {
                predictions.push(
                    self.predictions
                        .get(old.index())
                        .copied()
                        .unwrap_or(Time(u64::MAX)),
                );
            }
            predictions.extend(tail);
            self.predictions = predictions;
        }
        self.inner.on_compact(retained, old_len);
    }

    fn reset(&mut self) {
        self.in_flight.clear();
        self.inner.reset();
    }
}

/// The result of dispatching a batch of sessions.
#[derive(Debug, Clone)]
pub struct DispatchReport {
    /// Total server usage time (the bill's physical quantity).
    pub bill: Area,
    /// Number of servers ever powered on.
    pub servers_used: usize,
    /// Peak simultaneously-on servers.
    pub peak_servers: usize,
    /// Which server each session landed on, indexed by the **caller's
    /// input order** (`placements[i]` answers for `sessions[i]`, however
    /// arrivals were interleaved).
    pub placements: Vec<BinId>,
    /// The instance actually played (actual durations), in the engine's
    /// arrival-sorted item order.
    pub instance: Instance,
    /// For each instance item id, the caller's input index it came from —
    /// the permutation connecting [`DispatchReport::instance`] to
    /// [`DispatchReport::placements`].
    pub arrival_order: Vec<usize>,
    /// The tier each instance item was requested at, in instance order
    /// (recorded, not recovered from sizes — custom tiers may collide with
    /// named ones).
    pub tiers: Vec<Tier>,
    /// Mean relative prediction error over the batch.
    pub mean_prediction_error: f64,
    /// Engine execution counters for the dispatch run (placement paths,
    /// tree/heap work, events emitted).
    pub metrics: RunMetrics,
}

impl DispatchReport {
    /// `d(σ)/bill`: how much of the paid server-time carried traffic.
    /// Always `≤ 1` for a correct engine — an over-unity value means the
    /// accounting double-served demand, which the invariant auditor flags
    /// (and a debug build asserts) rather than clamping out of sight.
    pub fn utilisation(&self) -> f64 {
        let u = self.instance.demand().ratio_to(self.bill);
        debug_assert!(u <= 1.0, "served demand exceeds the bill: {u}");
        u
    }

    /// The assignment in the instance's item order (what
    /// [`dbp_core::assignment::audit`] expects), reconstructed from the
    /// input-ordered [`DispatchReport::placements`].
    pub fn engine_assignment(&self) -> Vec<BinId> {
        self.arrival_order
            .iter()
            .map(|&idx| self.placements[idx])
            .collect()
    }

    /// Per-tier traffic breakdown: `(tier, sessions, demand share of the
    /// total d(σ))` — the named tiers in order, then custom tiers in
    /// first-appearance order. Keyed on each session's **recorded** tier,
    /// so a custom size colliding with a named tier's stays attributed to
    /// the custom tier.
    pub fn tier_breakdown(&self) -> Vec<(Tier, usize, f64)> {
        let total = self.instance.demand().as_bin_ticks().max(f64::MIN_POSITIVE);
        let mut order = vec![Tier::Low, Tier::Standard, Tier::Premium];
        for t in &self.tiers {
            if matches!(t, Tier::Custom(_)) && !order.contains(t) {
                order.push(*t);
            }
        }
        order
            .into_iter()
            .map(|tier| {
                let mut count = 0usize;
                let mut demand = 0.0;
                for (it, &t) in self.instance.items().iter().zip(&self.tiers) {
                    if t == tier {
                        count += 1;
                        demand += it.size.max_size().as_f64() * it.duration().ticks() as f64;
                    }
                }
                (tier, count, demand / total)
            })
            .collect()
    }
}

/// Dispatches sessions through `algo`.
///
/// Sessions are served in arrival order (ties: input order). The
/// algorithm sees predicted durations; the report reflects actual ones.
///
/// ```
/// use dbp_cloudsim::{dispatch, SessionRequest, Tier};
/// use dbp_core::{Time, Dur};
///
/// let sessions = vec![
///     SessionRequest::exact(1, Time(0), Dur(30), Tier::Premium),
///     SessionRequest::exact(2, Time(0), Dur(30), Tier::Premium),
/// ];
/// let report = dispatch(&sessions, dbp_algos::FirstFit::new()).unwrap();
/// assert_eq!(report.servers_used, 1, "two premium sessions share a server");
/// assert_eq!(report.bill.as_bin_ticks(), 30.0);
/// ```
pub fn dispatch<A: OnlineAlgorithm>(
    sessions: &[SessionRequest],
    algo: A,
) -> Result<DispatchReport, EngineError> {
    dispatch_with_sink(sessions, algo, NoopSink)
}

/// [`dispatch`] with an [`EventSink`] attached to the underlying engine
/// run: every session arrival, server power-on/off, and placement comes
/// out as a structured engine event (attach a JSONL sink for offline
/// diffing, or `dbp_core::audit::InvariantAuditor` to cross-check the
/// dispatch).
pub fn dispatch_with_sink<A: OnlineAlgorithm, S: EventSink>(
    sessions: &[SessionRequest],
    algo: A,
    sink: S,
) -> Result<DispatchReport, EngineError> {
    let mut ordered: Vec<(usize, &SessionRequest)> = sessions.iter().enumerate().collect();
    ordered.sort_by_key(|&(_, s)| s.arrival);

    let mut builder = InstanceBuilder::with_capacity(ordered.len());
    let mut predictions = Vec::with_capacity(ordered.len());
    let mut arrival_order = Vec::with_capacity(ordered.len());
    let mut tiers = Vec::with_capacity(ordered.len());
    let mut err_sum = 0.0;
    for &(idx, s) in &ordered {
        builder.push(s.arrival, s.actual, s.tier.size());
        predictions.push(s.arrival + s.predicted);
        arrival_order.push(idx);
        tiers.push(s.tier);
        err_sum += s.prediction_error();
    }
    let instance = builder.build().expect("sessions are valid items");

    let lens = PredictedLens::new(algo, predictions, instance.len())?;
    let result = engine::run_with_sink(&instance, lens, sink)?;
    // Back-permute the arrival-ordered engine assignment to the caller's
    // input order: placements[i] answers for sessions[i].
    let mut placements = vec![BinId(0); sessions.len()];
    for (pos, &idx) in arrival_order.iter().enumerate() {
        placements[idx] = result.assignment[pos];
    }
    Ok(DispatchReport {
        bill: result.cost,
        servers_used: result.bins_opened,
        peak_servers: result.max_open,
        placements,
        mean_prediction_error: if ordered.is_empty() {
            0.0
        } else {
            err_sum / ordered.len() as f64
        },
        instance,
        arrival_order,
        tiers,
        metrics: result.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionRequest, Tier};
    use dbp_algos::{DepartureAwareFit, FirstFit, HybridAlgorithm};
    use dbp_core::time::Dur;

    fn sessions_exact() -> Vec<SessionRequest> {
        vec![
            SessionRequest::exact(1, Time(0), Dur(2), Tier::Premium),
            SessionRequest::exact(2, Time(0), Dur(64), Tier::Premium),
            SessionRequest::exact(3, Time(0), Dur(64), Tier::Premium),
        ]
    }

    #[test]
    fn oracle_dispatch_matches_plain_engine() {
        let report = dispatch(sessions_exact(), HybridAlgorithm::new()).unwrap();
        let plain = engine::run(&report.instance, HybridAlgorithm::new()).unwrap();
        assert_eq!(report.bill, plain.cost);
        assert_eq!(report.engine_assignment(), plain.assignment);
        // Input already sorted by arrival: both orders coincide here.
        assert_eq!(report.placements, plain.assignment);
        assert_eq!(report.mean_prediction_error, 0.0);
    }

    #[test]
    fn placements_follow_caller_input_order_with_tied_arrivals() {
        // Input deliberately NOT in arrival order, with a tie at t=0
        // across tiers: the report used to return arrival-sorted
        // placements, silently permuting the caller's indices.
        let sessions = vec![
            SessionRequest::exact(1, Time(5), Dur(10), Tier::Premium),
            SessionRequest::exact(2, Time(0), Dur(10), Tier::Low),
            SessionRequest::exact(3, Time(0), Dur(10), Tier::Premium),
        ];
        let report = dispatch(sessions, FirstFit::new()).unwrap();
        let plain = engine::run(&report.instance, FirstFit::new()).unwrap();
        // Arrival-sorted (stable on the t=0 tie) instance order is
        // [input 1, input 2, input 0].
        assert_eq!(report.arrival_order, vec![1, 2, 0]);
        assert_eq!(report.engine_assignment(), plain.assignment);
        assert_eq!(report.placements[1], plain.assignment[0]);
        assert_eq!(report.placements[2], plain.assignment[1]);
        assert_eq!(report.placements[0], plain.assignment[2]);
        let audit =
            dbp_core::assignment::audit(&report.instance, &report.engine_assignment()).unwrap();
        assert_eq!(audit.cost, report.bill);
    }

    #[test]
    fn short_prediction_table_is_a_typed_error() {
        match PredictedLens::new(FirstFit::new(), vec![Time(5)], 3) {
            Err(EngineError::MissingPrediction { item }) => assert_eq!(item, ItemId(1)),
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("short prediction table accepted"),
        }
    }

    #[test]
    fn dispatch_traces_sessions_and_surfaces_metrics() {
        use dbp_core::audit::InvariantAuditor;
        use dbp_core::trace::VecSink;

        let sessions = sessions_exact();
        let mut sink = VecSink::new();
        let report = dispatch_with_sink(&sessions, FirstFit::new(), &mut sink).unwrap();

        // Every session arrival shows up in both the counters and the trace.
        assert_eq!(report.metrics.arrivals, sessions.len() as u64);
        assert_eq!(
            report.metrics.fast_path_placements + report.metrics.scan_placements,
            sessions.len() as u64
        );
        assert_eq!(report.metrics.events, sink.events.len() as u64);

        // The session trace replays cleanly through the invariant auditor.
        let mut auditor = InvariantAuditor::new();
        let audited = dispatch_with_sink(&sessions, FirstFit::new(), &mut auditor).unwrap();
        assert!(auditor.violation().is_none(), "{:?}", auditor.violation());
        assert_eq!(audited.bill, report.bill);
    }

    fn dispatch(
        s: Vec<SessionRequest>,
        a: impl OnlineAlgorithm,
    ) -> Result<DispatchReport, EngineError> {
        super::dispatch(&s, a)
    }

    #[test]
    fn wrong_predictions_change_decisions_not_validity() {
        // The short session lies: it claims to be long. The departure-aware
        // dispatcher now pairs it with a long session — costing more, but
        // the packing stays valid and the bill reflects ACTUAL durations.
        let mut sessions = sessions_exact();
        sessions[0].predicted = Dur(64); // short session predicted long
        let report = dispatch(sessions, DepartureAwareFit::new()).unwrap();
        let audit =
            dbp_core::assignment::audit(&report.instance, &report.engine_assignment()).unwrap();
        assert_eq!(audit.cost, report.bill);
        assert!(report.mean_prediction_error > 0.0);
    }

    #[test]
    fn oracle_beats_lying_predictions_for_clairvoyant_algos() {
        let truth = dispatch(sessions_exact(), DepartureAwareFit::new()).unwrap();
        // Misleading forecast: the two LONG sessions claim to be short.
        let mut lied = sessions_exact();
        lied[1].predicted = Dur(2);
        lied[2].predicted = Dur(2);
        let fooled = dispatch(lied, DepartureAwareFit::new()).unwrap();
        assert!(
            truth.bill <= fooled.bill,
            "truth {} vs fooled {}",
            truth.bill,
            fooled.bill
        );
    }

    #[test]
    fn non_clairvoyant_algorithms_ignore_predictions() {
        let truth = dispatch(sessions_exact(), FirstFit::new()).unwrap();
        let mut lied = sessions_exact();
        lied[0].predicted = Dur(1000);
        let fooled = dispatch(lied, FirstFit::new()).unwrap();
        assert_eq!(truth.bill, fooled.bill, "FF never reads departures");
        assert_eq!(truth.placements, fooled.placements);
    }

    #[test]
    fn stateful_algorithms_stay_coherent_under_noise() {
        // HA's per-type load accounting must not underflow when predicted
        // and actual durations put an item in different classes.
        let mut sessions = Vec::new();
        let mut x = 5u64;
        for k in 0..200u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let actual = 1 + x % 64;
            let predicted = 1 + (x >> 17) % 64;
            sessions.push(SessionRequest {
                user: k,
                arrival: Time(k / 4),
                actual: Dur(actual),
                predicted: Dur(predicted),
                tier: Tier::Standard,
            });
        }
        let report = dispatch(sessions, HybridAlgorithm::new()).unwrap();
        let audit =
            dbp_core::assignment::audit(&report.instance, &report.engine_assignment()).unwrap();
        assert_eq!(audit.cost, report.bill);
        assert!(report.utilisation() > 0.0 && report.utilisation() <= 1.0);
    }

    #[test]
    fn tier_breakdown_partitions_sessions() {
        let sessions = vec![
            SessionRequest::exact(1, Time(0), Dur(10), Tier::Low),
            SessionRequest::exact(2, Time(0), Dur(10), Tier::Premium),
            SessionRequest::exact(3, Time(0), Dur(10), Tier::Premium),
        ];
        let report = dispatch(sessions, FirstFit::new()).unwrap();
        let breakdown = report.tier_breakdown();
        let counts: Vec<usize> = breakdown.iter().map(|&(_, c, _)| c).collect();
        assert_eq!(counts, [1, 0, 2]);
        let share_sum: f64 = breakdown.iter().map(|&(_, _, s)| s).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        // Premium carries 8/9 of the demand (2×(1/2) vs 1×(1/8)).
        assert!((breakdown[2].2 - 8.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn custom_tier_colliding_with_a_named_size_stays_attributed() {
        use dbp_core::size::Size;
        // Two custom sessions share Standard's exact size (1/4): a
        // size-keyed breakdown would absorb them into Standard.
        let custom = Tier::Custom(Size::from_ratio(1, 4));
        let sessions = vec![
            SessionRequest::exact(1, Time(0), Dur(10), Tier::Standard),
            SessionRequest::exact(2, Time(0), Dur(10), custom),
            SessionRequest::exact(3, Time(0), Dur(10), custom),
            SessionRequest::exact(4, Time(0), Dur(10), Tier::Premium),
        ];
        let report = dispatch(sessions, FirstFit::new()).unwrap();
        let breakdown = report.tier_breakdown();
        assert_eq!(
            breakdown
                .iter()
                .map(|&(t, c, _)| (t, c))
                .collect::<Vec<_>>(),
            vec![
                (Tier::Low, 0),
                (Tier::Standard, 1),
                (Tier::Premium, 1),
                (custom, 2),
            ]
        );
        let share_sum: f64 = breakdown.iter().map(|&(_, _, s)| s).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        // The colliding sessions carry Standard-sized demand under the
        // custom label: 2×(1/4) vs 1×(1/4).
        assert!((breakdown[3].2 - 2.0 * breakdown[1].2).abs() < 1e-9);
    }

    #[test]
    fn report_metrics_consistent() {
        let report = dispatch(sessions_exact(), FirstFit::new()).unwrap();
        assert_eq!(report.servers_used, 2);
        assert_eq!(report.peak_servers, 2);
        assert_eq!(report.bill.as_bin_ticks(), 64.0 + 64.0);
        assert!(
            (report.utilisation() - report.instance.demand().ratio_to(report.bill)).abs() < 1e-12
        );
    }
}
