//! Duration predictors: from oracle clairvoyance to realistic noise.
//!
//! The paper's clairvoyant model assumes departure times are known exactly
//! on arrival, justified by cloud-gaming predictability (Li et al.). Real
//! predictors err; this module generates predicted durations with
//! controlled noise so the `prediction-noise` experiment can measure how
//! fast each algorithm's advantage decays — a robustness question the
//! paper leaves open.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbp_core::time::Dur;

/// A duration predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predictor {
    /// Perfect clairvoyance (the paper's model).
    Oracle,
    /// Multiplicative noise: predicted = actual · U[1−e, 1+e], clamped to
    /// ≥ 1 tick. `e` in percent (0–100).
    Relative {
        /// Error half-width in percent.
        error_pct: u32,
    },
    /// Systematic bias: predicted = actual · (100+b)/100, b ∈ [−99, 400].
    Biased {
        /// Bias in percent (negative = underestimates).
        bias_pct: i32,
    },
    /// No information: always predicts `fallback` ticks (the
    /// non-clairvoyant limit — every session looks alike).
    Constant {
        /// The constant prediction.
        fallback: u64,
    },
}

impl Predictor {
    /// Predicts a duration for a session of true length `actual`.
    pub fn predict(self, actual: Dur, rng: &mut StdRng) -> Dur {
        match self {
            Predictor::Oracle => actual,
            Predictor::Relative { error_pct } => {
                assert!(error_pct <= 100, "relative error capped at 100%");
                let e = error_pct as f64 / 100.0;
                let factor = rng.gen_range((1.0 - e)..=(1.0 + e));
                Dur(((actual.ticks() as f64 * factor).round() as u64).max(1))
            }
            Predictor::Biased { bias_pct } => {
                assert!((-99..=400).contains(&bias_pct), "bias out of range");
                let factor = (100 + bias_pct as i64) as f64 / 100.0;
                Dur(((actual.ticks() as f64 * factor).round() as u64).max(1))
            }
            Predictor::Constant { fallback } => Dur(fallback.max(1)),
        }
    }

    /// Display label for reports.
    pub fn label(self) -> String {
        match self {
            Predictor::Oracle => "oracle".into(),
            Predictor::Relative { error_pct } => format!("±{error_pct}%"),
            Predictor::Biased { bias_pct } => format!("bias {bias_pct:+}%"),
            Predictor::Constant { fallback } => format!("constant {fallback}"),
        }
    }

    /// Applies the predictor to a batch of sessions (deterministic per
    /// seed).
    pub fn apply(self, sessions: &mut [crate::session::SessionRequest], seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for s in sessions {
            s.predicted = self.predict(s.actual, &mut rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionRequest, Tier};
    use dbp_core::time::Time;

    #[test]
    fn oracle_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Predictor::Oracle.predict(Dur(77), &mut rng), Dur(77));
    }

    #[test]
    fn relative_noise_stays_in_band() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let p = Predictor::Relative { error_pct: 30 }.predict(Dur(100), &mut rng);
            assert!(p.ticks() >= 70 && p.ticks() <= 130, "{p:?}");
        }
    }

    #[test]
    fn bias_is_systematic() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            Predictor::Biased { bias_pct: 50 }.predict(Dur(100), &mut rng),
            Dur(150)
        );
        assert_eq!(
            Predictor::Biased { bias_pct: -50 }.predict(Dur(100), &mut rng),
            Dur(50)
        );
    }

    #[test]
    fn predictions_never_hit_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let p = Predictor::Relative { error_pct: 100 }.predict(Dur(1), &mut rng);
            assert!(p.ticks() >= 1);
        }
        assert_eq!(
            Predictor::Constant { fallback: 0 }.predict(Dur(5), &mut rng),
            Dur(1)
        );
    }

    #[test]
    fn apply_is_deterministic_per_seed() {
        let base: Vec<SessionRequest> = (0..50)
            .map(|k| SessionRequest::exact(k, Time(k), Dur(10 + k), Tier::Low))
            .collect();
        let mut a = base.clone();
        let mut b = base.clone();
        Predictor::Relative { error_pct: 20 }.apply(&mut a, 7);
        Predictor::Relative { error_pct: 20 }.apply(&mut b, 7);
        assert_eq!(a, b);
        let mut c = base;
        Predictor::Relative { error_pct: 20 }.apply(&mut c, 8);
        assert_ne!(a, c);
    }
}
