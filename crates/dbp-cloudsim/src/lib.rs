//! # dbp-cloudsim
//!
//! The paper's motivating application — cloud server allocation with
//! predictable session lengths — as a thin, typed layer over the
//! MinUsageTime DBP engine:
//!
//! * [`session`] — session requests with bandwidth tiers and (possibly
//!   wrong) duration predictions;
//! * [`predictor`] — oracle / noisy / biased / uninformed predictors;
//! * [`dispatcher`] — runs any [`dbp_core::OnlineAlgorithm`] over a batch
//!   of sessions, decisions on *predicted* departures, accounting on
//!   *actual* ones ([`dispatcher::PredictedLens`]);
//! * [`billing`] — money/energy invoices from dispatch reports;
//! * [`advisor`] — the OPT_R vs OPT_NR gap as a migration-value report;
//! * [`scenario`] — multi-day fleet scenarios with aggregated invoices.
//!
//! The paper assumes perfect clairvoyance; this layer makes the premise a
//! *parameter* so the `prediction-noise` experiment can chart how each
//! algorithm's advantage decays as forecasts degrade.

#![warn(missing_docs)]

pub mod advisor;
pub mod billing;
pub mod dispatcher;
pub mod predictor;
pub mod scenario;
pub mod session;

pub use advisor::MigrationAdvice;
pub use billing::{CostModel, Invoice};
pub use dispatcher::{dispatch, DispatchReport, PredictedLens};
pub use predictor::Predictor;
pub use scenario::{Scenario, ScenarioReport};
pub use session::{SessionRequest, Tier};

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::time::{Dur, Time};

    #[test]
    fn end_to_end_flow() {
        let mut sessions: Vec<SessionRequest> = (0..40)
            .map(|k| SessionRequest::exact(k, Time(k % 8), Dur(10 + (k % 5) * 12), Tier::Standard))
            .collect();
        Predictor::Relative { error_pct: 25 }.apply(&mut sessions, 42);
        let report = dispatch(&sessions, dbp_algos::HybridAlgorithm::new()).unwrap();
        assert!(report.mean_prediction_error > 0.0);
        let invoice = CostModel::demo().invoice(&report);
        assert!(invoice.server_ticks > 0.0);
        assert!(invoice.utilisation > 0.0 && invoice.utilisation <= 1.0);
    }
}
