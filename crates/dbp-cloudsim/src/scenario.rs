//! Multi-day fleet scenarios: generate traffic day by day, dispatch each
//! day with a chosen algorithm and predictor, and aggregate the bills —
//! the operator-level view the examples and capacity-planning experiments
//! are built on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbp_core::algorithm::OnlineAlgorithm;
use dbp_core::error::EngineError;
use dbp_core::time::{Dur, Time};

use crate::billing::{CostModel, Invoice};
use crate::dispatcher::{dispatch, DispatchReport};
use crate::predictor::Predictor;
use crate::session::{SessionRequest, Tier};

/// Traffic model for one scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of days simulated.
    pub days: u32,
    /// Ticks per day (e.g. 1440 minutes).
    pub ticks_per_day: u64,
    /// Mean sessions per day; actual counts vary ±20% day to day.
    pub sessions_per_day: usize,
    /// Fraction of long sessions, in percent.
    pub long_pct: u32,
    /// Mean short-session length in ticks.
    pub short_len: u64,
    /// Mean long-session length in ticks.
    pub long_len: u64,
    /// Duration predictor quality.
    pub predictor: Predictor,
}

impl Scenario {
    /// A default week of cloud-gaming traffic with oracle forecasts.
    pub fn week() -> Scenario {
        Scenario {
            days: 7,
            ticks_per_day: 1_440,
            sessions_per_day: 2_000,
            long_pct: 20,
            short_len: 25,
            long_len: 240,
            predictor: Predictor::Oracle,
        }
    }

    /// Generates day `d`'s sessions (deterministic per `(seed, d)`).
    pub fn day_sessions(&self, d: u32, seed: u64) -> Vec<SessionRequest> {
        let mut rng = StdRng::seed_from_u64(seed ^ (d as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let jitter = 0.8 + 0.4 * rng.gen::<f64>();
        let count = ((self.sessions_per_day as f64) * jitter).round() as usize;
        let mut sessions: Vec<SessionRequest> = (0..count)
            .map(|k| {
                let long = rng.gen_range(0u32..100) < self.long_pct;
                let mean = if long { self.long_len } else { self.short_len };
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let len = ((-(mean as f64) * u.ln()).round() as u64).max(1);
                let tier = match rng.gen_range(0..3) {
                    0 => Tier::Low,
                    1 => Tier::Standard,
                    _ => Tier::Premium,
                };
                SessionRequest::exact(
                    (d as u64) << 32 | k as u64,
                    Time(rng.gen_range(0..self.ticks_per_day)),
                    Dur(len),
                    tier,
                )
            })
            .collect();
        self.predictor
            .apply(&mut sessions, seed.wrapping_add(d as u64));
        sessions
    }

    /// Runs the whole scenario with a fresh algorithm per day (fleets are
    /// drained overnight: each day is an independent busy horizon).
    pub fn run<A, F>(
        &self,
        mut make_algo: F,
        model: &CostModel,
        seed: u64,
    ) -> Result<ScenarioReport, EngineError>
    where
        A: OnlineAlgorithm,
        F: FnMut() -> A,
    {
        let mut days = Vec::with_capacity(self.days as usize);
        for d in 0..self.days {
            let sessions = self.day_sessions(d, seed);
            let report = dispatch(&sessions, make_algo())?;
            let invoice = model.invoice(&report);
            days.push((report, invoice));
        }
        Ok(ScenarioReport { days })
    }
}

/// Aggregated results across the scenario's days.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Per-day dispatch report and invoice.
    pub days: Vec<(DispatchReport, Invoice)>,
}

impl ScenarioReport {
    /// Total money across all days, in milli-units.
    pub fn total_cost_milli(&self) -> u64 {
        self.days.iter().map(|(_, i)| i.cost_milli).sum()
    }

    /// Total energy (watt-ticks).
    pub fn total_watt_ticks(&self) -> u64 {
        self.days.iter().map(|(_, i)| i.watt_ticks).sum()
    }

    /// Worst single-day peak server count.
    pub fn peak_servers(&self) -> usize {
        self.days
            .iter()
            .map(|(r, _)| r.peak_servers)
            .max()
            .unwrap_or(0)
    }

    /// Mean utilisation across days (unweighted).
    pub fn mean_utilisation(&self) -> f64 {
        if self.days.is_empty() {
            return 0.0;
        }
        self.days.iter().map(|(r, _)| r.utilisation()).sum::<f64>() / self.days.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_algos::{DepartureAwareFit, FirstFit};

    #[test]
    fn week_runs_and_aggregates() {
        let mut sc = Scenario::week();
        sc.sessions_per_day = 300; // keep the test fast
        let report = sc
            .run(FirstFit::new, &CostModel::demo(), 42)
            .expect("legal dispatch");
        assert_eq!(report.days.len(), 7);
        assert!(report.total_cost_milli() > 0);
        assert!(report.peak_servers() > 0);
        let u = report.mean_utilisation();
        assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut sc = Scenario::week();
        sc.days = 2;
        sc.sessions_per_day = 200;
        let a = sc.run(FirstFit::new, &CostModel::demo(), 7).unwrap();
        let b = sc.run(FirstFit::new, &CostModel::demo(), 7).unwrap();
        assert_eq!(a.total_cost_milli(), b.total_cost_milli());
        let c = sc.run(FirstFit::new, &CostModel::demo(), 8).unwrap();
        assert_ne!(a.total_cost_milli(), c.total_cost_milli());
    }

    #[test]
    fn clairvoyant_dispatcher_cheaper_over_the_week() {
        let mut sc = Scenario::week();
        sc.days = 3;
        sc.sessions_per_day = 500;
        let ff = sc.run(FirstFit::new, &CostModel::demo(), 1).unwrap();
        let daf = sc
            .run(DepartureAwareFit::new, &CostModel::demo(), 1)
            .unwrap();
        assert!(
            daf.total_cost_milli() < ff.total_cost_milli(),
            "daf {} vs ff {}",
            daf.total_cost_milli(),
            ff.total_cost_milli()
        );
    }

    #[test]
    fn noisy_predictor_costs_more_for_clairvoyant_algos() {
        let mut oracle = Scenario::week();
        oracle.days = 3;
        oracle.sessions_per_day = 500;
        let mut blind = oracle.clone();
        blind.predictor = Predictor::Constant { fallback: 30 };
        let with_oracle = oracle
            .run(DepartureAwareFit::new, &CostModel::demo(), 2)
            .unwrap();
        let with_blind = blind
            .run(DepartureAwareFit::new, &CostModel::demo(), 2)
            .unwrap();
        assert!(with_oracle.total_cost_milli() <= with_blind.total_cost_milli());
    }
}
