//! The migration advisor: what would live-migration buy?
//!
//! The gap between the repacking and non-repacking optima — `OPT_R` vs
//! `OPT_NR` in the paper — is, operationally, the value of being able to
//! *migrate* running sessions between servers. The advisor compares a
//! dispatcher's realized bill with the best achievable (a) without
//! migration by any strategy (the non-repacking portfolio), and (b) with
//! free migration (repack-every-event FFD, the Lemma 3.1 constructive
//! optimum), turning the paper's two adversaries into a capacity-planning
//! report.

use dbp_algos::offline::{best_nonrepacking, ffd_repack_cost};
use dbp_core::cost::Area;

use crate::dispatcher::DispatchReport;

/// The advisor's findings for one dispatch run.
#[derive(Debug, Clone)]
pub struct MigrationAdvice {
    /// The dispatcher's realized bill.
    pub bill: Area,
    /// Best known bill without migration (portfolio winner).
    pub best_static: Area,
    /// Name of the winning static strategy.
    pub best_static_strategy: String,
    /// Bill with free migration (repacking FFD).
    pub with_migration: Area,
    /// Headroom over the best static strategy: `bill / best_static`.
    pub dispatch_headroom: f64,
    /// Value of migration: `best_static / with_migration`.
    pub migration_value: f64,
}

impl MigrationAdvice {
    /// Analyses a dispatch report.
    pub fn analyse(report: &DispatchReport) -> MigrationAdvice {
        let portfolio = best_nonrepacking(&report.instance);
        let with_migration = ffd_repack_cost(&report.instance);
        MigrationAdvice {
            bill: report.bill,
            best_static: portfolio.cost,
            best_static_strategy: portfolio.winner.clone(),
            with_migration,
            dispatch_headroom: report.bill.ratio_to(portfolio.cost),
            migration_value: portfolio.cost.ratio_to(with_migration),
        }
    }

    /// One-line summary for operators.
    pub fn summary(&self) -> String {
        format!(
            "bill {:.0}; best static ({}) {:.0} ({:.1}% headroom); \
             with migration {:.0} (migration worth {:.1}%)",
            self.bill.as_bin_ticks(),
            self.best_static_strategy,
            self.best_static.as_bin_ticks(),
            (self.dispatch_headroom - 1.0) * 100.0,
            self.with_migration.as_bin_ticks(),
            (self.migration_value - 1.0) * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::dispatch;
    use crate::session::{SessionRequest, Tier};
    use dbp_algos::FirstFit;
    use dbp_core::time::{Dur, Time};

    fn staggered_sessions() -> Vec<SessionRequest> {
        // A pattern where migration genuinely helps: pairs of sessions
        // whose departures interleave so a static packing strands space.
        let mut v = Vec::new();
        for k in 0..12u64 {
            v.push(SessionRequest::exact(
                k,
                Time(k * 2),
                Dur(20),
                Tier::Premium,
            ));
            v.push(SessionRequest::exact(
                100 + k,
                Time(k * 2),
                Dur(3),
                Tier::Premium,
            ));
        }
        v
    }

    #[test]
    fn advice_orders_consistently() {
        let report = dispatch(&staggered_sessions(), FirstFit::new()).unwrap();
        let advice = MigrationAdvice::analyse(&report);
        // with_migration ≤ best_static ≤ bill (portfolio includes FF, and
        // migration can only help).
        assert!(advice.with_migration <= advice.best_static);
        assert!(advice.best_static <= advice.bill);
        assert!(advice.dispatch_headroom >= 1.0);
        assert!(advice.migration_value >= 1.0);
        let s = advice.summary();
        assert!(s.contains("migration worth"));
    }

    #[test]
    fn perfect_dispatch_has_no_headroom() {
        // Single session: everything collapses.
        let sessions = vec![SessionRequest::exact(1, Time(0), Dur(10), Tier::Low)];
        let report = dispatch(&sessions, FirstFit::new()).unwrap();
        let advice = MigrationAdvice::analyse(&report);
        assert_eq!(advice.dispatch_headroom, 1.0);
        assert_eq!(advice.migration_value, 1.0);
    }
}
