//! Session requests: the domain vocabulary over `dbp-core` items.
//!
//! A session is a user's request for a slice of one server's bandwidth for
//! a period that is predicted at arrival (the clairvoyance premise of Li
//! et al.'s cloud-gaming studies). The dispatcher maps sessions to items
//! and servers to bins; everything else — validation, capacity, usage
//! accounting — is the DBP engine.

use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// Bandwidth tiers a session can request (fractions of one server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// 1/8 of a server (e.g. 720p stream).
    Low,
    /// 1/4 of a server (1080p).
    Standard,
    /// 1/2 of a server (4K).
    Premium,
    /// A bespoke bandwidth demand (enterprise SKUs). A custom size may
    /// coincide with a named tier's — the dispatcher still attributes the
    /// session to *this* tier, not the named one.
    Custom(Size),
}

impl Tier {
    /// The tier's bandwidth demand.
    pub fn size(self) -> Size {
        match self {
            Tier::Low => Size::from_ratio(1, 8),
            Tier::Standard => Size::from_ratio(1, 4),
            Tier::Premium => Size::from_ratio(1, 2),
            Tier::Custom(s) => s,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Low => "low",
            Tier::Standard => "standard",
            Tier::Premium => "premium",
            Tier::Custom(_) => "custom",
        }
    }
}

/// One session request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRequest {
    /// Stable user-facing id.
    pub user: u64,
    /// When the session starts (and must be dispatched).
    pub arrival: Time,
    /// The session's *actual* length, in ticks.
    pub actual: Dur,
    /// The length *predicted* at arrival — what a clairvoyant dispatcher
    /// gets to see. Equal to `actual` under perfect prediction.
    pub predicted: Dur,
    /// Requested bandwidth tier.
    pub tier: Tier,
}

impl SessionRequest {
    /// A perfectly-predicted session.
    pub fn exact(user: u64, arrival: Time, len: Dur, tier: Tier) -> SessionRequest {
        SessionRequest {
            user,
            arrival,
            actual: len,
            predicted: len,
            tier,
        }
    }

    /// Relative prediction error `|predicted − actual| / actual`.
    pub fn prediction_error(&self) -> f64 {
        let a = self.actual.ticks() as f64;
        let p = self.predicted.ticks() as f64;
        (p - a).abs() / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_sizes() {
        assert_eq!(Tier::Low.size(), Size::from_ratio(1, 8));
        assert_eq!(Tier::Standard.size(), Size::from_ratio(1, 4));
        assert_eq!(Tier::Premium.size(), Size::from_ratio(1, 2));
        assert_eq!(Tier::Premium.label(), "premium");
    }

    #[test]
    fn exact_sessions_have_zero_error() {
        let s = SessionRequest::exact(1, Time(0), Dur(30), Tier::Low);
        assert_eq!(s.prediction_error(), 0.0);
        let noisy = SessionRequest {
            predicted: Dur(45),
            ..s
        };
        assert!((noisy.prediction_error() - 0.5).abs() < 1e-12);
    }
}
