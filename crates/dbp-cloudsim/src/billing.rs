//! Billing and energy accounting over dispatch reports.
//!
//! MinUsageTime is "the total energy used by the algorithm" in the
//! paper's framing; this module turns server-ticks into money and watts
//! for the application-facing examples.

use core::fmt;

use crate::dispatcher::DispatchReport;

/// Pricing/energy model for a server fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Price per server-tick, in milli-currency units.
    pub price_milli_per_tick: u64,
    /// Energy per server-tick, in watt-ticks (a server draws this while
    /// powered on, regardless of load — the idle-power framing that makes
    /// usage time the right objective).
    pub watts_per_server: u64,
    /// Fixed boot overhead per powered-on server, in server-ticks. The
    /// paper's model has none (usage time only); a non-zero value
    /// penalises strategies that churn many short-lived servers.
    pub boot_ticks: u64,
}

impl CostModel {
    /// A demo model: 1 currency unit per 100 server-ticks, 250 W servers,
    /// no boot overhead (the paper's pure usage-time objective).
    pub fn demo() -> CostModel {
        CostModel {
            price_milli_per_tick: 10,
            watts_per_server: 250,
            boot_ticks: 0,
        }
    }

    /// The same model with a per-server boot overhead.
    pub fn with_boot(mut self, boot_ticks: u64) -> CostModel {
        self.boot_ticks = boot_ticks;
        self
    }

    /// Produces the invoice for a dispatch report.
    pub fn invoice(&self, report: &DispatchReport) -> Invoice {
        let boot = (self.boot_ticks * report.servers_used as u64) as f64;
        let server_ticks = report.bill.as_bin_ticks() + boot;
        Invoice {
            server_ticks,
            boot_ticks: boot,
            cost_milli: (server_ticks * self.price_milli_per_tick as f64).round() as u64,
            watt_ticks: (server_ticks * self.watts_per_server as f64).round() as u64,
            servers_used: report.servers_used,
            peak_servers: report.peak_servers,
            utilisation: report.utilisation(),
        }
    }
}

/// The rendered bill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Invoice {
    /// Total paid server-ticks (usage + boot overhead).
    pub server_ticks: f64,
    /// Portion of `server_ticks` attributable to boots.
    pub boot_ticks: f64,
    /// Money, in milli-units.
    pub cost_milli: u64,
    /// Energy, in watt-ticks.
    pub watt_ticks: u64,
    /// Servers ever powered on.
    pub servers_used: usize,
    /// Peak concurrent servers.
    pub peak_servers: usize,
    /// Fraction of paid server-time carrying traffic.
    pub utilisation: f64,
}

impl fmt::Display for Invoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} server-ticks | {:.3} units | {:.1} kW·ticks | {} servers (peak {}) | {:.1}% utilised",
            self.server_ticks,
            self.cost_milli as f64 / 1000.0,
            self.watt_ticks as f64 / 1000.0,
            self.servers_used,
            self.peak_servers,
            self.utilisation * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::dispatch;
    use crate::session::{SessionRequest, Tier};
    use dbp_algos::FirstFit;
    use dbp_core::time::{Dur, Time};

    #[test]
    fn invoice_scales_with_bill() {
        let sessions = vec![
            SessionRequest::exact(1, Time(0), Dur(100), Tier::Premium),
            SessionRequest::exact(2, Time(0), Dur(100), Tier::Premium),
        ];
        let report = dispatch(&sessions, FirstFit::new()).unwrap();
        let invoice = CostModel::demo().invoice(&report);
        assert_eq!(invoice.server_ticks, 100.0);
        assert_eq!(invoice.boot_ticks, 0.0);
        assert_eq!(invoice.cost_milli, 1000);
        assert_eq!(invoice.watt_ticks, 25_000);
        assert_eq!(invoice.servers_used, 1);
        assert_eq!(invoice.utilisation, 1.0);
        let rendered = invoice.to_string();
        assert!(rendered.contains("100 server-ticks"));
        assert!(rendered.contains("100.0% utilised"));
    }

    #[test]
    fn boot_overhead_scales_with_servers() {
        let sessions = vec![
            SessionRequest::exact(1, Time(0), Dur(10), Tier::Premium),
            SessionRequest::exact(2, Time(0), Dur(10), Tier::Premium),
            SessionRequest::exact(3, Time(0), Dur(10), Tier::Premium),
        ];
        let report = dispatch(&sessions, FirstFit::new()).unwrap();
        assert_eq!(report.servers_used, 2);
        let flat = CostModel::demo().invoice(&report);
        let booted = CostModel::demo().with_boot(5).invoice(&report);
        assert_eq!(booted.boot_ticks, 10.0, "2 servers × 5 ticks");
        assert_eq!(booted.server_ticks, flat.server_ticks + 10.0);
        assert!(booted.cost_milli > flat.cost_milli);
    }
}
