//! Property tests for the cloud layer: dispatch must stay valid under
//! arbitrary (even absurd) predictions, non-clairvoyant algorithms must be
//! prediction-invariant, and the advisor's orderings must hold.

use dbp_cloudsim::{dispatch, MigrationAdvice, SessionRequest, Tier};
use dbp_core::time::{Dur, Time};
use proptest::prelude::*;

fn arb_sessions(max: usize) -> impl Strategy<Value = Vec<SessionRequest>> {
    prop::collection::vec((0u64..128, 1u64..=64, 1u64..=64, 0u8..3), 1..=max).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(k, (arrival, actual, predicted, tier))| SessionRequest {
                user: k as u64,
                arrival: Time(arrival),
                actual: Dur(actual),
                predicted: Dur(predicted),
                tier: match tier {
                    0 => Tier::Low,
                    1 => Tier::Standard,
                    _ => Tier::Premium,
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any prediction pattern yields a valid, auditable packing for every
    /// algorithm in the suite.
    #[test]
    fn dispatch_valid_under_arbitrary_predictions(sessions in arb_sessions(50)) {
        for name in dbp_algos::registry_names() {
            let algo = dbp_algos::by_name(name).expect("registry");
            let report = dispatch(&sessions, algo).expect("dispatch is legal");
            let audit = dbp_core::audit(&report.instance, &report.engine_assignment())
                .expect("valid packing");
            prop_assert_eq!(audit.cost, report.bill, "{} bill mismatch", name);
        }
    }

    /// Non-clairvoyant algorithms never read predictions: the placements
    /// are identical under any forecast.
    #[test]
    fn first_fit_is_prediction_invariant(sessions in arb_sessions(40)) {
        let truth: Vec<SessionRequest> = sessions
            .iter()
            .map(|s| SessionRequest { predicted: s.actual, ..*s })
            .collect();
        let a = dispatch(&truth, dbp_algos::FirstFit::new()).expect("legal");
        let b = dispatch(&sessions, dbp_algos::FirstFit::new()).expect("legal");
        prop_assert_eq!(a.placements, b.placements);
        prop_assert_eq!(a.bill, b.bill);
    }

    /// Advisor ordering: with_migration ≤ best_static ≤ realized bill.
    #[test]
    fn advisor_orderings(sessions in arb_sessions(30)) {
        let report = dispatch(&sessions, dbp_algos::WorstFit::new()).expect("legal");
        let advice = MigrationAdvice::analyse(&report);
        prop_assert!(advice.with_migration <= advice.best_static);
        prop_assert!(advice.best_static <= advice.bill);
        prop_assert!(advice.dispatch_headroom >= 1.0);
        prop_assert!(advice.migration_value >= 1.0);
    }

    /// The bill is bounded below by the certified lower bounds of the
    /// actual-duration instance, regardless of predictions.
    #[test]
    fn bill_never_beats_certified_lb(sessions in arb_sessions(40)) {
        let report = dispatch(&sessions, dbp_algos::HybridAlgorithm::new()).expect("legal");
        let lb = dbp_core::LowerBounds::of(&report.instance);
        prop_assert!(report.bill >= lb.best());
    }
}
