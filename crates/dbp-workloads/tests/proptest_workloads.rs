//! Property tests for the generators: every advertised structural
//! property must hold across the whole configuration space, not just the
//! defaults the unit tests exercise.

use dbp_workloads::{
    random_aligned, random_general, semi_aligned, sigma_mu, AlignedConfig, DurationDist,
    GeneralConfig, SemiAlignedConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// σ_μ: aligned, correct size, exact μ, Observation 3's arrival counts.
    #[test]
    fn sigma_mu_structure(n in 1u32..=10) {
        let inst = sigma_mu(n);
        prop_assert!(inst.is_aligned());
        prop_assert_eq!(inst.len() as u64, dbp_workloads::sigma_mu_len(n));
        prop_assert_eq!(inst.mu(), Some((1u64 << n) as f64));
        // Every item fits the horizon.
        let horizon = 1u64 << n;
        prop_assert!(inst.items().iter().all(|it| it.departure.ticks() <= horizon));
    }

    /// Random aligned inputs are aligned for every (n, items, seed).
    #[test]
    fn random_aligned_always_aligned(n in 2u32..=10, items in 1usize..300, seed in 0u64..50) {
        let mut cfg = AlignedConfig::new(n, items);
        cfg.off_power_durations = seed % 2 == 0;
        let inst = random_aligned(&cfg, seed);
        prop_assert!(inst.is_aligned(), "seed {seed}");
        prop_assert_eq!(inst.len(), items + 1, "anchor + items");
    }

    /// Semi-aligned: measured slack never exceeds the configured slack,
    /// and slack 0 is exactly aligned.
    #[test]
    fn semi_aligned_slack_bounded(n in 2u32..=10, slack in 0u32..=10, seed in 0u64..30) {
        let inst = semi_aligned(&SemiAlignedConfig::new(n, slack, 200), seed);
        prop_assert!(dbp_workloads::measured_slack(&inst) <= slack);
        if slack == 0 {
            prop_assert!(inst.is_aligned());
        }
    }

    /// General generator: durations respect the distribution's cap and
    /// arrivals are non-decreasing (items served in generation order).
    #[test]
    fn random_general_respects_caps(n in 1u32..=12, items in 1usize..300, seed in 0u64..30) {
        let cfg = GeneralConfig {
            items,
            mean_gap: seed % 4,
            durations: DurationDist::LogUniform { n },
            size_range: (1, 60, 100),
        };
        let inst = random_general(&cfg, seed);
        prop_assert_eq!(inst.len(), items);
        prop_assert!(inst.max_duration().ticks() <= 1 << n);
        prop_assert!(inst.min_duration().ticks() >= 1);
        for w in inst.items().windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
    }

    /// Composition algebra: demand is additive under overlay; span is
    /// invariant under shift.
    #[test]
    fn composition_algebra(seed_a in 0u64..20, seed_b in 0u64..20, off in 0u64..100) {
        use dbp_workloads::compose::{overlay, shift};
        use dbp_core::time::Dur;
        let a = random_general(&GeneralConfig::new(5, 50), seed_a);
        let b = random_general(&GeneralConfig::new(5, 50), seed_b);
        let o = overlay(&a, &b);
        prop_assert_eq!(o.demand().raw(), a.demand().raw() + b.demand().raw());
        let s = shift(&a, Dur(off));
        prop_assert_eq!(s.span_dur(), a.span_dur());
        prop_assert_eq!(s.demand(), a.demand());
        prop_assert_eq!(s.mu(), a.mu());
    }

    /// Trace CSV round-trips every generator's output exactly.
    #[test]
    fn trace_round_trip(seed in 0u64..30) {
        let inst = random_general(&GeneralConfig::new(6, 120), seed);
        let back = dbp_workloads::parse_trace(&dbp_workloads::emit_trace(&inst))
            .expect("round trip parses");
        prop_assert_eq!(inst, back);
    }
}
