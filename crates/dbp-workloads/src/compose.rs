//! Instance composition: shift, concatenate and interleave workloads.
//!
//! Experiments often need structured combinations — a binary input
//! followed by an adversarial burst, two cloud days back to back, a
//! benign trace with a pathology spliced into its middle. These operators
//! keep composition exact (pure tick arithmetic) and validated.

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::time::Dur;

/// Returns `instance` with every arrival shifted `offset` ticks later.
pub fn shift(instance: &Instance, offset: Dur) -> Instance {
    let mut b = InstanceBuilder::with_capacity(instance.len());
    for it in instance.items() {
        b.push(it.arrival + offset, it.duration(), it.size);
    }
    b.build().expect("shifting preserves validity")
}

/// Merges two instances on a shared time axis (items interleave by
/// arrival; ties keep `a`'s items first).
pub fn overlay(a: &Instance, b: &Instance) -> Instance {
    let mut builder = InstanceBuilder::with_capacity(a.len() + b.len());
    for it in a.items() {
        builder.push(it.arrival, it.duration(), it.size);
    }
    for it in b.items() {
        builder.push(it.arrival, it.duration(), it.size);
    }
    builder.build().expect("overlay preserves validity")
}

/// Concatenates `b` after `a` with a `gap` of idle ticks between `a`'s
/// end and `b`'s (shifted) start.
///
/// ```
/// use dbp_workloads::compose::concat;
/// use dbp_workloads::sigma_mu;
/// use dbp_core::Dur;
///
/// // A binary input followed by another, separated by an idle gap.
/// let twice = concat(&sigma_mu(3), &sigma_mu(3), Dur(4));
/// assert_eq!(twice.len(), 30);
/// assert_eq!(twice.split_busy_periods().len(), 2);
/// ```
pub fn concat(a: &Instance, b: &Instance, gap: Dur) -> Instance {
    let offset = match (a.end(), b.start()) {
        (Some(end), Some(start)) => {
            let target = end + gap;
            Dur(target.ticks().saturating_sub(start.ticks()))
        }
        _ => Dur::ZERO,
    };
    overlay(a, &shift(b, offset))
}

/// Repeats an instance `times` times, each copy separated by `gap`.
pub fn repeat(instance: &Instance, times: usize, gap: Dur) -> Instance {
    assert!(times >= 1, "need at least one copy");
    let mut out = instance.clone();
    for _ in 1..times {
        out = concat(&out, instance, gap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::size::Size;
    use dbp_core::time::Time;

    fn inst(triples: &[(u64, u64)]) -> Instance {
        Instance::from_triples(
            triples
                .iter()
                .map(|&(a, d)| (Time(a), Dur(d), Size::from_ratio(1, 2))),
        )
        .unwrap()
    }

    #[test]
    fn shift_moves_everything() {
        let s = shift(&inst(&[(0, 4), (2, 2)]), Dur(10));
        assert_eq!(s.start(), Some(Time(10)));
        assert_eq!(s.end(), Some(Time(14)));
        assert_eq!(s.span_dur(), Dur(4));
    }

    #[test]
    fn overlay_merges_and_sorts() {
        let o = overlay(&inst(&[(5, 1)]), &inst(&[(0, 1), (5, 2)]));
        assert_eq!(o.len(), 3);
        let arrivals: Vec<u64> = o.items().iter().map(|i| i.arrival.ticks()).collect();
        assert_eq!(arrivals, [0, 5, 5]);
        // Tie at t=5 keeps `a`'s item (duration 1) first.
        assert_eq!(o.items()[1].duration(), Dur(1));
    }

    #[test]
    fn concat_separates_by_gap() {
        let c = concat(&inst(&[(0, 4)]), &inst(&[(0, 2)]), Dur(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.items()[1].arrival, Time(7));
        // Span = 4 + 2; the gap is not busy time.
        assert_eq!(c.span_dur(), Dur(6));
        let parts = c.split_busy_periods();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn concat_never_overlaps_even_for_late_starting_b() {
        // b starts at t=100 already: concat must not move it earlier than
        // a.end() + gap, and with the saturating shift it stays put.
        let c = concat(&inst(&[(0, 4)]), &inst(&[(100, 2)]), Dur(1));
        assert_eq!(c.items()[1].arrival, Time(100));
    }

    #[test]
    fn repeat_scales_demand_linearly() {
        let base = inst(&[(0, 4), (1, 2)]);
        let r = repeat(&base, 3, Dur(5));
        assert_eq!(r.len(), 6, "3 copies × 2 items");
        assert_eq!(r.demand().raw(), base.demand().raw() * 3);
        assert_eq!(r.span_dur().ticks(), base.span_dur().ticks() * 3);
        assert_eq!(r.split_busy_periods().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn repeat_zero_rejected() {
        repeat(&inst(&[(0, 1)]), 0, Dur(1));
    }

    #[test]
    fn composition_preserves_mu_of_union() {
        let a = inst(&[(0, 1)]);
        let b = inst(&[(0, 16)]);
        assert_eq!(overlay(&a, &b).mu(), Some(16.0));
        assert_eq!(concat(&a, &b, Dur(2)).mu(), Some(16.0));
    }
}
