//! Chaos scenarios: scripted server-crash schedules for fault-injection
//! runs.
//!
//! The engine's seeded [`dbp_core::FailurePlan`] dooms bins *as they
//! open*, which couples the crash schedule to the algorithm under test. A
//! chaos scenario instead fixes the crash schedule **up front** — `(time,
//! bin id)` pairs drawn against the horizon — so two algorithms face the
//! *same* storm and their resilience is comparable. Crashes naming a bin
//! that is closed (or never opened) at fire time are no-ops by engine
//! design, so a schedule can safely over-provision bin ids.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbp_core::bin_state::BinId;
use dbp_core::failure::FailurePlan;
use dbp_core::time::Time;

/// Parameters of the scripted crash-storm generator.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of crash events to script.
    pub crashes: usize,
    /// Horizon in ticks over which crash times spread (exclusive).
    pub horizon: u64,
    /// Bin-id space to draw victims from (exclusive upper bound). Size it
    /// near the expected number of bins the run opens; ids past the run's
    /// actual bin count simply never fire.
    pub max_bins: u32,
}

impl ChaosConfig {
    /// A storm of `crashes` crash events over `horizon` ticks against the
    /// first `max_bins` bin ids.
    pub fn new(crashes: usize, horizon: u64, max_bins: u32) -> ChaosConfig {
        ChaosConfig {
            crashes,
            horizon,
            max_bins,
        }
    }
}

/// Draws a scripted crash schedule: `crashes` independent `(time, bin)`
/// pairs, time-sorted. Deterministic in `(config, seed)`.
pub fn chaos_schedule(config: &ChaosConfig, seed: u64) -> FailurePlan {
    assert!(config.horizon >= 1, "empty horizon");
    assert!(config.max_bins >= 1, "no bins to crash");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schedule: Vec<(Time, BinId)> = (0..config.crashes)
        .map(|_| {
            let t = Time(1 + rng.gen_range(0..config.horizon));
            let b = BinId(rng.gen_range(0..config.max_bins));
            (t, b)
        })
        .collect();
    schedule.sort();
    FailurePlan::scripted(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        let cfg = ChaosConfig::new(32, 1_000, 40);
        let a = chaos_schedule(&cfg, 7);
        let b = chaos_schedule(&cfg, 7);
        assert_eq!(a, b);
        let FailurePlan::Scripted(s) = a else {
            panic!("scripted plan expected");
        };
        assert_eq!(s.len(), 32);
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "time-sorted");
        assert!(s
            .iter()
            .all(|&(t, b)| t >= Time(1) && t <= Time(1_000) && b.0 < 40));
    }

    #[test]
    fn different_seeds_give_different_storms() {
        let cfg = ChaosConfig::new(16, 500, 20);
        assert_ne!(chaos_schedule(&cfg, 1), chaos_schedule(&cfg, 2));
    }

    #[test]
    fn storm_against_a_live_run_is_survivable() {
        use dbp_core::audit::InvariantAuditor;
        use dbp_core::engine::run_with_failures;
        use dbp_core::failure::RetryPolicy;

        let inst = crate::cloud::cloud_trace(&crate::cloud::CloudConfig::new(120, 600), 3);
        let plan = chaos_schedule(&ChaosConfig::new(25, 600, 30), 11);
        let mut auditor = InvariantAuditor::new();
        let res = run_with_failures(
            &inst,
            dbp_algos_test_ff::Ff,
            plan,
            RetryPolicy::Fixed(dbp_core::time::Dur(3)),
            &mut auditor,
        )
        .unwrap();
        auditor.verify_result(&res).unwrap();
        assert!(res.resilience.bin_failures > 0, "the storm lands hits");
    }

    /// Minimal in-crate First-Fit so the test avoids a dev-dependency
    /// cycle on `dbp-algos`.
    mod dbp_algos_test_ff {
        use dbp_core::algorithm::{OnlineAlgorithm, Placement, SimView};
        use dbp_core::item::Item;

        #[derive(Default)]
        pub struct Ff;
        impl OnlineAlgorithm for Ff {
            fn name(&self) -> &str {
                "ff-chaos-test"
            }
            fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
                view.first_fit(item.size)
                    .map(Placement::Existing)
                    .unwrap_or(Placement::OpenNew)
            }
            fn reset(&mut self) {}
        }
    }
}
