//! Synthetic cloud-gaming traces.
//!
//! The paper motivates clairvoyance with cloud gaming: "the users'
//! server-time requests can be accurately predicted upon their arrival"
//! (Li et al., TCSVT 2015). Real traces are proprietary, so we synthesise
//! sessions with the two properties every bound in the paper depends on —
//! a controlled duration spread `μ` and a controlled load level:
//!
//! * arrivals follow a day/night intensity pattern (sinusoidal Poisson
//!   thinning) — bursts exercise simultaneous-arrival packing;
//! * durations are a mixture of short matches and long sessions
//!   (bimodal, the worst regime for duration classification);
//! * sizes are discrete bandwidth tiers (1/8, 1/4, 1/2), like fixed
//!   streaming quality levels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// Parameters of the cloud-gaming trace synthesiser.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Number of sessions.
    pub sessions: usize,
    /// Horizon in ticks over which arrivals spread.
    pub horizon: u64,
    /// Mean duration of a short match, in ticks.
    pub match_len: u64,
    /// Mean duration of a long session, in ticks.
    pub session_len: u64,
    /// Probability a session is a long one (in percent, 0–100).
    pub long_pct: u32,
}

impl CloudConfig {
    /// Defaults: 30-tick matches, 480-tick marathons, 20% long.
    pub fn new(sessions: usize, horizon: u64) -> CloudConfig {
        CloudConfig {
            sessions,
            horizon,
            match_len: 30,
            session_len: 480,
            long_pct: 20,
        }
    }
}

/// Bandwidth tiers (fractions of a server).
const TIERS: [(u64, u64); 3] = [(1, 8), (1, 4), (1, 2)];

/// Synthesises a cloud-gaming trace.
pub fn cloud_trace(config: &CloudConfig, seed: u64) -> Instance {
    assert!(config.horizon >= 1, "empty horizon");
    assert!(config.long_pct <= 100, "percentage out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::with_capacity(config.sessions);
    for _ in 0..config.sessions {
        // Day/night thinning: accept arrival times with probability
        // following 0.25 + 0.75·sin²(πt/horizon) — denser mid-horizon.
        let t = loop {
            let cand = rng.gen_range(0..config.horizon);
            let phase = std::f64::consts::PI * cand as f64 / config.horizon as f64;
            let intensity = 0.25 + 0.75 * phase.sin().powi(2);
            if rng.gen_bool(intensity) {
                break cand;
            }
        };
        let long = rng.gen_range(0u32..100) < config.long_pct;
        let mean = if long {
            config.session_len
        } else {
            config.match_len
        };
        // Geometric around the mean, at least 1 tick.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let dur = ((-(mean as f64) * u.ln()).round() as u64).max(1);
        let (num, den) = TIERS[rng.gen_range(0..TIERS.len())];
        b.push(Time(t), Dur(dur), Size::from_ratio(num, den));
    }
    b.build().expect("trace items are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_bimodal_durations() {
        let cfg = CloudConfig::new(4000, 10_000);
        let inst = cloud_trace(&cfg, 5);
        let long = inst
            .items()
            .iter()
            .filter(|i| i.duration().ticks() > 200)
            .count();
        let short = inst
            .items()
            .iter()
            .filter(|i| i.duration().ticks() <= 60)
            .count();
        assert!(long > 200, "long sessions missing ({long})");
        assert!(short > 1500, "short matches missing ({short})");
    }

    #[test]
    fn sizes_are_tiered() {
        let inst = cloud_trace(&CloudConfig::new(500, 1000), 6);
        for it in inst.items() {
            let s = it.size;
            assert!(
                TIERS
                    .iter()
                    .any(|&(n, d)| s == Size::from_ratio(n, d).into()),
                "unexpected size {s}"
            );
        }
    }

    #[test]
    fn arrivals_respect_horizon_and_determinism() {
        let cfg = CloudConfig::new(300, 2000);
        let a = cloud_trace(&cfg, 11);
        assert!(a.items().iter().all(|i| i.arrival.ticks() < 2000));
        assert_eq!(a, cloud_trace(&cfg, 11));
    }

    #[test]
    fn clairvoyant_algorithms_run_cleanly_on_traces() {
        use dbp_core::engine;
        let inst = cloud_trace(&CloudConfig::new(1000, 5000), 7);
        let res = engine::run(&inst, dbp_algos::HybridAlgorithm::new()).unwrap();
        let audit = dbp_core::assignment::audit(&inst, &res.assignment).unwrap();
        assert_eq!(audit.cost, res.cost);
    }
}
