//! The ladder sequence σ*_t (paper, Definition 4.1).
//!
//! At time `t`, σ*_t releases one item of each length `1, 2, 4, …, 2^n`
//! sequentially, shortest first, all with the same load. The Theorem 4.3
//! adversary releases adaptive *prefixes* of these ladders (see
//! [`crate::adversary`]); this module builds whole ladders for direct
//! experimentation and the non-adaptive variants used in ablations.

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// One full ladder σ*_t at time `t` with lengths `2^0 … 2^n` and the given
/// per-item load, shortest first.
pub fn sigma_star(t: Time, n: u32, load: Size) -> Instance {
    let mut b = InstanceBuilder::with_capacity(n as usize + 1);
    push_ladder(&mut b, t, n, load);
    b.build().expect("ladder items are valid")
}

/// The *oblivious* (non-adaptive) ladder train: a full σ*_t at every
/// `t = 0 … rounds−1` with the paper's `1/√(log μ)`-style load (here
/// `1/⌈√n⌉`, exactly as the adaptive adversary uses). Against this fixed
/// input the online algorithm sees everything — the gap between its ratio
/// here and under the adaptive adversary isolates the value of adaptivity.
pub fn ladder_train(n: u32, rounds: u64) -> Instance {
    assert!((1..=40).contains(&n));
    let target = (n as f64).sqrt().ceil().max(1.0) as u64;
    let load = Size::from_ratio(1, target);
    let mut b = InstanceBuilder::with_capacity((rounds as usize) * (n as usize + 1));
    for t in 0..rounds {
        push_ladder(&mut b, Time(t), n, load);
    }
    b.build().expect("ladder items are valid")
}

fn push_ladder(b: &mut InstanceBuilder, t: Time, n: u32, load: Size) {
    for i in 0..=n {
        b.push(t, Dur(1u64 << i), load);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ladder_shape() {
        let inst = sigma_star(Time(5), 4, Size::from_ratio(1, 2));
        assert_eq!(inst.len(), 5);
        assert!(inst.items().iter().all(|it| it.arrival == Time(5)));
        // Shortest first at the shared arrival time.
        let durs: Vec<u64> = inst.items().iter().map(|i| i.duration().ticks()).collect();
        assert_eq!(durs, [1, 2, 4, 8, 16]);
        assert_eq!(inst.mu(), Some(16.0));
    }

    #[test]
    fn ladder_train_total_load_forces_bins() {
        let n = 9u32;
        let inst = ladder_train(n, 1);
        // One ladder carries (n+1)/⌈√n⌉ = 10/3 of load → ≥ 4 bins at t=0.
        let peak = inst.load_profile().peak();
        assert!(peak.ceil_bins() >= 4);
    }

    #[test]
    fn ladder_train_is_what_the_adversary_would_release_unabridged() {
        let inst = ladder_train(5, 8);
        assert_eq!(inst.len(), 8 * 6);
        assert_eq!(inst.mu(), Some(32.0));
    }
}
