//! Binary inputs σ_μ (paper, Definition 5.2).
//!
//! For `μ = 2^n`: for every `i ∈ {0, …, n}`, an item of duration `2^i`
//! arrives at each of the times `0·2^i, 1·2^i, …, (μ/2^i − 1)·2^i`. Binary
//! inputs are the *worst case* for CDFF among aligned inputs (the proof of
//! Theorem 5.1 charges every aligned input against σ_μ), and their analysis
//! is what connects the problem to runs of zeros in binary counters.
//!
//! Load convention: the paper assigns every item load `1/log μ`, but at any
//! moment exactly `log μ + 1` items are active (one per length — see
//! Lemma 5.5's bijection onto the bits of `1‖binary(t)`), so for the
//! intended packing (all concurrent items fit in one bin when
//! `binary(t) = 1…1`) the load must be at most `1/(log μ + 1)`. We default
//! to exactly that and expose the knob for experiments that want heavier
//! binary inputs.

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// Generates σ_μ for `μ = 2^n` with the default load `1/(n+1)`.
///
/// ```
/// use dbp_workloads::sigma_mu;
/// let inst = sigma_mu(3); // the paper's σ_8 (Figures 2–3)
/// assert_eq!(inst.len(), 15);
/// assert!(inst.is_aligned());
/// assert_eq!(inst.mu(), Some(8.0));
/// ```
///
/// # Panics
/// Panics if `n == 0` or `n > 40` (tick-grid guard).
pub fn sigma_mu(n: u32) -> Instance {
    sigma_mu_with_load(n, Size::from_ratio(1, n as u64 + 1))
}

/// Generates σ_μ for `μ = 2^n` with a custom per-item load.
pub fn sigma_mu_with_load(n: u32, load: Size) -> Instance {
    assert!(n >= 1, "μ must be at least 2");
    assert!(n <= 40, "μ = 2^{n} exceeds the supported tick range");
    let mu = 1u64 << n;
    // At every time t, the arriving items are lengths 2^0..2^{k} where k is
    // the number of trailing zeros of t (all lengths at t = 0). Arrival
    // order at a moment: longest first (matches the paper's figures; the
    // row structure is insensitive to this order since every arriving class
    // lands in a distinct row).
    let mut b = InstanceBuilder::with_capacity(2 * mu as usize);
    for t in 0..mu {
        let k = if t == 0 { n } else { t.trailing_zeros().min(n) };
        for i in (0..=k).rev() {
            b.push(Time(t), Dur(1u64 << i), load);
        }
    }
    b.build().expect("σ_μ is always valid")
}

/// Number of items in σ_μ without generating it: `Σ_{i=0}^{n} μ/2^i = 2μ−1`.
pub fn sigma_mu_len(n: u32) -> u64 {
    let mu = 1u64 << n;
    2 * mu - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_8_shape() {
        let inst = sigma_mu(3);
        // 8 + 4 + 2 + 1 = 15 items.
        assert_eq!(inst.len(), 15);
        assert_eq!(inst.len() as u64, sigma_mu_len(3));
        assert_eq!(inst.mu(), Some(8.0));
        assert!(inst.is_aligned());
        // Span is exactly μ (item of length μ at time 0; everything within).
        assert_eq!(inst.span_dur(), Dur(8));
    }

    #[test]
    fn arrivals_per_moment_match_observation_3() {
        // Observation 3: #arrivals at t = 1 + (trailing zeros of binary(t)),
        // over the n-bit counter (t=0 ⇒ all n bits zero ⇒ n+1 arrivals).
        let n = 5u32;
        let inst = sigma_mu(n);
        let mut counts = vec![0u32; 1 << n];
        for it in inst.items() {
            counts[it.arrival.ticks() as usize] += 1;
        }
        for (t, &c) in counts.iter().enumerate() {
            let expected = if t == 0 {
                n + 1
            } else {
                (t as u64).trailing_zeros() + 1
            };
            assert_eq!(c, expected, "arrivals at t={t}");
        }
    }

    #[test]
    fn one_item_of_every_length_active_at_every_moment() {
        // Lemma 5.5's bijection needs: at each t, for each i ≤ n, exactly
        // one length-2^i item is active.
        let n = 4u32;
        let inst = sigma_mu(n);
        for t in 0..(1u64 << n) {
            for i in 0..=n {
                let active = inst
                    .items()
                    .iter()
                    .filter(|it| it.duration() == Dur(1 << i) && it.active_at(Time(t)))
                    .count();
                assert_eq!(active, 1, "t={t}, length 2^{i}");
            }
        }
    }

    #[test]
    fn total_load_fits_one_bin_at_full_counter() {
        let n = 4u32;
        let inst = sigma_mu(n);
        let profile = inst.load_profile();
        // At t = μ−1 all n+1 active items must fit one bin.
        let l = profile.load_at(Time((1 << n) - 1));
        assert!(l.raw() <= dbp_core::size::SIZE_SCALE);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_mu_one() {
        sigma_mu(0);
    }

    #[test]
    fn custom_load_respected() {
        let inst = sigma_mu_with_load(2, Size::from_ratio(1, 2));
        assert!(inst
            .items()
            .iter()
            .all(|it| it.size == Size::from_ratio(1, 2).into()));
    }
}
