//! The adaptive lower-bound adversary (paper, Theorem 4.3).
//!
//! For each round `t = 0, 1, …, μ−1` the adversary releases a prefix of
//! `σ*_t` — one item of each length `1, 2, 4, …, 2^{log μ}`, shortest
//! first, every item of load `1/√(log μ)` — and stops the round as soon as
//! the online algorithm has `√(log μ)` bins open. Because the total load of
//! a full ladder is `(log μ + 1)/√(log μ) > √(log μ)`, the algorithm is
//! always forced to the target within one ladder.
//!
//! The construction is *adaptive*: what is released depends on the
//! algorithm's bin count after every single placement, which is exactly
//! what [`dbp_core::engine::InteractiveSim`] exposes. The paper shows the
//! resulting instance satisfies `OPT_R(σ) ≤ (8/√log μ)·ON(σ)`, hence every
//! deterministic online algorithm is `Ω(√log μ)`-competitive — our
//! experiments measure the realized ratio against the certified OPT
//! bracket for each algorithm in the suite.

use dbp_core::algorithm::OnlineAlgorithm;
use dbp_core::cost::Area;
use dbp_core::engine::{InteractiveSim, PackingResult};
use dbp_core::error::EngineError;
use dbp_core::instance::Instance;
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// Configuration of the Theorem 4.3 adversary.
#[derive(Debug, Clone)]
pub struct AdversaryConfig {
    /// `log μ`: ladders use lengths `2^0 … 2^n`.
    pub n: u32,
    /// Bin target per round; defaults to `⌈√n⌉` (the paper's `√log μ`).
    pub bin_target: Option<usize>,
    /// Number of rounds; defaults to `μ = 2^n` (the paper's horizon). Lower
    /// values keep experiment runtimes manageable at large `n` without
    /// changing the per-round forcing structure.
    pub rounds: Option<u64>,
}

impl AdversaryConfig {
    /// The paper's parameters for `μ = 2^n`.
    pub fn new(n: u32) -> AdversaryConfig {
        AdversaryConfig {
            n,
            bin_target: None,
            rounds: None,
        }
    }

    /// Caps the number of rounds.
    pub fn with_rounds(mut self, rounds: u64) -> AdversaryConfig {
        self.rounds = Some(rounds);
        self
    }

    fn target(&self) -> usize {
        self.bin_target
            .unwrap_or_else(|| (self.n as f64).sqrt().ceil().max(1.0) as usize)
    }
}

/// Everything the adversary produced and observed.
#[derive(Debug, Clone)]
pub struct AdversaryOutcome {
    /// The instance that was actually played (depends on the algorithm!).
    pub instance: Instance,
    /// The algorithm's measurements on it.
    pub result: PackingResult,
    /// Rounds in which the bin target was reached.
    pub rounds_forced: u64,
    /// Total items released.
    pub items_released: usize,
    /// The per-round released-prefix lengths (`l_{t_i}` in the proof).
    pub last_lengths: Vec<u64>,
}

impl AdversaryOutcome {
    /// The proof's Equation (2) quantity: `Σ_i l_{t_i} ≤ ON(σ)`.
    pub fn sum_last_lengths(&self) -> Area {
        let total: u64 = self.last_lengths.iter().sum();
        Area::from_bin_ticks(Dur(total))
    }
}

/// Runs the adversary against `algo`.
///
/// ```
/// use dbp_workloads::adversary::{run_adversary, AdversaryConfig};
/// use dbp_algos::FirstFit;
///
/// let out = run_adversary(FirstFit::new(), &AdversaryConfig::new(9)).unwrap();
/// // Every one of the 2^9 rounds reaches the √9 = 3 bin target:
/// assert_eq!(out.rounds_forced, 1 << 9);
/// assert!(out.result.max_open >= 3);
/// ```
///
/// # Panics
/// Panics if `config.n` is 0 or exceeds 40 (tick-grid guard).
pub fn run_adversary<A: OnlineAlgorithm>(
    algo: A,
    config: &AdversaryConfig,
) -> Result<AdversaryOutcome, EngineError> {
    assert!(config.n >= 1 && config.n <= 40, "n out of supported range");
    let n = config.n;
    let mu = 1u64 << n;
    let rounds = config.rounds.unwrap_or(mu).min(mu);
    let target = config.target();
    // Paper: load 1/√(log μ). Representable load: use 1/⌈√n⌉ which is at
    // most the paper's value, so ladders still overflow the target
    // (⌈√n⌉ bins need total load > ⌈√n⌉; a full ladder provides
    // (n+1)/⌈√n⌉ ≥ ⌈√n⌉ + 1 for n ≥ 1... see the forced test below).
    let load = Size::from_ratio(1, target as u64);

    let mut sim = InteractiveSim::new(algo);
    let mut rounds_forced = 0u64;
    let mut items_released = 0usize;
    let mut last_lengths = Vec::with_capacity(rounds as usize);

    for t in 0..rounds {
        sim.try_advance_to(Time(t))?;
        let mut last_len = 0u64;
        let mut forced = false;
        for i in 0..=n {
            if sim.open_count() >= target {
                forced = true;
                break;
            }
            let len = 1u64 << i;
            sim.arrive(Dur(len), load)?;
            items_released += 1;
            last_len = len;
        }
        // The ladder may end with the final item tipping the count.
        if sim.open_count() >= target {
            forced = true;
        }
        if forced {
            rounds_forced += 1;
        }
        if last_len > 0 {
            last_lengths.push(last_len);
        }
    }

    let (instance, result) = sim.finish();
    Ok(AdversaryOutcome {
        instance,
        result,
        rounds_forced,
        items_released,
        last_lengths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_algos::{Cdff, ClassifyByDuration, DepartureAwareFit, FirstFit, HybridAlgorithm};
    use dbp_core::bounds::OptBracket;

    #[test]
    fn ladder_always_forces_the_target() {
        // Against every algorithm in the suite, every round must reach the
        // bin target: total ladder load (n+1)/⌈√n⌉ exceeds ⌈√n⌉ bins.
        let cfg = AdversaryConfig::new(9).with_rounds(16);
        for algo in dbp_algos::full_suite() {
            let name = algo.name().to_string();
            let out = run_adversary(algo, &cfg).unwrap();
            assert_eq!(out.rounds_forced, 16, "{name} escaped the adversary");
        }
    }

    #[test]
    fn forced_bin_count_reaches_sqrt_log_mu() {
        let cfg = AdversaryConfig::new(16).with_rounds(8);
        let out = run_adversary(FirstFit::new(), &cfg).unwrap();
        assert!(out.result.max_open >= 4, "√16 = 4 bins must be forced");
    }

    #[test]
    fn adversary_instance_depends_on_algorithm() {
        let cfg = AdversaryConfig::new(9).with_rounds(32);
        let a = run_adversary(FirstFit::new(), &cfg).unwrap();
        let b = run_adversary(ClassifyByDuration::binary(), &cfg).unwrap();
        // Adaptive: the two instances differ (CBD splits by class and is
        // forced sooner).
        assert_ne!(a.instance.len(), b.instance.len());
    }

    #[test]
    fn ratio_grows_with_mu_for_hybrid() {
        // The measured lower-ratio (ON / upper-bracket) must grow with n.
        let mut ratios = Vec::new();
        for n in [4u32, 9, 16] {
            let cfg = AdversaryConfig::new(n).with_rounds(1u64 << n.min(9));
            let out = run_adversary(HybridAlgorithm::new(), &cfg).unwrap();
            let bracket = OptBracket::of(&out.instance);
            let (lo, _) = bracket.ratio_bracket(out.result.cost);
            ratios.push(lo);
        }
        assert!(
            ratios[2] > ratios[0] * 1.2,
            "adversary must hurt more at larger μ: {ratios:?}"
        );
    }

    #[test]
    fn sum_last_lengths_bounded_by_online_cost() {
        // Proof Equation (2): each round's last item forced a new bin, so
        // ON pays its full duration: Σ l_{t_i} ≤ ON(σ).
        let cfg = AdversaryConfig::new(9).with_rounds(64);
        for algo in [
            dbp_algos::by_name("first-fit").unwrap(),
            dbp_algos::by_name("hybrid").unwrap(),
            dbp_algos::by_name("cdff").unwrap(),
        ] {
            let name = algo.name().to_string();
            let out = run_adversary(algo, &cfg).unwrap();
            assert!(
                out.sum_last_lengths() <= out.result.cost,
                "{name}: Σ l_t = {} > ON = {}",
                out.sum_last_lengths(),
                out.result.cost
            );
        }
    }

    #[test]
    fn departure_aware_also_forced() {
        let cfg = AdversaryConfig::new(16).with_rounds(16);
        let out = run_adversary(DepartureAwareFit::new(), &cfg).unwrap();
        assert!(out.result.max_open >= 4);
    }

    #[test]
    fn cdff_also_forced() {
        let cfg = AdversaryConfig::new(16).with_rounds(16);
        let out = run_adversary(Cdff::new(), &cfg).unwrap();
        assert!(out.result.max_open >= 4);
    }

    #[test]
    fn custom_target_and_rounds() {
        let mut cfg = AdversaryConfig::new(6).with_rounds(4);
        cfg.bin_target = Some(2);
        let out = run_adversary(FirstFit::new(), &cfg).unwrap();
        assert_eq!(out.rounds_forced, 4);
        assert!(out.result.max_open >= 2);
    }
}
