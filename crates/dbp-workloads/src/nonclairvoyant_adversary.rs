//! The adaptive non-clairvoyant adversary (Li et al., SPAA 2014 — the μ
//! lower bound of Table 1's bottom row).
//!
//! Against a *non-clairvoyant* algorithm the adversary controls departure
//! times *after* seeing placements: it releases `k·k` tiny items (size
//! `1/k`) with undecided departures, watches which bins the algorithm
//! used — any algorithm must open ≥ k bins, the load forces it — then
//! keeps exactly **one survivor per bin** alive for `μ` ticks and departs
//! everything else at time 1. The victim pays ≥ k·μ (every bin it opened
//! is pinned by its survivor); the optimum packs the ≤ (#bins)/k·… —
//! concretely, all survivors of size `1/k` fit a handful of bins, so
//! OPT ≈ μ. With `k = μ` the forced ratio is `Θ(μ)`.
//!
//! This uses [`InteractiveSim::arrive_undated`] /
//! [`InteractiveSim::set_departure`] — placement first, departure second —
//! which is exactly the informational asymmetry the clairvoyant model
//! removes.

use std::collections::HashMap;

use dbp_core::algorithm::OnlineAlgorithm;
use dbp_core::bin_state::BinId;
use dbp_core::engine::{InteractiveSim, PackingResult};
use dbp_core::error::EngineError;
use dbp_core::instance::Instance;
use dbp_core::item::ItemId;
use dbp_core::size::Size;
use dbp_core::time::Time;

/// Outcome of the non-clairvoyant adversary.
#[derive(Debug, Clone)]
pub struct NcAdversaryOutcome {
    /// The instance realized by the adversary's departure choices.
    pub instance: Instance,
    /// The victim's measurements.
    pub result: PackingResult,
    /// Bins the victim used in phase 1 (each gets a survivor).
    pub bins_pinned: usize,
}

/// Runs the adversary: `k·k` items of size `1/k`; survivors live `mu`
/// ticks.
///
/// # Panics
/// Panics if `k < 2` or `mu < 2`.
pub fn run_nc_adversary<A: OnlineAlgorithm>(
    algo: A,
    k: u64,
    mu: u64,
) -> Result<NcAdversaryOutcome, EngineError> {
    assert!(k >= 2 && mu >= 2);
    let size = Size::from_ratio(1, k);
    let mut sim = InteractiveSim::new(algo);
    sim.try_advance_to(Time(0))?;

    // Phase 1: release k·k tiny undated items; remember bin membership.
    let mut per_bin: HashMap<BinId, Vec<ItemId>> = HashMap::new();
    for _ in 0..k * k {
        let (item, bin) = sim.arrive_undated(size)?;
        per_bin.entry(bin).or_default().push(item);
    }
    let bins_pinned = per_bin.len();

    // Phase 2: pin one survivor per bin until μ; everything else departs
    // at time 1.
    for items in per_bin.values() {
        let (&survivor, rest) = items.split_first().expect("non-empty bin group");
        sim.try_set_departure(survivor, Time(mu))?;
        for &short in rest {
            sim.try_set_departure(short, Time(1))?;
        }
    }

    let (instance, result) = sim.finish();
    Ok(NcAdversaryOutcome {
        instance,
        result,
        bins_pinned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_algos::{BestFit, FirstFit, Harmonic, NextFit, RandomFit, WorstFit};
    use dbp_core::bounds::OptBracket;

    #[test]
    fn every_nonclairvoyant_algorithm_is_pinned() {
        let k = 8u64;
        let mu = 64u64;
        for (name, out) in [
            ("ff", run_nc_adversary(FirstFit::new(), k, mu).unwrap()),
            ("bf", run_nc_adversary(BestFit::new(), k, mu).unwrap()),
            ("wf", run_nc_adversary(WorstFit::new(), k, mu).unwrap()),
            ("nf", run_nc_adversary(NextFit::new(), k, mu).unwrap()),
            (
                "harmonic",
                run_nc_adversary(Harmonic::new(4), k, mu).unwrap(),
            ),
            ("rf", run_nc_adversary(RandomFit::new(3), k, mu).unwrap()),
        ] {
            // Load k forces ≥ k bins; each gets pinned for μ.
            assert!(
                out.bins_pinned >= k as usize,
                "{name}: {} bins",
                out.bins_pinned
            );
            assert!(
                out.result.cost.as_bin_ticks() >= (k * mu) as f64,
                "{name}: cost {}",
                out.result.cost
            );
        }
    }

    #[test]
    fn forced_ratio_grows_linearly_in_mu() {
        let mut ratios = Vec::new();
        for e in [3u32, 4, 5] {
            let k = 1u64 << e;
            let out = run_nc_adversary(FirstFit::new(), k, k).unwrap();
            let bracket = OptBracket::of(&out.instance);
            let (lo, _) = bracket.ratio_bracket(out.result.cost);
            ratios.push(lo);
        }
        assert!(ratios[1] > ratios[0] * 1.5, "{ratios:?}");
        assert!(ratios[2] > ratios[1] * 1.5, "{ratios:?}");
    }

    #[test]
    fn realized_instance_is_auditable() {
        let out = run_nc_adversary(BestFit::new(), 6, 32).unwrap();
        let report = dbp_core::assignment::audit(&out.instance, &out.result.assignment).unwrap();
        assert_eq!(report.cost, out.result.cost);
        assert_eq!(out.instance.mu(), Some(32.0));
    }

    #[test]
    fn survivors_dominate_the_cost() {
        let out = run_nc_adversary(FirstFit::new(), 8, 128).unwrap();
        // Cost ≈ bins_pinned × μ, up to the 1-tick phase-1 overlap.
        let expected = (out.bins_pinned as u64 * 128) as f64;
        let cost = out.result.cost.as_bin_ticks();
        assert!(cost >= expected && cost <= expected + out.bins_pinned as f64);
    }
}
