//! The non-clairvoyant Ω(μ) pathology (Table 1, bottom row).
//!
//! In the non-clairvoyant setting no deterministic algorithm beats
//! `μ`-competitiveness (Li et al., SPAA 2014) and First-Fit achieves
//! `μ + 4` (Tang et al., IPDPS 2016). This module builds the classic fixed
//! input realizing the lower bound *against size-oblivious sequential
//! packers like First-Fit*: `k` groups of `k` items of size `1/k` arrive
//! back-to-back at time 0, so FF fills bins group by group; within each
//! group exactly the first item is long-lived (duration `μ`), the rest
//! depart after 1 tick. FF keeps all `k` bins open for `μ` ticks
//! (cost ≈ k·μ) while the optimum co-locates the `k` long survivors in one
//! bin (cost ≈ μ + k). With `k = μ` the ratio is `Θ(μ)`.
//!
//! A clairvoyant algorithm sees the durations and sidesteps the trap —
//! which is exactly the separation the experiments demonstrate.

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// Builds the FF pathology with `k` bins of `k` items each and long
/// duration `mu` ticks (`μ` of the instance equals `mu` since the short
/// items last 1 tick).
///
/// # Panics
/// Panics if `k < 2` or `mu < 2`.
pub fn ff_pathology(k: u64, mu: u64) -> Instance {
    assert!(k >= 2, "need at least two groups");
    assert!(mu >= 2, "long duration must exceed the short one");
    let size = Size::from_ratio(1, k);
    let mut b = InstanceBuilder::with_capacity((k * k) as usize);
    for _group in 0..k {
        b.push(Time(0), Dur(mu), size); // the survivor
        for _ in 1..k {
            b.push(Time(0), Dur(1), size); // fillers
        }
    }
    b.build().expect("pathology instance is valid")
}

/// The pathology with the canonical coupling `k = μ = 2^n`.
pub fn ff_pathology_pow2(n: u32) -> Instance {
    assert!(
        (1..=12).contains(&n),
        "instance has 4^n items; n out of range"
    );
    let mu = 1u64 << n;
    ff_pathology(mu, mu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_algos::offline::opt_nr_bracket;
    use dbp_algos::{FirstFit, HybridAlgorithm};
    use dbp_core::engine;

    #[test]
    fn shape_and_mu() {
        let inst = ff_pathology(4, 16);
        assert_eq!(inst.len(), 16);
        assert_eq!(inst.mu(), Some(16.0));
    }

    #[test]
    fn ff_pays_k_bins_for_mu_ticks() {
        let k = 8u64;
        let mu = 64u64;
        let inst = ff_pathology(k, mu);
        let res = engine::run(&inst, FirstFit::new()).unwrap();
        assert_eq!(res.bins_opened, k as usize);
        assert_eq!(res.cost.as_bin_ticks(), (k * mu) as f64);
    }

    #[test]
    fn ratio_scales_linearly_with_mu_for_ff() {
        let mut ratios = Vec::new();
        for n in [3u32, 4, 5] {
            let inst = ff_pathology_pow2(n);
            let res = engine::run(&inst, FirstFit::new()).unwrap();
            let bracket = opt_nr_bracket(&inst);
            let (lo, _) = bracket.ratio_bracket(res.cost);
            ratios.push(lo);
        }
        // Doubling μ should roughly double the certified ratio.
        assert!(ratios[1] > ratios[0] * 1.5, "{ratios:?}");
        assert!(ratios[2] > ratios[1] * 1.5, "{ratios:?}");
    }

    #[test]
    fn clairvoyant_hybrid_sidesteps_the_trap() {
        let inst = ff_pathology_pow2(5);
        let ff = engine::run(&inst, FirstFit::new()).unwrap();
        let ha = engine::run(&inst, HybridAlgorithm::new()).unwrap();
        assert!(
            ha.cost.as_bin_ticks() * 4.0 < ff.cost.as_bin_ticks(),
            "HA {} vs FF {}",
            ha.cost,
            ff.cost
        );
    }

    #[test]
    fn ff_upper_bound_mu_plus_4_holds_against_bracket() {
        // Tang et al.: FF ≤ (μ+4)·OPT. Against the bracket's upper side
        // (≥ OPT) the implied inequality FF/upper ≤ μ+4 must hold.
        for n in [2u32, 3, 4] {
            let inst = ff_pathology_pow2(n);
            let res = engine::run(&inst, FirstFit::new()).unwrap();
            let bracket = opt_nr_bracket(&inst);
            let (lo, _) = bracket.ratio_bracket(res.cost);
            let mu = (1u64 << n) as f64;
            assert!(lo <= mu + 4.0, "n={n}: ratio {lo} > μ+4");
        }
    }
}
