//! Random aligned-input generators (paper, Definition 2.1).
//!
//! An aligned input restricts items of duration class `i` (length in
//! `(2^{i-1}, 2^i]`) to arrive at multiples of `2^i`. The generator fills a
//! horizon of `μ = 2^n` ticks with random aligned items: class drawn from a
//! configurable distribution, arrival slot uniform among legal multiples,
//! sizes uniform in a configurable range. To exercise the exact aligned
//! semantics we draw durations as exact powers of two by default, with an
//! option for off-power lengths inside each class (still aligned).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// Parameters for [`random_aligned`].
#[derive(Debug, Clone)]
pub struct AlignedConfig {
    /// Horizon exponent: arrivals fall in `[0, 2^n)`.
    pub n: u32,
    /// Number of items to draw.
    pub items: usize,
    /// Size range `(min_num, max_num, den)`: sizes uniform in
    /// `{min_num/den, …, max_num/den}`.
    pub size_range: (u64, u64, u64),
    /// Whether to draw off-power durations within each class (lengths in
    /// `(2^{i-1}, 2^i]` rather than exactly `2^i`).
    pub off_power_durations: bool,
    /// Force one item of the maximal class at time 0 (the paper's
    /// normalised form; keeps μ exact and the segment structure trivial).
    pub anchor_at_origin: bool,
}

impl AlignedConfig {
    /// Reasonable defaults for a horizon of `2^n` ticks.
    pub fn new(n: u32, items: usize) -> AlignedConfig {
        AlignedConfig {
            n,
            items,
            size_range: (1, 40, 100),
            off_power_durations: false,
            anchor_at_origin: true,
        }
    }
}

/// Draws a random aligned instance.
pub fn random_aligned(config: &AlignedConfig, seed: u64) -> Instance {
    assert!(
        config.n >= 1 && config.n <= 40,
        "horizon exponent out of range"
    );
    assert!(config.size_range.0 >= 1, "zero sizes are invalid");
    assert!(
        config.size_range.0 <= config.size_range.1 && config.size_range.1 <= config.size_range.2,
        "invalid size range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.n;
    let mut b = InstanceBuilder::with_capacity(config.items + 1);

    if config.anchor_at_origin {
        let size = draw_size(&mut rng, config);
        b.push(Time(0), Dur(1u64 << n), size);
    }

    for _ in 0..config.items {
        // Class: uniform over 0..=n-1 for bulk items (class n reserved for
        // the anchor so every item fits the horizon).
        let i = rng.gen_range(0..n);
        let w = 1u64 << i;
        // Arrival: a multiple c·2^i with room for the item inside [0, 2^n).
        let slots = (1u64 << n) / w;
        let slot = rng.gen_range(0..slots);
        let arrival = slot * w;
        let dur = if config.off_power_durations && i > 0 {
            // Any length in (2^{i-1}, 2^i].
            rng.gen_range((w / 2 + 1)..=w)
        } else {
            w
        };
        b.push(Time(arrival), Dur(dur), draw_size(&mut rng, config));
    }
    b.build().expect("generated aligned items are valid")
}

fn draw_size(rng: &mut StdRng, config: &AlignedConfig) -> Size {
    let (lo, hi, den) = config.size_range;
    Size::from_ratio(rng.gen_range(lo..=hi), den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_inputs_are_aligned() {
        for seed in 0..10 {
            let inst = random_aligned(&AlignedConfig::new(8, 300), seed);
            assert!(inst.is_aligned(), "seed {seed} produced misaligned input");
            assert_eq!(inst.len(), 301);
        }
    }

    #[test]
    fn off_power_durations_stay_aligned() {
        let mut cfg = AlignedConfig::new(8, 300);
        cfg.off_power_durations = true;
        for seed in 0..10 {
            let inst = random_aligned(&cfg, seed);
            assert!(inst.is_aligned(), "seed {seed} misaligned");
        }
    }

    #[test]
    fn anchor_pins_mu() {
        let inst = random_aligned(&AlignedConfig::new(6, 100), 7);
        assert_eq!(inst.max_duration(), Dur(64));
        assert_eq!(inst.items()[0].arrival, Time(0));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = AlignedConfig::new(7, 50);
        let a = random_aligned(&cfg, 42);
        let b = random_aligned(&cfg, 42);
        assert_eq!(a, b);
        let c = random_aligned(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn everything_fits_horizon() {
        let inst = random_aligned(&AlignedConfig::new(7, 500), 3);
        let horizon = Time(1 << 7);
        assert!(inst.items().iter().all(|it| it.departure <= horizon));
    }

    #[test]
    #[should_panic(expected = "invalid size range")]
    fn size_range_validated() {
        let mut cfg = AlignedConfig::new(5, 1);
        cfg.size_range = (5, 3, 10);
        random_aligned(&cfg, 0);
    }
}
