//! Random general (unaligned) workloads.
//!
//! The benign counterpart of the adversarial constructions: Poisson-like
//! arrivals, configurable duration distributions (log-uniform across binary
//! classes, or discretised Pareto for heavy tails) and uniform sizes. These
//! are the workloads the paper's cloud motivation describes — on them all
//! reasonable algorithms are near-optimal, which the experiments report as
//! the contrast to the adversarial √log μ growth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// Duration distributions for [`random_general`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationDist {
    /// Log-uniform: class uniform in `[0, n]`, duration uniform within the
    /// class — every binary class equally represented, the regime where
    /// classify-by-duration pays its worst overhead.
    LogUniform {
        /// Maximal binary class.
        n: u32,
    },
    /// Discretised Pareto with shape `alpha`, clamped to `[1, 2^n]` ticks:
    /// heavy-tailed session lengths as observed in cloud traces.
    Pareto {
        /// Tail exponent (smaller = heavier tail), must be positive.
        alpha: f64,
        /// Maximal binary class for clamping.
        n: u32,
    },
    /// All durations equal (μ = 1 inputs; sanity regime).
    Fixed {
        /// The common duration in ticks.
        ticks: u64,
    },
}

/// Parameters for [`random_general`].
#[derive(Debug, Clone)]
pub struct GeneralConfig {
    /// Number of items.
    pub items: usize,
    /// Mean arrival gap in ticks (gaps are geometric, the discrete
    /// analogue of Poisson arrivals); 0 releases everything at t = 0.
    pub mean_gap: u64,
    /// Duration distribution.
    pub durations: DurationDist,
    /// Size range `(min_num, max_num, den)`.
    pub size_range: (u64, u64, u64),
}

impl GeneralConfig {
    /// A balanced default: log-uniform durations up to `2^n`, unit mean
    /// gap, sizes in `[0.01, 0.4]`.
    pub fn new(n: u32, items: usize) -> GeneralConfig {
        GeneralConfig {
            items,
            mean_gap: 1,
            durations: DurationDist::LogUniform { n },
            size_range: (1, 40, 100),
        }
    }
}

/// Draws a random general instance.
pub fn random_general(config: &GeneralConfig, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi, den) = config.size_range;
    assert!(lo >= 1 && lo <= hi && hi <= den, "invalid size range");
    let mut b = InstanceBuilder::with_capacity(config.items);
    let mut t = 0u64;
    for _ in 0..config.items {
        let dur = draw_duration(&mut rng, config.durations);
        let size = Size::from_ratio(rng.gen_range(lo..=hi), den);
        b.push(Time(t), Dur(dur), size);
        if config.mean_gap > 0 {
            // Geometric gap with mean `mean_gap` (p = 1/(mean_gap+1)).
            let p = 1.0 / (config.mean_gap as f64 + 1.0);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = (u.ln() / (1.0 - p).ln()).floor() as u64;
            t = t.saturating_add(gap);
        }
    }
    b.build().expect("generated items are valid")
}

fn draw_duration(rng: &mut StdRng, dist: DurationDist) -> u64 {
    match dist {
        DurationDist::LogUniform { n } => {
            let class = rng.gen_range(0..=n);
            if class == 0 {
                1
            } else {
                rng.gen_range(((1u64 << class) / 2 + 1)..=(1u64 << class))
            }
        }
        DurationDist::Pareto { alpha, n } => {
            assert!(alpha > 0.0, "alpha must be positive");
            let cap = 1u64 << n;
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let v = u.powf(-1.0 / alpha);
            (v.floor() as u64).clamp(1, cap)
        }
        DurationDist::Fixed { ticks } => ticks.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_uniform_spans_all_classes() {
        let cfg = GeneralConfig::new(8, 4000);
        let inst = random_general(&cfg, 1);
        let mut seen = [false; 9];
        for it in inst.items() {
            seen[it.class_index() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "classes missing: {seen:?}");
        assert!(inst.mu().unwrap() <= 256.0);
    }

    #[test]
    fn pareto_is_heavy_tailed_but_clamped() {
        let cfg = GeneralConfig {
            items: 2000,
            mean_gap: 2,
            durations: DurationDist::Pareto { alpha: 1.1, n: 10 },
            size_range: (1, 30, 100),
        };
        let inst = random_general(&cfg, 2);
        let max = inst.max_duration().ticks();
        assert!(max <= 1024);
        let ones = inst
            .items()
            .iter()
            .filter(|i| i.duration().ticks() == 1)
            .count();
        assert!(ones > inst.len() / 10, "Pareto mass should concentrate low");
    }

    #[test]
    fn fixed_duration_gives_mu_one() {
        let cfg = GeneralConfig {
            items: 100,
            mean_gap: 3,
            durations: DurationDist::Fixed { ticks: 7 },
            size_range: (1, 50, 100),
        };
        let inst = random_general(&cfg, 3);
        assert_eq!(inst.mu(), Some(1.0));
    }

    #[test]
    fn zero_gap_releases_everything_at_origin() {
        let mut cfg = GeneralConfig::new(4, 50);
        cfg.mean_gap = 0;
        let inst = random_general(&cfg, 4);
        assert!(inst.items().iter().all(|it| it.arrival == Time(0)));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneralConfig::new(6, 100);
        assert_eq!(random_general(&cfg, 9), random_general(&cfg, 9));
        assert_ne!(random_general(&cfg, 9), random_general(&cfg, 10));
    }
}
