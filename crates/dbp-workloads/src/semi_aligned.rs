//! Semi-aligned inputs: a relaxation family interpolating between the
//! paper's aligned inputs and general inputs.
//!
//! The paper's conclusion asks about "other interesting families of
//! inputs". We parameterise alignment by a *slack* `k`: items of duration
//! class `i` may arrive at multiples of `2^{max(0, i−k)}` instead of
//! `2^i`. Slack 0 recovers Definition 2.1 exactly; slack ≥ log μ is fully
//! general. The `semi-aligned` experiment measures how CDFF's
//! `O(log log μ)` behaviour degrades as the grid loosens — an original
//! mini-study beyond the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// Parameters for [`semi_aligned`].
#[derive(Debug, Clone)]
pub struct SemiAlignedConfig {
    /// Horizon exponent: all activity inside `[0, 2^n)`.
    pub n: u32,
    /// Alignment slack `k` (0 = aligned, ≥ n = general).
    pub slack: u32,
    /// Number of items.
    pub items: usize,
    /// Size range `(min_num, max_num, den)`.
    pub size_range: (u64, u64, u64),
}

impl SemiAlignedConfig {
    /// Defaults with the given slack.
    pub fn new(n: u32, slack: u32, items: usize) -> SemiAlignedConfig {
        SemiAlignedConfig {
            n,
            slack,
            items,
            size_range: (1, 40, 100),
        }
    }
}

/// Draws a semi-aligned instance: class-`i` items arrive at multiples of
/// `2^{max(0, i−slack)}`, always anchored by a class-`n` item at time 0.
pub fn semi_aligned(config: &SemiAlignedConfig, seed: u64) -> Instance {
    assert!(
        config.n >= 1 && config.n <= 40,
        "horizon exponent out of range"
    );
    let (lo, hi, den) = config.size_range;
    assert!(lo >= 1 && lo <= hi && hi <= den, "invalid size range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::with_capacity(config.items + 1);
    // Anchor so μ = 2^n exactly.
    b.push(
        Time(0),
        Dur(1u64 << config.n),
        Size::from_ratio(rng.gen_range(lo..=hi), den),
    );
    for _ in 0..config.items {
        let i = rng.gen_range(0..config.n);
        let dur = 1u64 << i;
        let grid = 1u64 << i.saturating_sub(config.slack);
        // Arrival on the relaxed grid, leaving room inside the horizon.
        let max_slot = ((1u64 << config.n) - dur) / grid;
        let arrival = rng.gen_range(0..=max_slot) * grid;
        b.push(
            Time(arrival),
            Dur(dur),
            Size::from_ratio(rng.gen_range(lo..=hi), den),
        );
    }
    b.build().expect("semi-aligned items are valid")
}

/// The maximum alignment slack actually present in an instance: the
/// largest `i − v(t)` over items, where `v(t)` is the 2-adic valuation of
/// the arrival (0 ⇒ the instance is aligned).
pub fn measured_slack(instance: &Instance) -> u32 {
    instance
        .items()
        .iter()
        .map(|it| {
            let i = it.class_index();
            let v = if it.arrival.ticks() == 0 {
                64
            } else {
                it.arrival.ticks().trailing_zeros()
            };
            i.saturating_sub(v)
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_zero_is_aligned() {
        for seed in 0..5 {
            let inst = semi_aligned(&SemiAlignedConfig::new(8, 0, 300), seed);
            assert!(inst.is_aligned(), "seed {seed}");
            assert_eq!(measured_slack(&inst), 0);
        }
    }

    #[test]
    fn slack_bounds_measured_slack() {
        for k in 1..=4u32 {
            let inst = semi_aligned(&SemiAlignedConfig::new(8, k, 600), 7);
            assert!(measured_slack(&inst) <= k);
        }
    }

    #[test]
    fn large_slack_breaks_alignment() {
        let inst = semi_aligned(&SemiAlignedConfig::new(8, 8, 600), 3);
        assert!(
            !inst.is_aligned(),
            "slack 8 should produce off-grid arrivals"
        );
    }

    #[test]
    fn anchor_pins_mu() {
        let inst = semi_aligned(&SemiAlignedConfig::new(7, 2, 100), 1);
        assert_eq!(inst.mu(), Some(128.0));
    }

    #[test]
    fn horizon_respected_and_deterministic() {
        let cfg = SemiAlignedConfig::new(7, 3, 400);
        let a = semi_aligned(&cfg, 9);
        assert!(a.items().iter().all(|it| it.departure.ticks() <= 1 << 7));
        assert_eq!(a, semi_aligned(&cfg, 9));
    }
}
