//! Instance (de)serialization: the CSV trace format shared by the
//! `dbp-gen` / `dbp-pack` tools and the `trace_replay` example.
//!
//! Format: one item per line, `arrival,duration,size_num,size_den`, all
//! non-negative integers with `duration ≥ 1` and `0 < size_num ≤
//! size_den`. Blank lines and `#` comments are ignored; a single leading
//! non-numeric header line is tolerated.

use std::fmt::Write as _;

use dbp_core::error::InstanceError;
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// A trace parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a CSV trace into an instance.
pub fn parse_trace(text: &str) -> Result<Instance, TraceParseError> {
    let mut b = InstanceBuilder::new();
    // Source line of each pushed row, in push order. `InstanceBuilder`
    // validates *before* its canonical sort, so a build error's item id is
    // exactly a push-order index into this table.
    let mut lines_of: Vec<usize> = Vec::new();
    let mut first_data_line = true;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        // Shape check uses digits-only so an all-digit row that merely
        // overflows u64 is still recognised as data (and reported as out of
        // range below), not mistaken for a header or "non-numeric".
        let numeric = cols
            .iter()
            .all(|c| !c.is_empty() && c.bytes().all(|b| b.is_ascii_digit()));
        if !numeric {
            // A header is only a header when it has the format's exact
            // column count: a malformed first data row must not silently
            // vanish.
            if first_data_line && cols.len() == 4 {
                first_data_line = false;
                continue;
            }
            return Err(TraceParseError {
                line: lineno,
                message: "non-numeric field".into(),
            });
        }
        first_data_line = false;
        if cols.len() != 4 {
            return Err(TraceParseError {
                line: lineno,
                message: format!("expected 4 columns, got {}", cols.len()),
            });
        }
        let mut v: Vec<u64> = Vec::with_capacity(4);
        for c in &cols {
            v.push(c.parse().map_err(|_| TraceParseError {
                line: lineno,
                message: format!("value `{c}` out of u64 range"),
            })?);
        }
        if v[1] == 0 {
            return Err(TraceParseError {
                line: lineno,
                message: "zero duration".into(),
            });
        }
        if v[2] == 0 || v[3] == 0 || v[2] > v[3] {
            return Err(TraceParseError {
                line: lineno,
                message: format!("size {}/{} out of (0,1]", v[2], v[3]),
            });
        }
        b.push(Time(v[0]), Dur(v[1]), Size::from_ratio(v[2], v[3]));
        lines_of.push(lineno);
    }
    b.build().map_err(|e| {
        let idx = match &e {
            InstanceError::EmptyInterval { id } | InstanceError::ZeroSize { id } => id.index(),
        };
        TraceParseError {
            line: lines_of.get(idx).copied().unwrap_or(0),
            message: e.to_string(),
        }
    })
}

/// Serialises an instance to the CSV trace format (sizes emitted as raw
/// fixed-point numerators over `2^32`, which round-trips exactly). The
/// CSV dialect is scalar-only: vector instances emit their dimension-0
/// component (use the JSONL trace codec for lossless vector carriage).
pub fn emit_trace(instance: &Instance) -> String {
    let mut out = String::from("# arrival,duration,size_num,size_den\n");
    for it in instance.items() {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            it.arrival.ticks(),
            it.duration().ticks(),
            it.size.primary().raw(),
            dbp_core::size::SIZE_SCALE,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly() {
        let inst = crate::random_general(&crate::GeneralConfig::new(6, 200), 5);
        let text = emit_trace(&inst);
        let back = parse_trace(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn tolerates_header_and_comments() {
        let text = "arrival,duration,num,den\n# comment\n\n0,5,1,2\n3,2,1,4\n";
        let inst = parse_trace(text).unwrap();
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn reports_line_numbers() {
        let text = "0,5,1,2\n0,0,1,2\n";
        let err = parse_trace(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("zero duration"));
    }

    #[test]
    fn rejects_bad_sizes_and_column_counts() {
        assert!(parse_trace("0,5,3,2\n")
            .unwrap_err()
            .message
            .contains("out of (0,1]"));
        assert!(parse_trace("0,5,0,2\n")
            .unwrap_err()
            .message
            .contains("out of (0,1]"));
        assert!(parse_trace("0,5,1\n")
            .unwrap_err()
            .message
            .contains("4 columns"));
    }

    #[test]
    fn malformed_first_row_is_not_swallowed_as_header() {
        // Three columns, non-numeric: before the fix this row vanished as a
        // "header" and the file parsed as empty.
        let err = parse_trace("0,5,x\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("non-numeric"));
        // A genuine 4-column header is still tolerated.
        assert_eq!(
            parse_trace("arrival,duration,num,den\n0,5,1,2\n")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn build_errors_carry_the_offending_line() {
        // 1/(2^32+1) rounds to a raw size of zero: the builder rejects it,
        // and the error must point at line 3 (the pushed row), not line 0.
        let text = "# comment\n0,5,1,2\n7,5,1,4294967297\n";
        let err = parse_trace(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("zero size"), "{}", err.message);
    }

    #[test]
    fn out_of_range_column_is_a_typed_error_not_a_panic() {
        // All-digit but wider than u64: the old digit pre-check classified
        // this as "non-numeric" (or silently ate it as a header when it was
        // the first 4-column row); the checked parse now reports the value
        // and the offending line.
        let err = parse_trace("0,5,1,2\n99999999999999999999999999,5,1,2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("out of u64 range"), "{}", err.message);
        // As the first row it must also not vanish as a header.
        let err = parse_trace("99999999999999999999999999,5,1,2\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("out of u64 range"), "{}", err.message);
    }

    #[test]
    fn rejects_mid_file_garbage() {
        let text = "0,5,1,2\nhello,world\n";
        let err = parse_trace(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("non-numeric"));
    }

    #[test]
    fn empty_input_is_empty_instance() {
        assert!(parse_trace("# nothing\n").unwrap().is_empty());
    }
}
