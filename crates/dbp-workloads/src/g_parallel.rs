//! Bounded-parallelism interval scheduling (Shalom et al., TCS 2014).
//!
//! The related problem the paper compares against: interval jobs arrive
//! online and are assigned to machines that each run at most `g` jobs
//! simultaneously, minimising total machine busy time. It is exactly
//! MinUsageTime DBP restricted to uniform sizes `1/g`, so this module is a
//! thin generator layer: any instance it produces can be fed to every
//! algorithm in the suite, and `g`-machine busy time equals our usage-time
//! cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

/// Parameters for [`g_parallel_random`].
#[derive(Debug, Clone)]
pub struct GParallelConfig {
    /// Machine parallelism bound (every job has size `1/g`).
    pub g: u64,
    /// Number of jobs.
    pub jobs: usize,
    /// Arrival window `[0, window)` in ticks.
    pub window: u64,
    /// Duration range `[min, max]` in ticks.
    pub duration_range: (u64, u64),
}

impl GParallelConfig {
    /// Defaults over a window of `window` ticks.
    pub fn new(g: u64, jobs: usize, window: u64) -> GParallelConfig {
        GParallelConfig {
            g,
            jobs,
            window,
            duration_range: (1, window.max(2) / 2),
        }
    }
}

/// Draws a uniform-size instance modelling `g`-bounded interval scheduling.
pub fn g_parallel_random(config: &GParallelConfig, seed: u64) -> Instance {
    assert!(config.g >= 1, "parallelism must be positive");
    let (dmin, dmax) = config.duration_range;
    assert!(dmin >= 1 && dmin <= dmax, "invalid duration range");
    let size = Size::from_ratio(1, config.g);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::with_capacity(config.jobs);
    for _ in 0..config.jobs {
        let t = rng.gen_range(0..config.window.max(1));
        let d = rng.gen_range(dmin..=dmax);
        b.push(Time(t), Dur(d), size);
    }
    b.build().expect("jobs are valid")
}

/// The worst-case instance from Shalom et al.'s lower bound intuition:
/// `g` "staircase" jobs per level with nested departure times, forcing
/// size-oblivious packers to keep machines open for stragglers.
pub fn g_parallel_staircase(g: u64, levels: u32) -> Instance {
    assert!(g >= 2 && levels >= 1);
    let size = Size::from_ratio(1, g);
    let mut b = InstanceBuilder::new();
    let base = 1u64 << levels;
    for level in 0..levels as u64 {
        // g jobs arrive at `level`, one of which survives to the horizon.
        b.push(Time(level), Dur(base * 2 - level), size);
        for _ in 1..g {
            b.push(Time(level), Dur(1), size);
        }
    }
    b.build().expect("staircase is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_algos::FirstFit;
    use dbp_core::engine;

    #[test]
    fn all_jobs_have_size_one_over_g() {
        let inst = g_parallel_random(&GParallelConfig::new(4, 200, 64), 1);
        assert!(inst
            .items()
            .iter()
            .all(|i| i.size == Size::from_ratio(1, 4).into()));
    }

    #[test]
    fn g_jobs_share_one_machine() {
        // g concurrent unit jobs must all fit one machine/bin.
        let g = 5u64;
        let mut b = InstanceBuilder::new();
        for _ in 0..g {
            b.push(Time(0), Dur(10), Size::from_ratio(1, g));
        }
        let inst = b.build().unwrap();
        let res = engine::run(&inst, FirstFit::new()).unwrap();
        assert_eq!(res.bins_opened, 1);
        // One more job overflows to a second machine.
        let mut b = InstanceBuilder::new();
        for _ in 0..=g {
            b.push(Time(0), Dur(10), Size::from_ratio(1, g));
        }
        let inst = b.build().unwrap();
        let res = engine::run(&inst, FirstFit::new()).unwrap();
        assert_eq!(res.bins_opened, 2);
    }

    #[test]
    fn staircase_packs_validly_within_bracket() {
        let inst = g_parallel_staircase(4, 4);
        let res = engine::run(&inst, FirstFit::new()).unwrap();
        let audit = dbp_core::assignment::audit(&inst, &res.assignment).unwrap();
        assert_eq!(audit.cost, res.cost);
        let bracket = dbp_core::bounds::OptBracket::of(&inst);
        let (_, hi) = bracket.ratio_bracket(res.cost);
        assert!(hi >= 1.0, "feasible cost below certified lower bound");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GParallelConfig::new(3, 100, 32);
        assert_eq!(g_parallel_random(&cfg, 2), g_parallel_random(&cfg, 2));
    }
}
