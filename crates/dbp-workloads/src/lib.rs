//! # dbp-workloads
//!
//! Workload generators and adversaries for the Clairvoyant MinUsageTime
//! DBP reproduction:
//!
//! * [`binary_input`] — σ_μ, the worst-case aligned input (Definition 5.2,
//!   Figures 2–3);
//! * [`aligned`] — random aligned inputs (Definition 2.1);
//! * [`adversary`] — the adaptive Ω(√log μ) adversary (Theorem 4.3),
//!   driving any [`dbp_core::OnlineAlgorithm`] interactively;
//! * [`nonclairvoyant_lb`] — the Ω(μ) First-Fit pathology (fixed input);
//! * [`nonclairvoyant_adversary`] — the Li et al. *adaptive* departure
//!   adversary forcing Ω(μ) on ANY non-clairvoyant algorithm (Table 1
//!   bottom row);
//! * [`mod@random_general`] — Poisson/log-uniform/Pareto benign workloads;
//! * [`cloud`] — synthetic cloud-gaming traces (the paper's motivating
//!   application; substitution for proprietary traces, see DESIGN.md);
//! * [`chaos`] — scripted server-crash storms for fault-injection runs
//!   (pairs with [`dbp_core::FailurePlan`] and the `resilience`
//!   experiment);
//! * [`g_parallel`] — bounded-parallelism interval scheduling (Shalom et
//!   al.), the uniform-size special case;
//! * [`vm`] — VM-shaped *vector* (multi-dimensional) workloads in three
//!   correlation regimes (correlated, anti-correlated, dominant-dimension
//!   skew), for the vector experiment.

#![warn(missing_docs)]

pub mod adversary;
pub mod aligned;
pub mod binary_input;
pub mod chaos;
pub mod cloud;
pub mod compose;
pub mod g_parallel;
pub mod nonclairvoyant_adversary;
pub mod nonclairvoyant_lb;
pub mod random_general;
pub mod semi_aligned;
pub mod sigma_star;
pub mod trace_io;
pub mod vm;

pub use adversary::{run_adversary, AdversaryConfig, AdversaryOutcome};
pub use aligned::{random_aligned, AlignedConfig};
pub use binary_input::{sigma_mu, sigma_mu_len, sigma_mu_with_load};
pub use chaos::{chaos_schedule, ChaosConfig};
pub use cloud::{cloud_trace, CloudConfig};
pub use compose::{concat, overlay, repeat, shift};
pub use g_parallel::{g_parallel_random, g_parallel_staircase, GParallelConfig};
pub use nonclairvoyant_adversary::{run_nc_adversary, NcAdversaryOutcome};
pub use nonclairvoyant_lb::{ff_pathology, ff_pathology_pow2};
pub use random_general::{random_general, DurationDist, GeneralConfig};
pub use semi_aligned::{measured_slack, semi_aligned, SemiAlignedConfig};
pub use sigma_star::{ladder_train, sigma_star};
pub use trace_io::{emit_trace, parse_trace, TraceParseError};
pub use vm::{vm_anti_correlated, vm_correlated, vm_skewed, VmConfig};
