//! VM-shaped vector (multi-dimensional) workloads.
//!
//! Virtual-machine packing is the canonical source of *vector* bin
//! packing instances: a VM asks for CPU **and** memory (and possibly a
//! third resource), and a server must fit the per-dimension sums
//! simultaneously. Three correlation regimes matter for algorithm
//! behaviour, and each gets a generator here:
//!
//! * [`vm_correlated`] — CPU and memory demands move together (a big VM
//!   is big in every dimension). Vector packing then behaves much like
//!   scalar packing on the max component, and scalar heuristics stay
//!   close to their scalar competitive envelopes.
//! * [`vm_anti_correlated`] — CPU-heavy VMs are memory-light and vice
//!   versa. Complementary shapes can share a bin (the per-dimension sums
//!   stay balanced), which is exactly where max-component scalarization
//!   over-opens bins and genuinely vector-aware placement wins.
//! * [`vm_skewed`] — one *dominant* dimension carries most of the demand
//!   (a CPU:mem skew ratio); the other dimensions are a small correlated
//!   fraction. This models the common fleet where one resource is the
//!   effective bottleneck.
//!
//! All three synthesise clairvoyant sessions the same way as
//! [`crate::cloud`] (day-flat Poisson-ish arrivals, geometric durations)
//! so the duration spread `μ` stays controlled, and all are fully
//! deterministic in `(config, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::size::{Size, SizeVec, MAX_DIMS};
use dbp_core::time::{Dur, Time};

/// Parameters shared by the VM-shaped vector generators.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Number of VM sessions.
    pub sessions: usize,
    /// Horizon in ticks over which arrivals spread.
    pub horizon: u64,
    /// Dimensions per size vector (1..=[`MAX_DIMS`]); 1 degenerates to a
    /// scalar workload.
    pub dims: usize,
    /// Mean session duration in ticks (geometric, ≥ 1).
    pub mean_duration: u64,
    /// Smallest per-dimension demand, as a fraction denominator: demands
    /// are drawn from `{1/den, …, cap_num/den}`.
    pub den: u64,
    /// Largest per-dimension demand numerator (≤ `den`).
    pub cap_num: u64,
}

impl VmConfig {
    /// Defaults: 2-D, 60-tick sessions, demands in `{1/16, …, 8/16}`.
    pub fn new(sessions: usize, horizon: u64) -> VmConfig {
        VmConfig {
            sessions,
            horizon,
            dims: 2,
            mean_duration: 60,
            den: 16,
            cap_num: 8,
        }
    }

    /// Sets the dimension count (1..=[`MAX_DIMS`]).
    pub fn dims(mut self, dims: usize) -> VmConfig {
        self.dims = dims;
        self
    }

    fn validate(&self) {
        assert!(self.horizon >= 1, "empty horizon");
        assert!(
            (1..=MAX_DIMS).contains(&self.dims),
            "dims must be 1..={MAX_DIMS}"
        );
        assert!(
            self.cap_num >= 1 && self.cap_num <= self.den,
            "demand range {}/{} is not within (0, 1]",
            self.cap_num,
            self.den
        );
    }

    fn arrival_and_duration(&self, rng: &mut StdRng) -> (Time, Dur) {
        let t = rng.gen_range(0..self.horizon);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let dur = ((-(self.mean_duration as f64) * u.ln()).round() as u64).max(1);
        (Time(t), Dur(dur))
    }

    fn demand(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(1..=self.cap_num)
    }
}

/// Builds a size vector from per-dimension numerators over `config.den`,
/// zero-padding the unused dimensions.
fn vec_of(nums: &[u64], den: u64) -> SizeVec {
    let sizes: Vec<Size> = nums.iter().map(|&n| Size::from_ratio(n, den)).collect();
    SizeVec::from_sizes(&sizes).expect("1..=MAX_DIMS nonzero components")
}

/// Correlated VM fleet: every dimension of a VM is the same draw, so
/// demand vectors lie on the diagonal (big VMs are big everywhere).
pub fn vm_correlated(config: &VmConfig, seed: u64) -> Instance {
    config.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::with_capacity(config.sessions);
    for _ in 0..config.sessions {
        let (t, dur) = config.arrival_and_duration(&mut rng);
        let base = config.demand(&mut rng);
        let nums = vec![base; config.dims];
        b.push(t, dur, vec_of(&nums, config.den));
    }
    b.build().expect("generated items are valid")
}

/// Anti-correlated VM fleet: each VM is heavy in one uniformly chosen
/// dimension and light (demand 1) in every other, so complementary
/// shapes pack together and max-component scalarization over-opens.
pub fn vm_anti_correlated(config: &VmConfig, seed: u64) -> Instance {
    config.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::with_capacity(config.sessions);
    for _ in 0..config.sessions {
        let (t, dur) = config.arrival_and_duration(&mut rng);
        let heavy_dim = rng.gen_range(0..config.dims);
        let heavy = config.demand(&mut rng);
        let nums: Vec<u64> = (0..config.dims)
            .map(|d| if d == heavy_dim { heavy } else { 1 })
            .collect();
        b.push(t, dur, vec_of(&nums, config.den));
    }
    b.build().expect("generated items are valid")
}

/// Dominant-dimension VM fleet with a CPU:mem style skew: dimension 0
/// carries a full draw; every other dimension is that draw divided by
/// `skew` (at least the minimum demand), so the fleet bottlenecks on
/// dimension 0 while the rest stay proportionally loaded.
pub fn vm_skewed(config: &VmConfig, skew: u64, seed: u64) -> Instance {
    config.validate();
    assert!(skew >= 1, "skew ratio must be ≥ 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::with_capacity(config.sessions);
    for _ in 0..config.sessions {
        let (t, dur) = config.arrival_and_duration(&mut rng);
        let dominant = config.demand(&mut rng);
        let nums: Vec<u64> = (0..config.dims)
            .map(|d| {
                if d == 0 {
                    dominant
                } else {
                    (dominant / skew).max(1)
                }
            })
            .collect();
        b.push(t, dur, vec_of(&nums, config.den));
    }
    b.build().expect("generated items are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_in_seed() {
        let cfg = VmConfig::new(300, 1000);
        for gen in [vm_correlated, vm_anti_correlated] {
            let a = gen(&cfg, 7);
            let b = gen(&cfg, 7);
            assert_eq!(a.items(), b.items());
            let c = gen(&cfg, 8);
            assert_ne!(a.items(), c.items(), "seed must matter");
        }
        assert_eq!(vm_skewed(&cfg, 4, 7).items(), vm_skewed(&cfg, 4, 7).items());
    }

    #[test]
    fn correlated_vectors_sit_on_the_diagonal() {
        let inst = vm_correlated(&VmConfig::new(200, 500).dims(3), 11);
        for it in inst.items() {
            let raws = it.size.raws();
            assert_eq!(raws[0], raws[1]);
            assert_eq!(raws[1], raws[2]);
        }
    }

    #[test]
    fn anti_correlated_vectors_have_one_heavy_dimension() {
        let inst = vm_anti_correlated(&VmConfig::new(400, 500).dims(2), 3);
        let min = Size::from_ratio(1, 16).raw();
        let mut saw_heavy_in = [false; 2];
        for it in inst.items() {
            let raws = it.size.raws();
            let heavies = (0..2).filter(|&d| raws[d] > min).count();
            assert!(heavies <= 1, "at most one heavy dimension: {raws:?}");
            for d in 0..2 {
                if raws[d] > min {
                    saw_heavy_in[d] = true;
                }
            }
        }
        assert!(saw_heavy_in[0] && saw_heavy_in[1], "both dimensions drawn");
    }

    #[test]
    fn skewed_fleet_bottlenecks_on_dimension_zero() {
        let inst = vm_skewed(&VmConfig::new(300, 500).dims(2), 4, 9);
        for it in inst.items() {
            let raws = it.size.raws();
            assert!(raws[0] >= raws[1], "dimension 0 dominates: {raws:?}");
            assert!(raws[1] >= 1, "secondary dimension stays nonzero");
        }
    }

    #[test]
    fn one_dimensional_config_degenerates_to_scalar() {
        let inst = vm_correlated(&VmConfig::new(100, 200).dims(1), 5);
        assert!(inst.items().iter().all(|it| it.size.is_scalar()));
    }
}
