//! Quiet exits when the consumer closes our stdout early.
//!
//! `dbp-gen … | head`, `dbp-trace record … | head -5`, and friends used
//! to die noisily: Rust ignores `SIGPIPE`, so writes to the closed pipe
//! return `ErrorKind::BrokenPipe`, `println!` turns that into a panic,
//! and the user sees a backtrace plus exit code 101 for what is a
//! perfectly normal way to sample a long output stream.
//!
//! Every CLI main calls [`install`] first. It wraps the panic hook so a
//! broken-pipe write panic becomes a silent `exit(0)` (the Unix
//! convention: the pipeline decided it had enough); any other panic goes
//! to the previous hook untouched. Paths that handle `io::Error`
//! explicitly (sink flushes, file copies to stdout) should consult
//! [`is_broken_pipe`] and exit 0 themselves rather than report failure.

use std::io;

/// Whether an I/O error chain is a broken pipe (direct, or wrapped by a
/// formatter/buffer layer that stored it as a custom payload or source).
///
/// `io::Error::source()` skips the custom payload itself (it forwards to
/// the *payload's* source), so a wrapped `io::Error` is only reachable
/// through `get_ref()` — check both.
pub fn is_broken_pipe(err: &io::Error) -> bool {
    fn walk(e: &(dyn std::error::Error + 'static)) -> bool {
        if let Some(io_err) = e.downcast_ref::<io::Error>() {
            if io_err.kind() == io::ErrorKind::BrokenPipe {
                return true;
            }
            if io_err.get_ref().is_some_and(|inner| walk(inner)) {
                return true;
            }
        }
        e.source().is_some_and(walk)
    }
    if err.kind() == io::ErrorKind::BrokenPipe {
        return true;
    }
    err.get_ref().is_some_and(|inner| walk(inner))
        || std::error::Error::source(err).is_some_and(walk)
}

/// Installs the broken-pipe panic hook (idempotent enough for a CLI:
/// call once at the top of `main`).
pub fn install() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        // `println!` panics with "failed printing to stdout: Broken pipe
        // (os error 32)"; `write_all(..).expect(..)` stringifies the
        // io::Error the same way.
        if msg.contains("Broken pipe") || msg.contains("BrokenPipe") {
            std::process::exit(0);
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_direct_and_wrapped_broken_pipes() {
        let direct = io::Error::from(io::ErrorKind::BrokenPipe);
        assert!(is_broken_pipe(&direct));
        let wrapped = io::Error::other(io::Error::from(io::ErrorKind::BrokenPipe));
        assert!(is_broken_pipe(&wrapped));
        let other = io::Error::from(io::ErrorKind::NotFound);
        assert!(!is_broken_pipe(&other));
    }
}
