//! Certified-bracket service: content-addressed OPT cache plus an anytime
//! refinement ladder.
//!
//! Experiments used to call free functions that recomputed a fresh bracket
//! for every (algorithm × instance) cell and fell off a hard size cliff
//! ([`FFD_TIGHTEN_LIMIT`]) above which adversary-scale instances got only
//! the analytic Lemma 3.1 sandwich. The [`BracketService`] replaces both
//! behaviours:
//!
//! * **Content-addressed cache** — brackets are keyed by
//!   [`dbp_core::InstanceDigest`] (order-independent over the item triples)
//!   and the goal (`OPT_R` / `OPT_NR`). An in-memory layer serves repeat
//!   lookups within a process; an optional JSONL spill re-serves them
//!   across processes. Every hit is bit-identical to the stored bracket.
//! * **Anytime refinement ladder** — analytic Lemma 3.1 → FFD-repack
//!   tightening → non-repacking portfolio → budgeted exact search, each
//!   rung intersected into the previous bracket (so the ladder is
//!   monotone) and driven by a [`RefineBudget`] instead of hard cutoffs.
//!   Which rung certified the final bracket is recorded for reports.
//!
//! **Concurrency.** The cache is lock-striped across [`SHARD_COUNT`]
//! shards keyed by digest bits, so parallel sweep workers asking for
//! *different* instances never contend on one mutex. Workers asking for
//! the *same* key are collapsed by **single-flight** compute: the first
//! requester installs an in-flight slot and runs the ladder once; later
//! requesters block on that slot and are served the leader's entry as a
//! warm-memory hit. For a fixed workload, `computed` therefore equals the
//! number of distinct `(digest, goal)` keys regardless of thread count or
//! interleaving — the counters are deterministic by construction, not by
//! racing luck. Spill appends go through a dedicated writer lock (never
//! any shard lock), so a slow disk cannot stall readers.
//!
//! The legacy free functions ([`opt_r`], [`opt_nr`], [`ratio_vs_opt_r`])
//! remain as thin wrappers over a process-global service so existing
//! callers keep working; CLIs configure the global with
//! `--bracket-effort` / `--bracket-cache`.

use std::collections::HashMap;
use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use dbp_algos::offline::{self, RefineBudget};
use dbp_core::bounds::{BracketRung, BracketSource, CertifiedBracket, OptBracket};
use dbp_core::cost::Area;
use dbp_core::instance::Instance;

use crate::sweep::parallel_map;

/// Up to this item count the FFD-repack rung runs to completion under
/// [`Effort::Cached`] (above it, the same rung runs under the node
/// budget — tightening a prefix instead of being skipped entirely).
pub const FFD_TIGHTEN_LIMIT: usize = 20_000;
/// Above this item count, skip the non-repacking portfolio rung.
pub const PORTFOLIO_LIMIT: usize = 50_000;
/// Up to this item count the exact non-repacking branch-and-bound rung is
/// attempted for `OPT_NR` (exponential in `|σ|`). The CP-propagated
/// search (incumbent seeding + interval lower bound + symmetry breaking)
/// certifies instances the naive enumeration this limit originally
/// guarded (12 items) could never finish.
pub const EXACT_NR_LIMIT: usize = 40;
/// Node cap for one exact-OPT_NR attempt: a worst-case 40-item instance
/// spends at most this much of the ladder budget before conceding, so the
/// exponential rung cannot starve everything after it.
pub const EXACT_NR_NODE_CAP: u64 = 4_000_000;
/// Deterministic node allowance for [`Effort::Cached`] refinement: enough
/// to collapse every experiment-scale instance with small concurrency and
/// to tighten a meaningful prefix of adversary-scale ones.
pub const CACHED_NODE_BUDGET: u64 = 40_000_000;
/// Lock stripes in the memory cache (a power of two; entries are dealt by
/// the low bits of the instance digest).
pub const SHARD_COUNT: usize = 16;

/// How hard the service works on a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Closed-form Lemma 3.1 bounds only; never consults the cache.
    Analytic,
    /// The default: deterministic ladder under [`CACHED_NODE_BUDGET`],
    /// with cache lookups and stores.
    Cached,
    /// Ladder under a wall-clock deadline (milliseconds) — latency is
    /// controlled, determinism is explicitly traded away.
    Budget(u64),
}

impl Effort {
    /// Parses `analytic`, `cached` or `budget=<ms>`.
    pub fn parse(s: &str) -> Option<Effort> {
        match s {
            "analytic" => Some(Effort::Analytic),
            "cached" => Some(Effort::Cached),
            _ => s
                .strip_prefix("budget=")
                .and_then(|ms| ms.parse::<u64>().ok())
                .map(Effort::Budget),
        }
    }
}

impl core::fmt::Display for Effort {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Effort::Analytic => f.write_str("analytic"),
            Effort::Cached => f.write_str("cached"),
            Effort::Budget(ms) => write!(f, "budget={ms}"),
        }
    }
}

/// Which optimum a bracket certifies (part of the cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Goal {
    /// The repacking optimum `OPT_R`.
    OptR,
    /// The non-repacking optimum `OPT_NR`.
    OptNr,
}

impl Goal {
    fn as_str(self) -> &'static str {
        match self {
            Goal::OptR => "opt_r",
            Goal::OptNr => "opt_nr",
        }
    }

    fn parse(s: &str) -> Option<Goal> {
        match s {
            "opt_r" => Some(Goal::OptR),
            "opt_nr" => Some(Goal::OptNr),
            _ => None,
        }
    }
}

/// Monotone hit/miss counters, readable at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Brackets computed cold (one per distinct cold key — single-flight
    /// collapses concurrent requests).
    pub computed: u64,
    /// Refinement ladders actually executed. Always equal to `computed`:
    /// the single-flight slot guarantees no duplicate ladder ever runs
    /// (the pre-shard cache could compute twice and discard one).
    pub ladder_runs: u64,
    /// Lookups served by the in-memory layer (including single-flight
    /// waiters served the leader's entry).
    pub mem_hits: u64,
    /// Lookups served by entries loaded from the JSONL spill.
    pub disk_hits: u64,
}

impl StatsSnapshot {
    /// Total warm lookups.
    pub fn warm(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Total lookups: `computed + mem_hits + disk_hits`. For a fixed
    /// workload this is invariant across thread counts, and `computed`
    /// alone equals the number of distinct cold keys.
    pub fn lookups(&self) -> u64 {
        self.computed + self.mem_hits + self.disk_hits
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            computed: self.computed - earlier.computed,
            ladder_runs: self.ladder_runs - earlier.ladder_runs,
            mem_hits: self.mem_hits - earlier.mem_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
        }
    }
}

type Key = (u128, Goal);

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    bracket: OptBracket,
    rung: BracketRung,
    from_disk: bool,
}

/// A per-key in-flight compute slot: the single-flight leader publishes
/// its entry here; waiters block on the condvar instead of burning a
/// duplicate ladder.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug, Clone, Copy)]
enum FlightState {
    Pending,
    Done(CacheEntry),
    /// The leader unwound without publishing (its ladder panicked);
    /// waiters retry the lookup and one of them becomes the new leader.
    Abandoned,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        })
    }

    fn complete(&self, entry: CacheEntry) {
        *recover(self.state.lock()) = FlightState::Done(entry);
        self.done.notify_all();
    }

    fn abandon(&self) {
        let mut state = recover(self.state.lock());
        if matches!(*state, FlightState::Pending) {
            *state = FlightState::Abandoned;
        }
        drop(state);
        self.done.notify_all();
    }

    fn wait(&self) -> Option<CacheEntry> {
        let mut state = recover(self.state.lock());
        loop {
            match *state {
                FlightState::Pending => state = recover(self.done.wait(state)),
                FlightState::Done(entry) => return Some(entry),
                FlightState::Abandoned => return None,
            }
        }
    }
}

/// Unwraps a lock result, recovering the guard from poisoning: every
/// cache mutation here is a single whole-value write, so a panicking
/// holder cannot leave a half-updated state behind.
fn recover<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(|p| p.into_inner())
}

#[derive(Debug)]
enum Slot {
    Ready(CacheEntry),
    InFlight(Arc<Flight>),
}

/// The JSONL spill: its writer lock is dedicated — disk appends never
/// hold (or wait on) any shard lock, so readers proceed during a slow
/// write. The `BufWriter` is flushed after every whole-line append so
/// concurrent processes warm-loading the file only ever see complete
/// lines.
#[derive(Debug)]
struct Spill {
    dir: PathBuf,
    writer: Mutex<Option<BufWriter<fs::File>>>,
}

impl Spill {
    fn append(&self, line: &str) {
        let mut guard = recover(self.writer.lock());
        if guard.is_none() {
            if fs::create_dir_all(&self.dir).is_err() {
                return; // spill is best-effort; the memory layer still works
            }
            match fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join("brackets.jsonl"))
            {
                Ok(f) => *guard = Some(BufWriter::new(f)),
                Err(_) => return,
            }
        }
        let w = guard.as_mut().expect("opened above");
        if w.write_all(line.as_bytes())
            .and_then(|()| w.flush())
            .is_err()
        {
            *guard = None; // drop a broken writer; retry opening next time
        }
    }
}

/// Removes a leader's in-flight slot if its ladder unwinds before
/// publishing, and flips the flight to `Abandoned` so waiters retry.
struct FlightGuard<'a> {
    svc: &'a BracketService,
    key: Key,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut map = recover(self.svc.shard(self.key).lock());
        if matches!(map.get(&self.key), Some(Slot::InFlight(f)) if Arc::ptr_eq(f, self.flight)) {
            map.remove(&self.key);
        }
        drop(map);
        self.flight.abandon();
    }
}

/// The certified-bracket service. See the module docs.
#[derive(Debug)]
pub struct BracketService {
    effort: Effort,
    shards: [Mutex<HashMap<Key, Slot>>; SHARD_COUNT],
    spill: Option<Spill>,
    computed: AtomicU64,
    ladder_runs: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
}

impl BracketService {
    /// A service with an in-memory cache only.
    pub fn new(effort: Effort) -> BracketService {
        BracketService {
            effort,
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            spill: None,
            computed: AtomicU64::new(0),
            ladder_runs: AtomicU64::new(0),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    /// A service whose cache additionally spills to (and warm-loads from)
    /// `dir/brackets.jsonl`. A missing or partially corrupt spill is not
    /// an error — unreadable lines are skipped.
    pub fn with_spill(effort: Effort, dir: impl Into<PathBuf>) -> BracketService {
        let dir = dir.into();
        let mut svc = BracketService::new(effort);
        let file = dir.join("brackets.jsonl");
        if let Ok(text) = fs::read_to_string(&file) {
            for line in text.lines() {
                if let Some((key, entry)) = parse_spill_line(line) {
                    let mut map = recover(svc.shard(key).lock());
                    match map.get_mut(&key) {
                        Some(Slot::Ready(e)) => {
                            // Later lines re-certify the same instance;
                            // keep the tightest of both.
                            e.bracket = e.bracket.intersect(entry.bracket);
                            e.rung = e.rung.max(entry.rung);
                        }
                        Some(Slot::InFlight(_)) => unreachable!("no computes during warm load"),
                        None => {
                            map.insert(key, Slot::Ready(entry));
                        }
                    }
                }
            }
        }
        svc.spill = Some(Spill {
            dir,
            writer: Mutex::new(None),
        });
        svc
    }

    /// The effort this service was configured with.
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            computed: self.computed.load(Ordering::Relaxed),
            ladder_runs: self.ladder_runs.load(Ordering::Relaxed),
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }

    /// Certified bracket on the repacking optimum.
    pub fn opt_r(&self, instance: &Instance) -> CertifiedBracket {
        self.certified(instance, Goal::OptR)
    }

    /// Certified bracket on the non-repacking optimum.
    pub fn opt_nr(&self, instance: &Instance) -> CertifiedBracket {
        self.certified(instance, Goal::OptNr)
    }

    /// The certified ratio interval `(at_least, at_most)` for an online
    /// cost against `OPT_R`.
    pub fn ratio_vs_opt_r(&self, instance: &Instance, cost: Area) -> (f64, f64) {
        self.opt_r(instance).ratio_bracket(cost)
    }

    fn shard(&self, key: Key) -> &Mutex<HashMap<Key, Slot>> {
        &self.shards[(key.0 as usize) & (SHARD_COUNT - 1)]
    }

    /// Counts and wraps a warm hit on a stored entry.
    fn warm_hit(&self, entry: CacheEntry) -> CertifiedBracket {
        let source = if entry.from_disk {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            BracketSource::WarmDisk
        } else {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            BracketSource::WarmMemory
        };
        CertifiedBracket {
            bracket: entry.bracket,
            rung: entry.rung,
            source,
        }
    }

    /// Looks up or computes the bracket for `(instance, goal)`.
    pub fn certified(&self, instance: &Instance, goal: Goal) -> CertifiedBracket {
        if self.effort == Effort::Analytic {
            self.computed.fetch_add(1, Ordering::Relaxed);
            self.ladder_runs.fetch_add(1, Ordering::Relaxed);
            return CertifiedBracket {
                bracket: OptBracket::of(instance),
                rung: BracketRung::Analytic,
                source: BracketSource::Computed,
            };
        }
        let key = (instance.digest().0, goal);
        loop {
            enum Claim {
                Hit(CertifiedBracket),
                Wait(Arc<Flight>),
                Lead(Arc<Flight>),
            }
            let claim = {
                let mut map = recover(self.shard(key).lock());
                match map.get(&key) {
                    Some(Slot::Ready(entry)) => Claim::Hit(self.warm_hit(*entry)),
                    Some(Slot::InFlight(flight)) => Claim::Wait(flight.clone()),
                    None => {
                        let flight = Flight::new();
                        map.insert(key, Slot::InFlight(flight.clone()));
                        Claim::Lead(flight)
                    }
                }
            };
            match claim {
                Claim::Hit(cb) => return cb,
                Claim::Wait(flight) => match flight.wait() {
                    // Single-flight: the waiter is served the leader's
                    // fresh entry as a warm-memory hit — the counter
                    // semantics the racy pre-shard cache only promised
                    // ("loser wins") are now structural.
                    Some(entry) => return self.warm_hit(entry),
                    None => continue, // leader unwound; retry (maybe lead)
                },
                Claim::Lead(flight) => {
                    let mut guard = FlightGuard {
                        svc: self,
                        key,
                        flight: &flight,
                        armed: true,
                    };
                    self.ladder_runs.fetch_add(1, Ordering::Relaxed);
                    let (bracket, rung) = compute_ladder(instance, goal, self.effort);
                    let entry = CacheEntry {
                        bracket,
                        rung,
                        from_disk: false,
                    };
                    *recover(self.shard(key).lock())
                        .get_mut(&key)
                        .expect("in-flight slot present") = Slot::Ready(entry);
                    flight.complete(entry);
                    guard.armed = false;
                    self.computed.fetch_add(1, Ordering::Relaxed);
                    self.append_spill(key, bracket, rung);
                    return CertifiedBracket {
                        bracket,
                        rung,
                        source: BracketSource::Computed,
                    };
                }
            }
        }
    }

    fn append_spill(&self, key: Key, bracket: OptBracket, rung: BracketRung) {
        if let Some(spill) = &self.spill {
            spill.append(&spill_line(key, bracket, rung));
        }
    }

    /// Test support: holds the spill writer lock for `hold`, simulating a
    /// slow disk. Lookups must keep being served meanwhile — the whole
    /// point of the dedicated spill lock.
    #[doc(hidden)]
    pub fn block_spill_for(&self, hold: Duration) {
        if let Some(spill) = &self.spill {
            let _guard = recover(spill.writer.lock());
            std::thread::sleep(hold);
        }
    }

    /// Spends `total_nodes` of extra exact-search refinement across a
    /// sweep's instances, loosest brackets first, in parallel. Returns how
    /// many brackets were strictly tightened. Cached entries are updated
    /// (and re-spilled) in place, so subsequent [`BracketService::opt_r`]
    /// calls see the refined brackets.
    pub fn refine_batch(&self, instances: &[&Instance], total_nodes: u64) -> usize {
        // Current looseness per instance (computing on demand warms the
        // cache, so the batch always starts from the ladder's result).
        // Non-finite looseness — a degenerate zero-lower bracket divides
        // by zero — is dropped the same way `Summary::of` drops
        // non-finite observations, instead of panicking the sort.
        let mut order: Vec<(usize, f64)> = instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (i, self.opt_r(inst).looseness()))
            .filter(|&(_, l)| l.is_finite())
            .collect();
        order.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("looseness is finite after the filter")
                .then(a.0.cmp(&b.0))
        });
        let loose: Vec<usize> = order
            .into_iter()
            .filter(|&(_, l)| l > 1.0 + 1e-9)
            .map(|(i, _)| i)
            .collect();
        if loose.is_empty() {
            return 0;
        }
        // Loosest-first allocation: equal shares, but when the pool is too
        // small for everyone only the loosest prefix gets a share.
        const MIN_SHARE: u64 = 1 << 20;
        let share = (total_nodes / loose.len() as u64).max(MIN_SHARE);
        let funded: Vec<usize> = loose
            .iter()
            .take((total_nodes / share).max(1) as usize)
            .copied()
            .collect();
        let refined: Vec<(usize, OptBracket, BracketRung)> = parallel_map(&funded, |&i| {
            let mut budget = RefineBudget::nodes(share);
            let (swept, stats) = offline::refine_opt_r(instances[i], true, &mut budget);
            let rung = if stats.exact_segments > 0 {
                BracketRung::Exact
            } else {
                BracketRung::FfdRepack
            };
            (i, swept, rung)
        });
        let mut tightened = 0usize;
        for (i, swept, rung) in refined {
            let key = (instances[i].digest().0, Goal::OptR);
            // Intersect under the key's shard lock only; the spill append
            // afterwards holds no shard lock at all.
            let update = {
                let mut map = recover(self.shard(key).lock());
                match map.get_mut(&key) {
                    Some(Slot::Ready(entry)) => {
                        let next = entry.bracket.intersect(swept);
                        if next != entry.bracket {
                            entry.bracket = next;
                            entry.rung = entry.rung.max(rung);
                            Some((entry.bracket, entry.rung))
                        } else {
                            None
                        }
                    }
                    _ => unreachable!("warmed above and never evicted"),
                }
            };
            if let Some((bracket, rung)) = update {
                tightened += 1;
                self.append_spill(key, bracket, rung);
            }
        }
        tightened
    }
}

/// Runs the refinement ladder cold. Returns the final bracket and the
/// deepest rung that strictly tightened it.
fn compute_ladder(instance: &Instance, goal: Goal, effort: Effort) -> (OptBracket, BracketRung) {
    let mut bracket = OptBracket::of(instance);
    let mut rung = BracketRung::Analytic;
    let mut budget = match effort {
        Effort::Analytic => return (bracket, rung),
        Effort::Cached => RefineBudget::nodes(CACHED_NODE_BUDGET),
        Effort::Budget(ms) => RefineBudget::unlimited().with_deadline(Duration::from_millis(ms)),
    };
    match goal {
        Goal::OptR => {
            // Small peak concurrency: OPT_R decomposes per-moment and the
            // branch-and-bound collapses the bracket outright (the legacy
            // fast path — kept unbudgeted so small instances stay exact).
            if instance.max_concurrency() <= offline::EXACT_OPT_R_CONCURRENCY {
                if let Some(x) = offline::exact_opt_r(instance, offline::EXACT_OPT_R_CONCURRENCY) {
                    return (OptBracket { lower: x, upper: x }, BracketRung::Exact);
                }
            }
            // Rung 2: FFD-repack sweep. Under Cached effort instances at
            // or below the legacy limit still get the full sweep (no
            // regression vs the old cliff); larger ones get a budgeted
            // prefix instead of nothing.
            let full_ffd = effort == Effort::Cached && instance.len() <= FFD_TIGHTEN_LIMIT;
            let (swept, _) = if full_ffd {
                offline::refine_opt_r(instance, false, &mut RefineBudget::unlimited())
            } else {
                offline::refine_opt_r(instance, false, &mut budget)
            };
            let next = bracket.intersect(swept);
            if next != bracket {
                rung = BracketRung::FfdRepack;
                bracket = next;
            }
            // Rung 3: any feasible non-repacking schedule also upper-
            // bounds OPT_R (it just never exercises the repacks).
            if !budget.exhausted() && instance.len() <= PORTFOLIO_LIMIT {
                if let Some(p) = offline::best_nonrepacking_budgeted(instance, &mut budget) {
                    let next = bracket.tighten_upper(p.cost);
                    if next != bracket {
                        rung = BracketRung::Portfolio;
                        bracket = next;
                    }
                }
            }
            // Rung 4: budgeted exact search per profile segment.
            if !budget.exhausted() {
                let (swept, stats) = offline::refine_opt_r(instance, true, &mut budget);
                let next = bracket.intersect(swept);
                if next != bracket {
                    bracket = next;
                    if stats.exact_segments > 0 {
                        rung = BracketRung::Exact;
                    } else {
                        rung = rung.max(BracketRung::FfdRepack);
                    }
                }
            }
        }
        Goal::OptNr => {
            // Rung 3 (FFD-repack certifies nothing for OPT_NR): the
            // non-repacking portfolio. Cached keeps the legacy unbudgeted
            // run below the limit.
            if instance.len() <= PORTFOLIO_LIMIT {
                let cost = if effort == Effort::Cached {
                    Some(offline::best_nonrepacking(instance).cost)
                } else {
                    offline::best_nonrepacking_budgeted(instance, &mut budget).map(|p| p.cost)
                };
                if let Some(cost) = cost {
                    let next = bracket.tighten_upper(cost);
                    if next != bracket {
                        rung = BracketRung::Portfolio;
                        bracket = next;
                    }
                }
            }
            // Rung 4: exact OPT_NR on small instances collapses both
            // sides. Runs under a capped child budget whose spend is
            // billed back, so one adversarial instance cannot drain the
            // whole allowance.
            if instance.len() <= EXACT_NR_LIMIT && !budget.exhausted() {
                let mut sub = budget.child(EXACT_NR_NODE_CAP);
                let exact = offline::exact_opt_nr_budgeted(instance, EXACT_NR_LIMIT, &mut sub);
                budget.absorb(&sub);
                if let Some(exact) = exact {
                    let point = OptBracket {
                        lower: exact.cost,
                        upper: exact.cost,
                    };
                    let next = bracket.intersect(point);
                    if next != bracket {
                        rung = BracketRung::Exact;
                        bracket = next;
                    }
                }
            }
        }
    }
    (bracket, rung)
}

fn spill_line(key: Key, bracket: OptBracket, rung: BracketRung) -> String {
    format!(
        "{{\"digest\":\"{:032x}\",\"goal\":\"{}\",\"lower\":\"{}\",\"upper\":\"{}\",\"rung\":\"{}\"}}\n",
        key.0,
        key.1.as_str(),
        bracket.lower.raw(),
        bracket.upper.raw(),
        rung.as_str()
    )
}

/// Extracts `"key":"value"` from our own single-line JSON (values are hex
/// digests, decimal integers or rung names — never escaped strings).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn parse_spill_line(line: &str) -> Option<(Key, CacheEntry)> {
    let digest = u128::from_str_radix(json_field(line, "digest")?, 16).ok()?;
    let goal = Goal::parse(json_field(line, "goal")?)?;
    let lower = Area::from_raw(json_field(line, "lower")?.parse().ok()?);
    let upper = Area::from_raw(json_field(line, "upper")?.parse().ok()?);
    let rung = BracketRung::parse(json_field(line, "rung")?)?;
    if lower > upper {
        return None; // corrupt: refuse rather than certify nonsense
    }
    Some((
        (digest, goal),
        CacheEntry {
            bracket: OptBracket { lower, upper },
            rung,
            from_disk: true,
        },
    ))
}

// ---------------------------------------------------------------------------
// Process-global service + legacy free-function API.

static GLOBAL: Mutex<Option<Arc<BracketService>>> = Mutex::new(None);

fn global_slot() -> MutexGuard<'static, Option<Arc<BracketService>>> {
    recover(GLOBAL.lock())
}

/// The process-global service (created at [`Effort::Cached`], memory-only,
/// on first use). CLIs replace it via [`configure`].
pub fn service() -> Arc<BracketService> {
    global_slot()
        .get_or_insert_with(|| Arc::new(BracketService::new(Effort::Cached)))
        .clone()
}

/// Replaces the process-global service (e.g. from CLI flags). Returns the
/// new service.
pub fn configure(effort: Effort, spill: Option<&Path>) -> Arc<BracketService> {
    let svc = Arc::new(match spill {
        Some(dir) => BracketService::with_spill(effort, dir),
        None => BracketService::new(effort),
    });
    *global_slot() = Some(svc.clone());
    svc
}

/// Bracket on the repacking optimum via the global service.
pub fn opt_r(instance: &Instance) -> OptBracket {
    service().opt_r(instance).bracket
}

/// Bracket on the repacking optimum, with provenance.
pub fn opt_r_certified(instance: &Instance) -> CertifiedBracket {
    service().opt_r(instance)
}

/// Bracket on the non-repacking optimum via the global service.
pub fn opt_nr(instance: &Instance) -> OptBracket {
    service().opt_nr(instance).bracket
}

/// Bracket on the non-repacking optimum, with provenance.
pub fn opt_nr_certified(instance: &Instance) -> CertifiedBracket {
    service().opt_nr(instance)
}

/// The certified ratio interval `(at_least, at_most)` for an online cost
/// against `OPT_R`, via the global service.
pub fn ratio_vs_opt_r(instance: &Instance, cost: Area) -> (f64, f64) {
    service().ratio_vs_opt_r(instance, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::size::Size;
    use dbp_core::time::{Dur, Time};

    fn small() -> Instance {
        Instance::from_triples([
            (Time(0), Dur(8), Size::from_ratio(1, 2)),
            (Time(0), Dur(8), Size::from_ratio(1, 2)),
            (Time(0), Dur(8), Size::from_ratio(1, 2)),
        ])
        .unwrap()
    }

    #[test]
    fn tightened_bracket_is_tighter() {
        let inst = small();
        let plain = OptBracket::of(&inst);
        let tight = opt_r(&inst);
        assert!(tight.upper <= plain.upper);
        assert!(tight.lower == plain.lower);
        assert!(tight.looseness() <= plain.looseness());
    }

    #[test]
    fn ratio_interval_ordered() {
        let inst = Instance::from_triples([(Time(0), Dur(4), Size::from_ratio(1, 2))]).unwrap();
        let cost = Area::from_bin_ticks(Dur(4));
        let (lo, hi) = ratio_vs_opt_r(&inst, cost);
        assert!(lo <= hi);
        assert!((lo - 1.0).abs() < 1e-9, "single item is served optimally");
    }

    #[test]
    fn second_lookup_is_a_warm_memory_hit() {
        let svc = BracketService::new(Effort::Cached);
        let inst = small();
        let cold = svc.opt_r(&inst);
        assert_eq!(cold.source, BracketSource::Computed);
        let warm = svc.opt_r(&inst);
        assert_eq!(warm.source, BracketSource::WarmMemory);
        assert_eq!(warm.bracket, cold.bracket);
        assert_eq!(warm.rung, cold.rung);
        let s = svc.stats();
        assert_eq!((s.computed, s.mem_hits, s.disk_hits), (1, 1, 0));
        assert_eq!(s.ladder_runs, s.computed);
        assert_eq!(s.lookups(), 2);
    }

    #[test]
    fn goals_are_cached_separately() {
        let svc = BracketService::new(Effort::Cached);
        let inst = small();
        let r = svc.opt_r(&inst);
        let nr = svc.opt_nr(&inst);
        assert_eq!(r.source, BracketSource::Computed);
        assert_eq!(nr.source, BracketSource::Computed);
        // OPT_R ≤ OPT_NR: the NR upper can never undercut the R lower.
        assert!(r.bracket.lower <= nr.bracket.upper);
    }

    #[test]
    fn analytic_effort_skips_cache_and_ladder() {
        let svc = BracketService::new(Effort::Analytic);
        let inst = small();
        let a = svc.opt_r(&inst);
        let b = svc.opt_r(&inst);
        assert_eq!(a.rung, BracketRung::Analytic);
        assert_eq!(a.source, BracketSource::Computed);
        assert_eq!(b.source, BracketSource::Computed, "no cache at analytic");
        assert_eq!(a.bracket, OptBracket::of(&inst));
    }

    #[test]
    fn cached_never_looser_than_analytic() {
        let svc = BracketService::new(Effort::Cached);
        for seed in 0..4u64 {
            let inst =
                dbp_workloads::random_general(&dbp_workloads::GeneralConfig::new(6, 150), seed);
            let analytic = OptBracket::of(&inst);
            let cached = svc.opt_r(&inst);
            assert!(cached.bracket.lower >= analytic.lower);
            assert!(cached.bracket.upper <= analytic.upper);
            assert!(cached.rung >= BracketRung::Analytic);
        }
    }

    #[test]
    fn effort_parses_and_displays() {
        assert_eq!(Effort::parse("analytic"), Some(Effort::Analytic));
        assert_eq!(Effort::parse("cached"), Some(Effort::Cached));
        assert_eq!(Effort::parse("budget=250"), Some(Effort::Budget(250)));
        assert_eq!(Effort::parse("budget=x"), None);
        assert_eq!(Effort::parse("martian"), None);
        assert_eq!(Effort::Budget(250).to_string(), "budget=250");
    }

    #[test]
    fn spill_line_round_trips() {
        let key = (0xdeadbeef_u128, Goal::OptNr);
        let bracket = OptBracket {
            lower: Area::from_raw(12345678901234567890),
            upper: Area::from_raw(340282366920938463463374607431768211455),
        };
        let line = spill_line(key, bracket, BracketRung::Portfolio);
        let (k, e) = parse_spill_line(&line).expect("round trip");
        assert_eq!(k, key);
        assert_eq!(e.bracket, bracket);
        assert_eq!(e.rung, BracketRung::Portfolio);
        assert!(e.from_disk);
        // Corrupt lines are refused, not misparsed.
        assert!(parse_spill_line("{\"digest\":\"zz\"}").is_none());
        assert!(parse_spill_line("").is_none());
    }

    #[test]
    fn refine_batch_tightens_loose_brackets() {
        let inst = dbp_workloads::random_general(&dbp_workloads::GeneralConfig::new(8, 600), 3);
        let svc = BracketService::new(Effort::Cached);
        let before = svc.opt_r(&inst);
        let refs = [&inst];
        let tightened = svc.refine_batch(&refs, 1 << 24);
        let after = svc.opt_r(&inst);
        assert!(after.bracket.lower >= before.bracket.lower);
        assert!(after.bracket.upper <= before.bracket.upper);
        if tightened > 0 {
            assert!(after.looseness() < before.looseness());
            assert_eq!(after.source, BracketSource::WarmMemory);
        }
    }

    /// Regression for the `partial_cmp(..).expect("looseness is finite")`
    /// sort key: a degenerate zero-lower bracket (planted through the
    /// spill, as a corrupted-but-wellformed cache could) has infinite
    /// looseness; the batch must drop it like `Summary::of` drops
    /// non-finite observations — neither panicking the sort nor funding a
    /// corrupt entry as "loosest".
    #[test]
    fn refine_batch_skips_non_finite_looseness() {
        let dir = std::env::temp_dir().join(format!("dbp_nan_loose_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let inst = small();
        let degenerate = OptBracket {
            lower: Area::from_raw(0),
            upper: Area::from_raw(1 << 20),
        };
        let line = spill_line(
            (inst.digest().0, Goal::OptR),
            degenerate,
            BracketRung::Exact,
        );
        std::fs::write(dir.join("brackets.jsonl"), line).unwrap();

        let svc = BracketService::with_spill(Effort::Cached, &dir);
        let warmed = svc.opt_r(&inst);
        assert!(
            warmed.bracket.looseness().is_infinite(),
            "fixture must reproduce the non-finite looseness"
        );
        let tightened = svc.refine_batch(&[&inst], 1 << 22);
        assert_eq!(tightened, 0, "non-finite entries are skipped, not funded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Entries land on the shard selected by the digest's low bits, and
    /// distinct digests spread across stripes.
    #[test]
    fn shards_spread_by_digest_bits() {
        let svc = BracketService::new(Effort::Cached);
        for seed in 0..6u64 {
            let inst =
                dbp_workloads::random_general(&dbp_workloads::GeneralConfig::new(4, 20), seed);
            svc.opt_r(&inst);
        }
        let occupied = svc
            .shards
            .iter()
            .filter(|s| !recover(s.lock()).is_empty())
            .count();
        assert!(occupied >= 2, "6 digests all hashed to one stripe");
        let total: usize = svc.shards.iter().map(|s| recover(s.lock()).len()).sum();
        assert_eq!(total, 6);
    }
}
