//! Certified-bracket service: content-addressed OPT cache plus an anytime
//! refinement ladder.
//!
//! Experiments used to call free functions that recomputed a fresh bracket
//! for every (algorithm × instance) cell and fell off a hard size cliff
//! ([`FFD_TIGHTEN_LIMIT`]) above which adversary-scale instances got only
//! the analytic Lemma 3.1 sandwich. The [`BracketService`] replaces both
//! behaviours:
//!
//! * **Content-addressed cache** — brackets are keyed by
//!   [`dbp_core::InstanceDigest`] (order-independent over the item triples)
//!   and the goal (`OPT_R` / `OPT_NR`). An in-memory layer serves repeat
//!   lookups within a process; an optional JSONL spill re-serves them
//!   across processes. Every hit is bit-identical to the stored bracket.
//! * **Anytime refinement ladder** — analytic Lemma 3.1 → FFD-repack
//!   tightening → non-repacking portfolio → budgeted exact search, each
//!   rung intersected into the previous bracket (so the ladder is
//!   monotone) and driven by a [`RefineBudget`] instead of hard cutoffs.
//!   Which rung certified the final bracket is recorded for reports.
//!
//! The legacy free functions ([`opt_r`], [`opt_nr`], [`ratio_vs_opt_r`])
//! remain as thin wrappers over a process-global service so existing
//! callers keep working; CLIs configure the global with
//! `--bracket-effort` / `--bracket-cache`.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dbp_algos::offline::{self, RefineBudget};
use dbp_core::bounds::{BracketRung, BracketSource, CertifiedBracket, OptBracket};
use dbp_core::cost::Area;
use dbp_core::instance::Instance;

use crate::sweep::parallel_map;

/// Up to this item count the FFD-repack rung runs to completion under
/// [`Effort::Cached`] (above it, the same rung runs under the node
/// budget — tightening a prefix instead of being skipped entirely).
pub const FFD_TIGHTEN_LIMIT: usize = 20_000;
/// Above this item count, skip the non-repacking portfolio rung.
pub const PORTFOLIO_LIMIT: usize = 50_000;
/// Up to this item count the exact non-repacking branch-and-bound rung is
/// attempted for `OPT_NR` (exponential in `|σ|`).
pub const EXACT_NR_LIMIT: usize = 12;
/// Deterministic node allowance for [`Effort::Cached`] refinement: enough
/// to collapse every experiment-scale instance with small concurrency and
/// to tighten a meaningful prefix of adversary-scale ones.
pub const CACHED_NODE_BUDGET: u64 = 40_000_000;

/// How hard the service works on a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Closed-form Lemma 3.1 bounds only; never consults the cache.
    Analytic,
    /// The default: deterministic ladder under [`CACHED_NODE_BUDGET`],
    /// with cache lookups and stores.
    Cached,
    /// Ladder under a wall-clock deadline (milliseconds) — latency is
    /// controlled, determinism is explicitly traded away.
    Budget(u64),
}

impl Effort {
    /// Parses `analytic`, `cached` or `budget=<ms>`.
    pub fn parse(s: &str) -> Option<Effort> {
        match s {
            "analytic" => Some(Effort::Analytic),
            "cached" => Some(Effort::Cached),
            _ => s
                .strip_prefix("budget=")
                .and_then(|ms| ms.parse::<u64>().ok())
                .map(Effort::Budget),
        }
    }
}

impl core::fmt::Display for Effort {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Effort::Analytic => f.write_str("analytic"),
            Effort::Cached => f.write_str("cached"),
            Effort::Budget(ms) => write!(f, "budget={ms}"),
        }
    }
}

/// Which optimum a bracket certifies (part of the cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Goal {
    /// The repacking optimum `OPT_R`.
    OptR,
    /// The non-repacking optimum `OPT_NR`.
    OptNr,
}

impl Goal {
    fn as_str(self) -> &'static str {
        match self {
            Goal::OptR => "opt_r",
            Goal::OptNr => "opt_nr",
        }
    }

    fn parse(s: &str) -> Option<Goal> {
        match s {
            "opt_r" => Some(Goal::OptR),
            "opt_nr" => Some(Goal::OptNr),
            _ => None,
        }
    }
}

/// Monotone hit/miss counters, readable at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Brackets computed cold (ladder actually ran).
    pub computed: u64,
    /// Lookups served by the in-memory layer.
    pub mem_hits: u64,
    /// Lookups served by entries loaded from the JSONL spill.
    pub disk_hits: u64,
}

impl StatsSnapshot {
    /// Total warm lookups.
    pub fn warm(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            computed: self.computed - earlier.computed,
            mem_hits: self.mem_hits - earlier.mem_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    bracket: OptBracket,
    rung: BracketRung,
    from_disk: bool,
}

/// The certified-bracket service. See the module docs.
#[derive(Debug)]
pub struct BracketService {
    effort: Effort,
    memory: Mutex<HashMap<(u128, Goal), CacheEntry>>,
    spill: Option<PathBuf>,
    computed: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
}

impl BracketService {
    /// A service with an in-memory cache only.
    pub fn new(effort: Effort) -> BracketService {
        BracketService {
            effort,
            memory: Mutex::new(HashMap::new()),
            spill: None,
            computed: AtomicU64::new(0),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    /// A service whose cache additionally spills to (and warm-loads from)
    /// `dir/brackets.jsonl`. A missing or partially corrupt spill is not
    /// an error — unreadable lines are skipped.
    pub fn with_spill(effort: Effort, dir: impl Into<PathBuf>) -> BracketService {
        let dir = dir.into();
        let mut svc = BracketService::new(effort);
        let file = dir.join("brackets.jsonl");
        if let Ok(text) = fs::read_to_string(&file) {
            let mut map = svc.memory.lock().expect("bracket cache poisoned");
            for line in text.lines() {
                if let Some((key, entry)) = parse_spill_line(line) {
                    map.entry(key)
                        .and_modify(|e| {
                            // Later lines re-certify the same instance;
                            // keep the tightest of both.
                            e.bracket = e.bracket.intersect(entry.bracket);
                            e.rung = e.rung.max(entry.rung);
                        })
                        .or_insert(entry);
                }
            }
        }
        svc.spill = Some(dir);
        svc
    }

    /// The effort this service was configured with.
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            computed: self.computed.load(Ordering::Relaxed),
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }

    /// Certified bracket on the repacking optimum.
    pub fn opt_r(&self, instance: &Instance) -> CertifiedBracket {
        self.certified(instance, Goal::OptR)
    }

    /// Certified bracket on the non-repacking optimum.
    pub fn opt_nr(&self, instance: &Instance) -> CertifiedBracket {
        self.certified(instance, Goal::OptNr)
    }

    /// The certified ratio interval `(at_least, at_most)` for an online
    /// cost against `OPT_R`.
    pub fn ratio_vs_opt_r(&self, instance: &Instance, cost: Area) -> (f64, f64) {
        self.opt_r(instance).ratio_bracket(cost)
    }

    /// Looks up or computes the bracket for `(instance, goal)`.
    pub fn certified(&self, instance: &Instance, goal: Goal) -> CertifiedBracket {
        if self.effort == Effort::Analytic {
            self.computed.fetch_add(1, Ordering::Relaxed);
            return CertifiedBracket {
                bracket: OptBracket::of(instance),
                rung: BracketRung::Analytic,
                source: BracketSource::Computed,
            };
        }
        let key = (instance.digest().0, goal);
        if let Some(hit) = self.lookup(key) {
            return hit;
        }
        let (bracket, rung) = compute_ladder(instance, goal, self.effort);
        self.store(key, bracket, rung)
    }

    fn lookup(&self, key: (u128, Goal)) -> Option<CertifiedBracket> {
        let map = self.memory.lock().expect("bracket cache poisoned");
        let entry = map.get(&key)?;
        let source = if entry.from_disk {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            BracketSource::WarmDisk
        } else {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            BracketSource::WarmMemory
        };
        Some(CertifiedBracket {
            bracket: entry.bracket,
            rung: entry.rung,
            source,
        })
    }

    /// Inserts a freshly computed bracket. If another thread raced us to
    /// the same key, its entry wins (both are certified; keeping one makes
    /// the hit counters deterministic for a fixed workload).
    fn store(&self, key: (u128, Goal), bracket: OptBracket, rung: BracketRung) -> CertifiedBracket {
        let mut map = self.memory.lock().expect("bracket cache poisoned");
        if let Some(entry) = map.get(&key) {
            let source = if entry.from_disk {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                BracketSource::WarmDisk
            } else {
                self.mem_hits.fetch_add(1, Ordering::Relaxed);
                BracketSource::WarmMemory
            };
            return CertifiedBracket {
                bracket: entry.bracket,
                rung: entry.rung,
                source,
            };
        }
        map.insert(
            key,
            CacheEntry {
                bracket,
                rung,
                from_disk: false,
            },
        );
        drop(map);
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.append_spill(key, bracket, rung);
        CertifiedBracket {
            bracket,
            rung,
            source: BracketSource::Computed,
        }
    }

    fn append_spill(&self, key: (u128, Goal), bracket: OptBracket, rung: BracketRung) {
        let Some(dir) = &self.spill else { return };
        if fs::create_dir_all(dir).is_err() {
            return; // spill is best-effort; the memory layer still works
        }
        let line = spill_line(key, bracket, rung);
        // Serialise appends through the cache lock so concurrent writers
        // cannot interleave partial lines.
        let _guard = self.memory.lock().expect("bracket cache poisoned");
        if let Ok(mut f) = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("brackets.jsonl"))
        {
            let _ = f.write_all(line.as_bytes());
        }
    }

    /// Spends `total_nodes` of extra exact-search refinement across a
    /// sweep's instances, loosest brackets first, in parallel. Returns how
    /// many brackets were strictly tightened. Cached entries are updated
    /// (and re-spilled) in place, so subsequent [`BracketService::opt_r`]
    /// calls see the refined brackets.
    pub fn refine_batch(&self, instances: &[&Instance], total_nodes: u64) -> usize {
        // Current looseness per instance (computing on demand warms the
        // cache, so the batch always starts from the ladder's result).
        let mut order: Vec<(usize, f64)> = instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (i, self.opt_r(inst).looseness()))
            .collect();
        order.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("looseness is finite")
                .then(a.0.cmp(&b.0))
        });
        let loose: Vec<usize> = order
            .into_iter()
            .filter(|&(_, l)| l > 1.0 + 1e-9)
            .map(|(i, _)| i)
            .collect();
        if loose.is_empty() {
            return 0;
        }
        // Loosest-first allocation: equal shares, but when the pool is too
        // small for everyone only the loosest prefix gets a share.
        const MIN_SHARE: u64 = 1 << 20;
        let share = (total_nodes / loose.len() as u64).max(MIN_SHARE);
        let funded: Vec<usize> = loose
            .iter()
            .take((total_nodes / share).max(1) as usize)
            .copied()
            .collect();
        let refined: Vec<(usize, OptBracket, BracketRung)> = parallel_map(&funded, |&i| {
            let mut budget = RefineBudget::nodes(share);
            let (swept, stats) = offline::refine_opt_r(instances[i], true, &mut budget);
            let rung = if stats.exact_segments > 0 {
                BracketRung::Exact
            } else {
                BracketRung::FfdRepack
            };
            (i, swept, rung)
        });
        let mut tightened = 0usize;
        for (i, swept, rung) in refined {
            let key = (instances[i].digest().0, Goal::OptR);
            let mut map = self.memory.lock().expect("bracket cache poisoned");
            let entry = map.get_mut(&key).expect("warmed above");
            let next = entry.bracket.intersect(swept);
            if next != entry.bracket {
                entry.bracket = next;
                entry.rung = entry.rung.max(rung);
                let (bracket, rung) = (entry.bracket, entry.rung);
                drop(map);
                tightened += 1;
                self.append_spill(key, bracket, rung);
            }
        }
        tightened
    }
}

/// Runs the refinement ladder cold. Returns the final bracket and the
/// deepest rung that strictly tightened it.
fn compute_ladder(instance: &Instance, goal: Goal, effort: Effort) -> (OptBracket, BracketRung) {
    let mut bracket = OptBracket::of(instance);
    let mut rung = BracketRung::Analytic;
    let mut budget = match effort {
        Effort::Analytic => return (bracket, rung),
        Effort::Cached => RefineBudget::nodes(CACHED_NODE_BUDGET),
        Effort::Budget(ms) => RefineBudget::unlimited().with_deadline(Duration::from_millis(ms)),
    };
    match goal {
        Goal::OptR => {
            // Small peak concurrency: OPT_R decomposes per-moment and the
            // branch-and-bound collapses the bracket outright (the legacy
            // fast path — kept unbudgeted so small instances stay exact).
            if instance.max_concurrency() <= offline::EXACT_OPT_R_CONCURRENCY {
                if let Some(x) = offline::exact_opt_r(instance, offline::EXACT_OPT_R_CONCURRENCY) {
                    return (OptBracket { lower: x, upper: x }, BracketRung::Exact);
                }
            }
            // Rung 2: FFD-repack sweep. Under Cached effort instances at
            // or below the legacy limit still get the full sweep (no
            // regression vs the old cliff); larger ones get a budgeted
            // prefix instead of nothing.
            let full_ffd = effort == Effort::Cached && instance.len() <= FFD_TIGHTEN_LIMIT;
            let (swept, _) = if full_ffd {
                offline::refine_opt_r(instance, false, &mut RefineBudget::unlimited())
            } else {
                offline::refine_opt_r(instance, false, &mut budget)
            };
            let next = bracket.intersect(swept);
            if next != bracket {
                rung = BracketRung::FfdRepack;
                bracket = next;
            }
            // Rung 3: any feasible non-repacking schedule also upper-
            // bounds OPT_R (it just never exercises the repacks).
            if !budget.exhausted() && instance.len() <= PORTFOLIO_LIMIT {
                if let Some(p) = offline::best_nonrepacking_budgeted(instance, &mut budget) {
                    let next = bracket.tighten_upper(p.cost);
                    if next != bracket {
                        rung = BracketRung::Portfolio;
                        bracket = next;
                    }
                }
            }
            // Rung 4: budgeted exact search per profile segment.
            if !budget.exhausted() {
                let (swept, stats) = offline::refine_opt_r(instance, true, &mut budget);
                let next = bracket.intersect(swept);
                if next != bracket {
                    bracket = next;
                    if stats.exact_segments > 0 {
                        rung = BracketRung::Exact;
                    } else {
                        rung = rung.max(BracketRung::FfdRepack);
                    }
                }
            }
        }
        Goal::OptNr => {
            // Rung 3 (FFD-repack certifies nothing for OPT_NR): the
            // non-repacking portfolio. Cached keeps the legacy unbudgeted
            // run below the limit.
            if instance.len() <= PORTFOLIO_LIMIT {
                let cost = if effort == Effort::Cached {
                    Some(offline::best_nonrepacking(instance).cost)
                } else {
                    offline::best_nonrepacking_budgeted(instance, &mut budget).map(|p| p.cost)
                };
                if let Some(cost) = cost {
                    let next = bracket.tighten_upper(cost);
                    if next != bracket {
                        rung = BracketRung::Portfolio;
                        bracket = next;
                    }
                }
            }
            // Rung 4: exact OPT_NR on tiny instances collapses both sides.
            if instance.len() <= EXACT_NR_LIMIT && !budget.exhausted() {
                if let Some(exact) =
                    offline::exact_opt_nr_budgeted(instance, EXACT_NR_LIMIT, &mut budget)
                {
                    let point = OptBracket {
                        lower: exact.cost,
                        upper: exact.cost,
                    };
                    let next = bracket.intersect(point);
                    if next != bracket {
                        rung = BracketRung::Exact;
                        bracket = next;
                    }
                }
            }
        }
    }
    (bracket, rung)
}

fn spill_line(key: (u128, Goal), bracket: OptBracket, rung: BracketRung) -> String {
    format!(
        "{{\"digest\":\"{:032x}\",\"goal\":\"{}\",\"lower\":\"{}\",\"upper\":\"{}\",\"rung\":\"{}\"}}\n",
        key.0,
        key.1.as_str(),
        bracket.lower.raw(),
        bracket.upper.raw(),
        rung.as_str()
    )
}

/// Extracts `"key":"value"` from our own single-line JSON (values are hex
/// digests, decimal integers or rung names — never escaped strings).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn parse_spill_line(line: &str) -> Option<((u128, Goal), CacheEntry)> {
    let digest = u128::from_str_radix(json_field(line, "digest")?, 16).ok()?;
    let goal = Goal::parse(json_field(line, "goal")?)?;
    let lower = Area::from_raw(json_field(line, "lower")?.parse().ok()?);
    let upper = Area::from_raw(json_field(line, "upper")?.parse().ok()?);
    let rung = BracketRung::parse(json_field(line, "rung")?)?;
    if lower > upper {
        return None; // corrupt: refuse rather than certify nonsense
    }
    Some((
        (digest, goal),
        CacheEntry {
            bracket: OptBracket { lower, upper },
            rung,
            from_disk: true,
        },
    ))
}

// ---------------------------------------------------------------------------
// Process-global service + legacy free-function API.

static GLOBAL: Mutex<Option<Arc<BracketService>>> = Mutex::new(None);

/// The process-global service (created at [`Effort::Cached`], memory-only,
/// on first use). CLIs replace it via [`configure`].
pub fn service() -> Arc<BracketService> {
    let mut slot = GLOBAL.lock().expect("bracket service poisoned");
    slot.get_or_insert_with(|| Arc::new(BracketService::new(Effort::Cached)))
        .clone()
}

/// Replaces the process-global service (e.g. from CLI flags). Returns the
/// new service.
pub fn configure(effort: Effort, spill: Option<&Path>) -> Arc<BracketService> {
    let svc = Arc::new(match spill {
        Some(dir) => BracketService::with_spill(effort, dir),
        None => BracketService::new(effort),
    });
    *GLOBAL.lock().expect("bracket service poisoned") = Some(svc.clone());
    svc
}

/// Bracket on the repacking optimum via the global service.
pub fn opt_r(instance: &Instance) -> OptBracket {
    service().opt_r(instance).bracket
}

/// Bracket on the repacking optimum, with provenance.
pub fn opt_r_certified(instance: &Instance) -> CertifiedBracket {
    service().opt_r(instance)
}

/// Bracket on the non-repacking optimum via the global service.
pub fn opt_nr(instance: &Instance) -> OptBracket {
    service().opt_nr(instance).bracket
}

/// Bracket on the non-repacking optimum, with provenance.
pub fn opt_nr_certified(instance: &Instance) -> CertifiedBracket {
    service().opt_nr(instance)
}

/// The certified ratio interval `(at_least, at_most)` for an online cost
/// against `OPT_R`, via the global service.
pub fn ratio_vs_opt_r(instance: &Instance, cost: Area) -> (f64, f64) {
    service().ratio_vs_opt_r(instance, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::size::Size;
    use dbp_core::time::{Dur, Time};

    fn small() -> Instance {
        Instance::from_triples([
            (Time(0), Dur(8), Size::from_ratio(1, 2)),
            (Time(0), Dur(8), Size::from_ratio(1, 2)),
            (Time(0), Dur(8), Size::from_ratio(1, 2)),
        ])
        .unwrap()
    }

    #[test]
    fn tightened_bracket_is_tighter() {
        let inst = small();
        let plain = OptBracket::of(&inst);
        let tight = opt_r(&inst);
        assert!(tight.upper <= plain.upper);
        assert!(tight.lower == plain.lower);
        assert!(tight.looseness() <= plain.looseness());
    }

    #[test]
    fn ratio_interval_ordered() {
        let inst = Instance::from_triples([(Time(0), Dur(4), Size::from_ratio(1, 2))]).unwrap();
        let cost = Area::from_bin_ticks(Dur(4));
        let (lo, hi) = ratio_vs_opt_r(&inst, cost);
        assert!(lo <= hi);
        assert!((lo - 1.0).abs() < 1e-9, "single item is served optimally");
    }

    #[test]
    fn second_lookup_is_a_warm_memory_hit() {
        let svc = BracketService::new(Effort::Cached);
        let inst = small();
        let cold = svc.opt_r(&inst);
        assert_eq!(cold.source, BracketSource::Computed);
        let warm = svc.opt_r(&inst);
        assert_eq!(warm.source, BracketSource::WarmMemory);
        assert_eq!(warm.bracket, cold.bracket);
        assert_eq!(warm.rung, cold.rung);
        let s = svc.stats();
        assert_eq!((s.computed, s.mem_hits, s.disk_hits), (1, 1, 0));
    }

    #[test]
    fn goals_are_cached_separately() {
        let svc = BracketService::new(Effort::Cached);
        let inst = small();
        let r = svc.opt_r(&inst);
        let nr = svc.opt_nr(&inst);
        assert_eq!(r.source, BracketSource::Computed);
        assert_eq!(nr.source, BracketSource::Computed);
        // OPT_R ≤ OPT_NR: the NR upper can never undercut the R lower.
        assert!(r.bracket.lower <= nr.bracket.upper);
    }

    #[test]
    fn analytic_effort_skips_cache_and_ladder() {
        let svc = BracketService::new(Effort::Analytic);
        let inst = small();
        let a = svc.opt_r(&inst);
        let b = svc.opt_r(&inst);
        assert_eq!(a.rung, BracketRung::Analytic);
        assert_eq!(a.source, BracketSource::Computed);
        assert_eq!(b.source, BracketSource::Computed, "no cache at analytic");
        assert_eq!(a.bracket, OptBracket::of(&inst));
    }

    #[test]
    fn cached_never_looser_than_analytic() {
        let svc = BracketService::new(Effort::Cached);
        for seed in 0..4u64 {
            let inst =
                dbp_workloads::random_general(&dbp_workloads::GeneralConfig::new(6, 150), seed);
            let analytic = OptBracket::of(&inst);
            let cached = svc.opt_r(&inst);
            assert!(cached.bracket.lower >= analytic.lower);
            assert!(cached.bracket.upper <= analytic.upper);
            assert!(cached.rung >= BracketRung::Analytic);
        }
    }

    #[test]
    fn effort_parses_and_displays() {
        assert_eq!(Effort::parse("analytic"), Some(Effort::Analytic));
        assert_eq!(Effort::parse("cached"), Some(Effort::Cached));
        assert_eq!(Effort::parse("budget=250"), Some(Effort::Budget(250)));
        assert_eq!(Effort::parse("budget=x"), None);
        assert_eq!(Effort::parse("martian"), None);
        assert_eq!(Effort::Budget(250).to_string(), "budget=250");
    }

    #[test]
    fn spill_line_round_trips() {
        let key = (0xdeadbeef_u128, Goal::OptNr);
        let bracket = OptBracket {
            lower: Area::from_raw(12345678901234567890),
            upper: Area::from_raw(340282366920938463463374607431768211455),
        };
        let line = spill_line(key, bracket, BracketRung::Portfolio);
        let (k, e) = parse_spill_line(&line).expect("round trip");
        assert_eq!(k, key);
        assert_eq!(e.bracket, bracket);
        assert_eq!(e.rung, BracketRung::Portfolio);
        assert!(e.from_disk);
        // Corrupt lines are refused, not misparsed.
        assert!(parse_spill_line("{\"digest\":\"zz\"}").is_none());
        assert!(parse_spill_line("").is_none());
    }

    #[test]
    fn refine_batch_tightens_loose_brackets() {
        let inst = dbp_workloads::random_general(&dbp_workloads::GeneralConfig::new(8, 600), 3);
        let svc = BracketService::new(Effort::Cached);
        let before = svc.opt_r(&inst);
        let refs = [&inst];
        let tightened = svc.refine_batch(&refs, 1 << 24);
        let after = svc.opt_r(&inst);
        assert!(after.bracket.lower >= before.bracket.lower);
        assert!(after.bracket.upper <= before.bracket.upper);
        if tightened > 0 {
            assert!(after.looseness() < before.looseness());
            assert_eq!(after.source, BracketSource::WarmMemory);
        }
    }
}
