//! Effort-aware OPT brackets for experiments.
//!
//! Small instances afford the tight comparators (FFD-repack, the
//! non-repacking portfolio, even exact search); adversary-scale instances
//! get the analytic Lemma 3.1 bracket, which is always within 2× of OPT_R.

use dbp_algos::offline;
use dbp_core::bounds::OptBracket;
use dbp_core::cost::Area;
use dbp_core::instance::Instance;

/// Above this item count, skip the O(E·n log n) FFD-repack tightening.
pub const FFD_TIGHTEN_LIMIT: usize = 20_000;
/// Above this item count, skip the full portfolio for OPT_NR.
pub const PORTFOLIO_LIMIT: usize = 50_000;

/// Bracket on the repacking optimum, tightened when affordable (exact
/// when peak concurrency permits — see [`offline::opt_r_bracket`]).
pub fn opt_r(instance: &Instance) -> OptBracket {
    if instance.len() <= FFD_TIGHTEN_LIMIT {
        offline::opt_r_bracket(instance)
    } else {
        OptBracket::of(instance)
    }
}

/// Bracket on the non-repacking optimum, tightened when affordable.
pub fn opt_nr(instance: &Instance) -> OptBracket {
    let base = OptBracket::of(instance);
    if instance.len() <= PORTFOLIO_LIMIT {
        base.tighten_upper(offline::best_nonrepacking(instance).cost)
    } else {
        base
    }
}

/// The certified ratio interval `(at_least, at_most)` for an online cost
/// against `OPT_R`.
pub fn ratio_vs_opt_r(instance: &Instance, cost: Area) -> (f64, f64) {
    opt_r(instance).ratio_bracket(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::size::Size;
    use dbp_core::time::{Dur, Time};

    #[test]
    fn tightened_bracket_is_tighter() {
        let inst = Instance::from_triples([
            (Time(0), Dur(8), Size::from_ratio(1, 2)),
            (Time(0), Dur(8), Size::from_ratio(1, 2)),
            (Time(0), Dur(8), Size::from_ratio(1, 2)),
        ])
        .unwrap();
        let plain = OptBracket::of(&inst);
        let tight = opt_r(&inst);
        assert!(tight.upper <= plain.upper);
        assert!(tight.lower == plain.lower);
        assert!(tight.looseness() <= plain.looseness());
    }

    #[test]
    fn ratio_interval_ordered() {
        let inst = Instance::from_triples([(Time(0), Dur(4), Size::from_ratio(1, 2))]).unwrap();
        let cost = Area::from_bin_ticks(Dur(4));
        let (lo, hi) = ratio_vs_opt_r(&inst, cost);
        assert!(lo <= hi);
        assert!((lo - 1.0).abs() < 1e-9, "single item is served optimally");
    }
}
