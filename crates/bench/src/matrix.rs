//! Batch evaluation matrices: algorithms × instances, in parallel, with
//! certified ratio brackets — the workhorse behind the comparison
//! experiments and a public API for downstream benchmarking.

use dbp_analysis::stats::geo_mean;
use dbp_analysis::table::{f3, Table};
use dbp_core::bounds::BracketRung;
use dbp_core::cost::Area;
use dbp_core::engine::{self, RunMetrics};
use dbp_core::instance::Instance;

use crate::bracket;
use crate::sweep::parallel_map_seeded;

/// One cell of an evaluation matrix.
#[derive(Debug, Clone)]
pub struct EvalCell {
    /// Algorithm registry name.
    pub algorithm: String,
    /// Instance label.
    pub instance: String,
    /// Measured cost.
    pub cost: Area,
    /// Certified ratio interval vs `OPT_R`.
    pub ratio: (f64, f64),
    /// Ladder rung that certified the instance's `OPT_R` bracket.
    pub rung: BracketRung,
    /// Bins opened.
    pub bins: usize,
    /// Engine execution counters for this run (placement paths, tree and
    /// heap work).
    pub metrics: RunMetrics,
}

/// The full matrix.
#[derive(Debug, Clone)]
pub struct EvalMatrix {
    /// All cells, instance-major then algorithm order.
    pub cells: Vec<EvalCell>,
}

/// Evaluates every registry algorithm named in `algorithms` over every
/// `(label, instance)` pair, in parallel.
///
/// # Panics
/// Panics if an algorithm name is not in the registry or makes an illegal
/// move (registry algorithms never do; this is a harness, not a fuzzer).
pub fn evaluate(algorithms: &[&str], instances: &[(String, Instance)]) -> EvalMatrix {
    for name in algorithms {
        assert!(
            dbp_algos::by_name(name).is_some(),
            "unknown algorithm '{name}'"
        );
    }
    // One bracket per instance, computed (or served warm) up front: every
    // algorithm's row shares it, instead of re-deriving it per cell.
    // Seeded chunking keeps the cell→worker assignment a pure function of
    // the job list; single-flight in the bracket service makes the hit
    // counters thread-count-independent on top.
    let idx: Vec<usize> = (0..instances.len()).collect();
    let brackets = parallel_map_seeded(&idx, 0xB7AC_4E71, |&i| {
        bracket::opt_r_certified(&instances[i].1)
    });
    let jobs: Vec<(usize, usize)> = (0..instances.len())
        .flat_map(|i| (0..algorithms.len()).map(move |a| (i, a)))
        .collect();
    let cells = parallel_map_seeded(&jobs, 0xB7AC_4E72, |&(i, a)| {
        let (label, inst) = &instances[i];
        let name = algorithms[a];
        let algo = dbp_algos::by_name(name).unwrap_or_else(|| panic!("unknown algorithm '{name}'"));
        let res = engine::run(inst, algo).unwrap_or_else(|e| panic!("{name} on {label}: {e}"));
        let ratio = brackets[i].ratio_bracket(res.cost);
        EvalCell {
            algorithm: name.to_string(),
            instance: label.clone(),
            cost: res.cost,
            ratio,
            rung: brackets[i].rung,
            bins: res.bins_opened,
            metrics: res.metrics,
        }
    });
    EvalMatrix { cells }
}

impl EvalMatrix {
    /// Cells for one algorithm.
    pub fn by_algorithm(&self, name: &str) -> Vec<&EvalCell> {
        self.cells.iter().filter(|c| c.algorithm == name).collect()
    }

    /// Geometric mean of the certified-lower ratios per algorithm,
    /// `(name, geo-mean)`, sorted best first.
    pub fn leaderboard(&self) -> Vec<(String, f64)> {
        let mut names: Vec<String> = self.cells.iter().map(|c| c.algorithm.clone()).collect();
        names.sort();
        names.dedup();
        let mut rows: Vec<(String, f64)> = names
            .into_iter()
            .map(|n| {
                let ratios: Vec<f64> = self.by_algorithm(&n).iter().map(|c| c.ratio.0).collect();
                let g = geo_mean(&ratios).unwrap_or(f64::INFINITY);
                (n, g)
            })
            .collect();
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        rows
    }

    /// Renders as a table: one row per (instance, algorithm).
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "instance",
            "algorithm",
            "cost",
            "bins",
            "ratio ≥",
            "ratio ≤",
            "rung",
            "fast%",
        ]);
        for c in &self.cells {
            t.row([
                c.instance.clone(),
                c.algorithm.clone(),
                format!("{:.0}", c.cost.as_bin_ticks()),
                c.bins.to_string(),
                f3(c.ratio.0),
                f3(c.ratio.1),
                c.rung.as_str().to_string(),
                format!("{:.0}", 100.0 * c.metrics.fast_path_share()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_workloads::{random_general, GeneralConfig};

    fn instances() -> Vec<(String, Instance)> {
        (0..3u64)
            .map(|seed| {
                (
                    format!("general-{seed}"),
                    random_general(&GeneralConfig::new(6, 200), seed),
                )
            })
            .collect()
    }

    #[test]
    fn matrix_covers_every_pair() {
        let m = evaluate(&["first-fit", "hybrid"], &instances());
        assert_eq!(m.cells.len(), 6);
        assert_eq!(m.by_algorithm("hybrid").len(), 3);
        for c in &m.cells {
            assert!(c.ratio.0 <= c.ratio.1);
            assert!(c.bins >= 1);
            // Every arrival is attributed to exactly one placement path.
            assert_eq!(
                c.metrics.fast_path_placements + c.metrics.scan_placements,
                c.metrics.arrivals
            );
        }
    }

    #[test]
    fn leaderboard_sorted_and_finite() {
        let m = evaluate(&["first-fit", "next-fit", "departure-aware"], &instances());
        let lb = m.leaderboard();
        assert_eq!(lb.len(), 3);
        for w in lb.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Next-Fit should not win a benign leaderboard.
        assert_ne!(lb[0].0, "next-fit");
    }

    #[test]
    fn table_renders_all_rows() {
        let m = evaluate(&["first-fit"], &instances());
        assert_eq!(m.table().len(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_algorithm_panics() {
        evaluate(&["martian-fit"], &instances());
    }
}
