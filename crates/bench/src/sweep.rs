//! Parallel parameter sweeps over scoped threads.
//!
//! Experiments sweep μ (and seeds) over independent simulator runs; each
//! run is single-threaded and deterministic, so the sweep is embarrassingly
//! parallel. We fan out with `std::thread::scope` (borrowing the sweep
//! inputs without `'static` bounds) and preserve input order in the output.
//!
//! Results are collected without any shared lock: each worker accumulates
//! `(index, result)` pairs in a thread-local vector that travels back
//! through its join handle, and the caller scatters them into place once.
//! The previous design funnelled every result through a single
//! `Mutex<Vec<Option<R>>>`, which serialised workers exactly when sweeps
//! have many cheap cells; now the only shared state is the atomic work
//! counter.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Renders a worker's panic payload as the sweep's stable panic contract:
/// `sweep worker panicked: <original message>`. Both the threaded and the
/// sequential fallback path funnel through this, so callers (and tests)
/// see one message shape regardless of host parallelism.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    format!("sweep worker panicked: {msg}")
}

/// Maps `f` over `inputs` in parallel, preserving order.
///
/// Spawns at most `min(inputs.len(), available_parallelism)` workers; falls
/// back to sequential execution for tiny inputs. Work is handed out through
/// a single atomic counter (dynamic load balancing — sweep cells vary
/// wildly in cost across μ), and result collection is lock-free.
pub fn parallel_map<T, R, F>(inputs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(inputs.len().max(1));
    if threads <= 1 || inputs.len() <= 1 {
        // Keep the panic contract identical to the threaded path (a cell
        // panic surfaces as "sweep worker panicked") so callers and tests
        // behave the same on single-core hosts.
        return inputs
            .iter()
            .map(|x| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(x)))
                    .unwrap_or_else(|payload| panic!("{}", panic_message(payload.as_ref())))
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..inputs.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= inputs.len() {
                            break;
                        }
                        local.push((idx, f(&inputs[idx])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = handle
                .join()
                .unwrap_or_else(|payload| panic!("{}", panic_message(payload.as_ref())));
            for (idx, r) in local {
                results[idx] = Some(r);
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(&inputs, |&x| x * x);
        assert_eq!(out, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn borrows_locals_without_static() {
        let base = 10u64;
        let inputs = [1u64, 2, 3];
        let out = parallel_map(&inputs, |&x| x + base);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn propagates_worker_panics() {
        let inputs: Vec<u32> = (0..64).collect();
        parallel_map(&inputs, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }

    /// The panic contract on the threaded path: the rethrown message
    /// carries BOTH the stable prefix and the worker's original text.
    #[test]
    #[should_panic(expected = "sweep worker panicked: boom at cell 13")]
    fn threaded_panic_carries_original_message() {
        let inputs: Vec<u32> = (0..64).collect();
        parallel_map(&inputs, |&x| {
            if x == 13 {
                panic!("boom at cell {x}");
            }
            x
        });
    }

    /// Same contract on the sequential fallback (single-element input
    /// forces it, whatever the host's core count).
    #[test]
    #[should_panic(expected = "sweep worker panicked: lone boom")]
    fn sequential_panic_carries_original_message() {
        parallel_map(&[0u32], |_| -> u32 { panic!("lone boom") });
    }

    #[test]
    fn panic_message_handles_all_payload_shapes() {
        assert_eq!(
            panic_message(&"static" as &(dyn std::any::Any + Send)),
            "sweep worker panicked: static"
        );
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(
            panic_message(owned.as_ref()),
            "sweep worker panicked: owned"
        );
        let other: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(
            panic_message(other.as_ref()),
            "sweep worker panicked: non-string panic payload"
        );
    }

    #[test]
    fn heavy_fanout_returns_every_slot() {
        // More inputs than threads by a wide margin: exercises the
        // per-worker local buffers and the final scatter.
        let inputs: Vec<usize> = (0..4096).collect();
        let out = parallel_map(&inputs, |&x| x + 1);
        assert_eq!(out.len(), inputs.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i + 1);
        }
    }
}
