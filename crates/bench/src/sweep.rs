//! Parallel parameter sweeps over scoped threads.
//!
//! Experiments sweep μ (and seeds) over independent simulator runs; each
//! run is single-threaded and deterministic, so the sweep is embarrassingly
//! parallel. We fan out with `std::thread::scope` (borrowing the sweep
//! inputs without `'static` bounds) and preserve input order in the output.
//!
//! Results are collected without any shared lock: each worker accumulates
//! `(index, result)` pairs in a thread-local vector that travels back
//! through its join handle, and the caller scatters them into place once.
//! The only shared state is the atomic work counter.
//!
//! **Fail-fast cancellation.** A panicking cell poisons the work counter,
//! so sibling workers stop pulling cells after at most the one they are
//! currently running — a 4096-cell sweep that dies at cell 0 no longer
//! finishes the other 4095 before rethrowing. The panic still surfaces to
//! the caller with the stable `sweep worker panicked: <message>` contract.
//!
//! **Chunking modes.** [`parallel_map`] hands cells out dynamically through
//! the atomic counter (cells vary wildly in cost across μ, so dynamic load
//! balancing wins wall-clock). [`parallel_map_seeded`] instead deals a
//! seeded deterministic permutation of the cells into per-worker chunks —
//! the experiment battery uses it so the *assignment* of cells to worker
//! slots is a pure function of `(len, threads, seed)`. Either way the
//! output is input-ordered and per-cell results are identical; combined
//! with the bracket service's single-flight cache, sweep-level counters
//! (`computed + mem_hits + disk_hits`) are reproducible for a fixed
//! workload regardless of thread count.
//!
//! **Worker count.** Defaults to `available_parallelism`, clamped to the
//! input size. CLIs pin it process-wide via [`set_threads`] (`--threads`);
//! individual calls can override it through [`SweepOptions::with_threads`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Poison value for the shared work counter: far above any real input
/// length, and far enough below `usize::MAX` that one post-poison
/// `fetch_add` per worker cannot wrap.
const POISON: usize = usize::MAX / 2;

/// Process-wide worker-count override; 0 means "one per available core".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pins the sweep worker count process-wide (the CLIs' `--threads` flag).
/// `0` restores the default (one worker per available core).
pub fn set_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

/// The process-wide worker-count override (0 = automatic).
pub fn configured_threads() -> usize {
    CONFIGURED_THREADS.load(Ordering::Relaxed)
}

fn default_threads() -> usize {
    match configured_threads() {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// How a sweep hands cells to workers.
#[derive(Debug, Clone, Copy)]
pub enum Chunking {
    /// Cells are claimed dynamically through an atomic counter (best
    /// wall-clock when cell costs vary).
    Dynamic,
    /// Cells are dealt up front: a Fisher–Yates permutation driven by the
    /// seed, split into one contiguous chunk per worker, each processed in
    /// permutation order. The assignment is a pure function of
    /// `(len, threads, seed)`.
    Seeded(u64),
}

/// Per-call sweep configuration; see [`parallel_map_with`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Worker count; `None` uses [`set_threads`]' value or the core count.
    pub threads: Option<usize>,
    /// Work-distribution mode.
    pub chunking: Chunking,
}

impl SweepOptions {
    /// Dynamic chunking at the configured worker count.
    pub fn dynamic() -> SweepOptions {
        SweepOptions {
            threads: None,
            chunking: Chunking::Dynamic,
        }
    }

    /// Deterministic seeded chunking at the configured worker count.
    pub fn seeded(seed: u64) -> SweepOptions {
        SweepOptions {
            threads: None,
            chunking: Chunking::Seeded(seed),
        }
    }

    /// Overrides the worker count for this call only.
    pub fn with_threads(mut self, n: usize) -> SweepOptions {
        self.threads = Some(n);
        self
    }
}

/// Renders a worker's panic payload as the sweep's stable panic contract:
/// `sweep worker panicked: <original message>`. Both the threaded and the
/// sequential fallback path funnel through this, so callers (and tests)
/// see one message shape regardless of host parallelism.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    format!("sweep worker panicked: {msg}")
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic cell→worker assignment: a seeded Fisher–Yates permutation
/// of `0..len`, dealt into `threads` contiguous chunks.
fn seeded_chunks(len: usize, threads: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut state = seed ^ (len as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for i in (1..len).rev() {
        state = splitmix64(state);
        order.swap(i, (state % (i as u64 + 1)) as usize);
    }
    (0..threads)
        .map(|w| order[w * len / threads..(w + 1) * len / threads].to_vec())
        .collect()
}

/// Maps `f` over `inputs` in parallel with dynamic load balancing,
/// preserving input order in the output. See [`parallel_map_with`].
pub fn parallel_map<T, R, F>(inputs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(inputs, SweepOptions::dynamic(), f)
}

/// Maps `f` over `inputs` in parallel with deterministic seeded chunking,
/// preserving input order in the output. See [`parallel_map_with`].
pub fn parallel_map_seeded<T, R, F>(inputs: &[T], seed: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(inputs, SweepOptions::seeded(seed), f)
}

/// Maps `f` over `inputs` in parallel, preserving order.
///
/// Spawns at most `min(inputs.len(), threads)` workers; falls back to
/// sequential execution for tiny inputs. A panicking cell poisons the
/// shared work counter (fail-fast: siblings stop pulling cells) and the
/// panic is rethrown as `sweep worker panicked: <message>`.
pub fn parallel_map_with<T, R, F>(inputs: &[T], opts: SweepOptions, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = opts
        .threads
        .unwrap_or_else(default_threads)
        .max(1)
        .min(inputs.len().max(1));
    if threads <= 1 || inputs.len() <= 1 {
        // Keep the panic contract identical to the threaded path (a cell
        // panic surfaces as "sweep worker panicked") so callers and tests
        // behave the same on single-core hosts.
        return inputs
            .iter()
            .map(|x| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(x)))
                    .unwrap_or_else(|payload| panic!("{}", panic_message(payload.as_ref())))
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let chunks: Option<Vec<Vec<usize>>> = match opts.chunking {
        Chunking::Dynamic => None,
        Chunking::Seeded(seed) => Some(seeded_chunks(inputs.len(), threads, seed)),
    };
    let mut results: Vec<Option<R>> = (0..inputs.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let next = &next;
                let f = &f;
                let chunk = chunks.as_ref().map(|c| c[w].as_slice());
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let run = |idx: usize, local: &mut Vec<(usize, R)>| {
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            f(&inputs[idx])
                        })) {
                            Ok(v) => local.push((idx, v)),
                            Err(payload) => {
                                // Fail fast: poison the counter so sibling
                                // workers stop pulling cells, then let the
                                // panic continue out to the join below.
                                next.store(POISON, Ordering::Relaxed);
                                std::panic::resume_unwind(payload);
                            }
                        }
                    };
                    match chunk {
                        Some(cells) => {
                            for &idx in cells {
                                if next.load(Ordering::Relaxed) >= POISON {
                                    break;
                                }
                                run(idx, &mut local);
                            }
                        }
                        None => loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= inputs.len() {
                                break;
                            }
                            run(idx, &mut local);
                        },
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = handle
                .join()
                .unwrap_or_else(|payload| panic!("{}", panic_message(payload.as_ref())));
            for (idx, r) in local {
                results[idx] = Some(r);
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn preserves_order_and_values() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(&inputs, |&x| x * x);
        assert_eq!(out, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn borrows_locals_without_static() {
        let base = 10u64;
        let inputs = [1u64, 2, 3];
        let out = parallel_map(&inputs, |&x| x + base);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn propagates_worker_panics() {
        let inputs: Vec<u32> = (0..64).collect();
        parallel_map(&inputs, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }

    /// The panic contract on the threaded path: the rethrown message
    /// carries BOTH the stable prefix and the worker's original text.
    #[test]
    #[should_panic(expected = "sweep worker panicked: boom at cell 13")]
    fn threaded_panic_carries_original_message() {
        let inputs: Vec<u32> = (0..64).collect();
        parallel_map(&inputs, |&x| {
            if x == 13 {
                panic!("boom at cell {x}");
            }
            x
        });
    }

    /// Same contract on the sequential fallback (single-element input
    /// forces it, whatever the host's core count).
    #[test]
    #[should_panic(expected = "sweep worker panicked: lone boom")]
    fn sequential_panic_carries_original_message() {
        parallel_map(&[0u32], |_| -> u32 { panic!("lone boom") });
    }

    #[test]
    fn panic_message_handles_all_payload_shapes() {
        assert_eq!(
            panic_message(&"static" as &(dyn std::any::Any + Send)),
            "sweep worker panicked: static"
        );
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(
            panic_message(owned.as_ref()),
            "sweep worker panicked: owned"
        );
        let other: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(
            panic_message(other.as_ref()),
            "sweep worker panicked: non-string panic payload"
        );
    }

    #[test]
    fn heavy_fanout_returns_every_slot() {
        // More inputs than threads by a wide margin: exercises the
        // per-worker local buffers and the final scatter.
        let inputs: Vec<usize> = (0..4096).collect();
        let out = parallel_map(&inputs, |&x| x + 1);
        assert_eq!(out.len(), inputs.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i + 1);
        }
    }

    /// Fail-fast: a panic at cell 0 of 4096 must stop sibling workers from
    /// draining the whole sweep — only the cells already in flight when the
    /// counter is poisoned may still run.
    #[test]
    fn panicking_cell_cancels_remaining_work() {
        let executed = AtomicUsize::new(0);
        let inputs: Vec<usize> = (0..4096).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map_with(&inputs, SweepOptions::dynamic().with_threads(8), |&x| {
                if x == 0 {
                    panic!("die at cell 0");
                }
                // Make surviving cells slow enough that the poison lands
                // before any worker can drain a meaningful share.
                std::thread::sleep(Duration::from_micros(200));
                executed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert!(result.is_err(), "the sweep must rethrow the cell panic");
        let ran = executed.load(Ordering::Relaxed);
        assert!(
            ran < 1024,
            "fail-fast failed: {ran} of 4096 cells still executed"
        );
    }

    /// Seeded chunking is a pure function of (len, threads, seed): same
    /// inputs, same chunks; every index dealt exactly once; and the mapped
    /// output is identical to the dynamic mode's.
    #[test]
    fn seeded_chunking_is_deterministic_and_complete() {
        let a = seeded_chunks(103, 7, 42);
        let b = seeded_chunks(103, 7, 42);
        assert_eq!(a, b);
        let mut all: Vec<usize> = a.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        assert_ne!(
            seeded_chunks(103, 7, 42),
            seeded_chunks(103, 7, 43),
            "different seeds should shuffle differently"
        );

        let inputs: Vec<u64> = (0..257).collect();
        let dynamic = parallel_map(&inputs, |&x| x * 3);
        for threads in [1usize, 2, 8] {
            let seeded = parallel_map_with(
                &inputs,
                SweepOptions::seeded(7).with_threads(threads),
                |&x| x * 3,
            );
            assert_eq!(seeded, dynamic, "threads={threads}");
        }
    }

    /// Seeded mode honours fail-fast too: the poisoned counter stops
    /// workers walking their pre-dealt chunks.
    #[test]
    fn seeded_mode_cancels_on_panic() {
        let executed = AtomicUsize::new(0);
        let inputs: Vec<usize> = (0..2048).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map_with(&inputs, SweepOptions::seeded(3).with_threads(8), |&x| {
                if executed.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("first executed cell dies");
                }
                std::thread::sleep(Duration::from_micros(200));
                x
            })
        }));
        assert!(result.is_err());
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran < 1024, "fail-fast failed: {ran} of 2048 cells executed");
    }
}
