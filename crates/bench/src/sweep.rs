//! Parallel parameter sweeps over scoped threads.
//!
//! Experiments sweep μ (and seeds) over independent simulator runs; each
//! run is single-threaded and deterministic, so the sweep is embarrassingly
//! parallel. We fan out with `crossbeam::scope` (borrowing the sweep inputs
//! without `'static` bounds) and preserve input order in the output.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Maps `f` over `inputs` in parallel, preserving order.
///
/// Spawns at most `min(inputs.len(), available_parallelism)` workers; falls
/// back to sequential execution for tiny inputs.
pub fn parallel_map<T, R, F>(inputs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(inputs.len().max(1));
    if threads <= 1 || inputs.len() <= 1 {
        return inputs.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..inputs.len()).map(|_| None).collect());

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= inputs.len() {
                    break;
                }
                let r = f(&inputs[idx]);
                results.lock()[idx] = Some(r);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(&inputs, |&x| x * x);
        assert_eq!(out, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn borrows_locals_without_static() {
        let base = 10u64;
        let inputs = [1u64, 2, 3];
        let out = parallel_map(&inputs, |&x| x + base);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn propagates_worker_panics() {
        let inputs: Vec<u32> = (0..64).collect();
        parallel_map(&inputs, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
