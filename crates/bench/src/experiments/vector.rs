//! The `vector` experiment: scalar vs. vector competitive envelopes on
//! VM-shaped multi-dimensional workloads.
//!
//! Each VM fleet is packed twice by every algorithm: once on the true
//! vector sizes (the engine's per-dimension fit test), and once on the
//! *max-component scalarization* — what a scalar-only system would do
//! with the same fleet (treat every VM as its largest resource demand).
//! The scalarized packing is always feasible for the vectors, so its
//! cost is the price of ignoring dimensions; the overhead column is
//! `scalar-max cost / vector cost`.
//!
//! Ratios are certified against the vector-aware bracket of
//! [`dbp_core::OptBracket`]: per-dimension Lemma 3.1 lower bounds (max
//! over dimensions) under the max-component `2∫⌈S_t⌉` upper bound,
//! tightened through the usual refinement ladder (exact search stays
//! scalar-only and simply doesn't fire here).
//!
//! Expected shape: on the **correlated** fleet the demand vectors sit on
//! the diagonal, so scalarization loses nothing (overhead 1.000); on the
//! **anti-correlated** fleet complementary shapes share bins and the
//! scalar-max view over-opens (overhead > 1); the **skewed** fleet sits
//! in between, bottlenecked on its dominant dimension.

use std::sync::Mutex;

use dbp_analysis::table::{f3, Table};
use dbp_core::engine;
use dbp_core::instance::Instance;
use dbp_core::size::MAX_DIMS;
use dbp_workloads::{vm_anti_correlated, vm_correlated, vm_skewed, VmConfig};

use crate::bracket;
use crate::sweep::parallel_map_seeded;

use super::ExperimentReport;

/// Dimension count the CLI may override (`--dims`).
static DIMS: Mutex<usize> = Mutex::new(2);

/// Replaces the experiment's dimension count (1..=[`MAX_DIMS`]).
pub fn configure(dims: usize) {
    assert!(
        (1..=MAX_DIMS).contains(&dims),
        "dims must be 1..={MAX_DIMS}"
    );
    *DIMS.lock().expect("vector config poisoned") = dims;
}

/// The active dimension count.
pub fn dims() -> usize {
    *DIMS.lock().expect("vector config poisoned")
}

/// Correlation regimes swept by the experiment.
const FLEETS: &[&str] = &["correlated", "anti-correlated", "skew-4"];

/// Algorithms compared (a spread across the Any-Fit / classification
/// families; the full registry would only repeat the pattern).
const ALGOS: &[&str] = &["first-fit", "best-fit", "hybrid", "cdff"];

fn fleet(kind: &str, dims: usize) -> Instance {
    let cfg = VmConfig::new(400, 1_200).dims(dims);
    match kind {
        "correlated" => vm_correlated(&cfg, 23),
        "anti-correlated" => vm_anti_correlated(&cfg, 23),
        "skew-4" => vm_skewed(&cfg, 4, 23),
        other => unreachable!("unknown fleet {other}"),
    }
}

/// The max-component scalarization of a vector instance: same sessions,
/// each size collapsed to its largest component. Shared with the
/// manifest fleet runner so `experiments run` reproduces this table.
pub(crate) fn scalarized(inst: &Instance) -> Instance {
    Instance::from_triples(
        inst.items()
            .iter()
            .map(|it| (it.arrival, it.duration(), it.size.max_size())),
    )
    .expect("scalarization preserves item validity")
}

/// Scalar vs. vector envelopes on the VM fleets.
pub fn vector() -> ExperimentReport {
    let d = dims();
    let svc = bracket::service();
    let rows = parallel_map_seeded(FLEETS, 0x7EC7_0001, |&kind| {
        let vec_inst = fleet(kind, d);
        let max_inst = scalarized(&vec_inst);
        let cb = svc.opt_r(&vec_inst);
        ALGOS
            .iter()
            .map(|&name| {
                let algo = dbp_algos::by_name(name).expect("registry name");
                let vec_run = engine::run(&vec_inst, algo).expect("legal vector run");
                let max_run =
                    engine::run(&max_inst, dbp_algos::by_name(name).expect("registry name"))
                        .expect("legal scalar run");
                let (lo, hi) = cb.ratio_bracket(vec_run.cost);
                (
                    kind,
                    name,
                    vec_run.cost.as_bin_ticks(),
                    max_run.cost.as_bin_ticks(),
                    lo,
                    hi,
                    cb.rung,
                )
            })
            .collect::<Vec<_>>()
    });

    let mut table = Table::new([
        "fleet",
        "algorithm",
        "vector cost",
        "scalar-max cost",
        "overhead",
        "ratio ≥",
        "ratio ≤",
        "rung",
    ]);
    let mut worst_overhead: (f64, &str, &str) = (0.0, "", "");
    for row in rows.iter().flatten() {
        let &(kind, name, vec_cost, max_cost, lo, hi, rung) = row;
        let overhead = max_cost / vec_cost.max(f64::MIN_POSITIVE);
        if overhead > worst_overhead.0 {
            worst_overhead = (overhead, kind, name);
        }
        table.row([
            kind.to_string(),
            name.to_string(),
            format!("{vec_cost:.1}"),
            format!("{max_cost:.1}"),
            f3(overhead),
            f3(lo),
            f3(hi),
            rung.as_str().to_string(),
        ]);
    }
    let text = format!(
        "D = {d} VM fleets, 400 sessions each; ratios are certified against the\n\
         vector-aware bracket (per-dimension Lemma 3.1 lower bounds, max over\n\
         dimensions, under the max-component 2∫⌈S_t⌉ upper bound).\n\
         Expected: the correlated fleet's overhead column is exactly 1.000 (diagonal\n\
         vectors make scalarization lossless), the anti-correlated fleet pays the\n\
         most for ignoring dimensions, and the skewed fleet sits in between.\n\
         Worst scalarization overhead: {} ({} / {}).\n",
        f3(worst_overhead.0),
        worst_overhead.1,
        worst_overhead.2,
    );
    ExperimentReport {
        id: "vector",
        title: format!("Vector packing: scalar-max vs vector-aware envelopes (D = {d})"),
        table,
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlated_fleet_scalarizes_losslessly() {
        let inst = fleet("correlated", 2);
        let max = scalarized(&inst);
        for name in ALGOS {
            let algo = dbp_algos::by_name(name).expect("registry name");
            let v = engine::run(&inst, algo).expect("legal");
            let s =
                engine::run(&max, dbp_algos::by_name(name).expect("registry name")).expect("legal");
            assert_eq!(v.cost, s.cost, "{name}: diagonal fleet must cost the same");
            assert_eq!(v.assignment, s.assignment, "{name}: placements must agree");
        }
    }

    #[test]
    fn anti_correlated_fleet_rewards_vector_awareness() {
        let inst = fleet("anti-correlated", 2);
        let max = scalarized(&inst);
        let v = engine::run(&inst, dbp_algos::FirstFit::new()).expect("legal");
        let s = engine::run(&max, dbp_algos::FirstFit::new()).expect("legal");
        assert!(
            s.cost > v.cost,
            "scalar-max ({}) should over-open vs vector ({})",
            s.cost,
            v.cost
        );
    }

    #[test]
    fn dims_knob_round_trips_and_rejects_zero() {
        assert_eq!(dims(), 2);
        configure(3);
        assert_eq!(dims(), 3);
        configure(2);
    }
}
