//! The `resilience` experiment: cost degradation under server failures.
//!
//! Bins crash at a seeded per-bin rate while HA, CDFF and First-Fit serve
//! the same cloud trace; displaced sessions re-enter through the online
//! algorithm after a backoff. Every run is audited (load conservation and
//! cost triple-entry hold across failures) and compared against the
//! **failure-free** certified `OPT_R` bracket — the ratio column therefore
//! reads as "how much of the paid degradation is the storm's fault",
//! because the denominator never moves.
//!
//! The zero-rate row doubles as the bit-identity regression: it is
//! asserted equal to a plain (failure-layer-free) run of the same
//! algorithm on the same trace.

use std::sync::Mutex;

use dbp_analysis::table::{f3, Table};
use dbp_core::audit::InvariantAuditor;
use dbp_core::engine::{self, run_with_failures};
use dbp_core::failure::{FailurePlan, RetryPolicy};
use dbp_core::time::Dur;
use dbp_workloads::{cloud_trace, CloudConfig};

use crate::bracket;
use crate::sweep::parallel_map_seeded;

use super::ExperimentReport;

/// Knobs the CLIs may override (`--fail-seed`, `--retry`).
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Seed of the per-bin crash stream.
    pub seed: u64,
    /// Re-admission backoff policy.
    pub retry: RetryPolicy,
}

static CONFIG: Mutex<ResilienceConfig> = Mutex::new(ResilienceConfig {
    seed: 4242,
    retry: RetryPolicy::Fixed(Dur(5)),
});

/// Replaces the experiment's failure knobs (e.g. from CLI flags).
pub fn configure(seed: u64, retry: RetryPolicy) {
    *CONFIG.lock().expect("resilience config poisoned") = ResilienceConfig { seed, retry };
}

/// The active knobs.
pub fn config() -> ResilienceConfig {
    *CONFIG.lock().expect("resilience config poisoned")
}

/// Cost degradation vs failure rate, audited, against the failure-free
/// certified bracket.
pub fn resilience() -> ExperimentReport {
    let cfg = config();
    let inst = cloud_trace(&CloudConfig::new(600, 2_000), 17);
    let b0 = bracket::opt_r(&inst);
    let rates: &[f64] = &[0.0, 0.02, 0.05, 0.10];
    let algos = ["first-fit", "hybrid", "cdff"];
    let rows = parallel_map_seeded(rates, 0x4E51_11E4, |&rate| {
        algos
            .iter()
            .map(|&name| {
                let algo = dbp_algos::by_name(name).expect("registry");
                let mut auditor = InvariantAuditor::new();
                let plan = FailurePlan::seeded(rate, cfg.seed, Dur(120));
                let res = run_with_failures(&inst, algo, plan, cfg.retry, &mut auditor)
                    .expect("legal run");
                if let Err(v) = auditor.verify_result(&res) {
                    panic!("{name} at rate {rate}: {v}");
                }
                if rate == 0.0 {
                    // The §11 safety net, re-proved on every regeneration:
                    // an empty plan leaves the engine bit-identical.
                    let plain = engine::run(&inst, dbp_algos::by_name(name).expect("registry"))
                        .expect("legal run");
                    assert_eq!(plain.cost, res.cost, "{name}: zero-rate cost drifted");
                    assert_eq!(
                        plain.assignment, res.assignment,
                        "{name}: zero-rate assignment drifted"
                    );
                }
                (name, rate, res)
            })
            .collect::<Vec<_>>()
    });

    let mut table = Table::new([
        "fail rate",
        "algorithm",
        "cost",
        "ratio ≥ (vs no-fail OPT_R)",
        "failures",
        "migrations",
        "drops",
        "degraded bin·ticks",
    ]);
    for row in rows.iter().flatten() {
        let (name, rate, res) = row;
        let r = &res.resilience;
        table.row([
            format!("{rate:.2}"),
            (*name).to_string(),
            f3(res.cost.as_bin_ticks()),
            f3(b0.ratio_bracket(res.cost).0),
            r.bin_failures.to_string(),
            r.readmissions.to_string(),
            r.dropped.to_string(),
            f3(r.degraded_area.as_bin_ticks()),
        ]);
    }
    ExperimentReport {
        id: "resilience",
        title: "Extension: failure-aware serving — cost degradation under server crashes".into(),
        text: format!(
            "Seeded per-bin crash plan (seed {}, mtbf 120 ticks, retry {}) over a 600-session\n\
             cloud trace; displaced sessions re-enter through the online algorithm after the\n\
             backoff, or are dropped when it outlives them. Every run passes the invariant\n\
             auditor including the failure ledger; the 0.00 rows are asserted bit-identical\n\
             to a plain run. Expected: migrations, drops and degraded area grow with the\n\
             crash rate, while the bill moves only a few percent — a crash both adds cost\n\
             (the replacement bin re-bills from its re-admission) and removes it (service\n\
             truncated at the crash, dropped remainders), so the net is small at these\n\
             rates. The denominator is the failure-free OPT_R on purpose: the ratio\n\
             column isolates what the storm, not the workload, costs.\n",
            cfg.seed, cfg.retry
        ),
        table,
    }
}
