//! The paper's Figures 1–3, regenerated from real simulator state.

use dbp_analysis::figures::{gantt, packing_gantt, rows_snapshot, SnapshotBin};
use dbp_analysis::table::Table;
use dbp_core::engine::{self, InteractiveSim};
use dbp_core::size::Size;
use dbp_core::time::{Dur, Time};

use super::ExperimentReport;

/// Figure 1: a snapshot of CDFF's rows of bins at a moment, on an input
/// busy enough that several rows hold several bins.
pub fn fig1() -> ExperimentReport {
    // Drive CDFF interactively on a crafted aligned input: at t = 0 heavy
    // waves of every class arrive so rows 0..4 each open multiple bins —
    // the structure the paper's Figure 1 depicts.
    let mut sim = InteractiveSim::new(dbp_algos::Cdff::new());
    let n = 4u32;
    sim.advance_to(Time(0));
    for i in (0..=n).rev() {
        // Five items of class i, each 2/5 of a bin: ⌈5·(2/5)⌉ = 2 bins/row.
        for _ in 0..5 {
            sim.arrive(Dur(1u64 << i), Size::from_ratio(2, 5))
                .expect("legal");
        }
    }
    let snapshot_time = sim.now();
    let top = sim.algorithm().top_class();
    let rows: Vec<(String, Vec<SnapshotBin>)> = sim
        .algorithm()
        .rows_detail()
        .into_iter()
        .map(|(vkey, bins)| {
            let row_idx = top.saturating_sub(vkey);
            let bins = bins
                .iter()
                .enumerate()
                .map(|(j, &b)| {
                    let load = sim
                        .bins()
                        .record(b)
                        .map(|r| dbp_core::Load::from_raw(r.load.max_raw()).as_f64())
                        .unwrap_or(0.0);
                    SnapshotBin {
                        label: format!("b_{row_idx}^{}", j + 1),
                        load,
                    }
                })
                .collect();
            (format!("row {row_idx}"), bins)
        })
        .collect();
    let text = format!(
        "Snapshot at t = {} (top class n = {top}):\n\n{}",
        snapshot_time,
        rows_snapshot(&rows)
    );
    // Finish cleanly so the run is audited too.
    let (inst, res) = sim.finish();
    let audit = dbp_core::assignment::audit(&inst, &res.assignment).expect("valid packing");
    debug_assert_eq!(audit.cost, res.cost);
    ExperimentReport {
        id: "fig1",
        title: "Figure 1: CDFF's rows of bins at a moment".into(),
        table: Table::default(),
        text,
    }
}

/// Figure 2: the binary input σ_8 as an item gantt.
pub fn fig2() -> ExperimentReport {
    let inst = dbp_workloads::sigma_mu(3);
    ExperimentReport {
        id: "fig2",
        title: "Figure 2: the binary input σ_8".into(),
        table: Table::default(),
        text: gantt(&inst, 200),
    }
}

/// Figure 3: how CDFF packs σ_8, as a per-bin gantt, plus the Corollary
/// 5.8 check column.
pub fn fig3() -> ExperimentReport {
    let inst = dbp_workloads::sigma_mu(3);
    let res = engine::run(&inst, dbp_algos::Cdff::new()).expect("cdff legal");
    let mut text = packing_gantt(&inst, &res, 200);
    text.push('\n');
    let mut table = Table::new(["t", "binary(t)", "max_0 + 1", "CDFF open bins"]);
    for t in 0..8u64 {
        let m0 = dbp_analysis::max_zero_run(t, 3);
        table.row([
            t.to_string(),
            format!("{t:03b}"),
            (m0 + 1).to_string(),
            res.open_at(Time(t)).to_string(),
        ]);
    }
    ExperimentReport {
        id: "fig3",
        title: "Figure 3: CDFF packing σ_8 (with the Corollary 5.8 equality)".into(),
        table,
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_snapshot_has_multiple_rows_and_bins() {
        let rep = fig1();
        assert!(rep.text.contains("row 0"));
        assert!(rep.text.contains("row 4"));
        assert!(
            rep.text.contains("b_0^2"),
            "rows must hold ≥ 2 bins:\n{}",
            rep.text
        );
    }

    #[test]
    fn fig2_draws_fifteen_items() {
        let rep = fig2();
        assert_eq!(rep.text.matches("len").count(), 15);
    }

    #[test]
    fn fig3_corollary_column_matches() {
        let rep = fig3();
        // Spot-check through the rendered CSV: at t=0, 3+1 = 4 = open bins.
        let csv = rep.table.to_csv();
        assert!(csv.lines().any(|l| l == "0,000,4,4"), "csv:\n{csv}");
        assert!(csv.lines().any(|l| l == "7,111,1,1"), "csv:\n{csv}");
    }
}
