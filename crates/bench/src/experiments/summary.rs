//! The one-screen verdict: re-derives every headline claim quickly and
//! prints claim-by-claim PASS/FAIL — the reproduction's self-check.

use dbp_algos::{Cdff, ClassifyByDuration, FirstFit, HybridAlgorithm};
use dbp_analysis::table::Table;
use dbp_core::engine;
use dbp_core::time::Time;
use dbp_workloads::adversary::{run_adversary, AdversaryConfig};
use dbp_workloads::{ff_pathology_pow2, run_nc_adversary, sigma_mu};

use crate::bracket;

use super::ExperimentReport;

struct Check {
    claim: &'static str,
    evidence: String,
    pass: bool,
}

/// Runs the whole verdict sheet.
pub fn summary() -> ExperimentReport {
    let mut checks: Vec<Check> = Vec::new();

    // 1. Theorem 3.2 shape: HA ratio grows but stays within c·√log μ.
    {
        let mut ok = true;
        let mut last = 0.0;
        let mut norms = Vec::new();
        for n in [4u32, 9, 12] {
            let out =
                run_adversary(HybridAlgorithm::new(), &AdversaryConfig::new(n)).expect("legal");
            let (lo, _) = bracket::ratio_vs_opt_r(&out.instance, out.result.cost);
            ok &= lo >= last; // non-decreasing growth
            last = lo;
            norms.push(lo / (n as f64).sqrt());
        }
        let bounded = norms.iter().all(|&x| x <= 1.2);
        checks.push(Check {
            claim: "Thm 3.2: HA grows, ratio/√log μ bounded",
            evidence: format!(
                "norms {:?}",
                norms
                    .iter()
                    .map(|x| (x * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            ),
            pass: ok && bounded,
        });
    }

    // 2. Theorem 4.3: adversary forces every round vs HA and FF.
    {
        let cfg = AdversaryConfig::new(9);
        let a = run_adversary(HybridAlgorithm::new(), &cfg).expect("legal");
        let b = run_adversary(FirstFit::new(), &cfg).expect("legal");
        let pass = a.rounds_forced == 512 && b.rounds_forced == 512;
        checks.push(Check {
            claim: "Thm 4.3: adversary forces √log μ bins every round",
            evidence: format!(
                "{}+{} of 512+512 rounds forced",
                a.rounds_forced, b.rounds_forced
            ),
            pass,
        });
    }

    // 3. Corollary 5.8 exact identity.
    {
        let n = 10u32;
        let inst = sigma_mu(n);
        let res = engine::run(&inst, Cdff::new()).expect("legal");
        let mismatches = (0..(1u64 << n))
            .filter(|&t| res.open_at(Time(t)) != dbp_analysis::max_zero_run(t, n) as usize + 1)
            .count();
        checks.push(Check {
            claim: "Cor 5.8: CDFF bins = max_0(binary(t)) + 1, exactly",
            evidence: format!("{mismatches} mismatches / {} moments", 1u64 << n),
            pass: mismatches == 0,
        });
    }

    // 4. Proposition 5.3 envelope.
    {
        let n = 14u32;
        let inst = sigma_mu(n);
        let res = engine::run(&inst, Cdff::new()).expect("legal");
        let ratio = res.cost.as_bin_ticks() / (1u64 << n) as f64;
        let envelope = 2.0 * (n as f64).log2() + 1.0;
        checks.push(Check {
            claim: "Prop 5.3: CDFF(σ_μ) ≤ (2 lglg μ + 1)·μ",
            evidence: format!("{ratio:.2} ≤ {envelope:.2}"),
            pass: ratio <= envelope,
        });
    }

    // 5. Exponential separation: CDFF beats static CBD on σ_μ, growing.
    {
        let r = |n: u32| {
            let inst = sigma_mu(n);
            let cdff = engine::run(&inst, Cdff::new()).expect("legal").cost;
            let cbd = engine::run(&inst, ClassifyByDuration::binary())
                .expect("legal")
                .cost;
            cbd.ratio_to(cdff)
        };
        let (a, b) = (r(8), r(16));
        checks.push(Check {
            claim: "§5: dynamic rows beat static classes, gap grows",
            evidence: format!("advantage {a:.2}× → {b:.2}×"),
            pass: b > a && a > 1.5,
        });
    }

    // 6. Non-clairvoyant Θ(μ): adaptive departures force linear growth.
    {
        let r = |k: u64| {
            let out = run_nc_adversary(FirstFit::new(), k, k).expect("legal");
            bracket::ratio_vs_opt_r(&out.instance, out.result.cost).0
        };
        let (a, b) = (r(8), r(32));
        checks.push(Check {
            claim: "Table 1 row 3: non-clairvoyant Ω(μ) (adaptive)",
            evidence: format!("ratio {a:.1} @ μ=8 → {b:.1} @ μ=32"),
            pass: b > 3.0 * a,
        });
    }

    // 7. Clairvoyance separation on the pathology.
    {
        let inst = ff_pathology_pow2(6);
        let ff = engine::run(&inst, FirstFit::new()).expect("legal").cost;
        let ha = engine::run(&inst, HybridAlgorithm::new())
            .expect("legal")
            .cost;
        checks.push(Check {
            claim: "Clairvoyant HA sidesteps the Ω(μ) trap",
            evidence: format!("FF {:.0} vs HA {:.0}", ff.as_bin_ticks(), ha.as_bin_ticks()),
            pass: ha.ratio_to(ff) < 0.2,
        });
    }

    // 8. Engine observability: every registry algorithm passes the
    //    invariant auditor on a churny instance, and the run metrics
    //    attribute every arrival to exactly one placement path.
    {
        let inst = dbp_workloads::random_general(&dbp_workloads::GeneralConfig::new(6, 400), 7);
        let mut audited = 0usize;
        let mut ok = true;
        let mut events = 0u64;
        for name in dbp_algos::registry_names() {
            let algo = dbp_algos::by_name(name).expect("registry");
            match dbp_core::audit::run_audited(&inst, algo) {
                Ok(res) => {
                    let m = res.metrics;
                    ok &= m.fast_path_placements + m.scan_placements == m.arrivals;
                    events += m.events;
                    audited += 1;
                }
                Err(_) => ok = false,
            }
        }
        checks.push(Check {
            claim: "Engine: auditor-clean runs, placement paths account",
            evidence: format!("{audited} algorithms, {events} events audited"),
            pass: ok && audited == dbp_algos::registry_names().len(),
        });
    }

    // 9. Bracket service: the refinement ladder never loosens the
    //    analytic bracket, warm hits are bit-identical to the cold
    //    compute, and provenance is recorded.
    {
        use dbp_core::bounds::{BracketRung, BracketSource, OptBracket};
        let svc = bracket::BracketService::new(bracket::Effort::Cached);
        let inst = dbp_workloads::random_general(&dbp_workloads::GeneralConfig::new(6, 300), 11);
        let analytic = OptBracket::of(&inst);
        let cold = svc.opt_r(&inst);
        let warm = svc.opt_r(&inst);
        let pass = cold.bracket.lower >= analytic.lower
            && cold.bracket.upper <= analytic.upper
            && cold.rung > BracketRung::Analytic
            && cold.source == BracketSource::Computed
            && warm.source == BracketSource::WarmMemory
            && warm.bracket == cold.bracket
            && warm.rung == cold.rung;
        checks.push(Check {
            claim: "Bracket service: ladder tightens, warm hits bit-identical",
            evidence: format!(
                "rung {}, looseness {:.3} (analytic {:.3}), sources {}/{}",
                cold.rung,
                cold.looseness(),
                analytic.looseness(),
                cold.source,
                warm.source
            ),
            pass,
        });
    }

    let mut table = Table::new(["paper claim", "evidence", "verdict"]);
    let mut all = true;
    for c in &checks {
        all &= c.pass;
        table.row([
            c.claim.to_string(),
            c.evidence.clone(),
            if c.pass {
                "PASS".into()
            } else {
                "FAIL".to_string()
            },
        ]);
    }
    ExperimentReport {
        id: "summary",
        title: "Summary: the paper's headline claims, re-derived in one pass".into(),
        table,
        text: format!(
            "All headline claims reproduced: {all} (expected true). Each row is a quick\n\
             re-derivation; the dedicated experiments (table1-*, cor58, prop53, …) carry\n\
             the full sweeps and discussion.\n"
        ),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn summary_all_pass() {
        let report = super::summary();
        let rendered = report.render();
        assert!(
            !rendered.contains("FAIL"),
            "headline claim failed:\n{rendered}"
        );
        assert!(rendered.contains("reproduced: true"));
    }
}
