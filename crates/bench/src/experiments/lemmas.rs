//! The paper's quantitative lemmas and corollaries as executable
//! experiments: each report states the proved inequality and the measured
//! values side by side.

use dbp_algos::offline::ffd_repack_cost;
use dbp_algos::{Cdff, HybridAlgorithm};
use dbp_analysis::binary_strings::{
    expected_max_zero_run_exact, expected_max_zero_run_mc, sum_max_zero_runs,
};
use dbp_analysis::table::{f3, Table};
use dbp_core::bounds::LowerBounds;
use dbp_core::engine;
use dbp_core::reduction::reduce;
use dbp_core::time::Time;
use dbp_workloads::adversary::{run_adversary, AdversaryConfig};
use dbp_workloads::{random_general, sigma_mu, GeneralConfig};

use crate::sweep::parallel_map;

use super::ExperimentReport;

/// Lemma 3.1: `max(span, d, ∫⌈S_t⌉) ≤ OPT_R ≤ FFD-repack ≤ 2∫⌈S_t⌉`.
pub fn lemma31() -> ExperimentReport {
    let seeds: Vec<u64> = (0..8).collect();
    let rows = parallel_map(&seeds, |&seed| {
        let inst = random_general(&GeneralConfig::new(8, 800), seed);
        let lb = LowerBounds::of(&inst);
        let ffd = ffd_repack_cost(&inst);
        (
            seed,
            lb.best().as_bin_ticks(),
            ffd.as_bin_ticks(),
            lb.ceil_integral.scale(2).as_bin_ticks(),
        )
    });
    let mut table = Table::new(["seed", "best LB", "FFD-repack", "2∫⌈S_t⌉", "FFD / LB"]);
    let mut violations = 0;
    for &(seed, lb, ffd, two_ceil) in &rows {
        if !(lb <= ffd && ffd <= two_ceil) {
            violations += 1;
        }
        table.row([
            seed.to_string(),
            f3(lb),
            f3(ffd),
            f3(two_ceil),
            f3(ffd / lb),
        ]);
    }
    ExperimentReport {
        id: "lemma31",
        title: "Lemma 3.1: the OPT_R bracket is ordered and within 2×".into(),
        table,
        text: format!(
            "Ordering violations: {violations} (expected 0). The FFD/LB column bounds the\n\
             experiment bracket's looseness — every reported 'ratio ≥' is within that\n\
             factor of the true competitive ratio on the instance.\n"
        ),
    }
}

/// Lemma 3.3: HA's GN-bin count never exceeds `2 + 4√log μ`.
pub fn lemma33() -> ExperimentReport {
    let ns: &[u32] = &[4, 9, 16, 25];
    let rows = parallel_map(ns, |&n| {
        let mut ha = HybridAlgorithm::new();
        let cfg = AdversaryConfig::new(n).with_rounds((1u64 << n).min(1024));
        let _ = run_adversary(&mut ha, &cfg).expect("ha legal");
        (n, ha.gn_peak(), 2.0 + 4.0 * (n as f64).sqrt())
    });
    let mut table = Table::new(["log μ", "GN peak (measured)", "2 + 4√log μ (bound)"]);
    let mut ok = true;
    for &(n, peak, bound) in &rows {
        ok &= (peak as f64) <= bound;
        table.row([n.to_string(), peak.to_string(), f3(bound)]);
    }
    ExperimentReport {
        id: "lemma33",
        title: "Lemma 3.3: HA's GN bins stay below 2 + 4√log μ".into(),
        table,
        text: format!("Bound respected on every sweep point: {ok} (expected true).\n"),
    }
}

/// Lemma 3.5: after the σ→σ′ reduction, the *load* of σ′ at any moment
/// covers HA's CD-bin count: `S_t(σ′) ≥ k_t / (4√log μ)` (which is what
/// the paper integrates into `OPT^t_R(σ′) ≥ max(1, k_t/4√log μ)`).
pub fn lemma35() -> ExperimentReport {
    use dbp_core::engine::InteractiveSim;
    use dbp_core::reduction::reduce;

    let ns: &[u32] = &[4, 6, 9, 12];
    let rows = parallel_map(ns, |&n| {
        // Drive HA under the adversary while sampling k_t after each
        // moment's arrivals.
        let cfg = AdversaryConfig::new(n);
        let out = run_adversary(HybridAlgorithm::new(), &cfg).expect("legal");
        // Replay the *same* instance, sampling k_t this time.
        let mut ha = HybridAlgorithm::new();
        let mut sim = InteractiveSim::new(&mut ha);
        let mut samples: Vec<(Time, usize)> = Vec::new();
        let items = out.instance.items();
        let mut idx = 0;
        while idx < items.len() {
            let t = items[idx].arrival;
            while idx < items.len() && items[idx].arrival == t {
                let it = items[idx];
                sim.arrive_at(it.arrival, it.duration(), it.size)
                    .expect("legal");
                idx += 1;
            }
            samples.push((t, sim.algorithm().cd_open()));
        }
        drop(sim);
        // The reduced instance's load profile.
        let reduced = reduce(&out.instance);
        let profile = reduced.load_profile();
        let denom = 4.0 * (n as f64).sqrt();
        let mut worst_margin = f64::INFINITY;
        let mut violations = 0u64;
        for &(t, k) in &samples {
            if k == 0 {
                continue;
            }
            let load = profile.load_at(t).as_f64();
            let required = k as f64 / denom;
            worst_margin = worst_margin.min(load / required);
            if load + 1e-9 < required {
                violations += 1;
            }
        }
        let max_k = samples.iter().map(|&(_, k)| k).max().unwrap_or(0);
        (n, samples.len(), max_k, violations, worst_margin)
    });

    let mut table = Table::new([
        "log μ",
        "moments sampled",
        "peak k_t",
        "violations",
        "min S_t(σ′)/(k_t/4√log μ)",
    ]);
    for &(n, m, k, v, margin) in &rows {
        table.row([
            n.to_string(),
            m.to_string(),
            k.to_string(),
            v.to_string(),
            f3(margin),
        ]);
    }
    ExperimentReport {
        id: "lemma35",
        title: "Lemma 3.5: the reduced load always covers HA's CD-bin count".into(),
        table,
        text: "Expected: zero violations and a margin ≥ 1 at every moment — the σ→σ′\n\
               reduction really does let every open CD bin be charged to load that is\n\
               still alive, the crux of Theorem 3.2's charging argument.\n"
            .into(),
    }
}

/// Observations 1–2 and Corollary 3.4: the σ→σ′ reduction costs ≤ 4× span,
/// ≤ 4× demand, and ≤ 16× OPT_R.
pub fn reduction() -> ExperimentReport {
    let seeds: Vec<u64> = (0..8).collect();
    let rows = parallel_map(&seeds, |&seed| {
        let mut cfg = GeneralConfig::new(8, 500);
        cfg.mean_gap = 0; // busy-period instance, as Corollary 3.4 assumes
        let inst = random_general(&cfg, seed);
        let red = reduce(&inst);
        let span_ratio = red.span_dur().ticks() as f64 / inst.span_dur().ticks().max(1) as f64;
        let demand_ratio = red.demand().ratio_to(inst.demand());
        // Certified OPT_R(σ′)/OPT_R(σ) upper estimate: ffd(σ′) / best-LB(σ).
        let cost_ratio = ffd_repack_cost(&red).ratio_to(LowerBounds::of(&inst).best());
        (seed, span_ratio, demand_ratio, cost_ratio)
    });
    let mut table = Table::new([
        "seed",
        "span′/span (≤4)",
        "d′/d (≤4)",
        "OPT′UB/OPT LB (≤16·loose)",
    ]);
    let mut obs_ok = true;
    for &(seed, s, d, c) in &rows {
        obs_ok &= s <= 4.0 && d <= 4.0;
        table.row([seed.to_string(), f3(s), f3(d), f3(c)]);
    }
    ExperimentReport {
        id: "reduction",
        title: "Observations 1–2 / Corollary 3.4: the departure-rounding reduction is cheap".into(),
        table,
        text: format!(
            "Observations 1–2 hold exactly on every instance: {obs_ok} (expected true).\n\
             The last column certifies OPT_R(σ′) ≤ c·OPT_R(σ) with c ≤ 16 up to bracket\n\
             looseness (it divides an upper bound by a lower bound).\n"
        ),
    }
}

/// Corollary 5.8: `CDFF_{t⁺}(σ_μ) = max_0(binary(t)) + 1` at every moment.
pub fn cor58() -> ExperimentReport {
    let ns: &[u32] = &[3, 6, 9, 12, 14];
    let rows = parallel_map(ns, |&n| {
        let inst = sigma_mu(n);
        let res = engine::run(&inst, Cdff::new()).expect("cdff legal");
        let mu = 1u64 << n;
        let mut mismatches = 0u64;
        for t in 0..mu {
            let expected = dbp_analysis::max_zero_run(t, n) as usize + 1;
            if res.open_at(Time(t)) != expected {
                mismatches += 1;
            }
        }
        (n, mu, mismatches, res.cost.as_bin_ticks())
    });
    let mut table = Table::new(["log μ", "moments checked", "mismatches", "CDFF(σ_μ)"]);
    for &(n, mu, mism, cost) in &rows {
        table.row([n.to_string(), mu.to_string(), mism.to_string(), f3(cost)]);
    }
    ExperimentReport {
        id: "cor58",
        title: "Corollary 5.8: CDFF's open-bin count equals max_0(binary(t)) + 1 exactly".into(),
        table,
        text: "Expected: zero mismatches at every μ — the paper's counter identity holds\n\
               tick-for-tick in the implementation.\n"
            .into(),
    }
}

/// Lemma 5.9 / Corollary 5.10: `E[max_0] ≤ 2 log n` and
/// `Σ_t max_0(binary(t)) ≤ 2μ log log μ`.
pub fn lemma59() -> ExperimentReport {
    let mut table = Table::new([
        "n = log μ",
        "E[max_0] (exact)",
        "E[max_0] (MC)",
        "2·log n bound",
        "Σ max_0",
        "2μ·lglg μ bound",
    ]);
    let mut ok = true;
    for &n in &[2u32, 4, 8, 12, 16, 20] {
        let exact = expected_max_zero_run_exact(n);
        let mc = expected_max_zero_run_mc(n, 50_000, 42);
        let e_bound = 2.0 * (n as f64).log2().max(1.0);
        let sum = sum_max_zero_runs(n);
        let mu = 1u64 << n;
        let s_bound = 2.0 * mu as f64 * (n as f64).log2().max(1.0);
        ok &= exact <= e_bound && (sum as f64) <= s_bound;
        table.row([
            n.to_string(),
            f3(exact),
            f3(mc),
            f3(e_bound),
            sum.to_string(),
            f3(s_bound),
        ]);
    }
    ExperimentReport {
        id: "lemma59",
        title: "Lemma 5.9 / Corollary 5.10: zero-run expectations are O(log log μ)".into(),
        table,
        text: format!(
            "All bounds hold: {ok} (expected true). Exact values are full enumerations\n\
                       of all 2^n strings; MC uses 50k samples.\n"
        ),
    }
}

/// Proposition 5.3: `CDFF(σ_μ) ≤ (2 log log μ + 1)·OPT_R(σ_μ)`.
pub fn prop53() -> ExperimentReport {
    let ns: &[u32] = &[3, 6, 9, 12, 14, 17];
    let rows = parallel_map(ns, |&n| {
        let inst = sigma_mu(n);
        let res = engine::run(&inst, Cdff::new()).expect("cdff legal");
        let mu = (1u64 << n) as f64;
        // OPT_R(σ_μ) ≥ μ (span bound; an item of length μ arrives at 0);
        // the proposition divides by exactly that.
        let ratio = res.cost.as_bin_ticks() / mu;
        let envelope = 2.0 * (n as f64).log2().max(1.0) + 1.0;
        (n, ratio, envelope)
    });
    let mut table = Table::new(["log μ", "CDFF(σ_μ)/μ", "2·lglg μ + 1 envelope", "within"]);
    let mut ok = true;
    for &(n, ratio, envelope) in &rows {
        let within = ratio <= envelope;
        ok &= within;
        table.row([n.to_string(), f3(ratio), f3(envelope), within.to_string()]);
    }
    ExperimentReport {
        id: "prop53",
        title: "Proposition 5.3: CDFF(σ_μ) ≤ (2 log log μ + 1)·OPT_R".into(),
        table,
        text: format!("Envelope respected at every μ: {ok} (expected true).\n"),
    }
}

/// Lemma 5.12: if CDFF has `k` open bins in row `r` at `t⁺`, the items
/// ever packed into that row that are still active at `t⁺` *in σ′* carry
/// load at least `(k−1)/2`.
pub fn lemma512() -> ExperimentReport {
    use dbp_core::engine::InteractiveSim;
    use dbp_workloads::{random_aligned, AlignedConfig};

    let seeds: Vec<u64> = (0..6).collect();
    let rows = parallel_map(&seeds, |&seed| {
        let inst = random_aligned(&AlignedConfig::new(9, 1_200), seed);
        let reduced = reduce(&inst);

        // Drive CDFF item by item, recording each item's row and taking a
        // rows snapshot after every moment's arrivals.
        let mut algo = Cdff::new();
        let mut sim = InteractiveSim::new(&mut algo);
        let mut item_row: Vec<u32> = Vec::with_capacity(inst.len());
        let mut snapshots: Vec<(Time, Vec<(u32, usize)>)> = Vec::new();
        let items = inst.items();
        let mut idx = 0;
        while idx < items.len() {
            let t = items[idx].arrival;
            while idx < items.len() && items[idx].arrival == t {
                let it = items[idx];
                let bin = sim
                    .arrive_at(it.arrival, it.duration(), it.size)
                    .expect("legal");
                let row = sim
                    .algorithm()
                    .row_of_bin(bin)
                    .expect("freshly used bins are in a row");
                item_row.push(row);
                idx += 1;
            }
            snapshots.push((t, sim.algorithm().row_sizes()));
        }
        drop(sim);

        // Check the lemma at every snapshot, for every row with k ≥ 2.
        let mut checks = 0u64;
        let mut violations = 0u64;
        let mut min_margin = f64::INFINITY;
        for (t, rows_at_t) in &snapshots {
            for &(row_key, k) in rows_at_t {
                if k < 2 {
                    continue;
                }
                // d_r^{t⁺}(σ′): load of items ever packed into this row
                // that are active at t⁺ under the REDUCED departures.
                let load: f64 = items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| item_row[*i] == row_key)
                    .filter(|(i, _)| reduced.items()[*i].active_at(*t))
                    .map(|(_, it)| it.size.max_size().as_f64())
                    .sum();
                let required = (k as f64 - 1.0) / 2.0;
                checks += 1;
                min_margin = min_margin.min(load / required);
                if load + 1e-9 < required {
                    violations += 1;
                }
            }
        }
        (seed, checks, violations, min_margin)
    });

    let mut table = Table::new([
        "seed",
        "checks (k ≥ 2)",
        "violations",
        "min d_r/( (k−1)/2 )",
    ]);
    for &(seed, c, v, m) in &rows {
        table.row([
            seed.to_string(),
            c.to_string(),
            v.to_string(),
            if m.is_finite() { f3(m) } else { "—".into() },
        ]);
    }
    ExperimentReport {
        id: "lemma512",
        title: "Lemma 5.12: reduced row loads cover (k−1)/2 per CDFF row".into(),
        table,
        text: "Random aligned inputs at log μ = 9; rows snapshotted after every arrival\n\
               moment. Expected: zero violations — each CDFF row with k open bins holds\n\
               ≥ (k−1)/2 of still-alive (post-reduction) load, the charging step behind\n\
               Theorem 5.1.\n"
            .into(),
    }
}
