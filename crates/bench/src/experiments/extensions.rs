//! Extension experiments beyond the paper's own artifacts:
//!
//! * `goal-comparison` — the introduction's argument for MinUsageTime over
//!   the momentary goal function, made quantitative;
//! * `semi-aligned` — the conclusion's "other interesting families of
//!   inputs": how CDFF's aligned-input advantage degrades as the arrival
//!   grid loosens (alignment slack `k`);
//! * `randomization` — Random-Fit under the adaptive adversary, checking
//!   that randomization alone does not escape the Ω(√log μ) forcing;
//! * `adaptivity` — adaptive prefixes vs the oblivious full-ladder train,
//!   isolating where the adversary's power comes from;
//! * `g-parallel` — the Shalom et al. bounded-parallelism special case
//!   (uniform sizes 1/g).

use dbp_algos::RandomFit;
use dbp_analysis::table::{f3, Table};
use dbp_core::{compare_goals, engine};
use dbp_workloads::adversary::{run_adversary, AdversaryConfig};
use dbp_workloads::{semi_aligned, sigma_mu, SemiAlignedConfig};

use crate::bracket;
use crate::sweep::parallel_map;

use super::ExperimentReport;

/// Momentary vs usage-time goal functions across the workload families.
pub fn goal_comparison() -> ExperimentReport {
    // A spike workload: long light background plus brief heavy bursts —
    // the introduction's "momentarily high, low the rest of the time".
    let mut b = dbp_core::InstanceBuilder::new();
    use dbp_core::{Dur, Size, Time};
    b.push(Time(0), Dur(4096), Size::from_ratio(1, 10));
    for burst in 0..4u64 {
        let t = 512 + burst * 1024;
        for _ in 0..12 {
            b.push(Time(t), Dur(4), Size::from_ratio(4, 10));
        }
    }
    let spike = b.build().expect("valid");
    let sigma = sigma_mu(10);

    let mut table = Table::new([
        "workload",
        "algorithm",
        "momentary ratio",
        "usage-time ratio",
        "momentary / usage",
    ]);
    for (wname, inst) in [("spike", &spike), ("sigma_mu_10", &sigma)] {
        for name in ["first-fit", "hybrid", "cdff"] {
            let algo = dbp_algos::by_name(name).expect("registry");
            let res = engine::run(inst, algo).expect("legal");
            let goals = compare_goals(inst, &res);
            table.row([
                wname.to_string(),
                name.to_string(),
                f3(goals.momentary),
                f3(goals.usage_time),
                f3(goals.momentary / goals.usage_time),
            ]);
        }
    }
    ExperimentReport {
        id: "goal-comparison",
        title: "Extension: momentary vs MinUsageTime goal functions (introduction's argument)"
            .into(),
        table,
        text: "Expected: on the spike workload the momentary ratio is several times the\n\
               usage-time ratio — a single burst dominates the momentary metric while\n\
               barely moving the bill. MinUsageTime (the paper's choice) reflects what a\n\
               cloud operator pays; the momentary metric punishes transients.\n"
            .into(),
    }
}

/// CDFF and HA across alignment slack.
pub fn semi_aligned_sweep() -> ExperimentReport {
    let slacks: &[u32] = &[0, 1, 2, 4, 8, 12];
    let n = 12u32;
    let seeds: &[u64] = &[1, 2, 3];
    let rows = parallel_map(slacks, |&k| {
        let mut cdff_sum = 0.0;
        let mut ha_sum = 0.0;
        let mut measured = 0;
        for &seed in seeds {
            let inst = semi_aligned(&SemiAlignedConfig::new(n, k, 3_000), seed);
            measured = measured.max(dbp_workloads::measured_slack(&inst));
            let cdff = engine::run(&inst, dbp_algos::Cdff::new()).expect("legal");
            let ha = engine::run(&inst, dbp_algos::HybridAlgorithm::new()).expect("legal");
            cdff_sum += bracket::ratio_vs_opt_r(&inst, cdff.cost).0;
            ha_sum += bracket::ratio_vs_opt_r(&inst, ha.cost).0;
        }
        let m = seeds.len() as f64;
        (k, measured, cdff_sum / m, ha_sum / m)
    });
    let mut table = Table::new([
        "slack k",
        "measured slack",
        "CDFF mean ratio ≥",
        "HA mean ratio ≥",
    ]);
    for &(k, measured, cdff, ha) in &rows {
        table.row([k.to_string(), measured.to_string(), f3(cdff), f3(ha)]);
    }
    ExperimentReport {
        id: "semi-aligned",
        title: "Extension: alignment slack — between Definition 2.1 and general inputs".into(),
        table,
        text: format!(
            "Random semi-aligned inputs at log μ = {n}, {} seeds per point: class-i items\n\
             arrive on the 2^(i−k) grid. Expected: CDFF's advantage is strongest at k = 0\n\
             (the regime its O(log log μ) analysis covers) and its ratio drifts up as the\n\
             grid loosens, while HA is insensitive to alignment — evidence that the\n\
             aligned-input structure, not just duration classes, powers CDFF.\n",
            seeds.len()
        ),
    }
}

/// Adaptivity: the adversary's power comes from watching the algorithm.
/// The oblivious "ladder train" (full σ*_t at every t, fixed in advance)
/// releases strictly more load, yet hurts far less per unit of OPT.
pub fn adaptivity() -> ExperimentReport {
    let ns: &[u32] = &[4, 6, 9, 12];
    let rows = parallel_map(ns, |&n| {
        let adaptive = run_adversary(dbp_algos::HybridAlgorithm::new(), &AdversaryConfig::new(n))
            .expect("legal");
        let (adaptive_lo, _) = bracket::ratio_vs_opt_r(&adaptive.instance, adaptive.result.cost);
        let oblivious = dbp_workloads::ladder_train(n, 1u64 << n);
        let res = engine::run(&oblivious, dbp_algos::HybridAlgorithm::new()).expect("legal");
        let (obliv_lo, _) = bracket::ratio_vs_opt_r(&oblivious, res.cost);
        (
            n,
            adaptive.instance.len(),
            adaptive_lo,
            oblivious.len(),
            obliv_lo,
        )
    });
    let mut table = Table::new([
        "log μ",
        "adaptive items",
        "adaptive ratio ≥",
        "oblivious items",
        "oblivious ratio ≥",
    ]);
    for &(n, ai, alo, oi, olo) in &rows {
        table.row([
            n.to_string(),
            ai.to_string(),
            f3(alo),
            oi.to_string(),
            f3(olo),
        ]);
    }
    ExperimentReport {
        id: "adaptivity",
        title: "Extension: adaptive vs oblivious ladders — where the adversary's power lives"
            .into(),
        table,
        text: "The oblivious train releases every ladder in full (more items, more load);\n\
               the adaptive adversary releases prefixes cut exactly when the victim has\n\
               opened √log μ bins. Expected: much smaller certified ratios on the\n\
               oblivious input — densely-released ladders are easy to pack well, so OPT\n\
               scales with the load too. Stopping early is what starves OPT.\n"
            .into(),
    }
}

/// Bounded-parallelism interval scheduling (Shalom et al.): uniform sizes
/// `1/g` across a range of `g`.
pub fn g_parallel() -> ExperimentReport {
    use dbp_workloads::{g_parallel_random, GParallelConfig};
    let gs: &[u64] = &[1, 2, 4, 8, 16];
    let rows = parallel_map(gs, |&g| {
        let mut ff = 0.0;
        let mut ha = 0.0;
        let mut daf = 0.0;
        let seeds = [1u64, 2, 3];
        for &seed in &seeds {
            let inst = g_parallel_random(&GParallelConfig::new(g, 2_000, 1_024), seed);
            let b = bracket::opt_r(&inst);
            ff += b
                .ratio_bracket(
                    engine::run(&inst, dbp_algos::FirstFit::new())
                        .expect("legal")
                        .cost,
                )
                .0;
            ha += b
                .ratio_bracket(
                    engine::run(&inst, dbp_algos::HybridAlgorithm::new())
                        .expect("legal")
                        .cost,
                )
                .0;
            daf += b
                .ratio_bracket(
                    engine::run(&inst, dbp_algos::DepartureAwareFit::new())
                        .expect("legal")
                        .cost,
                )
                .0;
        }
        let m = seeds.len() as f64;
        (g, ff / m, ha / m, daf / m)
    });
    let mut table = Table::new([
        "g",
        "first-fit ratio ≥",
        "hybrid ratio ≥",
        "departure-aware ratio ≥",
    ]);
    for &(g, ff, ha, daf) in &rows {
        table.row([g.to_string(), f3(ff), f3(ha), f3(daf)]);
    }
    ExperimentReport {
        id: "g-parallel",
        title: "Extension: bounded-parallelism interval scheduling (uniform sizes 1/g)".into(),
        table,
        text: "The Shalom et al. setting is MinUsageTime DBP with all sizes 1/g. Expected:\n\
               at g = 1 every algorithm is trivially optimal (one job per machine, cost\n\
               = span of each job); contention and the value of clairvoyance grow with g.\n"
            .into(),
    }
}

/// Random-Fit under the adaptive adversary.
pub fn randomization() -> ExperimentReport {
    let ns: &[u32] = &[4, 6, 9, 12];
    let rows = parallel_map(ns, |&n| {
        let cfg = AdversaryConfig::new(n);
        let out = run_adversary(RandomFit::new(17), &cfg).expect("legal");
        let (lo, _) = bracket::ratio_vs_opt_r(&out.instance, out.result.cost);
        let det = run_adversary(dbp_algos::FirstFit::new(), &cfg).expect("legal");
        let (det_lo, _) = bracket::ratio_vs_opt_r(&det.instance, det.result.cost);
        (n, out.rounds_forced, lo, det_lo)
    });
    let mut table = Table::new([
        "log μ",
        "rounds forced (of 2^n)",
        "random-fit ratio ≥",
        "first-fit ratio ≥",
    ]);
    for &(n, forced, lo, det_lo) in &rows {
        table.row([n.to_string(), forced.to_string(), f3(lo), f3(det_lo)]);
    }
    ExperimentReport {
        id: "randomization",
        title: "Extension: randomization does not escape the adaptive adversary".into(),
        table,
        text: "Expected: the adversary forces its bin target in every round regardless of\n\
               the coin flips (it reacts to realized bin counts), and Random-Fit's ratio\n\
               grows with μ like the deterministic algorithms' — the Ω(√log μ) bound is\n\
               about information, not determinism, under adaptive adversaries.\n"
            .into(),
    }
}

/// Prediction noise: how fast does the clairvoyant advantage decay when
/// departure forecasts err? (The paper assumes an oracle; cloud-gaming
/// predictors are merely "accurate".)
pub fn prediction_noise() -> ExperimentReport {
    use dbp_cloudsim::{dispatch, Predictor, SessionRequest, Tier};
    use dbp_core::{Dur, Time};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    // A bimodal session mix where clairvoyance matters: short matches and
    // long sessions at identical tiers, arriving in bursts.
    let make_sessions = |seed: u64| -> Vec<SessionRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..2_000u64)
            .map(|k| {
                let long = rng.gen_range(0..100) < 30;
                let len = if long {
                    rng.gen_range(200..400)
                } else {
                    rng.gen_range(5..30)
                };
                SessionRequest::exact(k, Time(rng.gen_range(0..2_000)), Dur(len), Tier::Premium)
            })
            .collect()
    };

    let predictors: Vec<Predictor> = vec![
        Predictor::Oracle,
        Predictor::Relative { error_pct: 10 },
        Predictor::Relative { error_pct: 25 },
        Predictor::Relative { error_pct: 50 },
        Predictor::Relative { error_pct: 100 },
        Predictor::Biased { bias_pct: -50 },
        Predictor::Constant { fallback: 30 },
    ];
    let rows = parallel_map(&predictors, |&p| {
        let seeds = [1u64, 2, 3];
        let mut daf = 0.0;
        let mut ha = 0.0;
        let mut ff = 0.0;
        for &seed in &seeds {
            let mut sessions = make_sessions(seed);
            p.apply(&mut sessions, seed.wrapping_mul(7919));
            let rep_daf = dispatch(&sessions, dbp_algos::DepartureAwareFit::new()).expect("legal");
            let rep_ha = dispatch(&sessions, dbp_algos::HybridAlgorithm::new()).expect("legal");
            let rep_ff = dispatch(&sessions, dbp_algos::FirstFit::new()).expect("legal");
            let b = bracket::opt_r(&rep_daf.instance);
            daf += b.ratio_bracket(rep_daf.bill).0;
            ha += b.ratio_bracket(rep_ha.bill).0;
            ff += b.ratio_bracket(rep_ff.bill).0;
        }
        let m = seeds.len() as f64;
        (p.label(), daf / m, ha / m, ff / m)
    });
    let mut table = Table::new([
        "predictor",
        "departure-aware ratio ≥",
        "hybrid ratio ≥",
        "first-fit ratio ≥ (control)",
    ]);
    for (label, daf, ha, ff) in &rows {
        table.row([label.clone(), f3(*daf), f3(*ha), f3(*ff)]);
    }
    ExperimentReport {
        id: "prediction-noise",
        title: "Extension: clairvoyance under prediction noise (cloudsim)".into(),
        table,
        text: "Decisions are made on predicted departures, bills on actual ones; packings\n\
               stay valid by construction. Expected: the clairvoyant algorithms degrade\n\
               smoothly with noise and converge toward the non-clairvoyant control as\n\
               forecasts become uninformative — the paper's oracle assumption is worth\n\
               a measurable but bounded premium on this workload.\n"
            .into(),
    }
}

/// Bin-lifetime distributions: how long each algorithm keeps servers
/// powered, on the cloud workload. Complements the scalar ratios with the
/// shape information operators actually look at.
pub fn bin_lifetimes() -> ExperimentReport {
    use dbp_analysis::Histogram;
    use dbp_workloads::{cloud_trace, CloudConfig};

    let inst = cloud_trace(&CloudConfig::new(4_000, 5_000), 11);
    let mut text = String::new();
    let mut table = Table::new(["algorithm", "bins", "mean lifetime", "p50", "p95", "max"]);
    for name in ["first-fit", "hybrid", "departure-aware"] {
        let algo = dbp_algos::by_name(name).expect("registry");
        let res = engine::run(&inst, algo).expect("legal");
        let lifetimes: Vec<f64> = res
            .bin_intervals
            .iter()
            .map(|&(open, close)| close.since(open).ticks() as f64)
            .collect();
        let max = lifetimes.iter().cloned().fold(0.0, f64::max);
        let mut h = Histogram::new(0.0, max.max(1.0), 20);
        h.extend(lifetimes.iter().copied());
        table.row([
            name.to_string(),
            res.bins_opened.to_string(),
            f3(h.mean()),
            f3(h.quantile(0.5)),
            f3(h.quantile(0.95)),
            f3(max),
        ]);
        if name == "departure-aware" {
            text.push_str(&format!(
                "\nLifetime histogram for {name} (20 buckets):\n{}",
                h.render(40)
            ));
        }
    }
    ExperimentReport {
        id: "bin-lifetimes",
        title: "Extension: server-lifetime distributions on cloud traffic".into(),
        table,
        text,
    }
}

/// The capstone: statistically identify each algorithm's growth regime
/// from measured series alone, and check it against the paper's Table 1.
pub fn shape_test() -> ExperimentReport {
    use dbp_analysis::ratio::{classify_growth, Shape};
    use dbp_workloads::ff_pathology_pow2;

    // Series A: HA under the adversary — expect Θ(√log μ).
    let ns_a: Vec<u32> = vec![4, 6, 9, 12, 16, 20, 25];
    let ha_series: Vec<(f64, f64)> = parallel_map(&ns_a, |&n| {
        let cfg = AdversaryConfig::new(n).with_rounds((1u64 << n).min(2048));
        let out = run_adversary(dbp_algos::HybridAlgorithm::new(), &cfg).expect("legal");
        (
            n as f64,
            bracket::ratio_vs_opt_r(&out.instance, out.result.cost).0,
        )
    });

    // Series B/C: CDFF and CBD on σ_μ (cost/μ) — expect Θ(log log μ) and
    // Θ(log μ).
    let ns_b: Vec<u32> = vec![3, 5, 8, 11, 14, 17];
    let aligned: Vec<(f64, f64, f64)> = parallel_map(&ns_b, |&n| {
        let inst = sigma_mu(n);
        let mu = (1u64 << n) as f64;
        let cdff = engine::run(&inst, dbp_algos::Cdff::new()).expect("legal");
        let cbd = engine::run(&inst, dbp_algos::ClassifyByDuration::binary()).expect("legal");
        (
            n as f64,
            cdff.cost.as_bin_ticks() / mu,
            cbd.cost.as_bin_ticks() / mu,
        )
    });

    // Series D: FF on the pathology — expect Θ(μ).
    let ns_d: Vec<u32> = vec![2, 3, 4, 5, 6];
    let ff_series: Vec<(f64, f64)> = parallel_map(&ns_d, |&n| {
        let inst = ff_pathology_pow2(n);
        let res = engine::run(&inst, dbp_algos::FirstFit::new()).expect("legal");
        (n as f64, bracket::opt_nr(&inst).ratio_bracket(res.cost).0)
    });

    let mut table = Table::new([
        "series",
        "expected (Table 1)",
        "identified shape",
        "r²",
        "runner-up",
    ]);
    let mut all_match = true;
    let mut check = |name: &str, expect: Shape, pts: Vec<(f64, f64)>, table: &mut Table| {
        let ns: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let fits = classify_growth(&ns, &ys).expect("enough points");
        let win = fits[0];
        // "Consistent" = the expected shape wins outright, or is within
        // Δr² ≤ 0.02 of the winner (√log μ and log log μ are numerically
        // collinear over any μ range a computer can simulate — their
        // features differ by < 10% across n = 4…25; see text).
        let expected_fit = fits
            .iter()
            .find(|f| f.shape == expect)
            .expect("all shapes fit");
        let consistent = win.shape == expect || win.r2 - expected_fit.r2 <= 0.02;
        all_match &= consistent;
        table.row([
            name.to_string(),
            expect.label().to_string(),
            format!(
                "{}{}",
                win.shape.label(),
                if win.shape == expect {
                    ""
                } else if consistent {
                    " (tie w/ expected)"
                } else {
                    " (MISMATCH)"
                }
            ),
            f3(win.r2),
            format!("{} (r²={})", fits[1].shape.label(), f3(fits[1].r2)),
        ]);
    };
    check("HA @ adversary", Shape::SqrtLog, ha_series, &mut table);
    check(
        "CDFF @ σ_μ (cost/μ)",
        Shape::LogLog,
        aligned.iter().map(|&(n, c, _)| (n, c)).collect(),
        &mut table,
    );
    check(
        "CBD @ σ_μ (cost/μ)",
        Shape::Log,
        aligned.iter().map(|&(n, _, c)| (n, c)).collect(),
        &mut table,
    );
    check("FF @ Ω(μ) pathology", Shape::Linear, ff_series, &mut table);

    ExperimentReport {
        id: "shape-test",
        title: "Capstone: blind growth-shape identification recovers Table 1".into(),
        table,
        text: format!(
            "Each measured series is fitted against all five candidate growth shapes\n\
             (Θ(1), Θ(log log μ), Θ(√log μ), Θ(log μ), Θ(μ)); the best positive-slope\n\
             fit wins, ties within Δr² ≤ 0.02 count as consistent. All four regimes\n\
             consistent with Table 1: {all_match} (expected true).\n\n\
             Caveat, stated plainly: √log μ and log log μ cannot be separated\n\
             statistically at simulable μ — over log μ = 4…25 the two features are\n\
             ~99% correlated, and telling them apart would need μ beyond 2^100. The\n\
             paper's *lower* bound is what pins HA's regime to Θ(√log μ); the data\n\
             confirms growth and excludes Θ(log μ) and Θ(μ).\n"
        ),
    }
}

/// Migration value: the OPT_R vs OPT_NR gap, read as "what would live
/// migration save", across workload families.
pub fn migration_value() -> ExperimentReport {
    use dbp_cloudsim::{dispatch, MigrationAdvice, SessionRequest, Tier};
    use dbp_core::{Dur, Time};
    use dbp_workloads::{cloud_trace, CloudConfig};

    // Family A: the synthetic cloud day (the raw trace, native sizes).
    let trace = cloud_trace(&CloudConfig::new(1_500, 4_000), 5);

    // Family B: a staggered interleave of long and short premium sessions.
    let mut staggered = Vec::new();
    for k in 0..48u64 {
        staggered.push(SessionRequest::exact(
            k,
            Time(k * 2),
            Dur(40),
            Tier::Premium,
        ));
        staggered.push(SessionRequest::exact(
            1000 + k,
            Time(k * 2),
            Dur(3),
            Tier::Premium,
        ));
    }

    let mut table = Table::new([
        "workload",
        "dispatcher",
        "bill",
        "best static",
        "with migration",
        "migration worth",
    ]);
    for (wname, sessions) in [("staggered", &staggered)] {
        for name in ["first-fit", "hybrid", "departure-aware"] {
            let algo = dbp_algos::by_name(name).expect("registry");
            let report = dispatch(sessions, algo).expect("legal");
            let advice = MigrationAdvice::analyse(&report);
            table.row([
                wname.to_string(),
                name.to_string(),
                format!("{:.0}", advice.bill.as_bin_ticks()),
                format!(
                    "{:.0} ({})",
                    advice.best_static.as_bin_ticks(),
                    advice.best_static_strategy
                ),
                format!("{:.0}", advice.with_migration.as_bin_ticks()),
                format!("{:.1}%", (advice.migration_value - 1.0) * 100.0),
            ]);
        }
    }
    // Cloud-day row computed on the raw trace (native sizes) via engine.
    for name in ["first-fit", "hybrid", "departure-aware"] {
        let algo = dbp_algos::by_name(name).expect("registry");
        let res = engine::run(&trace, algo).expect("legal");
        let portfolio = dbp_algos::offline::best_nonrepacking(&trace);
        let with_mig = dbp_algos::offline::ffd_repack_cost(&trace);
        table.row([
            "cloud-day".to_string(),
            name.to_string(),
            format!("{:.0}", res.cost.as_bin_ticks()),
            format!(
                "{:.0} ({})",
                portfolio.cost.as_bin_ticks(),
                portfolio.winner
            ),
            format!("{:.0}", with_mig.as_bin_ticks()),
            format!("{:.1}%", (portfolio.cost.ratio_to(with_mig) - 1.0) * 100.0),
        ]);
    }
    ExperimentReport {
        id: "migration-value",
        title: "Extension: the OPT_R vs OPT_NR gap as live-migration value".into(),
        table,
        text: "The paper proves its upper bound against the stronger repacking optimum\n\
               and its lower bound against the weaker non-repacking one — so the gap\n\
               between them is 'free' for the theory. Operationally the gap is what\n\
               live migration would save. Measured: ~1% on the rigidly staggered mix\n\
               (departures are synchronized, so consolidation has nothing to move) but\n\
               ~9% on the realistic cloud day — duration diversity strands capacity\n\
               that only migration can reclaim.\n"
            .into(),
    }
}

/// Waste decomposition: where does each algorithm's paid-but-unused
/// bin time go — unavoidable ⌈S_t⌉ granularity, or its own packing
/// decisions?
pub fn waste() -> ExperimentReport {
    use dbp_core::waste_breakdown;
    use dbp_workloads::{cloud_trace, random_general, CloudConfig, GeneralConfig};

    let workloads: Vec<(&str, dbp_core::Instance)> = vec![
        (
            "random(log-uniform)",
            random_general(&GeneralConfig::new(10, 3_000), 3),
        ),
        (
            "cloud-gaming",
            cloud_trace(&CloudConfig::new(3_000, 5_000), 3),
        ),
        ("sigma_mu_12", sigma_mu(12)),
    ];
    let mut table = Table::new([
        "workload",
        "algorithm",
        "paid",
        "used %",
        "granularity %",
        "packing %",
    ]);
    for (wname, inst) in &workloads {
        for name in ["first-fit", "hybrid", "cdff", "departure-aware"] {
            let algo = dbp_algos::by_name(name).expect("registry");
            let res = engine::run(inst, algo).expect("legal");
            let w = waste_breakdown(inst, &res);
            let pct = |x: f64| format!("{:.1}%", 100.0 * x / w.paid.max(1e-9));
            table.row([
                wname.to_string(),
                name.to_string(),
                format!("{:.0}", w.paid),
                pct(w.used),
                pct(w.granularity),
                pct(w.packing),
            ]);
        }
    }
    ExperimentReport {
        id: "waste",
        title: "Extension: waste decomposition — granularity vs packing decisions".into(),
        table,
        text: "paid = used + granularity + packing. Granularity (⌈S_t⌉ − S_t) is what even\n\
               a repacking optimum pays; the packing column is the part each algorithm\n\
               could in principle avoid — the quantity all the competitive analysis is\n\
               really about.\n"
            .into(),
    }
}

/// Boot overhead: the paper's objective counts pure usage time; real
/// servers also pay to boot. Sweeping a per-server boot cost re-ranks the
/// dispatchers — strategies that churn many short-lived servers (HA's CD
/// bins) pay for it.
pub fn boot_overhead() -> ExperimentReport {
    use dbp_cloudsim::{CostModel, Scenario};

    let mut scenario = Scenario::week();
    scenario.days = 3;
    scenario.sessions_per_day = 1_000;
    let boots: &[u64] = &[0, 5, 20, 60];

    let mut table = Table::new([
        "boot ticks/server",
        "first-fit (units)",
        "departure-aware (units)",
        "hybrid (units)",
        "cheapest",
    ]);
    for &boot in boots {
        let model = CostModel::demo().with_boot(boot);
        let mut costs: Vec<(&str, u64)> = Vec::new();
        for name in ["first-fit", "departure-aware", "hybrid"] {
            let report = scenario
                .run(|| dbp_algos::by_name(name).expect("registry"), &model, 7)
                .expect("legal");
            costs.push((name, report.total_cost_milli()));
        }
        let cheapest = costs.iter().min_by_key(|&&(_, c)| c).expect("non-empty").0;
        table.row([
            boot.to_string(),
            format!("{:.1}", costs[0].1 as f64 / 1000.0),
            format!("{:.1}", costs[1].1 as f64 / 1000.0),
            format!("{:.1}", costs[2].1 as f64 / 1000.0),
            cheapest.to_string(),
        ]);
    }
    ExperimentReport {
        id: "boot-overhead",
        title: "Extension: per-server boot cost re-ranks the dispatchers".into(),
        table,
        text: "The paper's MinUsageTime objective has zero boot cost. As boots get more\n\
               expensive, server-churning strategies (HA opens many short-lived CD bins)\n\
               fall behind server-frugal ones — a deployment consideration the usage-time\n\
               model abstracts away, quantified.\n"
            .into(),
    }
}
