//! Table 1 of the paper, re-created as measured competitive-ratio
//! envelopes.
//!
//! The paper's Table 1 is a bounds summary; the measurable content is:
//!
//! * **Clairvoyant / general, upper**: HA's ratio on its worst measured
//!   input grows like `√log μ` — `table1-ha` sweeps the Theorem 4.3
//!   adversary and reports ratio envelopes and the `ratio / √log μ`
//!   normalisation, which should stay bounded.
//! * **Clairvoyant / general, lower**: every online algorithm in the suite
//!   is forced to `Ω(√log μ)` by the same adversary — `table1-lb`.
//! * **Clairvoyant / aligned**: CDFF on binary inputs grows like
//!   `log log μ` — `table1-cdff` normalises by `log log μ`.
//! * **Non-clairvoyant**: First-Fit on the Ω(μ) pathology grows linearly in
//!   μ while clairvoyant HA does not — `table1-nonclair`.

use dbp_analysis::stats::linear_fit;
use dbp_analysis::table::{f3, Table};
use dbp_core::engine;
use dbp_workloads::adversary::{run_adversary, AdversaryConfig};
use dbp_workloads::{cloud_trace, ff_pathology_pow2, random_general, CloudConfig, GeneralConfig};

use crate::bracket;
use crate::sweep::parallel_map_seeded;

use super::ExperimentReport;

/// Round cap keeping adversary sweeps fast at large μ without changing the
/// per-round forcing structure.
fn rounds_for(n: u32) -> u64 {
    (1u64 << n).min(2048)
}

/// μ exponents swept by the Table 1 experiments.
pub const SWEEP_NS: &[u32] = &[4, 6, 9, 12, 16, 20, 25];

/// Extra exact-search refinement pool the HA sweep spends across its
/// instances after the per-cell ladder (loosest brackets first).
const BATCH_REFINE_NODES: u64 = 1 << 26;

/// T1 row 1 (upper): HA under the adversary across μ.
pub fn table1_ha() -> ExperimentReport {
    let svc = bracket::service();
    let before = svc.stats();
    let outs = parallel_map_seeded(SWEEP_NS, 0x7AB1_E001, |&n| {
        let cfg = AdversaryConfig::new(n).with_rounds(rounds_for(n));
        run_adversary(dbp_algos::HybridAlgorithm::new(), &cfg)
            .expect("HA never makes illegal moves")
    });
    // Batched refinement: one global budget over the whole sweep, spent on
    // the loosest brackets first, instead of per-cell effort cliffs.
    let insts: Vec<&dbp_core::Instance> = outs.iter().map(|o| &o.instance).collect();
    let tightened = svc.refine_batch(&insts, BATCH_REFINE_NODES);
    let rows: Vec<_> = SWEEP_NS
        .iter()
        .zip(&outs)
        .map(|(&n, out)| {
            let cb = svc.opt_r(&out.instance);
            let (lo, hi) = cb.ratio_bracket(out.result.cost);
            (n, out.instance.len(), lo, hi, cb.rung)
        })
        .collect();
    let delta = svc.stats().since(&before);

    let mut table = Table::new([
        "log μ",
        "items",
        "ratio ≥ (vs UB)",
        "ratio ≤ (vs LB)",
        "ratio≥ / √log μ",
        "rung",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &(n, items, lo, hi, rung) in &rows {
        let norm = lo / (n as f64).sqrt();
        table.row([
            n.to_string(),
            items.to_string(),
            f3(lo),
            f3(hi),
            f3(norm),
            rung.as_str().to_string(),
        ]);
        xs.push((n as f64).sqrt());
        ys.push(lo);
    }
    let fit = linear_fit(&xs, &ys);
    let mut text = match fit {
        Some((a, b, r2)) => format!(
            "Shape check: certified-lower ratio vs √log μ fits y = {} + {}·x with r² = {}.\n\
             Expected: positive slope, good fit (the O(√log μ) upper bound is tight on this input),\n\
             and the normalised column stays bounded as μ grows 16 orders of magnitude.\n",
            f3(a), f3(b), f3(r2)
        ),
        None => String::new(),
    };
    text.push_str(&format!(
        "Bracket service: {} cold, {} warm ({} mem / {} disk); batch refinement\n\
         tightened {} of {} brackets (loosest first, {}M-node pool).\n",
        delta.computed,
        delta.warm(),
        delta.mem_hits,
        delta.disk_hits,
        tightened,
        insts.len(),
        BATCH_REFINE_NODES >> 20,
    ));
    text.push('\n');
    text.push_str(&dbp_analysis::ascii_plot::plot(
        &xs,
        &[("HA certified ratio vs √log μ", &ys)],
        56,
        10,
    ));
    ExperimentReport {
        id: "table1-ha",
        title: "Table 1 / clairvoyant general UPPER: HA ratio growth under the adversary".into(),
        table,
        text,
    }
}

/// T1 row 1 (lower): the adversary forces every algorithm.
///
/// Unlike the UPPER sweep this one runs the full μ rounds the proof
/// requires (the `4μ` slack term of Equation (4) must be dominated), so it
/// stops at `log μ = 12` to stay fast.
pub fn table1_lb() -> ExperimentReport {
    let ns: &[u32] = &[4, 6, 9, 12];
    let algos = [
        "first-fit",
        "best-fit",
        "cbd",
        "hybrid",
        "cdff",
        "departure-aware",
    ];
    let jobs: Vec<(u32, &str)> = ns
        .iter()
        .flat_map(|&n| algos.iter().map(move |&a| (n, a)))
        .collect();
    let rows = parallel_map_seeded(&jobs, 0x7AB1_E002, |&(n, name)| {
        let algo = dbp_algos::by_name(name).expect("registry name");
        let cfg = AdversaryConfig::new(n); // full μ rounds
        let out = run_adversary(algo, &cfg).expect("suite algorithms are legal");
        let (lo, _) = bracket::ratio_vs_opt_r(&out.instance, out.result.cost);
        (n, name, lo)
    });

    let mut table = Table::new(["algorithm", "log μ", "certified ratio ≥", "≥ / √log μ"]);
    for &(n, name, lo) in &rows {
        table.row([
            name.to_string(),
            n.to_string(),
            f3(lo),
            f3(lo / (n as f64).sqrt()),
        ]);
    }
    ExperimentReport {
        id: "table1-lb",
        title: "Table 1 / clairvoyant general LOWER: adversary forces Ω(√log μ) on every algorithm"
            .into(),
        table,
        text: "Expected: the certified ratio grows with μ for every algorithm, and the\n\
               normalised column is bounded away from 0 — no online algorithm escapes\n\
               the Theorem 4.3 adversary.\n"
            .into(),
    }
}

/// T1 row 2: CDFF on binary (worst-case aligned) inputs.
pub fn table1_cdff() -> ExperimentReport {
    let ns: &[u32] = &[3, 5, 8, 11, 14, 17, 20];
    let rows = parallel_map_seeded(ns, 0x7AB1_E003, |&n| {
        let inst = dbp_workloads::sigma_mu(n);
        let cdff = engine::run(&inst, dbp_algos::Cdff::new()).expect("cdff legal");
        let cbd = engine::run(&inst, dbp_algos::ClassifyByDuration::binary()).expect("cbd legal");
        let ha = engine::run(&inst, dbp_algos::HybridAlgorithm::new()).expect("ha legal");
        // OPT_R(σ_μ) ≥ span = μ; an anchor item of length μ exists, so the
        // span bound is the tight comparator the paper uses in Prop 5.3.
        let mu = (1u64 << n) as f64;
        (
            n,
            cdff.cost.as_bin_ticks() / mu,
            cbd.cost.as_bin_ticks() / mu,
            ha.cost.as_bin_ticks() / mu,
        )
    });

    let mut table = Table::new([
        "log μ",
        "CDFF cost/μ",
        "CBD cost/μ",
        "HA cost/μ",
        "CDFF / (2 lglg μ + 1)",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &(n, cdff, cbd, ha) in &rows {
        let loglog = (n as f64).log2().max(1.0);
        table.row([
            n.to_string(),
            f3(cdff),
            f3(cbd),
            f3(ha),
            f3(cdff / (2.0 * loglog + 1.0)),
        ]);
        xs.push(loglog);
        ys.push(cdff);
    }
    let mut text = match linear_fit(&xs, &ys) {
        Some((a, b, r2)) => format!(
            "Shape check: CDFF's cost/μ vs log log μ fits y = {} + {}·x (r² = {}).\n\
             Expected: CDFF grows ~log log μ and stays below the Prop 5.3 envelope\n\
             (last column ≤ 1); CBD grows ~log μ (a bin chain per class). HA degenerates\n\
             to First-Fit on σ_μ (every type's load stays under its threshold) which is\n\
             optimal *on this particular input* — σ_μ is CDFF's worst case, not HA's;\n\
             the general-input guarantees are the other way around.\n",
            f3(a),
            f3(b),
            f3(r2)
        ),
        None => String::new(),
    };
    text.push('\n');
    text.push_str(&dbp_analysis::ascii_plot::plot(
        &xs,
        &[("CDFF cost/μ vs log log μ", &ys)],
        56,
        10,
    ));
    ExperimentReport {
        id: "table1-cdff",
        title: "Table 1 / aligned: CDFF is O(log log μ) on binary inputs".into(),
        table,
        text,
    }
}

/// T1 row 3: First-Fit vs clairvoyant algorithms on the Ω(μ) pathology,
/// plus the *adaptive* Li adversary that pins ANY non-clairvoyant
/// algorithm (here Best-Fit, which dodges the fixed pathology's ordering).
pub fn table1_nonclair() -> ExperimentReport {
    table1_nonclair_rows(&[2, 3, 4, 5, 6])
}

/// [`table1_nonclair`] over caller-chosen μ exponents — the goldens pin a
/// cheap two-row rendering of this table byte-for-byte.
pub fn table1_nonclair_rows(ns: &[u32]) -> ExperimentReport {
    use dbp_workloads::run_nc_adversary;
    let rows = parallel_map_seeded(ns, 0x7AB1_E004, |&n| {
        let inst = ff_pathology_pow2(n);
        let ff = engine::run(&inst, dbp_algos::FirstFit::new()).expect("ff legal");
        let ha = engine::run(&inst, dbp_algos::HybridAlgorithm::new()).expect("ha legal");
        let daf = engine::run(&inst, dbp_algos::DepartureAwareFit::new()).expect("daf legal");
        let b = bracket::opt_nr(&inst);
        let (ff_lo, _) = b.ratio_bracket(ff.cost);
        let (ha_lo, _) = b.ratio_bracket(ha.cost);
        let (daf_lo, _) = b.ratio_bracket(daf.cost);
        // Adaptive departures vs Best-Fit: the lower bound that holds for
        // every non-clairvoyant algorithm.
        let k = 1u64 << n;
        let adaptive = run_nc_adversary(dbp_algos::BestFit::new(), k, k).expect("bf legal");
        let (bf_lo, _) = bracket::opt_nr(&adaptive.instance).ratio_bracket(adaptive.result.cost);
        (n, ff_lo, ha_lo, daf_lo, bf_lo)
    });

    let mut table = Table::new([
        "μ",
        "FF ratio ≥ (fixed input)",
        "FF ratio / μ",
        "HA ratio ≥",
        "DAF ratio ≥",
        "BF ratio ≥ (adaptive departures)",
    ]);
    for &(n, ff, ha, daf, bf) in &rows {
        let mu = (1u64 << n) as f64;
        table.row([
            format!("{}", 1u64 << n),
            f3(ff),
            f3(ff / mu),
            f3(ha),
            f3(daf),
            f3(bf),
        ]);
    }
    ExperimentReport {
        id: "table1-nonclair",
        title: "Table 1 / non-clairvoyant: FF pays Θ(μ); clairvoyant algorithms do not".into(),
        table,
        text: "Expected: FF's ratio grows linearly in μ (normalised column roughly constant,\n\
               bounded by the μ+4 guarantee) while the clairvoyant HA stays flat — the\n\
               clairvoyance separation of Table 1. Note the departure-aware greedy matches\n\
               FF here: on this input every arriving filler fits only the bin FF would\n\
               pick, so *knowing* departures is not enough — it takes HA's duration types\n\
               to sidestep the trap. The last column uses the Li et al. ADAPTIVE-departure\n\
               adversary (placement first, lifetime second) against Best-Fit — a fixed\n\
               input cannot trap every algorithm, but adaptive departures trap them all.\n"
            .into(),
    }
}

/// The benign counterpart: every algorithm on random/cloud workloads,
/// aggregated through the evaluation-matrix API.
pub fn benign_workloads() -> ExperimentReport {
    let seeds: &[u64] = &[1, 2, 3, 4, 5];
    let mut instances: Vec<(String, dbp_core::Instance)> = Vec::new();
    for &seed in seeds {
        instances.push((
            format!("random-{seed}"),
            random_general(&GeneralConfig::new(10, 2_000), seed),
        ));
        instances.push((
            format!("cloud-{seed}"),
            cloud_trace(&CloudConfig::new(2_000, 5_000), seed),
        ));
    }
    let matrix = crate::matrix::evaluate(dbp_algos::registry_names(), &instances);

    let mut table = Table::new(["rank", "algorithm", "geo-mean ratio ≥", "worst ratio ≤"]);
    for (rank, (name, geo)) in matrix.leaderboard().into_iter().enumerate() {
        let worst_hi = matrix
            .by_algorithm(&name)
            .iter()
            .map(|c| c.ratio.1)
            .fold(0.0, f64::max);
        table.row([(rank + 1).to_string(), name, f3(geo), f3(worst_hi)]);
    }
    ExperimentReport {
        id: "benign",
        title: "Benign workloads: leaderboard over random + cloud traffic".into(),
        table,
        text: format!(
            "Geometric mean of certified-lower ratios over {} instances ({} random\n\
             log-uniform + {} cloud days). Expected: everything sits at small constants —\n\
             the √log μ phenomenon is adversarial, not typical-case — with the greedy\n\
             clairvoyant heuristic on top and Next-Fit at the bottom.\n",
            instances.len(),
            seeds.len(),
            seeds.len()
        ),
    }
}
