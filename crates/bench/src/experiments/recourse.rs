//! The `recourse` experiment: the cost/moves frontier of budgeted
//! repacking.
//!
//! The `rod:first-fit` and `amortized:first-fit` wrappers serve the same
//! pinned cloud trace under a ladder of move budgets, from `none` (the
//! irrevocable classic model) to `unlimited`. Every run is audited with
//! the budget replayed from the event stream, the `none` rows are asserted
//! bit-identical to the plain base algorithm, and the per-epoch ladder is
//! asserted monotone: more allowance never costs more on this workload.
//! Ratios are against the certified `OPT_R` bracket of the (fixed) trace,
//! so the frontier reads as "how much of First-Fit's gap to OPT does each
//! extra move buy back".

use dbp_analysis::table::{f3, Table};
use dbp_core::audit::InvariantAuditor;
use dbp_core::engine::{self, run_with_recourse};
use dbp_core::recourse::RecourseBudget;
use dbp_workloads::{cloud_trace, CloudConfig};

use crate::bracket;
use crate::sweep::parallel_map_seeded;

use super::ExperimentReport;

/// Cost vs. move budget for the bounded-recourse wrappers, audited,
/// against the certified bracket of the unmodified trace.
pub fn recourse() -> ExperimentReport {
    let inst = cloud_trace(&CloudConfig::new(600, 2_000), 17);
    let b0 = bracket::opt_r(&inst);
    let budgets: &[&str] = &["none", "epoch=1", "epoch=4", "amortized=250", "unlimited"];
    let algos = ["rod:first-fit", "amortized:first-fit"];
    let rows = parallel_map_seeded(budgets, 0x4EC0_0125, |&spec| {
        let budget = RecourseBudget::parse(spec).expect("ladder specs parse");
        algos
            .iter()
            .map(|&name| {
                let algo = dbp_algos::by_name(name).expect("registry");
                let mut auditor = InvariantAuditor::new();
                auditor.expect_budget(budget);
                let res = run_with_recourse(&inst, algo, budget, &mut auditor).expect("legal run");
                if let Err(v) = auditor.verify_result(&res) {
                    panic!("{name} under {spec}: {v}");
                }
                if budget.is_none() {
                    // Bit-identity safety net, re-proved on every
                    // regeneration: with no budget the wrapper IS its base.
                    let base =
                        engine::run(&inst, dbp_algos::by_name("first-fit").expect("registry"))
                            .expect("legal run");
                    assert_eq!(base.cost, res.cost, "{name}: budget-none cost drifted");
                    assert_eq!(
                        base.assignment, res.assignment,
                        "{name}: budget-none assignment drifted"
                    );
                    assert!(
                        !res.recourse.any(),
                        "{name}: recourse engaged without budget"
                    );
                }
                (name, spec, res)
            })
            .collect::<Vec<_>>()
    });

    // The frontier must be monotone for the per-epoch ladder: a strictly
    // larger allowance can only consolidate more. (The amortized point
    // paces the same moves differently and is not comparable.)
    for name in algos {
        let ladder: Vec<f64> = ["none", "epoch=1", "epoch=4", "unlimited"]
            .iter()
            .map(|&spec| {
                rows.iter()
                    .flatten()
                    .find(|(n, s, _)| *n == name && *s == spec)
                    .map(|(_, _, res)| res.cost.as_bin_ticks())
                    .expect("ladder point present")
            })
            .collect();
        for pair in ladder.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "{name}: cost rose with budget ({} -> {}) across {:?}",
                pair[0],
                pair[1],
                ladder
            );
        }
    }

    let mut table = Table::new([
        "budget",
        "algorithm",
        "cost",
        "ratio ≥",
        "moves",
        "closures",
        "epochs",
    ]);
    for (name, spec, res) in rows.iter().flatten() {
        let r = &res.recourse;
        table.row([
            (*spec).to_string(),
            (*name).to_string(),
            f3(res.cost.as_bin_ticks()),
            f3(b0.ratio_bracket(res.cost).0),
            r.migrations.to_string(),
            r.migration_closures.to_string(),
            r.epochs.to_string(),
        ]);
    }
    ExperimentReport {
        id: "recourse",
        title: "Extension: budgeted recourse — the cost/moves repacking frontier".into(),
        text: "Move-budget ladder over a 600-session cloud trace (seed 17). `rod` evacuates\n\
               the lightest open bin whole when the departure epoch can fund it; `amortized`\n\
               spends one move per epoch. Both obey the clairvoyant safety rule (an item only\n\
               moves into a bin that already outlives it), so every migration can only shrink\n\
               the bill. The `none` rows are asserted bit-identical to plain First-Fit and\n\
               the per-epoch ladder is asserted monotone non-increasing; the amortized row\n\
               sits off-ladder (same moves, different pacing). Every run passes the invariant\n\
               auditor with the budget replayed from the event stream. Expected: a handful of\n\
               well-aimed moves recovers a visible slice of First-Fit's gap to OPT_R, with\n\
               sharply diminishing returns — the frontier flattens well before `unlimited`.\n"
            .into(),
        table,
    }
}
