//! Ablations for the design choices DESIGN.md calls out: HA's threshold
//! shape, the hybrid composition itself, and CDFF's dynamic rows.
//!
//! A single adversarial family cannot rank algorithms — the Theorem 4.3
//! adversary *adapts to its victim*, so each algorithm is measured on its
//! own personal worst input there. The ablations therefore use a stress
//! matrix: the adaptive adversary (full μ rounds), the non-clairvoyant
//! Ω(μ) pathology (kills anything First-Fit-shaped), and the binary input
//! σ_μ (kills anything that dedicates bins per duration class). The
//! paper's design choices are the ones whose *worst column* stays small.

use dbp_algos::{ClassifyByDuration, HybridAlgorithm, Threshold};
use dbp_analysis::table::{f3, Table};
use dbp_core::engine;
use dbp_core::instance::Instance;
use dbp_workloads::adversary::{run_adversary, AdversaryConfig};
use dbp_workloads::{ff_pathology_pow2, sigma_mu};

use crate::bracket;
use crate::sweep::parallel_map;

use super::ExperimentReport;

/// log μ used by each stress column (adversary kept small enough to run
/// the full μ rounds its proof requires).
const ADV_N: u32 = 12;
const PATHOLOGY_N: u32 = 6;
const SIGMA_N: u32 = 14;

fn adversary_ratio(algo: impl dbp_core::OnlineAlgorithm, n: u32) -> f64 {
    let out = run_adversary(algo, &AdversaryConfig::new(n)).expect("legal algorithm");
    let (lo, _) = bracket::ratio_vs_opt_r(&out.instance, out.result.cost);
    lo
}

fn instance_ratio(algo: impl dbp_core::OnlineAlgorithm, inst: &Instance) -> f64 {
    let res = engine::run(inst, algo).expect("legal algorithm");
    let (lo, _) = bracket::ratio_vs_opt_r(inst, res.cost);
    lo
}

/// One stress-matrix row for an algorithm constructor.
fn stress_row<F>(make: F) -> (f64, f64, f64)
where
    F: Fn() -> Box<dyn dbp_core::OnlineAlgorithm>,
{
    let adv = adversary_ratio(make(), ADV_N);
    let path = instance_ratio(make(), &ff_pathology_pow2(PATHOLOGY_N));
    let sig = instance_ratio(make(), &sigma_mu(SIGMA_N));
    (adv, path, sig)
}

/// One size-1/2 item per duration class, all concurrent: each type's load
/// (1/2) sits exactly at the flat-1/2 threshold (stays GN) but above the
/// paper's 1/(2√i) for i ≥ 2 (goes CD) — the input where Lemma 3.3's GN
/// accounting separates the threshold shapes.
fn gn_stress_ladder(n: u32) -> Instance {
    let triples = (1..=n).map(|i| {
        (
            dbp_core::time::Time(0),
            dbp_core::time::Dur(1u64 << i),
            dbp_core::size::Size::from_ratio(1, 2),
        )
    });
    Instance::from_triples(triples).expect("ladder is valid")
}

/// Ablation: HA's CD threshold `1/(2√i)` against flat and faster-decaying
/// alternatives, across the stress matrix.
pub fn threshold() -> ExperimentReport {
    let variants: Vec<(&str, Threshold)> = vec![
        ("1/(2√i) (paper)", Threshold::InvSqrt),
        ("1/2 flat", Threshold::Constant(1, 2)),
        ("1/8 flat", Threshold::Constant(1, 8)),
        ("1/(2i)", Threshold::InvLinear),
        ("never (= first-fit)", Threshold::Never),
        ("always (= classify)", Threshold::Always),
    ];
    let rows = parallel_map(&variants, |&(name, th)| {
        let (adv, path, sig) = stress_row(|| Box::new(HybridAlgorithm::with_threshold(th)));
        // GN-peak under a dense just-below-threshold ladder: the Lemma 3.3
        // regime, where the threshold shape separates √log μ from log μ.
        let n = 24u32;
        let mut ha = HybridAlgorithm::with_threshold(th);
        let inst = gn_stress_ladder(n);
        let _ = engine::run(&inst, &mut ha).expect("legal");
        (name, adv, path, sig, ha.gn_peak())
    });
    let mut table = Table::new([
        "threshold",
        format!("adversary n={ADV_N}").as_str(),
        format!("Ω(μ) pathology μ={}", 1 << PATHOLOGY_N).as_str(),
        format!("σ_μ n={SIGMA_N}").as_str(),
        "worst ratio",
        "GN peak (n=24 ladder)",
    ]);
    for &(name, adv, path, sig, gn) in &rows {
        table.row([
            name.to_string(),
            f3(adv),
            f3(path),
            f3(sig),
            f3(adv.max(path).max(sig)),
            gn.to_string(),
        ]);
    }
    let lemma33_bound = 2.0 + 4.0 * 24f64.sqrt();
    ExperimentReport {
        id: "ablation-threshold",
        title: "Ablation: HA's CD threshold shape across the stress matrix".into(),
        table,
        text: format!(
            "Expected: 'never' (pure First-Fit) blows up on the Ω(μ) pathology; 'always'\n\
             and 1/(2i) over-classify and pay on σ_μ. Flat thresholds match the paper's\n\
             ratios at laptop-scale μ, but the GN-peak column shows the asymptotic price:\n\
             a just-below-threshold ladder forces flat-1/2 to hold ~log μ of GN load\n\
             (GN peak ~log μ) while the paper's 1/(2√i) keeps it ≤ 2+4√log μ = {} at\n\
             n = 24 (Lemma 3.3) — the quantity that drives the √log μ vs log μ ratio\n\
             separation as μ grows beyond what we can simulate.\n",
            f3(lemma33_bound)
        ),
    }
}

/// Ablation: the hybrid composition vs its two parent strategies.
pub fn hybrid_vs_parents() -> ExperimentReport {
    let variants: Vec<(&str, &str)> = vec![
        ("first-fit", "first-fit"),
        ("cbd (binary)", "cbd"),
        ("cbd (width 3)", "cbd:3"),
        ("hybrid (HA)", "hybrid"),
    ];
    let rows = parallel_map(&variants, |&(label, reg)| {
        let (adv, path, sig) = stress_row(|| dbp_algos::by_name(reg).expect("registry name"));
        (label, adv, path, sig)
    });
    let mut table = Table::new([
        "algorithm",
        format!("adversary n={ADV_N}").as_str(),
        format!("Ω(μ) pathology μ={}", 1 << PATHOLOGY_N).as_str(),
        format!("σ_μ n={SIGMA_N}").as_str(),
        "worst column",
    ]);
    for &(label, adv, path, sig) in &rows {
        table.row([
            label.to_string(),
            f3(adv),
            f3(path),
            f3(sig),
            f3(adv.max(path).max(sig)),
        ]);
    }
    ExperimentReport {
        id: "ablation-hybrid",
        title: "Ablation: HA vs its parent strategies across the stress matrix".into(),
        table,
        text: "Expected: First-Fit is killed by the Ω(μ) pathology, classify-by-duration\n\
               by σ_μ (a bin chain per class); only the hybrid keeps every column small —\n\
               the whole point of combining the two strategies behind a load threshold.\n"
            .into(),
    }
}

/// Footnote 1: any Any-Fit rule inside HA's bin groups preserves its
/// guarantees — First/Best/Worst inner fits across the stress matrix.
pub fn anyfit_footnote() -> ExperimentReport {
    use dbp_algos::InnerFit;
    let variants: Vec<(&str, InnerFit)> = vec![
        ("first-fit inner (paper)", InnerFit::First),
        ("best-fit inner", InnerFit::Best),
        ("worst-fit inner", InnerFit::Worst),
    ];
    let rows = parallel_map(&variants, |&(name, fit)| {
        let (adv, path, sig) = stress_row(|| Box::new(HybridAlgorithm::with_inner_fit(fit)));
        (name, adv, path, sig)
    });
    let mut table = Table::new([
        "inner rule",
        format!("adversary n={ADV_N}").as_str(),
        format!("Ω(μ) pathology μ={}", 1 << PATHOLOGY_N).as_str(),
        format!("σ_μ n={SIGMA_N}").as_str(),
        "worst column",
    ]);
    for &(name, adv, path, sig) in &rows {
        table.row([
            name.to_string(),
            f3(adv),
            f3(path),
            f3(sig),
            f3(adv.max(path).max(sig)),
        ]);
    }
    ExperimentReport {
        id: "ablation-anyfit",
        title: "Footnote 1: HA is insensitive to the Any-Fit rule inside its bin groups".into(),
        table,
        text: "The paper notes (footnote 1) that any Any-Fit policy works for packing\n\
               within the GN group or within one type's CD group — the analysis only\n\
               uses 'a new bin in the group implies all earlier group bins are ≥ half\n\
               full between consecutive openings'. Expected: the three columns are\n\
               near-identical across all three rules.\n"
            .into(),
    }
}

/// Ablation: CDFF's dynamic rows vs static per-class bins on binary inputs.
pub fn rows() -> ExperimentReport {
    let ns: &[u32] = &[4, 8, 12, 16];
    let rows = parallel_map(ns, |&n| {
        let inst = sigma_mu(n);
        let cdff = engine::run(&inst, dbp_algos::Cdff::new()).expect("legal");
        let cbd = engine::run(&inst, ClassifyByDuration::binary()).expect("legal");
        let mu = (1u64 << n) as f64;
        (
            n,
            cdff.cost.as_bin_ticks() / mu,
            cbd.cost.as_bin_ticks() / mu,
        )
    });
    let mut table = Table::new([
        "log μ",
        "dynamic rows (CDFF) cost/μ",
        "static classes (CBD) cost/μ",
        "advantage",
    ]);
    for &(n, cdff, cbd) in &rows {
        table.row([n.to_string(), f3(cdff), f3(cbd), f3(cbd / cdff)]);
    }
    ExperimentReport {
        id: "ablation-rows",
        title: "Ablation: CDFF's dynamic row remapping vs static duration classes".into(),
        table,
        text: "Expected: static classes pay ~log μ on σ_μ (one bin chain per class, each\n\
               open ~μ), dynamic rows pay ~log log μ — the advantage column grows with μ,\n\
               the exponential separation of Section 5.\n"
            .into(),
    }
}

/// Ablation of the adversary itself: sweep its per-round bin target and
/// measure the certified ratio it forces on HA. The proof picks √log μ;
/// the sweep shows why — smaller targets waste the ladder, larger ones
/// feed OPT too much load.
pub fn adversary_target() -> ExperimentReport {
    use dbp_workloads::adversary::{run_adversary, AdversaryConfig};
    let n = 12u32;
    let targets: Vec<usize> = vec![1, 2, 3, 4, 6, 8, 10, 13];
    let rows = parallel_map(&targets, |&target| {
        let mut cfg = AdversaryConfig::new(n);
        cfg.bin_target = Some(target);
        let out = run_adversary(HybridAlgorithm::new(), &cfg).expect("legal");
        let (lo, _) = bracket::ratio_vs_opt_r(&out.instance, out.result.cost);
        (target, out.items_released, lo)
    });
    let sqrt_n = (n as f64).sqrt().ceil() as usize;
    let mut table = Table::new(["bin target", "items released", "forced certified ratio ≥"]);
    for &(t, items, lo) in &rows {
        let marker = if t == sqrt_n {
            format!("{t}  ← ⌈√log μ⌉")
        } else {
            t.to_string()
        };
        table.row([marker, items.to_string(), f3(lo)]);
    }
    ExperimentReport {
        id: "ablation-adversary-target",
        title: format!(
            "Ablation: the adversary's bin target at log μ = {n} — why the proof picks √log μ"
        ),
        table,
        text: "Each round stops once the victim has `target` bins open. Tiny targets stop\n\
               ladders immediately (cheap for the victim); huge targets force the full\n\
               ladder whose load OPT also gets to pack densely. Expected: the forced\n\
               ratio peaks near ⌈√log μ⌉ — the proof's balance point between starving\n\
               OPT and spending the ladder.\n"
            .into(),
    }
}
