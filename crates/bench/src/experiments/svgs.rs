//! SVG companions to the regenerated figures: written alongside the
//! ASCII/CSV outputs when the `experiments` binary is given `--out`.

use dbp_analysis::svg::{svg_gantt, svg_packing, svg_series};
use dbp_core::engine;
use dbp_workloads::adversary::{run_adversary, AdversaryConfig};
use dbp_workloads::sigma_mu;

use crate::bracket;

/// Generates every SVG artifact as `(filename, contents)` pairs.
pub fn generate() -> Vec<(String, String)> {
    let mut out = Vec::new();

    // Figure 2: σ_8 item gantt.
    let sigma8 = sigma_mu(3);
    out.push((
        "fig2.svg".to_string(),
        svg_gantt(&sigma8, "Figure 2: the binary input σ_8"),
    ));

    // Figure 3: CDFF's packing of σ_8.
    let res = engine::run(&sigma8, dbp_algos::Cdff::new()).expect("legal");
    out.push((
        "fig3.svg".to_string(),
        svg_packing(
            &sigma8,
            &res,
            "Figure 3: CDFF packing σ_8 (one lane per bin)",
        ),
    ));

    // Table 1 row 1 as a curve: HA's certified ratio vs √log μ.
    let ns = [4u32, 6, 9, 12, 16];
    let mut xs = Vec::new();
    let mut ha_ratio = Vec::new();
    for &n in &ns {
        let cfg = AdversaryConfig::new(n).with_rounds((1u64 << n).min(2048));
        let adv = run_adversary(dbp_algos::HybridAlgorithm::new(), &cfg).expect("legal");
        let (lo, _) = bracket::ratio_vs_opt_r(&adv.instance, adv.result.cost);
        xs.push((n as f64).sqrt());
        ha_ratio.push(lo);
    }
    out.push((
        "table1-ha-curve.svg".to_string(),
        svg_series(
            &xs,
            &[("HA certified ratio", &ha_ratio)],
            "HA under the adversary: ratio vs √log μ",
            "√log μ",
            "certified competitive ratio (≥)",
        ),
    ));

    // Table 1 row 2 as a curve: CDFF cost/μ vs log log μ on σ_μ.
    let ns2 = [3u32, 5, 8, 11, 14];
    let mut xs2 = Vec::new();
    let mut cdff_norm = Vec::new();
    let mut cbd_norm = Vec::new();
    for &n in &ns2 {
        let inst = sigma_mu(n);
        let mu = (1u64 << n) as f64;
        let cdff = engine::run(&inst, dbp_algos::Cdff::new()).expect("legal");
        let cbd = engine::run(&inst, dbp_algos::ClassifyByDuration::binary()).expect("legal");
        xs2.push((n as f64).log2().max(1.0));
        cdff_norm.push(cdff.cost.as_bin_ticks() / mu);
        cbd_norm.push(cbd.cost.as_bin_ticks() / mu);
    }
    out.push((
        "table1-cdff-curve.svg".to_string(),
        svg_series(
            &xs2,
            &[
                ("CDFF cost/μ", &cdff_norm),
                ("static CBD cost/μ", &cbd_norm),
            ],
            "Aligned inputs: CDFF's log log μ vs CBD's log μ",
            "log log μ",
            "cost / μ",
        ),
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_svgs_generate_well_formed() {
        for (name, svg) in generate() {
            assert!(name.ends_with(".svg"));
            assert!(svg.starts_with("<svg"), "{name} malformed");
            assert!(svg.ends_with("</svg>\n"), "{name} unterminated");
        }
    }
}
