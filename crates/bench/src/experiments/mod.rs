//! The experiment harness: every table and figure of the paper, plus the
//! quantitative lemmas and the ablations DESIGN.md calls out, regenerated
//! from the simulator (see DESIGN.md §4 for the index).

pub mod ablations;
pub mod extensions;
pub mod figures;
pub mod lemmas;
pub mod recourse;
pub mod resilience;
pub mod summary;
pub mod svgs;
pub mod table1;
pub mod vector;

use dbp_analysis::table::Table;

/// An experiment constructor in the registry.
pub type ExperimentFn = fn() -> ExperimentReport;

/// One regenerated artifact.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Registry id, e.g. `table1-ha`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// The main data table (may be empty for pure-figure experiments).
    pub table: Table,
    /// Free-form preformatted text (figures, fits, conclusions).
    pub text: String,
}

impl ExperimentReport {
    /// Renders the report for the terminal / EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = format!("## {} [{}]\n\n", self.title, self.id);
        if !self.table.is_empty() {
            out.push_str(&self.table.render());
            out.push('\n');
        }
        if !self.text.is_empty() {
            out.push_str(&self.text);
            if !self.text.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

/// The full experiment registry: `(id, constructor)`.
pub fn registry() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("summary", summary::summary as ExperimentFn),
        ("table1-ha", table1::table1_ha as ExperimentFn),
        ("table1-lb", table1::table1_lb),
        ("table1-cdff", table1::table1_cdff),
        ("table1-nonclair", table1::table1_nonclair),
        ("benign", table1::benign_workloads),
        ("fig1", figures::fig1),
        ("fig2", figures::fig2),
        ("fig3", figures::fig3),
        ("lemma31", lemmas::lemma31),
        ("lemma33", lemmas::lemma33),
        ("lemma35", lemmas::lemma35),
        ("reduction", lemmas::reduction),
        ("cor58", lemmas::cor58),
        ("lemma59", lemmas::lemma59),
        ("lemma512", lemmas::lemma512),
        ("prop53", lemmas::prop53),
        ("goal-comparison", extensions::goal_comparison),
        ("semi-aligned", extensions::semi_aligned_sweep),
        ("randomization", extensions::randomization),
        ("adaptivity", extensions::adaptivity),
        ("g-parallel", extensions::g_parallel),
        ("prediction-noise", extensions::prediction_noise),
        ("bin-lifetimes", extensions::bin_lifetimes),
        ("shape-test", extensions::shape_test),
        ("migration-value", extensions::migration_value),
        ("resilience", resilience::resilience),
        ("vector", vector::vector),
        ("recourse", recourse::recourse),
        ("waste", extensions::waste),
        ("boot-overhead", extensions::boot_overhead),
        ("ablation-threshold", ablations::threshold),
        ("ablation-hybrid", ablations::hybrid_vs_parents),
        ("ablation-anyfit", ablations::anyfit_footnote),
        ("ablation-adversary-target", ablations::adversary_target),
        ("ablation-rows", ablations::rows),
    ]
}

/// Looks up and runs one experiment by id.
pub fn run_by_id(id: &str) -> Option<ExperimentReport> {
    registry()
        .into_iter()
        .find(|(n, _)| *n == id)
        .map(|(_, f)| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<_> = reg.iter().map(|(n, _)| *n).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("nope").is_none());
    }

    /// Smoke: the cheap experiments run end-to-end and render non-empty
    /// reports (the expensive sweeps are covered by the release-mode
    /// `experiments all` run recorded in EXPERIMENTS.md).
    #[test]
    fn cheap_experiments_render() {
        for id in ["fig1", "fig2", "fig3", "goal-comparison", "randomization"] {
            let report = run_by_id(id).unwrap_or_else(|| panic!("{id} missing"));
            let rendered = report.render();
            assert!(rendered.contains(id), "{id} header missing");
            assert!(rendered.len() > 100, "{id} suspiciously short");
        }
    }
}
