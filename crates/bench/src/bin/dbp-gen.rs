//! Workload generator CLI: emits instance CSVs consumable by `dbp-pack`
//! (and the `trace_replay` example).
//!
//! ```text
//! dbp-gen <family> [--seed S] [--out FILE] [family options]
//!
//! families:
//!   binary    --n N                          σ_μ with μ = 2^N
//!   aligned   --n N --items K                random aligned input
//!   general   --n N --items K [--gap G]      Poisson/log-uniform input
//!   cloud     --sessions K --horizon H       cloud-gaming trace
//!   pathology --n N                          the Ω(μ) First-Fit trap
//!   semi      --n N --slack S --items K      semi-aligned input
//! ```

use std::io::Write;

use dbp_core::instance::Instance;
use dbp_workloads::{
    cloud_trace, ff_pathology_pow2, random_aligned, random_general, semi_aligned, sigma_mu,
    AlignedConfig, CloudConfig, GeneralConfig, SemiAlignedConfig,
};

struct Args {
    flags: Vec<(String, String)>,
    family: String,
}

impl Args {
    fn parse() -> Args {
        let mut argv = std::env::args().skip(1);
        let family = argv.next().unwrap_or_default();
        let mut flags = Vec::new();
        while let Some(a) = argv.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = argv.next().unwrap_or_else(|| {
                    eprintln!("flag --{name} requires a value");
                    std::process::exit(2);
                });
                flags.push((name.to_string(), value));
            } else {
                eprintln!("unexpected argument: {a}");
                std::process::exit(2);
            }
        }
        Args { flags, family }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn num(&self, name: &str, default: u64) -> u64 {
        match self.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{name} expects a number, got '{v}'");
                std::process::exit(2);
            }),
        }
    }
}

fn main() {
    dbp_bench::pipe::install();
    let args = Args::parse();
    let seed = args.num("seed", 1);
    let inst: Instance = match args.family.as_str() {
        "binary" => sigma_mu(args.num("n", 8) as u32),
        "aligned" => random_aligned(
            &AlignedConfig::new(args.num("n", 8) as u32, args.num("items", 500) as usize),
            seed,
        ),
        "general" => {
            let mut cfg =
                GeneralConfig::new(args.num("n", 8) as u32, args.num("items", 500) as usize);
            cfg.mean_gap = args.num("gap", 1);
            random_general(&cfg, seed)
        }
        "cloud" => cloud_trace(
            &CloudConfig::new(
                args.num("sessions", 1000) as usize,
                args.num("horizon", 1440),
            ),
            seed,
        ),
        "pathology" => ff_pathology_pow2(args.num("n", 5) as u32),
        "semi" => semi_aligned(
            &SemiAlignedConfig::new(
                args.num("n", 8) as u32,
                args.num("slack", 2) as u32,
                args.num("items", 500) as usize,
            ),
            seed,
        ),
        other => {
            eprintln!(
                "unknown family '{other}'; options: binary aligned general cloud pathology semi"
            );
            std::process::exit(2);
        }
    };

    let csv = dbp_workloads::emit_trace(&inst);

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, csv).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "wrote {} items (μ = {:.1}) to {path}",
                inst.len(),
                inst.mu().unwrap_or(1.0)
            );
        }
        None => {
            std::io::stdout().write_all(csv.as_bytes()).expect("stdout");
        }
    }
}
