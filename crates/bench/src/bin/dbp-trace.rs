//! Engine-trace tooling: record a run's event stream as JSONL, replay a
//! recorded stream through the invariant auditor, and diff two streams.
//!
//! ```text
//! dbp-trace record <trace.csv> --algo NAME [-o out.jsonl]
//! dbp-trace replay <run.jsonl>
//! dbp-trace diff <a.jsonl> <b.jsonl>
//! ```
//!
//! `record` runs an algorithm over an instance CSV (the `dbp-gen` /
//! `dbp-pack` format) and writes one JSON object per engine event —
//! arrivals, placements (fast-path vs. scan), bin lifecycle, departures,
//! clock motion — to stdout or `-o`. `replay` reconstructs the bin store
//! from a recorded stream with an [`InvariantAuditor`] attached, verifying
//! the same invariants a live run gets. `diff` compares two streams
//! event-by-event and names the first divergence; identical-seed runs must
//! report zero divergence.

use std::process::ExitCode;

use dbp_core::trace::{parse_jsonl, EngineEvent, EventSink, JsonlSink};
use dbp_core::{
    engine, BinStore, Dur, FailurePlan, InvariantAuditor, ItemId, RecourseBudget, RetryPolicy,
    SizeVec,
};
use dbp_workloads::parse_trace;

fn usage() -> ! {
    eprintln!(
        "usage: dbp-trace record <trace.csv> --algo NAME [-o out.jsonl]\n\
         \u{20}             [--fail-rate F] [--fail-seed N] [--fail-mtbf T]\n\
         \u{20}             [--retry immediate|fixed=<t>|exp=<t>]\n\
         \u{20}             [--recourse none|epoch=<k>|amortized=<earn>[/<burst>]|unlimited]\n\
         \u{20}      dbp-trace replay <run.jsonl>\n\
         \u{20}      dbp-trace diff <a.jsonl> <b.jsonl>\n\
         algorithms: {:?}",
        dbp_algos::registry_names()
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    })
}

fn load_events(path: &str) -> Vec<EngineEvent> {
    parse_jsonl(&read(path)).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    })
}

fn record(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut algo_name = None;
    let mut out_path = None;
    let mut fail_rate = 0.0f64;
    let mut fail_seed = 0u64;
    let mut fail_mtbf = 1000u64;
    let mut retry = RetryPolicy::Immediate;
    let mut recourse = RecourseBudget::None;
    let next = |it: &mut std::slice::Iter<String>| it.next().cloned().unwrap_or_else(|| usage());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--algo" => algo_name = Some(next(&mut it)),
            "-o" | "--out" => out_path = Some(next(&mut it)),
            "--fail-rate" => fail_rate = next(&mut it).parse().unwrap_or_else(|_| usage()),
            "--fail-seed" => fail_seed = next(&mut it).parse().unwrap_or_else(|_| usage()),
            "--fail-mtbf" => fail_mtbf = next(&mut it).parse().unwrap_or_else(|_| usage()),
            "--recourse" => {
                let raw = next(&mut it);
                recourse = RecourseBudget::parse(&raw).unwrap_or_else(|e| {
                    eprintln!(
                        "bad recourse budget '{raw}': {e} (none|epoch=<k>|amortized=<earn>[/<burst>]|unlimited)"
                    );
                    std::process::exit(2);
                });
            }
            "--retry" => {
                let raw = next(&mut it);
                retry = RetryPolicy::parse(&raw).unwrap_or_else(|| {
                    eprintln!("bad retry policy '{raw}' (immediate|fixed=<ticks>|exp=<ticks>)");
                    std::process::exit(2);
                });
            }
            other => input = Some(other.to_string()),
        }
    }
    let (Some(input), Some(algo_name)) = (input, algo_name) else {
        usage()
    };
    let Some(algo) = dbp_algos::by_name(&algo_name) else {
        eprintln!("unknown algorithm '{algo_name}' (see --help)");
        return ExitCode::from(2);
    };
    let inst = parse_trace(&read(&input)).unwrap_or_else(|e| {
        eprintln!("bad trace: {e}");
        std::process::exit(1);
    });

    let out: Box<dyn std::io::Write> = match &out_path {
        Some(p) => Box::new(std::fs::File::create(p).unwrap_or_else(|e| {
            eprintln!("cannot create {p}: {e}");
            std::process::exit(1);
        })),
        None => Box::new(std::io::stdout().lock()),
    };
    let plan = if fail_rate > 0.0 {
        FailurePlan::seeded(fail_rate, fail_seed, Dur(fail_mtbf))
    } else {
        FailurePlan::None
    };
    let mut sink = JsonlSink::new(std::io::BufWriter::new(out));
    let res = engine::run_with_failures_recourse(&inst, algo, plan, retry, recourse, &mut sink)
        .unwrap_or_else(|e| {
            eprintln!("{algo_name}: illegal move: {e}");
            std::process::exit(1);
        });
    let written = sink.written();
    if let Err(e) = sink.finish() {
        if dbp_bench::pipe::is_broken_pipe(&e) {
            return ExitCode::SUCCESS; // consumer closed the pipe — done
        }
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    let m = &res.metrics;
    eprintln!(
        "{algo_name}: {} events, cost {}, {} bins (peak {}), \
         placements {} fast / {} scan, {} tree queries, {} linear scans, \
         {} compactions",
        written,
        res.cost,
        res.bins_opened,
        res.max_open,
        m.fast_path_placements,
        m.scan_placements,
        m.tree_queries,
        m.linear_scans,
        m.tree_compactions,
    );
    let r = &res.resilience;
    if r.bin_failures > 0 {
        eprintln!(
            "{algo_name}: {} bin failures, {} displaced, {} readmitted, {} dropped",
            r.bin_failures, r.displacements, r.readmissions, r.dropped,
        );
    }
    let rc = &res.recourse;
    if rc.any() {
        eprintln!(
            "{algo_name}: {} migrations ({} closures) over {} epochs under {recourse}",
            rc.migrations, rc.migration_closures, rc.epochs,
        );
    }
    ExitCode::SUCCESS
}

/// Rebuilds the bin store from a recorded stream, forwarding every event
/// to the auditor at the same store state a live run would present.
fn replay(path: &str) -> ExitCode {
    let events = load_events(path);
    let mut store = BinStore::new();
    let mut auditor = InvariantAuditor::new();
    // Size of the arrival awaiting placement (the stream interleaves
    // exactly one Placed after each Arrival).
    let mut pending: Option<(ItemId, SizeVec)> = None;
    for (i, ev) in events.iter().enumerate() {
        match *ev {
            EngineEvent::Arrival { item, size, .. } => {
                auditor.on_event(ev, &store);
                pending = Some((item, size));
            }
            EngineEvent::BinOpened { bin, at } => {
                let opened = store.open(at);
                if opened != bin {
                    eprintln!("{path}: event #{i}: stream opens {bin} but replay opened {opened}");
                    return ExitCode::FAILURE;
                }
                auditor.on_event(ev, &store);
            }
            EngineEvent::Placed { item, bin, .. } => {
                match pending.take() {
                    Some((p_item, size)) if p_item == item => store.add(bin, item, size),
                    _ => {
                        eprintln!("{path}: event #{i}: placement of {item} without its arrival");
                        return ExitCode::FAILURE;
                    }
                }
                auditor.on_event(ev, &store);
            }
            EngineEvent::Departure {
                item,
                at,
                bin,
                size,
            } => {
                store.remove(bin, item, size, at);
                auditor.on_event(ev, &store);
            }
            EngineEvent::ItemDisplaced {
                item,
                at,
                bin,
                size,
            } => {
                // A displacement drains the store exactly like a departure
                // (the final one closes the failed bin), mirroring the live
                // engine's remove-then-emit order.
                store.remove(bin, item, size, at);
                auditor.on_event(ev, &store);
            }
            EngineEvent::ItemReadmitted { item, size, .. } => {
                // Like an arrival: the auditor probes First-Fit against the
                // pre-placement store, then the next Placed consumes this.
                auditor.on_event(ev, &store);
                pending = Some((item, size));
            }
            EngineEvent::ItemMigrated {
                item,
                at,
                from,
                to,
                size,
                ..
            } => {
                // Mirror the live engine's remove-then-add order so the
                // auditor sees the same store state at the event: the final
                // removal closes the source, then the item re-books.
                store.remove(from, item, size, at);
                store.add(to, item, size);
                auditor.on_event(ev, &store);
            }
            EngineEvent::BinFailed { .. }
            | EngineEvent::BinClosed { .. }
            | EngineEvent::ClockAdvanced { .. } => {
                auditor.on_event(ev, &store);
            }
        }
        if let Some(v) = auditor.violation() {
            eprintln!("{path}: {v}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "{path}: {} events replayed cleanly; ∫open dt = {}, Σ intervals = {}",
        events.len(),
        auditor.integral_cost(),
        auditor.interval_cost(),
    );
    ExitCode::SUCCESS
}

fn diff(path_a: &str, path_b: &str) -> ExitCode {
    let a = load_events(path_a);
    let b = load_events(path_b);
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i] != b[i] {
            println!("first divergence at event #{i}:");
            println!("  {path_a}: {:?}", a[i]);
            println!("  {path_b}: {:?}", b[i]);
            return ExitCode::FAILURE;
        }
    }
    if a.len() != b.len() {
        println!(
            "streams agree on the first {common} events, but lengths differ: \
             {path_a} has {}, {path_b} has {}",
            a.len(),
            b.len()
        );
        return ExitCode::FAILURE;
    }
    println!("zero divergence: {} events identical", a.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    dbp_bench::pipe::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("replay") if args.len() == 2 => replay(&args[1]),
        Some("diff") if args.len() == 3 => diff(&args[1], &args[2]),
        Some("--help") | Some("-h") => usage(),
        _ => usage(),
    }
}
