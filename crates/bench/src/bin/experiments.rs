//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments                 # list available experiment ids
//! experiments all             # run everything, print reports
//! experiments all --out DIR   # also write one .txt and .csv per report
//! experiments table1-ha fig3  # run a subset
//! experiments all --md report.md   # also write one combined markdown report
//! ```
//!
//! `--bracket-effort analytic|cached|budget=<ms>` and `--bracket-cache
//! DIR|off` configure the certified-bracket service the experiments query.
//! `--threads N` pins the sweep worker count (reports are byte-identical
//! across thread counts; `1` forces fully sequential sweeps).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use dbp_bench::experiments::{registry, resilience, run_by_id};
use dbp_bench::{bracket, sweep, throughput};
use dbp_core::failure::RetryPolicy;
use dbp_core::size::MAX_DIMS;

fn main() {
    dbp_bench::pipe::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("throughput") => return run_throughput(&args[1..]),
        Some("bench-validate") => return run_bench_validate(&args[1..]),
        Some("serve-soak") => return run_serve_soak(&args[1..]),
        Some("run") => return run_manifest(&args[1..]),
        _ => {}
    }
    let mut out_dir: Option<PathBuf> = None;
    let mut md_path: Option<PathBuf> = None;
    let mut effort = bracket::Effort::Cached;
    let mut cache_dir: Option<PathBuf> = None;
    let mut fail_seed: Option<u64> = None;
    let mut retry: Option<RetryPolicy> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bracket-effort" => {
                let raw = it.next().unwrap_or_else(|| {
                    eprintln!("--bracket-effort requires analytic|cached|budget=<ms>");
                    std::process::exit(2);
                });
                effort = bracket::Effort::parse(&raw).unwrap_or_else(|| {
                    eprintln!("bad bracket effort '{raw}' (analytic|cached|budget=<ms>)");
                    std::process::exit(2);
                });
            }
            "--bracket-cache" => {
                let raw = it.next().unwrap_or_else(|| {
                    eprintln!("--bracket-cache requires a directory (or 'off')");
                    std::process::exit(2);
                });
                cache_dir = (raw != "off").then(|| PathBuf::from(raw));
            }
            "--out" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                });
                out_dir = Some(PathBuf::from(dir));
            }
            "--md" => {
                let p = it.next().unwrap_or_else(|| {
                    eprintln!("--md requires a file path");
                    std::process::exit(2);
                });
                md_path = Some(PathBuf::from(p));
            }
            "--fail-seed" => {
                let raw = it.next().unwrap_or_else(|| {
                    eprintln!("--fail-seed requires an integer");
                    std::process::exit(2);
                });
                fail_seed = Some(raw.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("bad fail seed '{raw}' (expected u64)");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                let raw = it.next().unwrap_or_else(|| {
                    eprintln!("--threads requires a positive worker count");
                    std::process::exit(2);
                });
                let n = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("bad thread count '{raw}' (expected an integer ≥ 1)");
                        std::process::exit(2);
                    });
                sweep::set_threads(n);
            }
            "--retry" => {
                let raw = it.next().unwrap_or_else(|| {
                    eprintln!("--retry requires immediate|fixed=<ticks>|exp=<ticks>");
                    std::process::exit(2);
                });
                retry = Some(RetryPolicy::parse(&raw).unwrap_or_else(|| {
                    eprintln!("bad retry policy '{raw}' (immediate|fixed=<ticks>|exp=<ticks>)");
                    std::process::exit(2);
                }));
            }
            "--dims" => {
                let raw = it.next().unwrap_or_else(|| {
                    eprintln!("--dims requires a dimension count (1..={})", MAX_DIMS);
                    std::process::exit(2);
                });
                let d = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|d| (1..=MAX_DIMS).contains(d))
                    .unwrap_or_else(|| {
                        eprintln!("bad dimension count '{raw}' (expected 1..={})", MAX_DIMS);
                        std::process::exit(2);
                    });
                dbp_bench::experiments::vector::configure(d);
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    let svc = bracket::configure(effort, cache_dir.as_deref());
    if fail_seed.is_some() || retry.is_some() {
        let base = resilience::config();
        resilience::configure(fail_seed.unwrap_or(base.seed), retry.unwrap_or(base.retry));
    }

    if ids.is_empty() {
        print_usage();
        return;
    }
    if ids.iter().any(|i| i == "all") {
        ids = registry().iter().map(|(n, _)| n.to_string()).collect();
    }

    if let Some(dir) = &out_dir {
        fs::create_dir_all(dir).expect("create output directory");
    }

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let mut combined = String::from(
        "# Regenerated experiment report\n\nProduced by `experiments`; see EXPERIMENTS.md \
         for the paper-vs-measured discussion.\n\n",
    );
    for id in &ids {
        let started = Instant::now();
        let Some(report) = run_by_id(id) else {
            eprintln!("unknown experiment: {id} (run with no args to list)");
            std::process::exit(2);
        };
        let rendered = report.render();
        writeln!(lock, "{rendered}").expect("stdout");
        writeln!(lock, "({} finished in {:.2?})\n", id, started.elapsed()).expect("stdout");
        if let Some(dir) = &out_dir {
            fs::write(dir.join(format!("{id}.txt")), &rendered).expect("write report");
            if !report.table.is_empty() {
                fs::write(dir.join(format!("{id}.csv")), report.table.to_csv()).expect("write csv");
            }
        }
        combined.push_str("```text\n");
        combined.push_str(&rendered);
        combined.push_str("```\n\n");
    }
    if let Some(dir) = &out_dir {
        for (name, svg) in dbp_bench::experiments::svgs::generate() {
            fs::write(dir.join(&name), svg).expect("write svg");
        }
        eprintln!("svg figures written to {}", dir.display());
    }
    if let Some(path) = md_path {
        fs::write(&path, combined).expect("write markdown report");
        eprintln!("wrote combined report to {}", path.display());
    }
    let stats = svc.stats();
    eprintln!(
        "bracket service: effort {}, {} cold, {} warm ({} mem / {} disk)",
        effort,
        stats.computed,
        stats.warm(),
        stats.mem_hits,
        stats.disk_hits
    );
}

fn print_usage() {
    println!(
        "usage: experiments [--out DIR] [--md FILE] [--bracket-effort EFFORT] \
         [--bracket-cache DIR|off] [--threads N] [--fail-seed N] [--retry POLICY] \
         [--dims D] <id>... | all\n\
       experiments run MANIFEST.toml [--out DIR] [--threads N] \
         [--bracket-effort EFFORT] [--bracket-cache DIR|off]\n\
       experiments throughput [--items N] [--samples K] [--label L] \
         [--configs a,b,..] [--bench-out FILE]\n\
       experiments bench-validate FILE\n\
       experiments serve-soak [--items N] [--slack N] [--algo NAME] [--seed S]\n\n\
         `run` executes a manifest-declared experiment fleet (workload ×\n\
         algorithm × items × μ × dims × failure-rate grid; see DESIGN.md §17\n\
         for the schema) and renders its comparison table; with --out it also\n\
         writes <fleet>.txt/.csv, the optional SVG dashboard, and upserts the\n\
         optional per-cell results file. Reports are byte-identical across\n\
         --threads and re-runs resume through the bracket cache.\n\
         --fail-seed / --retry (immediate|fixed=<ticks>|exp=<ticks>) configure the\n\
         `resilience` experiment's crash stream and re-admission backoff.\n\
         --dims configures the `vector` experiment's dimension count (default 2).\n\
         --threads pins the sweep worker count; reports are byte-identical across\n\
         thread counts (single-flight bracket cache + seeded chunking).\n\
         `throughput` runs the engine-throughput harness (items/sec through the\n\
         full InteractiveSim on the pinned seeded workload); with --bench-out it\n\
         upserts entries into a BENCH_engine.json-style file. `bench-validate`\n\
         parses and schema-checks such a file, failing on drift.\n\navailable experiments:"
    );
    for (id, _) in registry() {
        println!("  {id}");
    }
}

/// `experiments run MANIFEST.toml`: execute a manifest-declared fleet.
///
/// Stdout carries only the rendered report (timings and cache stats go
/// to stderr), so two runs at different `--threads` can be byte-diffed
/// directly.
fn run_manifest(args: &[String]) {
    let mut path: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut effort = bracket::Effort::Cached;
    let mut cache_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{arg} requires {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_dir = Some(PathBuf::from(take("a directory"))),
            "--threads" => {
                let raw = take("a positive worker count");
                threads = Some(raw.parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(
                    || {
                        eprintln!("bad thread count '{raw}' (expected an integer ≥ 1)");
                        std::process::exit(2);
                    },
                ));
            }
            "--bracket-effort" => {
                let raw = take("analytic|cached|budget=<ms>");
                effort = bracket::Effort::parse(&raw).unwrap_or_else(|| {
                    eprintln!("bad bracket effort '{raw}' (analytic|cached|budget=<ms>)");
                    std::process::exit(2);
                });
            }
            "--bracket-cache" => {
                let raw = take("a directory (or 'off')");
                cache_dir = (raw != "off").then(|| PathBuf::from(raw));
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown run flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: experiments run MANIFEST.toml [--out DIR] [--threads N]");
        std::process::exit(2);
    };
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    let m = dbp_bench::manifest::Manifest::parse(&text).unwrap_or_else(|e| {
        eprintln!("{}: {e}", path.display());
        std::process::exit(2);
    });
    let threads = threads.or((m.threads > 0).then_some(m.threads));

    let svc = bracket::configure(effort, cache_dir.as_deref());
    let started = Instant::now();
    let report = dbp_bench::manifest::run_fleet(&m, threads);
    let rendered = report.render();
    print!("{rendered}");
    eprintln!(
        "fleet `{}`: {} cells in {:.2?}",
        report.name,
        report.cells.len(),
        started.elapsed()
    );

    if let Some(dir) = &out_dir {
        fs::create_dir_all(dir).expect("create output directory");
        fs::write(dir.join(format!("{}.txt", report.name)), &rendered).expect("write report");
        fs::write(
            dir.join(format!("{}.csv", report.name)),
            report.table.to_csv(),
        )
        .expect("write csv");
        if let Some(svg) = &m.svg {
            fs::write(dir.join(svg), dbp_bench::manifest::dashboard_svg(&report))
                .expect("write svg dashboard");
        }
        if let Some(results) = &m.results {
            let target = dir.join(results);
            let existing = target.exists().then(|| {
                fs::read_to_string(&target).expect("read existing results file")
            });
            let merged = dbp_bench::manifest::upsert_results(existing.as_deref(), &report)
                .unwrap_or_else(|e| {
                    eprintln!("{}: {e}", target.display());
                    std::process::exit(2);
                });
            fs::write(&target, merged).expect("write results file");
        }
        eprintln!("fleet artifacts written to {}", dir.display());
    }
    let stats = svc.stats();
    eprintln!(
        "bracket service: effort {}, {} cold, {} warm ({} mem / {} disk)",
        effort,
        stats.computed,
        stats.warm(),
        stats.mem_hits,
        stats.disk_hits
    );
}

/// `experiments serve-soak`: a long churn stream through one daemon
/// session — exercises the compaction policy for real and fails (exit 1)
/// if the item table ever exceeds its bound, so CI can assert that
/// steady-state memory tracks the live set, not the item count.
fn run_serve_soak(args: &[String]) {
    use dbp_core::EngineEvent;
    use dbp_serve::protocol::{Op, Request};
    use dbp_serve::{ServeConfig, Session};
    use dbp_workloads::{random_general, DurationDist, GeneralConfig};

    let mut items = 200_000usize;
    let mut slack = 64usize;
    let mut algo = String::from("first-fit");
    let mut seed = 1u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{arg} requires {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--items" => {
                items = take("an item count")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("bad item count");
                        std::process::exit(2);
                    })
            }
            "--slack" => {
                slack = take("a slack").parse().unwrap_or_else(|_| {
                    eprintln!("bad slack");
                    std::process::exit(2);
                })
            }
            "--algo" => algo = take("an algorithm name"),
            "--seed" => {
                seed = take("a seed").parse().unwrap_or_else(|_| {
                    eprintln!("bad seed");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown serve-soak flag `{other}`");
                std::process::exit(2);
            }
        }
    }

    // Short-lived items trickling in: the live set stays small while the
    // total item count — what an uncompacted table would hold — grows
    // without bound.
    let wl = GeneralConfig {
        items,
        mean_gap: 2,
        durations: DurationDist::Fixed { ticks: 8 },
        size_range: (5, 30, 100),
    };
    let inst = random_general(&wl, seed);
    let cfg = ServeConfig {
        algo,
        compact_slack: slack,
        ..ServeConfig::default()
    };
    let mut session = Session::new("soak", &cfg).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let bound_slack = slack.max(1);
    let started = Instant::now();
    let mut peak_live = 0usize;
    let mut peak_table = 0usize;
    let mut response_bytes = 0usize;
    let mut violations = 0usize;
    for item in inst.items() {
        session.handle(&Request::Event {
            tenant: None,
            event: EngineEvent::Arrival {
                item: dbp_core::ItemId(0),
                at: item.arrival,
                size: item.size,
                departure: Some(item.departure),
            },
        });
        response_bytes += session.take_output().len();
        let (live, table) = (session.live_items(), session.table_len());
        peak_live = peak_live.max(live);
        peak_table = peak_table.max(table);
        if table >= 2 * live + bound_slack {
            violations += 1;
        }
    }
    session.handle(&Request::Control {
        tenant: None,
        op: Op::Drain,
    });
    response_bytes += session.take_output().len();
    let elapsed = started.elapsed();

    let m = session.effective_metrics();
    println!(
        "serve-soak: {items} items in {:.2}s ({:.0} items/s), {} response bytes",
        elapsed.as_secs_f64(),
        items as f64 / elapsed.as_secs_f64().max(1e-9),
        response_bytes,
    );
    println!(
        "serve-soak: peak live {peak_live}, peak table {peak_table} \
         (bound 2*live+{bound_slack}), final cost {}",
        session.effective_cost(),
    );
    assert_eq!(m.arrivals, items as u64, "every arrival must be played");
    if violations > 0 {
        eprintln!("serve-soak: table bound violated after {violations} events");
        std::process::exit(1);
    }
    if items >= 10 * peak_live.max(1) {
        println!(
            "serve-soak: churn factor {}x — steady-state memory is bounded",
            items / peak_live.max(1)
        );
    }
}

/// `experiments throughput`: run the engine harness, print one line per
/// configuration, and optionally upsert the results into a bench file.
fn run_throughput(args: &[String]) {
    let mut items = 1_000_000usize;
    let mut samples = 5usize;
    let mut label = String::from("local");
    let mut configs: Vec<throughput::Config> = throughput::Config::ALL.to_vec();
    let mut bench_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{arg} requires {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--items" => {
                let raw = take("an item count");
                items = raw.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("bad item count '{raw}'");
                    std::process::exit(2);
                });
            }
            "--samples" => {
                let raw = take("a sample count");
                samples = raw.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("bad sample count '{raw}'");
                    std::process::exit(2);
                });
            }
            "--label" => label = take("a label"),
            "--configs" => {
                let raw = take("a comma-separated config list");
                configs = raw
                    .split(',')
                    .map(|s| {
                        throughput::Config::parse(s.trim()).unwrap_or_else(|| {
                            eprintln!(
                                "unknown config '{s}' (expected one of: {})",
                                throughput::Config::ALL.map(|c| c.id()).join(", ")
                            );
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--bench-out" => bench_out = Some(PathBuf::from(take("a file path"))),
            other => {
                eprintln!("unknown throughput flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    let mut file = match &bench_out {
        Some(path) if path.exists() => {
            let text = fs::read_to_string(path).expect("read bench file");
            throughput::BenchFile::parse(&text).unwrap_or_else(|e| {
                eprintln!("existing {} is invalid: {e}", path.display());
                std::process::exit(2);
            })
        }
        _ => throughput::BenchFile::new(),
    };

    println!(
        "engine throughput: {items} items, {samples} samples, workload seed {}",
        throughput::WORKLOAD_SEED
    );
    for config in configs {
        let started = Instant::now();
        let m = throughput::measure(throughput::Workload::pinned(items), config, samples);
        println!(
            "  {:<12} median {:>12.0} items/s  best {:>12.0} items/s  ({:.2?} median/run, {} placed, {:.2?} total)",
            config.id(),
            m.median_items_per_sec(),
            m.best_items_per_sec(),
            m.median(),
            m.placed,
            started.elapsed()
        );
        file.upsert(throughput::BenchEntry::from_measurement(&label, &m));
    }
    if let Some(path) = bench_out {
        throughput::validate(&file).expect("freshly measured entries validate");
        fs::write(&path, file.render()).expect("write bench file");
        eprintln!("bench entries written to {}", path.display());
    }
}

/// `experiments bench-validate FILE`: parse + schema-check a bench file.
fn run_bench_validate(args: &[String]) {
    let [path] = args else {
        eprintln!("usage: experiments bench-validate FILE");
        std::process::exit(2);
    };
    let text = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    match throughput::BenchFile::parse(&text) {
        Ok(file) => {
            println!(
                "{path}: valid ({} entries, workload seed {})",
                file.entries.len(),
                file.seed
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            std::process::exit(1);
        }
    }
}
