//! Packing CLI: runs algorithms on an instance CSV and reports costs,
//! certified ratios and (optionally) a packing gantt.
//!
//! ```text
//! dbp-pack <trace.csv> [--algo NAME]... [--gantt] [--momentary]
//!          [--bracket-effort analytic|cached|budget=<ms>] [--bracket-cache DIR|off]
//!          [--threads N] [--dims D]
//!          [--fail-rate F] [--fail-seed N] [--retry immediate|fixed=<t>|exp=<t>]
//!          [--recourse none|epoch=<k>|amortized=<earn>[/<burst>]|unlimited]
//! ```
//!
//! `--dims D` lifts the (scalar) CSV trace onto the diagonal of a
//! D-dimensional vector instance — every item demands its scalar size in
//! all D dimensions. Diagonal vectors pack exactly like their scalars, so
//! the table must be identical at any D; the flag drives the engine's
//! per-dimension planes and the auditor's per-dimension conservation
//! checks end-to-end on otherwise-scalar inputs. `--dims 1` (the default)
//! is the scalar path itself.
//!
//! A nonzero `--fail-rate` runs every algorithm under a seeded crash plan
//! (each opened bin is doomed with probability F): displaced items re-enter
//! through the algorithm after the `--retry` backoff, the invariant auditor
//! checks the failure ledger, and the table gains resilience columns. At
//! the default rate 0 the output is bit-identical to a failure-free build.
//!
//! A non-`none` `--recourse` budget lets algorithms that implement
//! `propose_migration` (the `rod:`/`amortized:` wrappers) move resident
//! items at arrival/departure epochs; the run is audited with the budget
//! replayed from the event stream, and the table gains recourse columns.
//! The default `none` never consults the hook and stays bit-identical.
//!
//! CSV format: `arrival,duration,size_num,size_den` per line (`#` comments
//! and a non-numeric header line are ignored) — the same format `dbp-gen`
//! emits.

use dbp_analysis::figures::packing_gantt;
use dbp_analysis::table::{f3, Table};
use dbp_bench::{bracket, sweep};
use dbp_core::audit::InvariantAuditor;
use dbp_core::size::{SizeVec, MAX_DIMS};
use dbp_core::time::Dur;
use dbp_core::{compare_goals, engine, FailurePlan, Instance, RecourseBudget, RetryPolicy};
use dbp_workloads::parse_trace;

fn main() {
    dbp_bench::pipe::install();
    let mut path = None;
    let mut algos: Vec<String> = Vec::new();
    let mut gantt = false;
    let mut momentary = false;
    let mut effort = bracket::Effort::Cached;
    let mut cache_dir: Option<String> = None;
    let mut fail_rate = 0.0f64;
    let mut fail_seed = 4242u64;
    let mut dims = 1usize;
    let mut retry = RetryPolicy::default();
    let mut recourse = RecourseBudget::None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--algo" => {
                algos.push(argv.next().unwrap_or_else(|| {
                    eprintln!("--algo requires a name");
                    std::process::exit(2);
                }));
            }
            "--gantt" => gantt = true,
            "--momentary" => momentary = true,
            "--bracket-effort" => {
                let raw = argv.next().unwrap_or_else(|| {
                    eprintln!("--bracket-effort requires analytic|cached|budget=<ms>");
                    std::process::exit(2);
                });
                effort = bracket::Effort::parse(&raw).unwrap_or_else(|| {
                    eprintln!("bad bracket effort '{raw}' (analytic|cached|budget=<ms>)");
                    std::process::exit(2);
                });
            }
            "--bracket-cache" => {
                let raw = argv.next().unwrap_or_else(|| {
                    eprintln!("--bracket-cache requires a directory (or 'off')");
                    std::process::exit(2);
                });
                cache_dir = (raw != "off").then_some(raw);
            }
            "--threads" => {
                let raw = argv.next().unwrap_or_else(|| {
                    eprintln!("--threads requires a positive worker count");
                    std::process::exit(2);
                });
                let n = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("bad thread count '{raw}' (expected an integer ≥ 1)");
                        std::process::exit(2);
                    });
                sweep::set_threads(n);
            }
            "--dims" => {
                let raw = argv.next().unwrap_or_else(|| {
                    eprintln!("--dims requires a dimension count (1..={MAX_DIMS})");
                    std::process::exit(2);
                });
                dims = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|d| (1..=MAX_DIMS).contains(d))
                    .unwrap_or_else(|| {
                        eprintln!("bad dimension count '{raw}' (expected 1..={MAX_DIMS})");
                        std::process::exit(2);
                    });
            }
            "--fail-rate" => {
                let raw = argv.next().unwrap_or_else(|| {
                    eprintln!("--fail-rate requires a probability in [0, 1]");
                    std::process::exit(2);
                });
                fail_rate = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| {
                        eprintln!("bad fail rate '{raw}' (expected a probability in [0, 1])");
                        std::process::exit(2);
                    });
            }
            "--fail-seed" => {
                let raw = argv.next().unwrap_or_else(|| {
                    eprintln!("--fail-seed requires an integer");
                    std::process::exit(2);
                });
                fail_seed = raw.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("bad fail seed '{raw}' (expected u64)");
                    std::process::exit(2);
                });
            }
            "--retry" => {
                let raw = argv.next().unwrap_or_else(|| {
                    eprintln!("--retry requires immediate|fixed=<ticks>|exp=<ticks>");
                    std::process::exit(2);
                });
                retry = RetryPolicy::parse(&raw).unwrap_or_else(|| {
                    eprintln!("bad retry policy '{raw}' (immediate|fixed=<ticks>|exp=<ticks>)");
                    std::process::exit(2);
                });
            }
            "--recourse" => {
                let raw = argv.next().unwrap_or_else(|| {
                    eprintln!(
                        "--recourse requires none|epoch=<k>|amortized=<earn>[/<burst>]|unlimited"
                    );
                    std::process::exit(2);
                });
                recourse = RecourseBudget::parse(&raw).unwrap_or_else(|e| {
                    eprintln!(
                        "bad recourse budget '{raw}': {e} (none|epoch=<k>|amortized=<earn>[/<burst>]|unlimited)"
                    );
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: dbp-pack <trace.csv> [--algo NAME]... [--gantt] [--momentary]\n\
                     \x20              [--bracket-effort analytic|cached|budget=<ms>] [--bracket-cache DIR|off]\n\
                     \x20              [--threads N] [--dims D]\n\
                     \x20              [--fail-rate F] [--fail-seed N] [--retry immediate|fixed=<t>|exp=<t>]\n\
                     \x20              [--recourse none|epoch=<k>|amortized=<earn>[/<burst>]|unlimited]\n\
                     algorithms: {:?}",
                    dbp_algos::registry_names()
                );
                return;
            }
            other => path = Some(other.to_string()),
        }
    }
    let svc = bracket::configure(effort, cache_dir.as_deref().map(std::path::Path::new));
    let Some(path) = path else {
        eprintln!("usage: dbp-pack <trace.csv> [--algo NAME]... (see --help)");
        std::process::exit(2);
    };
    if algos.is_empty() {
        algos = dbp_algos::registry_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut inst = parse_trace(&text).unwrap_or_else(|e| {
        eprintln!("bad trace: {e}");
        std::process::exit(1);
    });
    if dims > 1 {
        // Diagonal lift: the scalar demand replicated into every dimension.
        inst = Instance::from_triples(inst.items().iter().map(|it| {
            let lifted = vec![it.size.primary(); dims];
            (
                it.arrival,
                it.duration(),
                SizeVec::from_sizes(&lifted).expect("scalar trace sizes are nonzero"),
            )
        }))
        .expect("diagonal lift preserves item validity");
    }

    // The dims note only appears for lifted runs so D = 1 output stays
    // byte-identical to the scalar goldens.
    let dims_note = if inst.dims() > 1 {
        format!(", dims = {}", inst.dims())
    } else {
        String::new()
    };
    println!(
        "{}: {} items, μ = {:.1}, span = {} ticks, aligned = {}{}",
        path,
        inst.len(),
        inst.mu().unwrap_or(1.0),
        inst.span_dur().ticks(),
        inst.is_aligned(),
        dims_note
    );
    let certified = svc.opt_r(&inst);
    let br = certified.bracket;
    println!(
        "OPT_R ∈ [{:.1}, {:.1}] bin·ticks (rung {}, {})\n",
        br.lower.as_bin_ticks(),
        br.upper.as_bin_ticks(),
        certified.rung,
        certified.source
    );

    let mut header = vec![
        "algorithm",
        "cost",
        "bins",
        "peak",
        "ratio ≥",
        "ratio ≤",
        "fast%",
        "scans",
    ];
    let failing = fail_rate > 0.0;
    let repacking = !recourse.is_none();
    // Doom delays are uniform in [1, mtbf]; tying mtbf to the trace span
    // keeps the storm landing inside the run for any input scale.
    let mtbf = Dur(inst.span_dur().ticks().max(1));
    if failing {
        println!(
            "failure plan: per-bin rate {fail_rate}, seed {fail_seed}, mtbf {} ticks, retry {retry}\n",
            mtbf.ticks()
        );
        header.extend(["failures", "migrations", "drops", "degraded"]);
    }
    if repacking {
        println!("recourse budget: {recourse}\n");
        header.extend(["moves", "closures", "epochs"]);
    }
    if momentary {
        header.push("momentary");
    }
    let mut table = Table::new(header);
    for name in &algos {
        let Some(algo) = dbp_algos::by_name(name) else {
            eprintln!("unknown algorithm '{name}' (see --help)");
            std::process::exit(2);
        };
        let res = if failing || repacking {
            let plan = if failing {
                FailurePlan::seeded(fail_rate, fail_seed, mtbf)
            } else {
                FailurePlan::None
            };
            let mut auditor = InvariantAuditor::new();
            auditor.expect_budget(recourse);
            let res = engine::run_with_failures_recourse(
                &inst,
                algo,
                plan,
                retry,
                recourse,
                &mut auditor,
            )
            .unwrap_or_else(|e| {
                eprintln!("{name}: illegal move: {e}");
                std::process::exit(1);
            });
            if let Err(v) = auditor.verify_result(&res) {
                eprintln!("{name}: invariant violation: {v}");
                std::process::exit(1);
            }
            res
        } else {
            engine::run(&inst, algo).unwrap_or_else(|e| {
                eprintln!("{name}: illegal move: {e}");
                std::process::exit(1);
            })
        };
        let (lo, hi) = br.ratio_bracket(res.cost);
        let mut row = vec![
            name.clone(),
            format!("{:.1}", res.cost.as_bin_ticks()),
            res.bins_opened.to_string(),
            res.max_open.to_string(),
            f3(lo),
            f3(hi),
            format!("{:.0}", 100.0 * res.metrics.fast_path_share()),
            res.metrics.linear_scans.to_string(),
        ];
        if failing {
            let r = &res.resilience;
            row.extend([
                r.bin_failures.to_string(),
                r.readmissions.to_string(),
                r.dropped.to_string(),
                f3(r.degraded_area.as_bin_ticks()),
            ]);
        }
        if repacking {
            let r = &res.recourse;
            row.extend([
                r.migrations.to_string(),
                r.migration_closures.to_string(),
                r.epochs.to_string(),
            ]);
        }
        if momentary {
            row.push(f3(compare_goals(&inst, &res).momentary));
        }
        table.row(row);
        if gantt {
            if inst.end().map_or(0, |t| t.ticks()) <= 200 {
                println!("--- {name} ---\n{}", packing_gantt(&inst, &res, 200));
            } else {
                eprintln!("(--gantt skipped: horizon wider than 200 ticks)");
            }
        }
    }
    println!("{}", table.render());
    let stats = svc.stats();
    println!(
        "bracket service: effort {}, {} cold, {} warm ({} mem / {} disk)",
        effort,
        stats.computed,
        stats.warm(),
        stats.mem_hits,
        stats.disk_hits
    );
}
