//! Manifest-driven experiment fleets: `experiments run manifest.toml`.
//!
//! A manifest is one TOML file declaring a grid of cells —
//! workload × algorithm × items × μ × dims × failure-rate — plus report
//! options. The runner expands the grid in deterministic nested order,
//! fans the cells out through the seeded-chunked sweep
//! ([`crate::sweep::parallel_map_with`]), certifies every cost against
//! the bracket service, and renders one comparison table (plus an
//! optional SVG dashboard and a per-cell results file that is *upserted*
//! on re-runs). Reports are byte-identical across `--threads` — the
//! sweep preserves input order and the single-flight bracket cache makes
//! per-cell brackets workload-determined — and re-runs resume cheaply
//! through the on-disk bracket cache.
//!
//! The TOML subset is parsed by hand (no new dependencies): `[section]`
//! headers, `key = value` pairs, strings, integers, floats, booleans and
//! single-line arrays, with `#` comments. That is exactly what a grid
//! declaration needs; anything fancier is rejected with a line-numbered
//! error.
//!
//! ## Schema
//!
//! ```toml
//! [fleet]
//! name = "vector-envelope"   # report / artifact basename (required)
//! seed = 23                  # workload seed (default 1)
//! sweep-seed = 2127167489    # cell→worker dealing seed (default 0x7EC70001)
//! threads = 0                # worker pin; 0 = inherit --threads (default 0)
//!
//! [grid]
//! workloads = ["vm-correlated", "vm-anti-correlated", "vm-skew-4"]
//! algorithms = ["first-fit", "best-fit", "hybrid", "cdff"]
//! items = [400]              # sessions / items per instance (default [400])
//! mu = [1200]                # duration-spread knob; see below (default [1200])
//! dims = [2]                 # size dimensions (default [1])
//! failure-rates = [0.0]      # seeded crash probability per bin (default [0.0])
//! retry = "immediate"        # immediate|fixed=<ticks>|exp=<ticks>
//! fail-seed = 23             # crash-fate seed (default: fleet seed)
//! down = 32                  # crash downtime in ticks (default 32)
//!
//! [report]
//! results = "fleet.json"     # optional per-cell upsert file (under --out)
//! svg = "fleet.svg"          # optional ratio dashboard (under --out)
//! ```
//!
//! Workload kinds: `vm-correlated`, `vm-anti-correlated`, `vm-skew-<k>`
//! (the [`dbp_workloads::VmConfig`] fleets; `mu` is the arrival horizon,
//! the knob the `vector` experiment sets) and `general`
//! ([`dbp_workloads::random_general`]; scalar-only, `mu` is the
//! log-uniform duration spread and must be a power of two).

use std::fmt::Write as _;

use dbp_analysis::svg::svg_series;
use dbp_analysis::table::{f3, Table};
use dbp_core::engine::run_with_failures;
use dbp_core::failure::{FailurePlan, RetryPolicy};
use dbp_core::instance::Instance;
use dbp_core::size::MAX_DIMS;
use dbp_core::time::Dur;
use dbp_core::NoopSink;
use dbp_workloads::{
    random_general, vm_anti_correlated, vm_correlated, vm_skewed, GeneralConfig, VmConfig,
};

use crate::experiments::vector::scalarized;
use crate::sweep::{parallel_map_with, SweepOptions};
use crate::throughput::json;

/// One value of the hand-rolled TOML subset.
#[derive(Debug, Clone, PartialEq)]
enum Toml {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Array(Vec<Toml>),
}

impl Toml {
    fn type_name(&self) -> &'static str {
        match self {
            Toml::Str(_) => "string",
            Toml::Int(_) => "integer",
            Toml::Float(_) => "float",
            Toml::Bool(_) => "boolean",
            Toml::Array(_) => "array",
        }
    }
}

/// Cuts a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits `a, b, c` at top-level commas, respecting quoted strings.
fn split_items(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut in_str = false;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_value(raw: &str, lineno: usize) -> Result<Toml, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(format!("line {lineno}: missing value"));
    }
    if let Some(inner) = raw.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("line {lineno}: unterminated string"))?;
        if inner.contains('"') || inner.contains('\\') {
            return Err(format!(
                "line {lineno}: escapes and embedded quotes are not supported"
            ));
        }
        return Ok(Toml::Str(inner.to_string()));
    }
    if raw == "true" {
        return Ok(Toml::Bool(true));
    }
    if raw == "false" {
        return Ok(Toml::Bool(false));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("line {lineno}: arrays must close on the same line"))?;
        if inner.trim().is_empty() {
            return Ok(Toml::Array(Vec::new()));
        }
        return split_items(inner)
            .into_iter()
            .map(|item| parse_value(item, lineno))
            .collect::<Result<Vec<_>, _>>()
            .map(Toml::Array);
    }
    if let Ok(n) = raw.parse::<i64>() {
        return Ok(Toml::Int(n));
    }
    if let Ok(x) = raw.parse::<f64>() {
        if x.is_finite() {
            return Ok(Toml::Float(x));
        }
    }
    Err(format!("line {lineno}: unrecognised value `{raw}`"))
}

/// Parses the TOML subset into `(section, key, value)` entries in file
/// order. Duplicate keys within a section are rejected.
fn parse_toml(text: &str) -> Result<Vec<(String, String, Toml)>, String> {
    let mut entries: Vec<(String, String, Toml)> = Vec::new();
    let mut section = String::new();
    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: malformed section header"))?
                .trim();
            if name.is_empty() {
                return Err(format!("line {lineno}: empty section name"));
            }
            section = name.to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() {
            return Err(format!("line {lineno}: empty key"));
        }
        if section.is_empty() {
            return Err(format!("line {lineno}: `{key}` appears before any [section]"));
        }
        if entries.iter().any(|(s, k, _)| s == &section && k == key) {
            return Err(format!("line {lineno}: duplicate key `{section}.{key}`"));
        }
        entries.push((section.clone(), key.to_string(), parse_value(value, lineno)?));
    }
    Ok(entries)
}

/// A validated fleet manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Fleet name: report title and artifact basename.
    pub name: String,
    /// Workload seed.
    pub seed: u64,
    /// Seed for the sweep's cell→worker dealing.
    pub sweep_seed: u64,
    /// Worker pin from the manifest (0 = inherit the CLI/`--threads`).
    pub threads: usize,
    /// Workload kinds (see the module docs for the vocabulary).
    pub workloads: Vec<String>,
    /// Algorithm registry names.
    pub algorithms: Vec<String>,
    /// Instance sizes (sessions / items).
    pub items: Vec<usize>,
    /// Duration-spread knob per workload kind.
    pub mus: Vec<u64>,
    /// Size dimensions.
    pub dims: Vec<usize>,
    /// Seeded per-bin crash probabilities.
    pub failure_rates: Vec<f64>,
    /// Re-admission backoff for crash-displaced items.
    pub retry: RetryPolicy,
    /// Crash-fate seed.
    pub fail_seed: u64,
    /// Crash downtime in ticks.
    pub down: u64,
    /// Optional per-cell results file (upserted under `--out`).
    pub results: Option<String>,
    /// Optional SVG dashboard file (written under `--out`).
    pub svg: Option<String>,
}

fn expect_u64(v: &Toml, what: &str) -> Result<u64, String> {
    match v {
        Toml::Int(n) if *n >= 0 => Ok(*n as u64),
        _ => Err(format!("{what} must be a non-negative integer")),
    }
}

fn expect_str(v: &Toml, what: &str) -> Result<String, String> {
    match v {
        Toml::Str(s) => Ok(s.clone()),
        _ => Err(format!("{what} must be a string, got {}", v.type_name())),
    }
}

fn expect_array<T>(
    v: &Toml,
    what: &str,
    elem: impl Fn(&Toml) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let Toml::Array(items) = v else {
        return Err(format!("{what} must be an array, got {}", v.type_name()));
    };
    if items.is_empty() {
        return Err(format!("{what} must not be empty"));
    }
    items.iter().map(elem).collect()
}

/// Checks a workload kind, returning an error for unknown vocabulary.
fn validate_workload(kind: &str) -> Result<(), String> {
    match kind {
        "vm-correlated" | "vm-anti-correlated" | "general" => Ok(()),
        _ => {
            if let Some(k) = kind.strip_prefix("vm-skew-") {
                if k.parse::<u64>().is_ok_and(|k| k >= 1) {
                    return Ok(());
                }
            }
            Err(format!(
                "unknown workload `{kind}` (expected vm-correlated, \
                 vm-anti-correlated, vm-skew-<k> or general)"
            ))
        }
    }
}

/// Builds one instance for a cell. `kind` must have passed
/// [`validate_workload`].
fn build_instance(kind: &str, items: usize, mu: u64, dims: usize, seed: u64) -> Instance {
    if kind == "general" {
        debug_assert_eq!(dims, 1, "validated at parse time");
        let cfg = GeneralConfig::new(mu.ilog2(), items);
        return random_general(&cfg, seed);
    }
    let cfg = VmConfig::new(items, mu).dims(dims);
    match kind {
        "vm-correlated" => vm_correlated(&cfg, seed),
        "vm-anti-correlated" => vm_anti_correlated(&cfg, seed),
        _ => {
            let k = kind
                .strip_prefix("vm-skew-")
                .and_then(|k| k.parse::<u64>().ok())
                .expect("validated at parse time");
            vm_skewed(&cfg, k, seed)
        }
    }
}

impl Manifest {
    /// Parses and validates a manifest from TOML text.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let entries = parse_toml(text)?;
        let mut m = Manifest {
            name: String::new(),
            seed: 1,
            sweep_seed: 0x7EC7_0001,
            threads: 0,
            workloads: Vec::new(),
            algorithms: Vec::new(),
            items: vec![400],
            mus: vec![1_200],
            dims: vec![1],
            failure_rates: vec![0.0],
            retry: RetryPolicy::Immediate,
            fail_seed: u64::MAX, // sentinel: defaults to `seed` below
            down: 32,
            results: None,
            svg: None,
        };
        for (section, key, value) in &entries {
            let what = format!("{section}.{key}");
            match (section.as_str(), key.as_str()) {
                ("fleet", "name") => m.name = expect_str(value, &what)?,
                ("fleet", "seed") => m.seed = expect_u64(value, &what)?,
                ("fleet", "sweep-seed") => m.sweep_seed = expect_u64(value, &what)?,
                ("fleet", "threads") => m.threads = expect_u64(value, &what)? as usize,
                ("grid", "workloads") => {
                    m.workloads = expect_array(value, &what, |v| expect_str(v, &what))?
                }
                ("grid", "algorithms") => {
                    m.algorithms = expect_array(value, &what, |v| expect_str(v, &what))?
                }
                ("grid", "items") => {
                    m.items = expect_array(value, &what, |v| {
                        expect_u64(v, &what).map(|n| n as usize)
                    })?
                }
                ("grid", "mu") => m.mus = expect_array(value, &what, |v| expect_u64(v, &what))?,
                ("grid", "dims") => {
                    m.dims = expect_array(value, &what, |v| {
                        expect_u64(v, &what).map(|n| n as usize)
                    })?
                }
                ("grid", "failure-rates") => {
                    m.failure_rates = expect_array(value, &what, |v| match v {
                        Toml::Float(x) => Ok(*x),
                        Toml::Int(n) => Ok(*n as f64),
                        _ => Err(format!("{what} must hold numbers")),
                    })?
                }
                ("grid", "retry") => {
                    let raw = expect_str(value, &what)?;
                    m.retry = RetryPolicy::parse(&raw).ok_or_else(|| {
                        format!("{what}: bad policy `{raw}` (immediate|fixed=<ticks>|exp=<ticks>)")
                    })?;
                }
                ("grid", "fail-seed") => m.fail_seed = expect_u64(value, &what)?,
                ("grid", "down") => m.down = expect_u64(value, &what)?,
                ("report", "results") => m.results = Some(expect_str(value, &what)?),
                ("report", "svg") => m.svg = Some(expect_str(value, &what)?),
                _ => return Err(format!("unknown manifest key `{what}`")),
            }
        }
        if m.fail_seed == u64::MAX {
            m.fail_seed = m.seed;
        }
        m.validate()?;
        Ok(m)
    }

    fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("fleet.name is required".to_string());
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(format!(
                "fleet.name `{}` must be filename-safe ([A-Za-z0-9._-])",
                self.name
            ));
        }
        if self.workloads.is_empty() {
            return Err("grid.workloads is required".to_string());
        }
        if self.algorithms.is_empty() {
            return Err("grid.algorithms is required".to_string());
        }
        for kind in &self.workloads {
            validate_workload(kind)?;
        }
        for name in &self.algorithms {
            if dbp_algos::by_name(name).is_none() {
                return Err(format!("unknown algorithm `{name}`"));
            }
        }
        if self.items.iter().any(|&n| n == 0) {
            return Err("grid.items entries must be positive".to_string());
        }
        if self.mus.iter().any(|&mu| mu == 0) {
            return Err("grid.mu entries must be positive".to_string());
        }
        for &d in &self.dims {
            if !(1..=MAX_DIMS).contains(&d) {
                return Err(format!("grid.dims entry {d} outside 1..={MAX_DIMS}"));
            }
        }
        for &rate in &self.failure_rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("failure rate {rate} is not a probability"));
            }
        }
        if self.down == 0 {
            return Err("grid.down must be at least one tick".to_string());
        }
        if self.workloads.iter().any(|k| k == "general") {
            if self.dims.iter().any(|&d| d > 1) {
                return Err(
                    "workload `general` is scalar-only: grid.dims must be [1]".to_string()
                );
            }
            if self.mus.iter().any(|&mu| !mu.is_power_of_two()) {
                return Err(
                    "workload `general` needs power-of-two grid.mu (log-uniform spread)"
                        .to_string(),
                );
            }
        }
        Ok(())
    }

    /// Expands the grid into cells, in deterministic nested order
    /// (workload → algorithm → items → μ → dims → failure rate).
    pub fn expand(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for workload in &self.workloads {
            for algo in &self.algorithms {
                for &items in &self.items {
                    for &mu in &self.mus {
                        for &dims in &self.dims {
                            for &rate in &self.failure_rates {
                                cells.push(Cell {
                                    workload: workload.clone(),
                                    algo: algo.clone(),
                                    items,
                                    mu,
                                    dims,
                                    rate,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One point of the manifest grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Workload kind.
    pub workload: String,
    /// Algorithm registry name.
    pub algo: String,
    /// Instance size (sessions / items).
    pub items: usize,
    /// Duration-spread knob.
    pub mu: u64,
    /// Size dimensions.
    pub dims: usize,
    /// Seeded crash probability per bin.
    pub rate: f64,
}

impl Cell {
    /// Stable identifier, the upsert key of the results file.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/n{}/mu{}/d{}/f{}",
            self.workload, self.algo, self.items, self.mu, self.dims, self.rate
        )
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The grid point.
    pub cell: Cell,
    /// Algorithm cost in bin-ticks (under the cell's failure plan).
    pub cost: f64,
    /// Bins opened.
    pub bins: u64,
    /// Max-component scalarization cost (vector cells only).
    pub scalar_max: Option<f64>,
    /// Certified competitive-ratio lower bound.
    pub lo: f64,
    /// Certified competitive-ratio upper bound.
    pub hi: f64,
    /// Bracket rung the ladder terminated at.
    pub rung: String,
}

/// A rendered fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Fleet name from the manifest.
    pub name: String,
    /// The comparison table, one row per cell in grid order.
    pub table: Table,
    /// Summary text under the table.
    pub text: String,
    /// Raw per-cell results in grid order.
    pub cells: Vec<CellResult>,
}

impl FleetReport {
    /// Renders the report for the terminal / artifact files.
    pub fn render(&self) -> String {
        let mut out = format!("## Manifest fleet `{}` [run]\n\n", self.name);
        out.push_str(&self.table.render());
        out.push('\n');
        out.push_str(&self.text);
        if !self.text.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

fn run_cell(m: &Manifest, svc: &crate::bracket::BracketService, cell: &Cell) -> CellResult {
    let inst = build_instance(&cell.workload, cell.items, cell.mu, cell.dims, m.seed);
    let cb = svc.opt_r(&inst);
    let plan = FailurePlan::seeded(cell.rate, m.fail_seed, Dur(m.down));
    let algo = dbp_algos::by_name(&cell.algo).expect("validated at parse time");
    let run = run_with_failures(&inst, algo, plan.clone(), m.retry, NoopSink)
        .expect("legal manifest run");
    let (lo, hi) = cb.ratio_bracket(run.cost);
    let scalar_max = (cell.dims > 1).then(|| {
        let max_inst = scalarized(&inst);
        let algo = dbp_algos::by_name(&cell.algo).expect("validated at parse time");
        run_with_failures(&max_inst, algo, plan, m.retry, NoopSink)
            .expect("legal scalarized run")
            .cost
            .as_bin_ticks()
    });
    CellResult {
        cell: cell.clone(),
        cost: run.cost.as_bin_ticks(),
        bins: run.bins_opened as u64,
        scalar_max,
        lo,
        hi,
        rung: cb.rung.as_str().to_string(),
    }
}

/// Runs a manifest's whole grid and renders the fleet report.
///
/// `threads` overrides the worker count for this run only (`None` uses
/// the process-wide `--threads` pin); the output is byte-identical
/// either way.
pub fn run_fleet(m: &Manifest, threads: Option<usize>) -> FleetReport {
    let svc = crate::bracket::service();
    let cells = m.expand();
    let mut opts = SweepOptions::seeded(m.sweep_seed);
    if let Some(n) = threads {
        opts = opts.with_threads(n);
    }
    let results = parallel_map_with(&cells, opts, |cell| run_cell(m, &svc, cell));

    let mut table = Table::new([
        "workload",
        "algorithm",
        "items",
        "μ",
        "D",
        "fail",
        "cost",
        "scalar-max",
        "overhead",
        "ratio ≥",
        "ratio ≤",
        "rung",
    ]);
    let mut worst_hi: (f64, String) = (0.0, String::new());
    let mut worst_overhead: (f64, String) = (0.0, String::new());
    for r in &results {
        let (scalar, overhead) = match r.scalar_max {
            Some(s) => {
                let o = s / r.cost.max(f64::MIN_POSITIVE);
                if o > worst_overhead.0 {
                    worst_overhead = (o, r.cell.id());
                }
                (format!("{s:.1}"), f3(o))
            }
            None => ("—".to_string(), "—".to_string()),
        };
        if r.hi > worst_hi.0 {
            worst_hi = (r.hi, r.cell.id());
        }
        table.row([
            r.cell.workload.clone(),
            r.cell.algo.clone(),
            r.cell.items.to_string(),
            r.cell.mu.to_string(),
            r.cell.dims.to_string(),
            format!("{}", r.cell.rate),
            format!("{:.1}", r.cost),
            scalar,
            overhead,
            f3(r.lo),
            f3(r.hi),
            r.rung.clone(),
        ]);
    }
    let mut text = format!(
        "{} cells = {} workloads × {} algorithms × {} items × {} μ × {} dims × {} rates\n\
         (workload seed {}, fail seed {}, sweep seed {:#x}; ratios certified\n\
         against the clairvoyant bracket ladder).\n",
        results.len(),
        m.workloads.len(),
        m.algorithms.len(),
        m.items.len(),
        m.mus.len(),
        m.dims.len(),
        m.failure_rates.len(),
        m.seed,
        m.fail_seed,
        m.sweep_seed,
    );
    if !worst_hi.1.is_empty() {
        let _ = writeln!(
            text,
            "Worst certified upper ratio: {} at {}.",
            f3(worst_hi.0),
            worst_hi.1
        );
    }
    if !worst_overhead.1.is_empty() {
        let _ = writeln!(
            text,
            "Worst scalarization overhead: {} at {}.",
            f3(worst_overhead.0),
            worst_overhead.1
        );
    }
    FleetReport {
        name: m.name.clone(),
        table,
        text,
        cells: results,
    }
}

/// Renders the comparison dashboard: one certified-upper-ratio series
/// per algorithm, across that algorithm's cells in grid order.
pub fn dashboard_svg(report: &FleetReport) -> String {
    let mut algos: Vec<&str> = Vec::new();
    for r in &report.cells {
        if !algos.contains(&r.cell.algo.as_str()) {
            algos.push(&r.cell.algo);
        }
    }
    let series: Vec<(&str, Vec<f64>)> = algos
        .iter()
        .map(|&a| {
            (
                a,
                report
                    .cells
                    .iter()
                    .filter(|r| r.cell.algo == a)
                    .map(|r| r.hi)
                    .collect(),
            )
        })
        .collect();
    let len = series.first().map_or(0, |(_, ys)| ys.len());
    let xs: Vec<f64> = (0..len).map(|i| i as f64).collect();
    let borrowed: Vec<(&str, &[f64])> = series
        .iter()
        .map(|(name, ys)| (*name, ys.as_slice()))
        .collect();
    svg_series(
        &xs,
        &borrowed,
        &format!("fleet `{}`: certified ratio ≤ per cell", report.name),
        "cell (grid order)",
        "certified ratio ≤",
    )
}

fn json_f64(x: f64) -> String {
    // Shortest round-trip `Display`; integral values still need a `.0`
    // to parse back as a float-typed cell unambiguously — plain JSON
    // numbers are fine either way, this just keeps renders stable.
    format!("{x}")
}

/// Renders the per-cell results file.
fn render_results(fleet: &str, cells: &[(String, String)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"dbp-fleet-v1\",\n");
    let _ = writeln!(out, "  \"fleet\": \"{fleet}\",");
    out.push_str("  \"cells\": [\n");
    for (i, (_, line)) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(out, "    {line}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

fn cell_line(r: &CellResult) -> String {
    let mut line = format!(
        "{{\"id\": \"{}\", \"cost\": {}, \"bins\": {}, \"lo\": {}, \"hi\": {}",
        r.cell.id(),
        json_f64(r.cost),
        r.bins,
        json_f64(r.lo),
        json_f64(r.hi),
    );
    if let Some(s) = r.scalar_max {
        let _ = write!(line, ", \"scalar_max\": {}", json_f64(s));
    }
    let _ = write!(line, ", \"rung\": \"{}\"}}", r.rung);
    line
}

/// Merges a fleet run into an existing results file (or starts one):
/// rows are keyed by cell id, matching rows are replaced, unknown rows
/// from previous runs are kept, and the output is sorted by id so
/// re-runs of the same manifest are byte-stable.
pub fn upsert_results(existing: Option<&str>, report: &FleetReport) -> Result<String, String> {
    let mut rows: Vec<(String, String)> = Vec::new();
    if let Some(text) = existing {
        let value = json::parse(text)?;
        let obj = value
            .as_object()
            .ok_or_else(|| "results file: expected a JSON object".to_string())?;
        let schema = json::get_str(obj, "schema")?;
        if schema != "dbp-fleet-v1" {
            return Err(format!("results file: unknown schema `{schema}`"));
        }
        let fleet = json::get_str(obj, "fleet")?;
        if fleet != report.name {
            return Err(format!(
                "results file belongs to fleet `{fleet}`, not `{}`",
                report.name
            ));
        }
        let cells = json::get(obj, "cells")?
            .as_array()
            .ok_or_else(|| "results file: `cells` must be an array".to_string())?;
        for cell in cells {
            let obj = cell
                .as_object()
                .ok_or_else(|| "results file: cells must be objects".to_string())?;
            let id = json::get_str(obj, "id")?.to_string();
            // Re-render from parsed fields so a hand-edited file
            // normalises instead of corrupting the next upsert.
            let mut line = format!(
                "{{\"id\": \"{id}\", \"cost\": {}, \"bins\": {}, \"lo\": {}, \"hi\": {}",
                json_f64(json::get_f64(obj, "cost")?),
                json::get_u64(obj, "bins")?,
                json_f64(json::get_f64(obj, "lo")?),
                json_f64(json::get_f64(obj, "hi")?),
            );
            if let Ok(s) = json::get_f64(obj, "scalar_max") {
                let _ = write!(line, ", \"scalar_max\": {}", json_f64(s));
            }
            let _ = write!(line, ", \"rung\": \"{}\"}}", json::get_str(obj, "rung")?);
            rows.push((id, line));
        }
    }
    for r in &report.cells {
        let id = r.cell.id();
        let line = cell_line(r);
        match rows.iter_mut().find(|(k, _)| *k == id) {
            Some(slot) => slot.1 = line,
            None => rows.push((id, line)),
        }
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(render_results(&report.name, &rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
# a comment
[fleet]
name = "mini"
seed = 7

[grid]
workloads = ["vm-correlated"]   # trailing comment
algorithms = ["first-fit", "best-fit"]
items = [40]
mu = [200]
dims = [1, 2]
failure-rates = [0.0, 0.5]
retry = "fixed=3"
"#;

    #[test]
    fn parses_and_expands_the_grid_in_nested_order() {
        let m = Manifest::parse(MINI).expect("valid manifest");
        assert_eq!(m.name, "mini");
        assert_eq!(m.seed, 7);
        assert_eq!(m.fail_seed, 7, "fail seed defaults to the fleet seed");
        assert_eq!(m.retry, RetryPolicy::Fixed(Dur(3)));
        let cells = m.expand();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].id(), "vm-correlated/first-fit/n40/mu200/d1/f0");
        assert_eq!(cells[1].id(), "vm-correlated/first-fit/n40/mu200/d1/f0.5");
        assert_eq!(cells[2].id(), "vm-correlated/first-fit/n40/mu200/d2/f0");
        assert_eq!(cells[4].id(), "vm-correlated/best-fit/n40/mu200/d1/f0");
    }

    #[test]
    fn rejects_the_sharp_edges_with_line_numbers() {
        for (snippet, needle) in [
            ("[fleet]\nname = \"x\"\nname = \"y\"", "duplicate key"),
            ("name = \"x\"", "before any [section]"),
            ("[fleet\nname = \"x\"", "malformed section"),
            ("[fleet]\nname = \"x", "unterminated string"),
            ("[fleet]\nname =", "missing value"),
            ("[fleet]\nwat = 1", "unknown manifest key"),
            ("[fleet]\nname = \"a b\"", "filename-safe"),
        ] {
            let err = Manifest::parse(snippet).expect_err(snippet);
            assert!(err.contains(needle), "`{snippet}` → `{err}`");
        }
    }

    #[test]
    fn validates_the_grid_vocabulary() {
        let base = |grid: &str| {
            format!("[fleet]\nname = \"x\"\n[grid]\nworkloads = [\"vm-correlated\"]\nalgorithms = [\"first-fit\"]\n{grid}")
        };
        for (grid, needle) in [
            ("workloads = [\"nope\"]", "unknown workload"),
            ("algorithms = [\"nope\"]", "unknown algorithm"),
            ("dims = [9]", "outside"),
            ("failure-rates = [1.5]", "not a probability"),
            ("retry = \"bogus\"", "bad policy"),
            ("items = [0]", "positive"),
        ] {
            // Duplicate keys are legal here because the override comes
            // *after* the defaults-bearing line — rebuild from scratch.
            let text = if grid.starts_with("workloads") {
                format!(
                    "[fleet]\nname = \"x\"\n[grid]\n{grid}\nalgorithms = [\"first-fit\"]"
                )
            } else if grid.starts_with("algorithms") {
                format!(
                    "[fleet]\nname = \"x\"\n[grid]\nworkloads = [\"vm-correlated\"]\n{grid}"
                )
            } else {
                base(grid)
            };
            let err = Manifest::parse(&text).expect_err(grid);
            assert!(err.contains(needle), "`{grid}` → `{err}`");
        }
        let scalar_only = "[fleet]\nname = \"x\"\n[grid]\nworkloads = [\"general\"]\n\
                           algorithms = [\"first-fit\"]\ndims = [2]\nmu = [256]";
        assert!(Manifest::parse(scalar_only)
            .expect_err("general is scalar-only")
            .contains("scalar-only"));
    }

    #[test]
    fn results_file_upserts_by_cell_id() {
        let m = Manifest::parse(
            "[fleet]\nname = \"mini\"\n[grid]\nworkloads = [\"vm-correlated\"]\n\
             algorithms = [\"first-fit\"]\nitems = [30]\nmu = [100]\ndims = [2]",
        )
        .expect("valid");
        let report = run_fleet(&m, Some(1));
        let fresh = upsert_results(None, &report).expect("fresh upsert");
        assert!(fresh.contains("\"dbp-fleet-v1\""));
        assert!(fresh.contains("vm-correlated/first-fit/n30/mu100/d2/f0"));
        // Upserting the same run over its own output is a fixed point.
        assert_eq!(upsert_results(Some(&fresh), &report).expect("re-upsert"), fresh);
        // A foreign row survives, and lands in sorted position.
        let foreign = fresh.replace(
            "    {\"id\": \"vm-correlated",
            "    {\"id\": \"aaa\", \"cost\": 1, \"bins\": 1, \"lo\": 1, \"hi\": 2, \
             \"rung\": \"analytic\"},\n    {\"id\": \"vm-correlated",
        );
        let merged = upsert_results(Some(&foreign), &report).expect("merge");
        assert!(merged.contains("\"aaa\""));
        assert!(merged.find("\"aaa\"").unwrap() < merged.find("vm-correlated").unwrap());
        // Mismatched fleet names refuse to merge.
        let other = fresh.replace("\"mini\"", "\"other\"");
        assert!(upsert_results(Some(&other), &report)
            .expect_err("fleet mismatch")
            .contains("belongs to fleet"));
    }

    #[test]
    fn dashboard_has_one_series_per_algorithm() {
        let m = Manifest::parse(MINI).expect("valid");
        let report = run_fleet(&m, Some(1));
        let svg = dashboard_svg(&report);
        assert!(svg.contains("first-fit") && svg.contains("best-fit"));
        assert!(svg.starts_with("<svg") || svg.contains("<svg"));
    }
}
