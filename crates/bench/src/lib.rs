//! # dbp-bench
//!
//! Experiment harness for the reproduction: effort-aware OPT brackets
//! ([`bracket`]), a crossbeam-based parallel sweep runner ([`sweep`]), the
//! registry of every regenerated table/figure/lemma ([`experiments`]),
//! manifest-driven experiment fleets ([`manifest`], the `experiments run`
//! subcommand) and the engine-throughput program ([`throughput`], which
//! maintains `BENCH_engine.json`). [`matrix`] offers a public
//! algorithms × instances evaluation API. The `experiments` binary drives
//! it; criterion benches under `benches/` measure the algorithms
//! themselves.

#![warn(missing_docs)]

pub mod bracket;
pub mod experiments;
pub mod manifest;
pub mod matrix;
pub mod pipe;
pub mod sweep;
pub mod throughput;
