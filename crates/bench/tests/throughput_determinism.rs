//! Determinism battery for the throughput harness (ISSUE 6 satellite):
//! the pinned workload must produce bit-identical `RunMetrics` and event
//! streams regardless of sweep thread count or attached auditor, and the
//! resident-list rewrite of `pop_crash` must preserve the displacement
//! event order of the old full-table scan.

use dbp_bench::sweep::{self, SweepOptions};
use dbp_bench::throughput::{drive_events, drive_with_sink, Config, Workload};
use dbp_core::audit::InvariantAuditor;
use dbp_core::bin_state::BinId;
use dbp_core::item::ItemId;
use dbp_core::trace::{EngineEvent, VecSink};

const ITEMS: usize = 4_000;

/// Same seed ⇒ bit-identical metrics, cost, assignment and event stream
/// when the drive is replicated across sweep worker pools of 1 and 8
/// threads (per-replica work is single-threaded; the sweep must neither
/// reorder nor perturb anything).
#[test]
fn same_seed_same_results_across_thread_counts() {
    for config in [Config::AuditorOff, Config::ChaosOn] {
        let w = Workload::pinned(ITEMS);
        let inst = w.instance();
        let runs: Vec<_> = [1usize, 8]
            .iter()
            .map(|&threads| {
                let idx: Vec<usize> = (0..threads).collect();
                let opts = SweepOptions::seeded(w.seed).with_threads(threads);
                let mut replicas =
                    sweep::parallel_map_with(&idx, opts, |_| drive_events(&inst, config));
                // Replicas within one pool already agree; keep the first.
                replicas.swap_remove(0)
            })
            .collect();
        let (r1, e1) = &runs[0];
        let (r8, e8) = &runs[1];
        assert_eq!(r1.metrics, r8.metrics, "{config}: metrics diverged");
        assert_eq!(r1.cost, r8.cost, "{config}: cost diverged");
        assert_eq!(
            r1.assignment, r8.assignment,
            "{config}: assignment diverged"
        );
        assert_eq!(e1.events, e8.events, "{config}: event stream diverged");
    }
}

/// Attaching the invariant auditor must not change what the engine does:
/// metrics, cost, assignment and the event stream are identical with the
/// auditor on and off (the auditor only *reads* the store).
#[test]
fn auditor_on_off_is_bit_identical() {
    for config in [Config::AuditorOff, Config::ChaosOn] {
        let inst = Workload::pinned(ITEMS).instance();
        let (plain, plain_events) = drive_events(&inst, config);

        // Auditor attached via a (VecSink, InvariantAuditor) tee.
        let mut events = VecSink::new();
        let mut auditor = InvariantAuditor::new();
        let mut tee = (&mut events, &mut auditor);
        let audited = drive_with_sink(&inst, config.plan(), config.retry(), &mut tee);
        auditor.verify_result(&audited).expect("clean audit");

        assert_eq!(plain.metrics, audited.metrics, "{config}: metrics diverged");
        assert_eq!(plain.cost, audited.cost, "{config}: cost diverged");
        assert_eq!(
            plain.assignment, audited.assignment,
            "{config}: assignment diverged"
        );
        assert_eq!(
            plain_events.events, events.events,
            "{config}: event stream diverged"
        );
    }
}

/// Regression pin for the resident-list `pop_crash` rewrite: within every
/// crash, `ItemDisplaced` events must name exactly the bin's current
/// residents in ascending item id — the order the old all-items scan
/// produced. The oracle reconstructs per-bin residency from the event
/// stream alone.
#[test]
fn pop_crash_event_order_is_ascending_residents() {
    let inst = Workload::pinned(20_000).instance();
    let (result, sink) = drive_events(&inst, Config::ChaosOn);
    assert!(
        result.resilience.bin_failures > 0,
        "chaos config must land crashes for the oracle to check anything"
    );

    // Residency oracle: replay placements and departures.
    let mut resident_bin: Vec<Option<BinId>> = Vec::new();
    let mut displaced_run: Vec<ItemId> = Vec::new();
    let mut checked_crashes = 0u64;
    for ev in &sink.events {
        match *ev {
            EngineEvent::Placed { item, bin, .. } => {
                let idx = item.index();
                if resident_bin.len() <= idx {
                    resident_bin.resize(idx + 1, None);
                }
                resident_bin[idx] = Some(bin);
            }
            EngineEvent::Departure { item, .. } => {
                resident_bin[item.index()] = None;
            }
            EngineEvent::ItemDisplaced { item, bin, .. } => {
                assert_eq!(
                    resident_bin[item.index()],
                    Some(bin),
                    "displaced item {item} was not resident in {bin}"
                );
                resident_bin[item.index()] = None;
                displaced_run.push(item);
            }
            EngineEvent::BinFailed { bin, .. } => {
                // The displacement run since the last event block must be
                // (a) ascending and (b) exactly the residents this bin
                // held (all now cleared by the loop above).
                assert!(
                    displaced_run.windows(2).all(|w| w[0] < w[1]),
                    "crash of {bin}: displacements out of ascending order: {displaced_run:?}"
                );
                assert!(
                    !displaced_run.is_empty(),
                    "crash of {bin} displaced nothing"
                );
                assert!(
                    resident_bin.iter().all(|&b| b != Some(bin)),
                    "crash of {bin} left residents behind"
                );
                displaced_run.clear();
                checked_crashes += 1;
            }
            _ => {}
        }
    }
    assert_eq!(
        checked_crashes, result.resilience.bin_failures,
        "every crash checked"
    );
}
