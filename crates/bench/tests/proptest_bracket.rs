//! Property tests for the certified-bracket service: the refinement
//! ladder's soundness invariants, warm-cache bit-identity, and the
//! order-independence of the content-addressed digest — all over
//! arbitrary instances.

use dbp_bench::bracket::{BracketService, Effort};
use dbp_core::bounds::{BracketRung, BracketSource, OptBracket};
use dbp_core::{Dur, Instance, Size, Time};
use proptest::prelude::*;

type Triple = (u64, u64, u64); // (arrival, duration, size as n/100)

fn arb_triples() -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec((0u64..120, 1u64..=48, 1u64..=100), 1..=32)
}

fn build(triples: &[Triple]) -> Instance {
    Instance::from_triples(
        triples
            .iter()
            .map(|&(t, d, s)| (Time(t), Dur(d), Size::from_ratio(s, 100))),
    )
    .expect("valid instance")
}

/// Deterministic Fisher–Yates driven by a SplitMix64 stream: the permuted
/// copy exercises the digest's order-independence claim.
fn shuffled(triples: &[Triple], seed: u64) -> Vec<Triple> {
    let mut v = triples.to_vec();
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        v.swap(i, next() as usize % (i + 1));
    }
    v
}

/// `inner` is contained in `outer` (never looser on either side).
fn within(inner: OptBracket, outer: OptBracket) -> bool {
    inner.lower >= outer.lower && inner.upper <= outer.upper
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ladder soundness at every effort level: the bracket is ordered
    /// (lower ≤ upper), each effort's result is contained in the analytic
    /// Lemma 3.1 sandwich (the ladder only ever tightens), and the
    /// certifying rung is recorded consistently.
    #[test]
    fn ladder_is_ordered_and_monotone(triples in arb_triples()) {
        let inst = build(&triples);
        let analytic = OptBracket::of(&inst);
        prop_assert!(analytic.lower <= analytic.upper);
        for effort in [Effort::Analytic, Effort::Cached, Effort::Budget(50)] {
            let svc = BracketService::new(effort);
            for cb in [svc.opt_r(&inst), svc.opt_nr(&inst)] {
                prop_assert!(cb.bracket.lower <= cb.bracket.upper,
                    "inverted bracket at effort {effort}");
                prop_assert!(within(cb.bracket, analytic),
                    "effort {effort} loosened the analytic bracket");
                prop_assert!(
                    (cb.rung == BracketRung::Analytic) == (cb.bracket == analytic)
                        || cb.rung > BracketRung::Analytic,
                    "rung/bracket provenance mismatch at effort {effort}"
                );
            }
        }
    }

    /// Rung monotonicity across goals: OPT_R ≤ OPT_NR, so the certified
    /// OPT_R lower bound can never exceed the certified OPT_NR upper bound
    /// — whatever rungs certified each side.
    #[test]
    fn opt_r_never_exceeds_opt_nr(triples in arb_triples()) {
        let svc = BracketService::new(Effort::Cached);
        let r = svc.opt_r(&build(&triples));
        let nr = svc.opt_nr(&build(&triples));
        prop_assert!(r.bracket.lower <= nr.bracket.upper,
            "OPT_R lower {} > OPT_NR upper {}",
            r.bracket.lower.as_bin_ticks(), nr.bracket.upper.as_bin_ticks());
    }

    /// Warm hits are bit-identical to the cold compute, for both goals,
    /// with the provenance flipping Computed → WarmMemory.
    #[test]
    fn warm_hits_are_bit_identical(triples in arb_triples()) {
        let svc = BracketService::new(Effort::Cached);
        let inst = build(&triples);
        for goal in 0..2 {
            let get = |s: &BracketService| if goal == 0 { s.opt_r(&inst) } else { s.opt_nr(&inst) };
            let cold = get(&svc);
            let warm = get(&svc);
            prop_assert_eq!(cold.source, BracketSource::Computed);
            prop_assert_eq!(warm.source, BracketSource::WarmMemory);
            prop_assert_eq!(warm.bracket, cold.bracket, "warm bracket drifted");
            prop_assert_eq!(warm.rung, cold.rung, "warm rung drifted");
        }
    }

    /// A cold recompute on a fresh service reproduces the first service's
    /// bracket exactly: Cached effort is deterministic by construction
    /// (node budgets, no wall clock).
    #[test]
    fn cold_recompute_is_deterministic(triples in arb_triples()) {
        let inst = build(&triples);
        let a = BracketService::new(Effort::Cached).opt_r(&inst);
        let b = BracketService::new(Effort::Cached).opt_r(&inst);
        prop_assert_eq!(a.bracket, b.bracket);
        prop_assert_eq!(a.rung, b.rung);
    }

    /// The content digest is invariant under permutation of the item
    /// list — and therefore a permuted copy of an instance is served from
    /// cache, bit-identical to the original's bracket.
    #[test]
    fn digest_invariant_under_permutation(triples in arb_triples(), seed in 0u64..u64::MAX) {
        let inst = build(&triples);
        let perm = build(&shuffled(&triples, seed));
        prop_assert_eq!(inst.digest().0, perm.digest().0,
            "permuting the items changed the digest");

        let svc = BracketService::new(Effort::Cached);
        let cold = svc.opt_r(&inst);
        let warm = svc.opt_r(&perm);
        prop_assert_eq!(cold.source, BracketSource::Computed);
        prop_assert_eq!(warm.source, BracketSource::WarmMemory,
            "permuted instance missed the cache");
        prop_assert_eq!(warm.bracket, cold.bracket);
        prop_assert_eq!(warm.rung, cold.rung);
    }

    /// Distinct instances get distinct digests (no accidental collisions
    /// on perturbed inputs: nudging one item's arrival changes the key).
    #[test]
    fn digest_separates_perturbed_instances(triples in arb_triples()) {
        let inst = build(&triples);
        let mut nudged = triples.clone();
        nudged[0].0 += 1_000; // outside arb_triples' arrival range
        let other = build(&nudged);
        prop_assert_ne!(inst.digest().0, other.digest().0);
    }
}

/// The rung ladder is totally ordered: deeper certification methods
/// compare strictly greater, so `max` over rungs picks the deepest.
#[test]
fn rung_order_is_the_ladder_order() {
    use BracketRung::*;
    let ladder = [Analytic, FfdRepack, Portfolio, Exact];
    for w in ladder.windows(2) {
        assert!(w[0] < w[1], "{:?} should precede {:?}", w[0], w[1]);
    }
    assert_eq!(ladder.iter().copied().max(), Some(Exact));
}
