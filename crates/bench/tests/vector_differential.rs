//! Vector differential battery (DESIGN.md §16): the D = 1 bit-identity
//! contract across the whole algorithm registry, per-dimension load
//! conservation under chaos + recourse, and the event codec's vector
//! round-trip.
//!
//! The contract under test: a `SizeVec` whose dimensions 1.. are zero IS
//! the scalar it wraps — same placements, same events, same cost — and a
//! diagonal lift (the scalar replicated into every dimension) packs
//! identically too, because every per-dimension fit test degenerates to
//! the same scalar constraint.

use dbp_algos::{by_name, registry_names};
use dbp_core::{
    engine, event_from_json, event_to_json, EngineEvent, FailurePlan, Instance, InvariantAuditor,
    RecourseBudget, RetryPolicy, SizeVec, VecSink,
};
use dbp_workloads::{random_general, vm_anti_correlated, GeneralConfig, VmConfig};

/// The scalar workload every identity check runs on: mixed sizes and
/// durations with plenty of same-tick ties.
fn scalar_instance() -> Instance {
    random_general(&GeneralConfig::new(6, 400), 20_260_808)
}

/// The same instance with every size rebuilt through the vector
/// constructor (still D = 1).
fn via_vector_path(inst: &Instance) -> Instance {
    Instance::from_triples(inst.items().iter().map(|it| {
        let v = SizeVec::from_sizes(&[it.size.primary()]).expect("nonzero scalar");
        (it.arrival, it.duration(), v)
    }))
    .expect("rebuild preserves validity")
}

/// The scalar replicated into all `d` dimensions.
fn diagonal_lift(inst: &Instance, d: usize) -> Instance {
    Instance::from_triples(inst.items().iter().map(|it| {
        let lifted = vec![it.size.primary(); d];
        let v = SizeVec::from_sizes(&lifted).expect("d is in range");
        (it.arrival, it.duration(), v)
    }))
    .expect("lift preserves validity")
}

/// D = 1 `SizeVec` runs are bit-identical to scalar runs — events,
/// assignment, cost, metrics — for every algorithm in the registry.
#[test]
fn d1_sizevec_is_bit_identical_to_scalar_for_every_registry_algorithm() {
    let scalar = scalar_instance();
    let vector = via_vector_path(&scalar);
    assert_eq!(
        scalar.items(),
        vector.items(),
        "construction already differs"
    );
    for &name in registry_names() {
        let mut scalar_events = VecSink::new();
        let mut vector_events = VecSink::new();
        let a = engine::run_with_sink(
            &scalar,
            by_name(name).expect("registry"),
            &mut scalar_events,
        )
        .expect("scalar run");
        let b = engine::run_with_sink(
            &vector,
            by_name(name).expect("registry"),
            &mut vector_events,
        )
        .expect("vector run");
        assert_eq!(a.assignment, b.assignment, "{name}: assignment diverged");
        assert_eq!(a.cost, b.cost, "{name}: cost diverged");
        assert_eq!(a.bins_opened, b.bins_opened, "{name}: bins diverged");
        assert_eq!(a.metrics, b.metrics, "{name}: metrics diverged");
        assert_eq!(
            scalar_events.events, vector_events.events,
            "{name}: event streams diverged"
        );
    }
}

/// A diagonal lift packs exactly like its scalar original at every
/// D — same placements, same cost — since each dimension imposes the
/// same constraint. (Event streams differ only in the size payloads.)
#[test]
fn diagonal_lift_packs_identically_at_every_dimension() {
    let scalar = scalar_instance();
    for d in 2..=dbp_core::MAX_DIMS {
        let lifted = diagonal_lift(&scalar, d);
        assert_eq!(lifted.dims(), d);
        for &name in registry_names() {
            let a = engine::run(&scalar, by_name(name).expect("registry")).expect("scalar run");
            let b = engine::run(&lifted, by_name(name).expect("registry")).expect("lifted run");
            assert_eq!(
                a.assignment, b.assignment,
                "{name}@D={d}: assignment diverged"
            );
            assert_eq!(a.cost, b.cost, "{name}@D={d}: cost diverged");
            assert_eq!(a.bins_opened, b.bins_opened, "{name}@D={d}: bins diverged");
        }
    }
}

/// Per-dimension load conservation on a genuinely vector (anti-correlated
/// CPU/mem) workload, with seeded bin crashes and an armed recourse
/// budget both churning residents mid-run: the auditor mirrors every
/// placement/departure/displacement/migration per dimension and
/// cross-checks the three cost ledgers at the end.
#[test]
fn per_dimension_conservation_survives_chaos_and_recourse() {
    let inst = vm_anti_correlated(&VmConfig::new(300, 900).dims(2), 7);
    assert_eq!(inst.dims(), 2, "workload should be two-dimensional");
    let budget = RecourseBudget::parse("amortized=250").expect("spec parses");
    for name in ["amortized:first-fit", "rod:best-fit"] {
        let mut auditor = InvariantAuditor::new();
        auditor.expect_budget(budget);
        let res = engine::run_with_failures_recourse(
            &inst,
            by_name(name).expect("registry"),
            FailurePlan::seeded(0.4, 11, dbp_core::Dur(50)),
            RetryPolicy::Fixed(dbp_core::Dur(2)),
            budget,
            &mut auditor,
        )
        .expect("chaos run");
        assert!(
            res.resilience.bin_failures > 0,
            "{name}: plan injected no failures — test lost its teeth"
        );
        auditor
            .verify_result(&res)
            .unwrap_or_else(|v| panic!("{name}: {v}"));
    }
}

/// Every event of a 3-dimensional chaos run survives the JSONL codec
/// verbatim, and scalar runs keep emitting scalar `size` payloads (no
/// arrays), so recorded D = 1 traces replay byte-for-byte.
#[test]
fn event_codec_round_trips_vector_sizes() {
    let inst = vm_anti_correlated(&VmConfig::new(200, 600).dims(3), 9);
    assert_eq!(inst.dims(), 3);
    let mut sink = VecSink::new();
    engine::run_with_failures(
        &inst,
        by_name("first-fit").expect("registry"),
        FailurePlan::seeded(0.3, 5, dbp_core::Dur(40)),
        RetryPolicy::Immediate,
        &mut sink,
    )
    .expect("chaos run");
    let mut saw_vector_size = false;
    for ev in &sink.events {
        let line = event_to_json(ev);
        let back = event_from_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(*ev, back, "codec round-trip diverged on {line}");
        if let EngineEvent::Arrival { size, .. } = ev {
            saw_vector_size |= size.dims_used() > 1;
        }
    }
    assert!(saw_vector_size, "no multi-dimensional arrival exercised");

    // Scalar runs stay on the scalar wire shape.
    let mut scalar_sink = VecSink::new();
    engine::run_with_sink(
        &scalar_instance(),
        by_name("first-fit").expect("registry"),
        &mut scalar_sink,
    )
    .expect("scalar run");
    for ev in &scalar_sink.events {
        if let EngineEvent::Arrival { .. } | EngineEvent::Departure { .. } = ev {
            let line = event_to_json(ev);
            assert!(
                !line.contains('['),
                "scalar event leaked an array payload: {line}"
            );
            assert_eq!(event_from_json(&line).expect("parses"), *ev);
        }
    }
}
