//! `tool … | head` must exit 0, quietly.
//!
//! Rust ignores `SIGPIPE`, so when the consumer closes stdout early the
//! CLIs used to panic out of `write_all`/`println!` with a backtrace and
//! exit code 101. These tests spawn the real binaries with a piped
//! stdout, read a little, slam the pipe shut, and require a clean exit.

use std::io::Read;
use std::process::{Command, Stdio};

/// Spawns `cmd`, reads a few bytes of stdout (proving the tool was
/// mid-stream), closes the read end, and returns the exit status.
fn close_pipe_early(mut cmd: Command) -> std::process::ExitStatus {
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    let mut out = child.stdout.take().expect("stdout piped");
    let mut first = [0u8; 256];
    let n = out.read(&mut first).expect("first read");
    assert!(n > 0, "tool produced no output before the pipe closed");
    drop(out); // EPIPE for every write past the kernel buffer
    child.wait().expect("wait")
}

#[test]
fn dbp_gen_exits_cleanly_when_stdout_closes() {
    // ~200k items of CSV — far beyond any pipe buffer.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dbp-gen"));
    cmd.args(["general", "--n", "6", "--items", "200000"]);
    let status = close_pipe_early(cmd);
    assert!(
        status.success(),
        "dbp-gen should treat a closed pipe as success, got {status:?}"
    );
}

#[test]
fn dbp_trace_record_exits_cleanly_when_stdout_closes() {
    let dir = std::env::temp_dir().join(format!("dbp-pipe-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("trace.csv");
    let gen = Command::new(env!("CARGO_BIN_EXE_dbp-gen"))
        .args(["general", "--n", "6", "--items", "100000", "--out"])
        .arg(&csv)
        .status()
        .expect("dbp-gen runs");
    assert!(gen.success());

    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dbp-trace"));
    cmd.arg("record").arg(&csv).args(["--algo", "first-fit"]);
    let status = close_pipe_early(cmd);
    assert!(
        status.success(),
        "dbp-trace record should treat a closed pipe as success, got {status:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
