//! Acceptance tests for the manifest-driven experiment fleet (PR 10):
//! `experiments run` with a manifest equivalent to the `vector`
//! experiment must reproduce its numbers exactly, and fleet reports must
//! be byte-identical across sweep thread counts (the CI smoke job
//! re-proves the latter across processes).

use dbp_bench::experiments::vector;
use dbp_bench::manifest::{run_fleet, upsert_results, Manifest};

fn csv_rows(csv: &str) -> Vec<Vec<String>> {
    csv.lines()
        .skip(1) // header
        .map(|l| l.split(',').map(|c| c.trim_matches('"').to_string()).collect())
        .collect()
}

/// The manifest equivalent of `experiments vector` (D = 2): same fleets,
/// same algorithms, same `VmConfig::new(400, 1_200)` seed-23 instances.
const VECTOR_EQUIV: &str = r#"
[fleet]
name = "vector-repro"
seed = 23

[grid]
workloads = ["vm-correlated", "vm-anti-correlated", "vm-skew-4"]
algorithms = ["first-fit", "best-fit", "hybrid", "cdff"]
items = [400]
mu = [1200]
dims = [2]
"#;

#[test]
fn manifest_reproduces_the_vector_experiment() {
    let m = Manifest::parse(VECTOR_EQUIV).expect("valid manifest");
    let fleet = run_fleet(&m, None);
    let reference = vector::vector();

    let frows = csv_rows(&fleet.table.to_csv());
    let vrows = csv_rows(&reference.table.to_csv());
    assert_eq!(frows.len(), vrows.len(), "cell count mismatch");
    for (f, v) in frows.iter().zip(&vrows) {
        // vector columns: fleet, algorithm, vector cost, scalar-max cost,
        //                 overhead, ratio ≥, ratio ≤, rung
        // fleet columns:  workload, algorithm, items, μ, D, fail, cost,
        //                 scalar-max, overhead, ratio ≥, ratio ≤, rung
        let ctx = format!("{}/{}", v[0], v[1]);
        assert_eq!(f[0], format!("vm-{}", v[0]), "{ctx}: workload");
        assert_eq!(f[1], v[1], "{ctx}: algorithm");
        assert_eq!(f[6], v[2], "{ctx}: cost");
        assert_eq!(f[7], v[3], "{ctx}: scalar-max cost");
        assert_eq!(f[8], v[4], "{ctx}: overhead");
        assert_eq!(f[9], v[5], "{ctx}: certified ratio lower bound");
        assert_eq!(f[10], v[6], "{ctx}: certified ratio upper bound");
        assert_eq!(f[11], v[7], "{ctx}: bracket rung");
    }
}

const SMALL: &str = r#"
[fleet]
name = "threads-probe"
seed = 11

[grid]
workloads = ["vm-correlated", "vm-anti-correlated"]
algorithms = ["first-fit", "cdff"]
items = [60]
mu = [240]
dims = [1, 2]
failure-rates = [0.0, 0.2]
retry = "fixed=3"
"#;

#[test]
fn fleet_reports_are_byte_identical_across_threads_and_reruns() {
    let m = Manifest::parse(SMALL).expect("valid manifest");
    let sequential = run_fleet(&m, Some(1)).render();
    let parallel = run_fleet(&m, Some(8)).render();
    assert_eq!(sequential, parallel, "report depends on thread count");
    // A re-run (now fully warm in the bracket cache) is also identical:
    // resuming a fleet through the cache changes nothing observable.
    assert_eq!(run_fleet(&m, Some(8)).render(), sequential);

    // The per-cell results file is a fixed point under re-upserting, at
    // any thread count.
    let report = run_fleet(&m, Some(8));
    let once = upsert_results(None, &report).expect("fresh upsert");
    let twice = upsert_results(Some(&once), &report).expect("re-upsert");
    assert_eq!(once, twice);
    assert_eq!(once.matches("\"id\":").count(), report.cells.len());
}

#[test]
fn committed_manifests_parse_and_expand() {
    // The repo commits two manifests: the CI smoke grid and the
    // vector-equivalent fleet. Both must stay parseable and non-trivial.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("manifests");
    for (file, min_cells) in [("smoke.toml", 8), ("vector.toml", 12)] {
        let text = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("manifests/{file}: {e}"));
        let m = Manifest::parse(&text).unwrap_or_else(|e| panic!("manifests/{file}: {e}"));
        assert!(
            m.expand().len() >= min_cells,
            "manifests/{file}: grid shrank below {min_cells} cells"
        );
    }
}
