//! Concurrency battery for the sharded single-flight bracket service.
//!
//! The service's contract under parallel sweeps, spelled out as tests:
//!
//! * **Single-flight** — concurrent requests for one `(digest, goal)` key
//!   run the refinement ladder exactly once (`ladder_runs` counts actual
//!   executions, not just winners), and waiters are served the leader's
//!   entry bit-identically.
//! * **Shard correctness** — an N-thread hammer over a repeated-key
//!   workload produces exactly the brackets a sequential oracle computes.
//! * **Counter determinism** — `computed + mem_hits + disk_hits` (and each
//!   term individually) is a pure function of the workload, not of the
//!   thread count or interleaving.
//! * **Spill independence** — disk appends hold a dedicated lock, so
//!   lookups proceed while a slow spill write is in flight, and concurrent
//!   appends never corrupt the JSONL (a fresh service re-serves every
//!   entry).

use std::path::PathBuf;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use dbp_bench::bracket::{BracketService, Effort};
use dbp_bench::sweep::{parallel_map_with, SweepOptions};
use dbp_core::bounds::BracketSource;
use dbp_core::Instance;
use dbp_workloads::{random_general, GeneralConfig};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbp_conc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn distinct_instances(count: u64, items: usize) -> Vec<Instance> {
    (0..count)
        .map(|seed| random_general(&GeneralConfig::new(5, items), seed))
        .collect()
}

/// A job list where every key appears `repeats` times (≥ 50% repeated
/// lookups for any `repeats ≥ 2`), shuffled enough that repeats of one key
/// land on different workers.
fn repeated_jobs(distinct: usize, repeats: usize) -> Vec<usize> {
    let mut jobs: Vec<usize> = Vec::with_capacity(distinct * repeats);
    for round in 0..repeats {
        for i in 0..distinct {
            // Rotate each round so adjacent cells hit different keys.
            jobs.push((i + round * 3) % distinct);
        }
    }
    jobs
}

/// The counting-compute check: 8 threads released by a barrier onto ONE
/// key must run the ladder exactly once; the other seven are served the
/// leader's entry as warm-memory hits. (The pre-shard cache ran the
/// ladder once per racer and discarded the losers' work — the "loser
/// wins" comment only made the *counters* deterministic, not the work.)
#[test]
fn concurrent_requests_for_one_key_run_the_ladder_once() {
    let svc = BracketService::new(Effort::Cached);
    let inst = random_general(&GeneralConfig::new(6, 300), 42);
    let threads = 8;
    let barrier = Barrier::new(threads);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    svc.opt_r(&inst)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let s = svc.stats();
    assert_eq!(s.ladder_runs, 1, "duplicate ladder executed");
    assert_eq!(s.computed, 1);
    assert_eq!(s.mem_hits, threads as u64 - 1);
    assert_eq!(s.disk_hits, 0);
    let computed_count = results
        .iter()
        .filter(|cb| cb.source == BracketSource::Computed)
        .count();
    assert_eq!(computed_count, 1, "exactly one requester is the leader");
    for cb in &results {
        assert_eq!(
            cb.bracket, results[0].bracket,
            "waiters got a different bracket"
        );
        assert_eq!(cb.rung, results[0].rung);
    }
}

/// N-thread hammer over a ≥50%-repeated workload vs a sequential oracle:
/// identical brackets, and `computed` equals the number of DISTINCT keys.
#[test]
fn hammer_matches_sequential_oracle() {
    let distinct = 12usize;
    let instances = distinct_instances(distinct as u64, 60);
    let jobs = repeated_jobs(distinct, 4);

    let oracle = BracketService::new(Effort::Cached);
    let expected: Vec<_> = instances.iter().map(|i| oracle.opt_r(i).bracket).collect();

    let svc = BracketService::new(Effort::Cached);
    let got = parallel_map_with(&jobs, SweepOptions::dynamic().with_threads(8), |&i| {
        svc.opt_r(&instances[i]).bracket
    });
    for (cell, &i) in got.iter().zip(&jobs) {
        assert_eq!(
            *cell, expected[i],
            "instance {i} bracket drifted under the hammer"
        );
    }

    let s = svc.stats();
    assert_eq!(
        s.computed, distinct as u64,
        "single-flight must collapse repeats to one compute per distinct key"
    );
    assert_eq!(s.ladder_runs, s.computed);
    assert_eq!(s.lookups(), jobs.len() as u64);
}

/// The determinism contract behind `--threads`: for a fixed workload the
/// full stats snapshot is identical at 1, 2 and 8 workers.
#[test]
fn stats_totals_invariant_across_thread_counts() {
    let distinct = 10usize;
    let instances = distinct_instances(distinct as u64, 50);
    let jobs = repeated_jobs(distinct, 3);

    let mut snapshots = Vec::new();
    for threads in [1usize, 2, 8] {
        let svc = BracketService::new(Effort::Cached);
        parallel_map_with(&jobs, SweepOptions::seeded(9).with_threads(threads), |&i| {
            svc.opt_r(&instances[i]).bracket
        });
        snapshots.push((threads, svc.stats()));
    }
    let (_, first) = snapshots[0];
    for (threads, snap) in &snapshots {
        assert_eq!(
            *snap, first,
            "stats at --threads {threads} diverged from --threads 1"
        );
    }
    assert_eq!(first.computed, distinct as u64);
    assert_eq!(first.lookups(), jobs.len() as u64);
}

/// The dedicated spill lock: readers must be served while a (simulated)
/// slow disk write holds the writer lock. Under the old design the spill
/// serialized through the memory-cache mutex, so this test deadlocked the
/// full hold duration.
#[test]
fn lookups_proceed_while_spill_is_held() {
    let dir = scratch_dir("spill_hold");
    let svc = BracketService::with_spill(Effort::Cached, &dir);
    let inst = random_general(&GeneralConfig::new(5, 40), 7);
    svc.opt_r(&inst); // warm (and open the spill writer)

    let hold = Duration::from_millis(800);
    std::thread::scope(|scope| {
        let holder = scope.spawn(|| svc.block_spill_for(hold));
        // Give the holder time to take the writer lock.
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        for _ in 0..100 {
            let warm = svc.opt_r(&inst);
            assert_eq!(warm.source, BracketSource::WarmMemory);
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < hold / 2,
            "warm lookups stalled {elapsed:?} behind a spill write"
        );
        holder.join().unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent cold computes append to one spill file; a fresh service
/// must re-serve every bracket bit-identically from disk (whole-line
/// writes under the dedicated lock — no interleaved partial lines).
#[test]
fn spill_round_trip_under_concurrent_appends() {
    let dir = scratch_dir("spill_rt");
    let instances = distinct_instances(16, 50);
    let writer = BracketService::with_spill(Effort::Cached, &dir);
    let cold = parallel_map_with(
        &instances,
        SweepOptions::dynamic().with_threads(8),
        |inst| writer.opt_r(inst).bracket,
    );
    assert_eq!(writer.stats().computed, 16);
    drop(writer);

    let text = std::fs::read_to_string(dir.join("brackets.jsonl")).expect("spill written");
    assert_eq!(text.lines().count(), 16, "one complete line per compute");

    let reader = BracketService::with_spill(Effort::Cached, &dir);
    for (inst, &bracket) in instances.iter().zip(&cold) {
        let warm = reader.opt_r(inst);
        assert_eq!(warm.source, BracketSource::WarmDisk);
        assert_eq!(warm.bracket, bracket, "spill round trip drifted");
    }
    assert_eq!(reader.stats().computed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Disk hits count deterministically under the hammer too: warm-loading a
/// spill then hammering repeats yields computed = 0 and one disk hit per
/// first touch, memory hits for the rest — regardless of thread count.
#[test]
fn warm_spill_hammer_counts_deterministically() {
    let dir = scratch_dir("warm_hammer");
    let distinct = 8usize;
    let instances = distinct_instances(distinct as u64, 40);
    let writer = BracketService::with_spill(Effort::Cached, &dir);
    for inst in &instances {
        writer.opt_r(inst);
    }
    drop(writer);

    let jobs = repeated_jobs(distinct, 4);
    for threads in [1usize, 8] {
        let reader = BracketService::with_spill(Effort::Cached, &dir);
        parallel_map_with(&jobs, SweepOptions::dynamic().with_threads(threads), |&i| {
            reader.opt_r(&instances[i]).bracket
        });
        let s = reader.stats();
        assert_eq!(s.computed, 0, "threads={threads}: nothing should compute");
        assert_eq!(
            s.disk_hits,
            jobs.len() as u64,
            "threads={threads}: every hit re-serves the disk entry"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
