//! Golden snapshot tests: pin rendered reports byte-for-byte against
//! committed `.golden` files.
//!
//! Every renderer the paper-facing artifacts flow through (the evaluation
//! matrix, the Table-1 rows, the summary verdict sheet, the `dbp-pack`
//! CLI) is exercised on small committed fixtures and compared to a
//! committed snapshot. Any drift — a float formatting change, a bracket
//! that tightened, a column reorder — fails loudly with a diff pointer.
//!
//! To bless intentional changes:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p dbp-bench --test goldens
//! git diff crates/bench/tests/goldens/   # review before committing
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use dbp_bench::experiments::{resilience, summary, table1};
use dbp_bench::matrix;
use dbp_core::Instance;
use dbp_workloads::parse_trace;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// Compares `actual` to the committed golden, or rewrites the golden when
/// `UPDATE_GOLDENS=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = goldens_dir().join(name);
    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n\
             run `UPDATE_GOLDENS=1 cargo test -p dbp-bench --test goldens` to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden '{name}' drifted.\n\
         If the change is intentional, bless it with\n\
         `UPDATE_GOLDENS=1 cargo test -p dbp-bench --test goldens` and review the diff."
    );
}

fn fixture(name: &str) -> Instance {
    let path = goldens_dir().join(name);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    parse_trace(&text).expect("fixture parses")
}

/// The evaluation-matrix renderer over two committed traces: pins costs,
/// certified ratio brackets, the ladder rung column and the fast-path
/// shares for three representative algorithms.
#[test]
fn matrix_table_matches_golden() {
    let instances = vec![
        ("general".to_string(), fixture("fixture_general.csv")),
        ("aligned".to_string(), fixture("fixture_aligned.csv")),
    ];
    let m = matrix::evaluate(&["first-fit", "cdff", "hybrid"], &instances);
    assert_golden("matrix_small.golden", &m.table().render());
}

/// A cheap two-row rendering of the Table-1 non-clairvoyant sweep: pins
/// the Θ(μ) separation numbers (FF vs HA vs DAF vs the adaptive Best-Fit
/// lower bound) byte-for-byte.
#[test]
fn table1_nonclair_mini_matches_golden() {
    let report = table1::table1_nonclair_rows(&[2, 3]);
    assert_golden("table1_nonclair_mini.golden", &report.render());
}

/// The whole summary verdict sheet. Every headline claim's evidence string
/// is deterministic (fixed seeds, deterministic node budgets), so the
/// sheet renders identically run over run — including the bracket-service
/// rung and looseness figures of check 9.
#[test]
fn summary_sheet_matches_golden() {
    let report = summary::summary();
    assert_golden("summary.golden", &report.render());
}

/// The failure-aware serving sweep at its default seed and retry policy:
/// pins costs, ratio brackets and the whole resilience ledger (failures,
/// migrations, drops, degraded bin·ticks) per rate × algorithm cell. The
/// experiment itself asserts the zero-rate rows bit-identical to plain
/// runs and passes every cell through the invariant auditor, so a clean
/// regeneration of this golden is also a chaos smoke test.
#[test]
fn resilience_experiment_matches_golden() {
    let report = resilience::resilience();
    assert_golden("resilience.golden", &report.render());
}

/// End-to-end CLI snapshot: `dbp-pack` on the committed general fixture,
/// run from the goldens directory so the echoed path is stable. A fresh
/// process means a cold bracket service — the provenance line is pinned
/// too ("rung ..., cold" plus the `1 cold, 0 warm` counter line).
#[test]
fn pack_cli_output_matches_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_dbp-pack"))
        .current_dir(goldens_dir())
        .args([
            "fixture_general.csv",
            "--algo",
            "first-fit",
            "--algo",
            "cdff",
        ])
        .output()
        .expect("dbp-pack runs");
    assert!(
        out.status.success(),
        "dbp-pack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert_golden("pack_cli.golden", &stdout);
}

/// The same CLI under a seeded crash plan: the table gains the resilience
/// columns and the run stays deterministic (the snapshot IS the
/// determinism check — a second process must reproduce it byte-for-byte,
/// which CI's chaos job exercises on every push).
#[test]
fn pack_cli_chaos_output_matches_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_dbp-pack"))
        .current_dir(goldens_dir())
        .args([
            "fixture_general.csv",
            "--algo",
            "first-fit",
            "--algo",
            "cdff",
            "--fail-rate",
            "0.4",
            "--fail-seed",
            "7",
            "--retry",
            "fixed=2",
        ])
        .output()
        .expect("dbp-pack runs");
    assert!(
        out.status.success(),
        "dbp-pack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert_golden("pack_cli_chaos.golden", &stdout);
}
