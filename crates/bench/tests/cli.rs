//! End-to-end tests of the command-line tools: `dbp-gen` → `dbp-pack`
//! round trips, and the `experiments` binary's registry/output plumbing.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn gen_then_pack_round_trip() {
    let dir = std::env::temp_dir().join("dbp_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.csv");
    let trace_s = trace.to_string_lossy().into_owned();

    let (_, err, ok) = run(
        env!("CARGO_BIN_EXE_dbp-gen"),
        &["binary", "--n", "4", "--out", &trace_s],
    );
    assert!(ok, "dbp-gen failed: {err}");
    assert!(err.contains("31 items"), "σ_16 has 31 items: {err}");

    let (out, err, ok) = run(
        env!("CARGO_BIN_EXE_dbp-pack"),
        &[
            &trace_s,
            "--algo",
            "cdff",
            "--algo",
            "first-fit",
            "--momentary",
        ],
    );
    assert!(ok, "dbp-pack failed: {err}");
    assert!(out.contains("aligned = true"));
    assert!(out.contains("cdff"));
    assert!(out.contains("first-fit"));
    assert!(out.contains("momentary"));
}

#[test]
fn gen_writes_stdout_without_out_flag() {
    let (out, _, ok) = run(env!("CARGO_BIN_EXE_dbp-gen"), &["binary", "--n", "2"]);
    assert!(ok);
    assert!(out.starts_with("# arrival,duration"));
    assert_eq!(out.lines().count(), 1 + 7, "header + 7 items of σ_4");
}

#[test]
fn gen_rejects_unknown_family() {
    let (_, err, ok) = run(env!("CARGO_BIN_EXE_dbp-gen"), &["martian"]);
    assert!(!ok);
    assert!(err.contains("unknown family"));
}

#[test]
fn pack_rejects_unknown_algorithm_and_bad_file() {
    let (_, err, ok) = run(env!("CARGO_BIN_EXE_dbp-pack"), &["/nonexistent.csv"]);
    assert!(!ok);
    assert!(err.contains("cannot read"));

    let dir = std::env::temp_dir().join("dbp_cli_test2");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("t.csv");
    std::fs::write(&trace, "0,5,1,2\n").expect("write");
    let (_, err, ok) = run(
        env!("CARGO_BIN_EXE_dbp-pack"),
        &[&trace.to_string_lossy(), "--algo", "nope"],
    );
    assert!(!ok);
    assert!(err.contains("unknown algorithm"));
}

/// Warm-vs-cold cache round trip: two `dbp-pack` runs sharing a spill
/// directory must report bit-identical brackets, with the second run
/// served from disk.
#[test]
fn pack_bracket_cache_round_trip() {
    let dir = std::env::temp_dir().join(format!("dbp_cli_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.csv");
    let trace_s = trace.to_string_lossy().into_owned();
    let cache = dir.join("bracket-cache");
    let cache_s = cache.to_string_lossy().into_owned();

    let (_, err, ok) = run(
        env!("CARGO_BIN_EXE_dbp-gen"),
        &["general", "--n", "8", "--items", "300", "--out", &trace_s],
    );
    assert!(ok, "dbp-gen failed: {err}");

    let pack = |extra: &[&str]| {
        let mut args = vec![trace_s.as_str(), "--algo", "first-fit"];
        args.extend_from_slice(extra);
        run(env!("CARGO_BIN_EXE_dbp-pack"), &args)
    };
    let bracket_line = |out: &str| -> String {
        out.lines()
            .find(|l| l.starts_with("OPT_R ∈"))
            .expect("bracket line printed")
            .to_string()
    };

    let (cold, err, ok) = pack(&["--bracket-cache", &cache_s]);
    assert!(ok, "cold dbp-pack failed: {err}");
    assert!(
        bracket_line(&cold).contains("cold"),
        "first run computes: {cold}"
    );
    assert!(cache.join("brackets.jsonl").exists(), "spill written");

    let (warm, err, ok) = pack(&["--bracket-cache", &cache_s]);
    assert!(ok, "warm dbp-pack failed: {err}");
    let warm_line = bracket_line(&warm);
    assert!(warm_line.contains("disk"), "second run is warm: {warm}");
    assert!(warm.contains("1 warm (0 mem / 1 disk)"), "counters: {warm}");
    // Bit-identical interval (and rung) either side of the spill.
    let strip = |l: &str| l.split(" (").next().unwrap().to_string();
    assert_eq!(strip(&bracket_line(&cold)), strip(&warm_line));

    // `--bracket-cache off` and `--bracket-effort analytic` both bypass it.
    let (off, err, ok) = pack(&["--bracket-cache", "off"]);
    assert!(ok, "{err}");
    assert!(bracket_line(&off).contains("cold"));
    let (analytic, err, ok) = pack(&["--bracket-effort", "analytic", "--bracket-cache", &cache_s]);
    assert!(ok, "{err}");
    assert!(bracket_line(&analytic).contains("analytic"));
}

#[test]
fn pack_rejects_bad_bracket_effort() {
    let (_, err, ok) = run(
        env!("CARGO_BIN_EXE_dbp-pack"),
        &["whatever.csv", "--bracket-effort", "martian"],
    );
    assert!(!ok);
    assert!(err.contains("bad bracket effort"));
}

#[test]
fn experiments_lists_registry_and_runs_one() {
    let (out, _, ok) = run(env!("CARGO_BIN_EXE_experiments"), &[]);
    assert!(ok);
    assert!(out.contains("table1-ha"));
    assert!(out.contains("shape-test"));

    let (out, _, ok) = run(env!("CARGO_BIN_EXE_experiments"), &["fig2"]);
    assert!(ok);
    assert!(out.contains("Figure 2"));
    assert!(out.contains("len    8"));
}

#[test]
fn experiments_rejects_unknown_id() {
    let (_, err, ok) = run(env!("CARGO_BIN_EXE_experiments"), &["not-an-experiment"]);
    assert!(!ok);
    assert!(err.contains("unknown experiment"));
}

#[test]
fn experiments_writes_outputs() {
    let dir = std::env::temp_dir().join("dbp_cli_out");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();
    let md = dir.join("report.md");
    let (_, _, ok) = run(
        env!("CARGO_BIN_EXE_experiments"),
        &["fig3", "--out", &dir_s, "--md", &md.to_string_lossy()],
    );
    assert!(ok);
    assert!(dir.join("fig3.txt").exists());
    assert!(dir.join("fig3.csv").exists());
    assert!(
        dir.join("fig3.svg").exists(),
        "svg companions are written with --out"
    );
    let report = std::fs::read_to_string(&md).expect("md written");
    assert!(report.contains("Figure 3"));
}
