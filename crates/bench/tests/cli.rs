//! End-to-end tests of the command-line tools: `dbp-gen` → `dbp-pack`
//! round trips, and the `experiments` binary's registry/output plumbing.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn gen_then_pack_round_trip() {
    let dir = std::env::temp_dir().join("dbp_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.csv");
    let trace_s = trace.to_string_lossy().into_owned();

    let (_, err, ok) = run(
        env!("CARGO_BIN_EXE_dbp-gen"),
        &["binary", "--n", "4", "--out", &trace_s],
    );
    assert!(ok, "dbp-gen failed: {err}");
    assert!(err.contains("31 items"), "σ_16 has 31 items: {err}");

    let (out, err, ok) = run(
        env!("CARGO_BIN_EXE_dbp-pack"),
        &[
            &trace_s,
            "--algo",
            "cdff",
            "--algo",
            "first-fit",
            "--momentary",
        ],
    );
    assert!(ok, "dbp-pack failed: {err}");
    assert!(out.contains("aligned = true"));
    assert!(out.contains("cdff"));
    assert!(out.contains("first-fit"));
    assert!(out.contains("momentary"));
}

#[test]
fn gen_writes_stdout_without_out_flag() {
    let (out, _, ok) = run(env!("CARGO_BIN_EXE_dbp-gen"), &["binary", "--n", "2"]);
    assert!(ok);
    assert!(out.starts_with("# arrival,duration"));
    assert_eq!(out.lines().count(), 1 + 7, "header + 7 items of σ_4");
}

#[test]
fn gen_rejects_unknown_family() {
    let (_, err, ok) = run(env!("CARGO_BIN_EXE_dbp-gen"), &["martian"]);
    assert!(!ok);
    assert!(err.contains("unknown family"));
}

#[test]
fn pack_rejects_unknown_algorithm_and_bad_file() {
    let (_, err, ok) = run(env!("CARGO_BIN_EXE_dbp-pack"), &["/nonexistent.csv"]);
    assert!(!ok);
    assert!(err.contains("cannot read"));

    let dir = std::env::temp_dir().join("dbp_cli_test2");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("t.csv");
    std::fs::write(&trace, "0,5,1,2\n").expect("write");
    let (_, err, ok) = run(
        env!("CARGO_BIN_EXE_dbp-pack"),
        &[&trace.to_string_lossy(), "--algo", "nope"],
    );
    assert!(!ok);
    assert!(err.contains("unknown algorithm"));
}

#[test]
fn experiments_lists_registry_and_runs_one() {
    let (out, _, ok) = run(env!("CARGO_BIN_EXE_experiments"), &[]);
    assert!(ok);
    assert!(out.contains("table1-ha"));
    assert!(out.contains("shape-test"));

    let (out, _, ok) = run(env!("CARGO_BIN_EXE_experiments"), &["fig2"]);
    assert!(ok);
    assert!(out.contains("Figure 2"));
    assert!(out.contains("len    8"));
}

#[test]
fn experiments_rejects_unknown_id() {
    let (_, err, ok) = run(env!("CARGO_BIN_EXE_experiments"), &["not-an-experiment"]);
    assert!(!ok);
    assert!(err.contains("unknown experiment"));
}

#[test]
fn experiments_writes_outputs() {
    let dir = std::env::temp_dir().join("dbp_cli_out");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();
    let md = dir.join("report.md");
    let (_, _, ok) = run(
        env!("CARGO_BIN_EXE_experiments"),
        &["fig3", "--out", &dir_s, "--md", &md.to_string_lossy()],
    );
    assert!(ok);
    assert!(dir.join("fig3.txt").exists());
    assert!(dir.join("fig3.csv").exists());
    assert!(
        dir.join("fig3.svg").exists(),
        "svg companions are written with --out"
    );
    let report = std::fs::read_to_string(&md).expect("md written");
    assert!(report.contains("Figure 3"));
}
