//! Acceptance fixtures for the CP-propagated exact rung (PR 10).
//!
//! Each fixture is an instance that, before constraint propagation,
//! terminated below `BracketRung::Exact` under `Effort::Cached`:
//!
//! * the OPT_R fixture's peak concurrency (30) exceeded the old
//!   `MAX_EXACT_ITEMS = 28`, so the ladder stalled at FFD-repack with an
//!   11-bin upper where the optimum packs 10;
//! * the OPT_NR fixtures exceed the old `EXACT_NR_LIMIT = 12`, so the
//!   ladder stopped at the portfolio rung.
//!
//! Under the same `CACHED_NODE_BUDGET` they must now certify
//! `BracketRung::Exact`, and on oracle-sized instances the ladder bracket
//! must still sandwich the exhaustive reference optimum.

use dbp_algos::offline::{exact_opt_nr_reference_budgeted, RefineBudget};
use dbp_bench::bracket::{BracketService, Effort, EXACT_NR_LIMIT};
use dbp_core::bounds::{BracketRung, OptBracket};
use dbp_core::{Dur, Instance, Size, SizeVec, Time};

/// Thirty concurrent items over `[0, 10)`: 24 full-size anchors (forced
/// singles) plus the classic FFD-fooled sextet {45, 34, 33, 33, 28, 27}.
/// FFD needs 27 bins, the optimum packs 26 ({45,28,27} + {34,33,33}) —
/// the perfect-fit dominance rule walks straight to it.
fn opt_r_fixture() -> Instance {
    let mut triples = Vec::new();
    for _ in 0..24 {
        triples.push((Time(0), Dur(10), Size::from_ratio(1, 1)));
    }
    for s in [45u64, 34, 33, 33, 28, 27] {
        triples.push((Time(0), Dur(10), Size::from_ratio(s, 100)));
    }
    Instance::from_triples(triples).unwrap()
}

/// Thirty concurrent items the L2 bound alone certifies: 14 × 0.55 (each
/// needs a private bin) + 16 × 0.50 (pair up, but never with a 0.55).
/// The volume bound sees only ⌈15.7⌉ = 16 bins; L2 at threshold α = 0.50
/// proves the true 22, matching FFD — zero search nodes needed.
fn opt_r_l2_fixture() -> Instance {
    let mut triples = Vec::new();
    for _ in 0..14 {
        triples.push((Time(0), Dur(10), Size::from_ratio(55, 100)));
    }
    for _ in 0..16 {
        triples.push((Time(0), Dur(10), Size::from_ratio(50, 100)));
    }
    Instance::from_triples(triples).unwrap()
}

/// Sixteen items (past the old 12-item exact cutoff): staggered big items
/// (> 1/2, so they can never share — invisible to the analytic ⌈S⌉ lower
/// bound) plus seeded small companions that can.
fn opt_nr_fixture() -> Instance {
    let mut triples = Vec::new();
    let mut x = 0xABCDu64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..8u64 {
        triples.push((
            Time(i * 2),
            Dur(5 + i % 3),
            Size::from_ratio(55 + (i % 3) * 4, 100),
        ));
    }
    for _ in 0..8u64 {
        let t = next() % 14;
        let d = 2 + next() % 5;
        let s = 20 + next() % 25;
        triples.push((Time(t), Dur(d), Size::from_ratio(s, 100)));
    }
    Instance::from_triples(triples).unwrap()
}

/// A 14-item three-dimensional instance: vector capacity checks and the
/// per-dimension interval bound both participate in certification.
fn opt_nr_vector_fixture() -> Instance {
    let mut triples = Vec::new();
    for i in 0..14u64 {
        let size = SizeVec::from_sizes(&[
            Size::from_ratio(20 + (i * 7) % 40, 100),
            Size::from_ratio(15 + (i * 11) % 45, 100),
            Size::from_ratio(10 + (i * 13) % 50, 100),
        ])
        .unwrap();
        triples.push((Time(i % 5), Dur(3 + i % 7), size));
    }
    Instance::from_triples(triples).unwrap()
}

#[test]
fn opt_r_fixture_reaches_exact_rung() {
    let inst = opt_r_fixture();
    assert_eq!(inst.max_concurrency(), 30, "past the old 28-item exact cap");
    let svc = BracketService::new(Effort::Cached);
    let cb = svc.opt_r(&inst);
    assert_eq!(cb.rung, BracketRung::Exact);
    // 26 bins over ten ticks: the bracket collapses to the true optimum.
    assert_eq!(cb.bracket.lower.as_bin_ticks(), 260.0);
    assert_eq!(cb.bracket.upper.as_bin_ticks(), 260.0);
    // Strictly inside the analytic sandwich (the old stall point).
    let analytic = OptBracket::of(&inst);
    assert!(cb.bracket.upper < analytic.upper);
}

#[test]
fn opt_r_l2_fixture_reaches_exact_rung() {
    let inst = opt_r_l2_fixture();
    assert_eq!(inst.max_concurrency(), 30, "past the old 28-item exact cap");
    let svc = BracketService::new(Effort::Cached);
    let cb = svc.opt_r(&inst);
    assert_eq!(cb.rung, BracketRung::Exact);
    // 14 private bins + 8 pair bins over ten ticks.
    assert_eq!(cb.bracket.lower.as_bin_ticks(), 220.0);
    assert_eq!(cb.bracket.upper.as_bin_ticks(), 220.0);
    // The plain volume bound sees only 16 bins — L2 closes the gap.
    let analytic = OptBracket::of(&inst);
    assert!(cb.bracket.lower > analytic.lower);
}

#[test]
fn opt_nr_fixture_reaches_exact_rung() {
    let inst = opt_nr_fixture();
    assert!(
        inst.len() > 12 && inst.len() <= EXACT_NR_LIMIT,
        "sized between the old and new exact cutoffs"
    );
    let svc = BracketService::new(Effort::Cached);
    let cb = svc.opt_nr(&inst);
    assert_eq!(cb.rung, BracketRung::Exact);
    assert_eq!(cb.bracket.lower, cb.bracket.upper, "exact collapses OPT_NR");
    // OPT_NR ≥ OPT_R on the same instance.
    assert!(cb.bracket.lower >= svc.opt_r(&inst).bracket.lower);
}

#[test]
fn opt_nr_vector_fixture_reaches_exact_rung() {
    let inst = opt_nr_vector_fixture();
    assert!(inst.len() > 12, "past the old exact cutoff");
    let svc = BracketService::new(Effort::Cached);
    let cb = svc.opt_nr(&inst);
    assert_eq!(cb.rung, BracketRung::Exact);
    assert_eq!(cb.bracket.lower, cb.bracket.upper);
}

/// On oracle-sized instances the ladder's OPT_NR bracket must sandwich
/// the frozen exhaustive reference — the propagated rung may be faster,
/// never different.
#[test]
fn ladder_brackets_sandwich_the_exhaustive_oracle() {
    let mut seed = 0x00C0_FFEEu64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for trial in 0..12 {
        let n = 3 + next() % 7;
        let mut triples = Vec::new();
        for _ in 0..n {
            let t = next() % 24;
            let d = 1 + next() % 12;
            let s = 1 + next() % 100;
            triples.push((Time(t), Dur(d), Size::from_ratio(s, 100)));
        }
        let inst = Instance::from_triples(triples).unwrap();
        let oracle = exact_opt_nr_reference_budgeted(&inst, 10, &mut RefineBudget::unlimited())
            .expect("unlimited completes");
        let svc = BracketService::new(Effort::Cached);
        let nr = svc.opt_nr(&inst).bracket;
        assert!(
            nr.lower <= oracle.cost && oracle.cost <= nr.upper,
            "trial {trial}: bracket [{:?}, {:?}] excludes oracle {:?}",
            nr.lower,
            nr.upper,
            oracle.cost
        );
        let r = svc.opt_r(&inst).bracket;
        assert!(r.lower <= oracle.cost, "OPT_R lower exceeds OPT_NR oracle");
    }
}
