//! Differential tests: the bracket service against ground-truth exact
//! optima, rung by rung, and across the JSONL spill round-trip — plus the
//! adversary-scale check that the budgeted ladder beats the old
//! all-or-nothing cutoff.

use dbp_algos::offline::{self, RefineBudget};
use dbp_bench::bracket::{BracketService, Effort, FFD_TIGHTEN_LIMIT};
use dbp_core::bounds::{BracketRung, BracketSource, OptBracket};
use dbp_core::Instance;
use dbp_workloads::{random_general, GeneralConfig};

fn small_instances() -> Vec<Instance> {
    (0..6u64)
        .map(|seed| random_general(&GeneralConfig::new(5, 60), seed))
        .collect()
}

/// Every rung of the OPT_R ladder, applied cumulatively by hand, must
/// contain the true repacking optimum — the bracket only ever tightens
/// *around* the answer, never past it.
#[test]
fn exact_opt_r_inside_every_ladder_rung() {
    let mut checked = 0;
    for inst in small_instances() {
        let Some(exact) = offline::exact_opt_r(&inst, 28) else {
            continue; // concurrency too high for ground truth; skip
        };
        let contains = |b: OptBracket, rung: &str| {
            assert!(
                b.lower <= exact && exact <= b.upper,
                "{rung} bracket [{}, {}] excludes exact OPT_R {}",
                b.lower.as_bin_ticks(),
                b.upper.as_bin_ticks(),
                exact.as_bin_ticks()
            );
        };
        // Rung 1: analytic Lemma 3.1.
        let analytic = OptBracket::of(&inst);
        contains(analytic, "analytic");
        // Rung 2: FFD-repack sweep.
        let (ffd, _) = offline::refine_opt_r(&inst, false, &mut RefineBudget::unlimited());
        let after_ffd = analytic.intersect(ffd);
        contains(after_ffd, "ffd-repack");
        // Rung 3: non-repacking portfolio (any NR schedule bounds OPT_R).
        let after_portfolio = after_ffd.tighten_upper(offline::best_nonrepacking(&inst).cost);
        contains(after_portfolio, "portfolio");
        // Rung 4: exact per-segment search.
        let (swept, _) = offline::refine_opt_r(&inst, true, &mut RefineBudget::unlimited());
        let after_exact = after_portfolio.intersect(swept);
        contains(after_exact, "exact");
        // Monotone: each rung is contained in the previous one.
        assert!(after_ffd.lower >= analytic.lower && after_ffd.upper <= analytic.upper);
        assert!(after_exact.lower >= after_portfolio.lower);
        assert!(after_exact.upper <= after_portfolio.upper);
        // And the service's own ladder agrees with the hand-rolled one.
        let cb = BracketService::new(Effort::Cached).opt_r(&inst);
        contains(cb.bracket, "service");
        checked += 1;
    }
    assert!(checked >= 3, "too few instances had exact ground truth");
}

/// OPT_NR ground truth (branch-and-bound over all placements) sits inside
/// the service's OPT_NR bracket on instances just above the ladder's own
/// exact-rung cutoff — i.e. where the bracket is genuinely an interval.
#[test]
fn exact_opt_nr_inside_cached_bracket() {
    for seed in 0..4u64 {
        let inst = random_general(&GeneralConfig::new(4, 14), seed);
        let truth = offline::exact_opt_nr(&inst, 14).cost;
        let cb = BracketService::new(Effort::Cached).opt_nr(&inst);
        assert!(
            cb.bracket.lower <= truth && truth <= cb.bracket.upper,
            "seed {seed}: OPT_NR {} outside [{}, {}] (rung {})",
            truth.as_bin_ticks(),
            cb.bracket.lower.as_bin_ticks(),
            cb.bracket.upper.as_bin_ticks(),
            cb.rung
        );
    }
}

/// Spill round-trip: brackets written by one service and re-served by a
/// fresh one are bit-identical, flagged as disk hits, and still contain
/// the exact optimum.
#[test]
fn spill_round_trip_preserves_brackets_and_truth() {
    let dir = std::env::temp_dir().join(format!("dbp_diff_spill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let instances = small_instances();
    let writer = BracketService::with_spill(Effort::Cached, &dir);
    let cold: Vec<_> = instances.iter().map(|i| writer.opt_r(i)).collect();
    let cold_nr: Vec<_> = instances.iter().map(|i| writer.opt_nr(i)).collect();
    drop(writer);

    let reader = BracketService::with_spill(Effort::Cached, &dir);
    for (i, inst) in instances.iter().enumerate() {
        let warm = reader.opt_r(inst);
        assert_eq!(warm.source, BracketSource::WarmDisk, "instance {i}");
        assert_eq!(warm.bracket, cold[i].bracket, "instance {i} drifted");
        assert_eq!(warm.rung, cold[i].rung, "instance {i} rung drifted");
        let warm_nr = reader.opt_nr(inst);
        assert_eq!(warm_nr.source, BracketSource::WarmDisk);
        assert_eq!(warm_nr.bracket, cold_nr[i].bracket);
        if let Some(exact) = offline::exact_opt_r(inst, 28) {
            assert!(warm.bracket.lower <= exact && exact <= warm.bracket.upper);
        }
    }
    let s = reader.stats();
    assert_eq!(s.computed, 0, "everything re-served from disk");
    assert_eq!(s.disk_hits, 2 * instances.len() as u64);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance check for retiring the hard cutoff: above the old
/// `FFD_TIGHTEN_LIMIT` the legacy path returned the bare analytic
/// sandwich; the budgeted ladder must certify a strictly smaller
/// looseness on the same instance (a tightened prefix is still progress).
#[test]
fn budgeted_ladder_beats_analytic_above_the_old_cutoff() {
    let inst = random_general(&GeneralConfig::new(10, 25_000), 1);
    assert!(
        inst.len() > FFD_TIGHTEN_LIMIT,
        "fixture must exceed the legacy cutoff ({} items)",
        inst.len()
    );
    let analytic = OptBracket::of(&inst);
    let cb = BracketService::new(Effort::Cached).opt_r(&inst);
    assert!(cb.bracket.lower >= analytic.lower);
    assert!(cb.bracket.upper <= analytic.upper);
    assert!(cb.rung > BracketRung::Analytic, "ladder never ran");
    assert!(
        cb.looseness() < analytic.looseness(),
        "budgeted ladder did not tighten: {} vs analytic {}",
        cb.looseness(),
        analytic.looseness()
    );
}
