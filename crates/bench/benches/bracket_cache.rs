//! Contention benches for the sharded single-flight bracket cache.
//!
//! Two groups, both against an inline single-`Mutex<HashMap>` baseline —
//! the pre-shard design:
//!
//! * `warm_lookup` — N threads hammer a repeated-key workload with every
//!   key pre-warmed, isolating pure lock traffic. On a multi-core host
//!   the stripes pull ahead as threads grow; on a single core both designs
//!   are bound by the per-lookup digest hash and should tie.
//! * `blocked_writer` — the lock-scope fix itself: a writer holds its
//!   lock for a simulated slow disk append while the measured thread does
//!   warm lookups. The old design routed spill I/O through the map lock,
//!   so the baseline stalls for the whole hold; the sharded service's
//!   dedicated spill lock leaves readers unblocked — a gap of several
//!   orders of magnitude even on one core.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_bench::bracket::{BracketService, Effort, Goal};
use dbp_core::bounds::OptBracket;
use dbp_core::Instance;
use dbp_workloads::{random_general, GeneralConfig};

const DISTINCT: usize = 32;
const LOOKUPS_PER_THREAD: usize = 2_000;

/// The pre-shard design, reconstructed as a baseline: one mutex in front
/// of the whole map, taken for every lookup.
struct SingleMutexCache {
    map: Mutex<HashMap<(u128, Goal), OptBracket>>,
}

impl SingleMutexCache {
    fn warmed(svc: &BracketService, instances: &[Instance]) -> SingleMutexCache {
        let mut map = HashMap::new();
        for inst in instances {
            map.insert((inst.digest().0, Goal::OptR), svc.opt_r(inst).bracket);
        }
        SingleMutexCache {
            map: Mutex::new(map),
        }
    }

    fn get(&self, inst: &Instance) -> OptBracket {
        *self
            .map
            .lock()
            .unwrap()
            .get(&(inst.digest().0, Goal::OptR))
            .expect("warmed")
    }
}

fn hammer<F: Fn(&Instance) -> OptBracket + Sync>(threads: usize, instances: &[Instance], get: F) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let get = &get;
            scope.spawn(move || {
                for i in 0..LOOKUPS_PER_THREAD {
                    // Stagger thread start offsets so stripes are hit in
                    // different orders; repeats guarantee contention.
                    let inst = &instances[(i + t * 7) % instances.len()];
                    std::hint::black_box(get(inst));
                }
            });
        }
    });
}

/// Times `LOOKUPS` warm gets while a holder thread keeps `take_lock`'s
/// lock for `HOLD` (a simulated slow disk append). Only the lookup loop is
/// on the clock — the holder's sleep and the join are not. Lookups that go
/// through the held lock cost ~`HOLD`; independent ones cost microseconds.
fn timed_lookups_during_hold<F, G>(take_lock_and_hold: F, get: G) -> Duration
where
    F: FnOnce(&AtomicBool) + Send,
    G: Fn(),
{
    const LOOKUPS: usize = 100;
    let holding = AtomicBool::new(false);
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        scope.spawn(|| take_lock_and_hold(&holding));
        while !holding.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        let t0 = std::time::Instant::now();
        for _ in 0..LOOKUPS {
            get();
        }
        elapsed = t0.elapsed();
    });
    elapsed
}

fn bench_blocked_writer(c: &mut Criterion) {
    const HOLD: Duration = Duration::from_millis(2);
    let dir = std::env::temp_dir().join(format!("dbp_bench_spill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sharded = BracketService::with_spill(Effort::Cached, &dir);
    let inst = random_general(&GeneralConfig::new(4, 30), 0);
    sharded.opt_r(&inst); // warm (and open the spill writer)
    let single = SingleMutexCache::warmed(&sharded, std::slice::from_ref(&inst));
    let mut group = c.benchmark_group("bracket_cache/blocked_writer");
    group.bench_function("sharded_dedicated_spill_lock", |b| {
        b.iter_custom(|iters| {
            (0..iters)
                .map(|_| {
                    timed_lookups_during_hold(
                        |holding| {
                            // `block_spill_for` takes the spill writer
                            // lock internally; lookups never touch it, so
                            // signalling just before is race-free here.
                            holding.store(true, Ordering::Release);
                            sharded.block_spill_for(HOLD);
                        },
                        || {
                            std::hint::black_box(sharded.opt_r(&inst).bracket);
                        },
                    )
                })
                .sum()
        })
    });
    group.bench_function("single_mutex_spill_through_map_lock", |b| {
        b.iter_custom(|iters| {
            (0..iters)
                .map(|_| {
                    timed_lookups_during_hold(
                        |holding| {
                            // The old design: the append held the one
                            // cache lock for the whole disk write.
                            let _guard = single.map.lock().unwrap();
                            holding.store(true, Ordering::Release);
                            std::thread::sleep(HOLD);
                        },
                        || {
                            std::hint::black_box(single.get(&inst));
                        },
                    )
                })
                .sum()
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bracket_cache(c: &mut Criterion) {
    let instances: Vec<Instance> = (0..DISTINCT as u64)
        .map(|seed| random_general(&GeneralConfig::new(4, 30), seed))
        .collect();
    let sharded = BracketService::new(Effort::Cached);
    for inst in &instances {
        sharded.opt_r(inst); // warm: the bench measures lookups only
    }
    let single = SingleMutexCache::warmed(&sharded, &instances);

    let mut group = c.benchmark_group("bracket_cache/warm_lookup");
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * LOOKUPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| b.iter(|| hammer(threads, &instances, |i| sharded.opt_r(i).bracket)),
        );
        group.bench_with_input(
            BenchmarkId::new("single_mutex", threads),
            &threads,
            |b, &threads| b.iter(|| hammer(threads, &instances, |i| single.get(i))),
        );
    }
    group.finish();
    bench_blocked_writer(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bracket_cache
}
criterion_main!(benches);
