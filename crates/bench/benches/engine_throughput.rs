//! The engine-throughput bench: the pinned harness workload
//! (`throughput::Workload`) at 1M items, driven end-to-end through
//! `InteractiveSim` under each harness configuration.
//!
//! Uses `iter_custom` so each sample times exactly one full drive
//! (arrivals + departure/crash drains + `finish`) and excludes instance
//! generation. The same measurement is scriptable (and appendable to
//! `BENCH_engine.json`) via `experiments throughput`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_bench::throughput::{drive, Config, Workload};

const ITEMS: usize = 1_000_000;

fn engine_throughput(c: &mut Criterion) {
    let workload = Workload::pinned(ITEMS);
    let inst = workload.instance();
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(5);
    group.throughput(Throughput::Elements(ITEMS as u64));
    for config in Config::ALL {
        group.bench_function(BenchmarkId::from_parameter(config.id()), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let started = Instant::now();
                    criterion::black_box(drive(&inst, config));
                    total += started.elapsed();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
