//! Criterion benches for the substrate itself: engine throughput, the
//! interactive (adversary-driving) path, the assignment auditor, and the
//! cloudsim dispatch layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_cloudsim::{dispatch, Predictor, SessionRequest, Tier};
use dbp_core::engine::{self, InteractiveSim};
use dbp_core::time::{Dur, Time};
use dbp_core::{Instance, Item, OnlineAlgorithm, Placement, SimView, Size};
use dbp_workloads::{random_general, GeneralConfig};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/batch-first-fit");
    for &items in &[1_000usize, 10_000, 100_000] {
        let inst = random_general(&GeneralConfig::new(10, items), 1);
        group.throughput(Throughput::Elements(items as u64));
        group.bench_with_input(BenchmarkId::from_parameter(items), &inst, |b, inst| {
            b.iter(|| {
                engine::run(inst, dbp_algos::FirstFit::new())
                    .expect("legal")
                    .cost
            })
        });
    }
    group.finish();
}

/// First-Fit answered by the seed's retained O(B) linear scan — the
/// before-side of the placement-kernel comparison.
struct LinearFf;
impl OnlineAlgorithm for LinearFf {
    fn name(&self) -> &str {
        "ff-linear"
    }
    fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
        match view.first_fit_linear(item.size) {
            Some(b) => Placement::Existing(b),
            None => Placement::OpenNew,
        }
    }
    fn reset(&mut self) {}
}

/// The placement kernel's worst case: `fillers` bins pinned open and
/// exactly full (4 quarter-size long items each), then a stream of
/// half-size probes that fit nowhere — every probe forces a full First-Fit
/// query across all open bins before opening (and immediately closing) its
/// own bin. The linear scan pays O(probes × fillers); the tournament tree
/// pays O(probes × log fillers).
fn adversarial_instance(fillers: usize, probes: u64) -> Instance {
    let long = Dur(probes + 2);
    let mut triples = Vec::with_capacity(4 * fillers + probes as usize);
    for _ in 0..fillers {
        for _ in 0..4 {
            triples.push((Time(0), long, Size::from_ratio(1, 4)));
        }
    }
    for t in 1..=probes {
        triples.push((Time(t), Dur(1), Size::from_ratio(1, 2)));
    }
    Instance::from_triples(triples).expect("valid")
}

fn adversarial_open_bins(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/adversarial-open-bins");
    group.sample_size(10);
    let probes = 6_000u64;
    for &fillers in &[1_000usize, 4_000] {
        let inst = adversarial_instance(fillers, probes);
        group.throughput(Throughput::Elements(probes));
        group.bench_with_input(BenchmarkId::new("tree", fillers), &inst, |b, inst| {
            b.iter(|| {
                engine::run(inst, dbp_algos::FirstFit::new())
                    .expect("legal")
                    .cost
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", fillers), &inst, |b, inst| {
            b.iter(|| engine::run(inst, LinearFf).expect("legal").cost)
        });
    }
    group.finish();
}

fn interactive_throughput(c: &mut Criterion) {
    c.bench_function("engine/interactive-10k", |b| {
        b.iter(|| {
            let mut sim = InteractiveSim::new(dbp_algos::FirstFit::new());
            for k in 0..10_000u64 {
                sim.arrive_at(
                    Time(k / 4),
                    Dur(1 + k % 32),
                    dbp_core::Size::from_ratio(1 + k % 40, 100),
                )
                .expect("legal");
            }
            let (_, res) = sim.finish();
            res.cost
        })
    });
}

fn auditor(c: &mut Criterion) {
    let inst = random_general(&GeneralConfig::new(10, 20_000), 2);
    let res = engine::run(&inst, dbp_algos::FirstFit::new()).expect("legal");
    c.bench_function("audit/20k", |b| {
        b.iter(|| dbp_core::audit(&inst, &res.assignment).expect("valid").cost)
    });
}

fn cloud_dispatch(c: &mut Criterion) {
    let mut sessions: Vec<SessionRequest> = (0..10_000u64)
        .map(|k| SessionRequest::exact(k, Time(k / 8), Dur(5 + k % 200), Tier::Standard))
        .collect();
    Predictor::Relative { error_pct: 20 }.apply(&mut sessions, 3);
    c.bench_function("cloudsim/dispatch-10k-noisy", |b| {
        b.iter(|| {
            dispatch(&sessions, dbp_algos::HybridAlgorithm::new())
                .expect("legal")
                .bill
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_throughput, adversarial_open_bins, interactive_throughput, auditor, cloud_dispatch
}
criterion_main!(benches);
