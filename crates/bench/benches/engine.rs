//! Criterion benches for the substrate itself: engine throughput, the
//! interactive (adversary-driving) path, the assignment auditor, and the
//! cloudsim dispatch layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_cloudsim::{dispatch, Predictor, SessionRequest, Tier};
use dbp_core::engine::{self, InteractiveSim};
use dbp_core::time::{Dur, Time};
use dbp_workloads::{random_general, GeneralConfig};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/batch-first-fit");
    for &items in &[1_000usize, 10_000, 100_000] {
        let inst = random_general(&GeneralConfig::new(10, items), 1);
        group.throughput(Throughput::Elements(items as u64));
        group.bench_with_input(BenchmarkId::from_parameter(items), &inst, |b, inst| {
            b.iter(|| {
                engine::run(inst, dbp_algos::FirstFit::new())
                    .expect("legal")
                    .cost
            })
        });
    }
    group.finish();
}

fn interactive_throughput(c: &mut Criterion) {
    c.bench_function("engine/interactive-10k", |b| {
        b.iter(|| {
            let mut sim = InteractiveSim::new(dbp_algos::FirstFit::new());
            for k in 0..10_000u64 {
                sim.arrive_at(
                    Time(k / 4),
                    Dur(1 + k % 32),
                    dbp_core::Size::from_ratio(1 + k % 40, 100),
                )
                .expect("legal");
            }
            let (_, res) = sim.finish();
            res.cost
        })
    });
}

fn auditor(c: &mut Criterion) {
    let inst = random_general(&GeneralConfig::new(10, 20_000), 2);
    let res = engine::run(&inst, dbp_algos::FirstFit::new()).expect("legal");
    c.bench_function("audit/20k", |b| {
        b.iter(|| dbp_core::audit(&inst, &res.assignment).expect("valid").cost)
    });
}

fn cloud_dispatch(c: &mut Criterion) {
    let mut sessions: Vec<SessionRequest> = (0..10_000u64)
        .map(|k| SessionRequest::exact(k, Time(k / 8), Dur(5 + k % 200), Tier::Standard))
        .collect();
    Predictor::Relative { error_pct: 20 }.apply(&mut sessions, 3);
    c.bench_function("cloudsim/dispatch-10k-noisy", |b| {
        b.iter(|| {
            dispatch(&sessions, dbp_algos::HybridAlgorithm::new())
                .expect("legal")
                .bill
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_throughput, interactive_throughput, auditor, cloud_dispatch
}
criterion_main!(benches);
