//! Criterion benches regenerating the figure/lemma artifacts: the σ_μ
//! structure checks (Figures 2–3 / Corollary 5.8), the binary-string
//! enumerations (Lemma 5.9 / Corollary 5.10), and the OPT-bracket
//! machinery (Lemma 3.1) that every table relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbp_algos::offline::ffd_repack_cost;
use dbp_analysis::{expected_max_zero_run_exact, sum_max_zero_runs};
use dbp_core::bounds::LowerBounds;
use dbp_core::engine;
use dbp_core::time::Time;
use dbp_workloads::{random_general, sigma_mu, GeneralConfig};

/// Figures 2–3 / Corollary 5.8: σ_μ generation + CDFF + the counter check.
fn fig_cor58(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/cor58");
    for &n in &[8u32, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let inst = sigma_mu(n);
                let res = engine::run(&inst, dbp_algos::Cdff::new()).expect("legal");
                let mut mismatches = 0u64;
                for t in 0..(1u64 << n) {
                    let expected = dbp_analysis::max_zero_run(t, n) as usize + 1;
                    if res.open_at(Time(t)) != expected {
                        mismatches += 1;
                    }
                }
                assert_eq!(mismatches, 0);
                mismatches
            })
        });
    }
    group.finish();
}

/// Lemma 5.9 / Corollary 5.10 enumerations.
fn lemma59(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemmas/zero-runs");
    for &n in &[12u32, 16, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| (sum_max_zero_runs(n), expected_max_zero_run_exact(n)))
        });
    }
    group.finish();
}

/// Lemma 3.1: the analytic lower bounds and the FFD-repack upper bound.
fn lemma31(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemmas/opt-bracket");
    let inst = random_general(&GeneralConfig::new(8, 2_000), 7);
    group.bench_function("lower-bounds-2k", |b| {
        b.iter(|| LowerBounds::of(&inst).best())
    });
    group.bench_function("ffd-repack-2k", |b| b.iter(|| ffd_repack_cost(&inst)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig_cor58, lemma59, lemma31
}
criterion_main!(benches);
