//! Criterion throughput benches: every online algorithm on the three
//! workload families (binary σ_μ, random general, cloud traces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_core::engine;
use dbp_workloads::{cloud_trace, random_general, sigma_mu, CloudConfig, GeneralConfig};

fn bench_family(c: &mut Criterion, family: &str, inst: &dbp_core::Instance) {
    let mut group = c.benchmark_group(format!("pack/{family}"));
    group.throughput(Throughput::Elements(inst.len() as u64));
    for name in dbp_algos::registry_names() {
        group.bench_with_input(BenchmarkId::from_parameter(name), inst, |b, inst| {
            b.iter(|| {
                let algo = dbp_algos::by_name(name).expect("registry");
                engine::run(inst, algo).expect("legal").cost
            })
        });
    }
    group.finish();
}

fn algorithms(c: &mut Criterion) {
    bench_family(c, "sigma_mu_n12", &sigma_mu(12));
    bench_family(
        c,
        "random_general_10k",
        &random_general(&GeneralConfig::new(10, 10_000), 1),
    );
    bench_family(
        c,
        "cloud_10k",
        &cloud_trace(&CloudConfig::new(10_000, 50_000), 1),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = algorithms
}
criterion_main!(benches);
