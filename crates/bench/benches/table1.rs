//! Criterion benches that regenerate the Table 1 measurements: one bench
//! per table row family, so `cargo bench` re-derives the paper's
//! evaluation artifacts under measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbp_bench::bracket;
use dbp_core::engine;
use dbp_workloads::adversary::{run_adversary, AdversaryConfig};
use dbp_workloads::{ff_pathology_pow2, sigma_mu};

/// Row 1 of Table 1: HA under the adversary, per μ.
fn row_clairvoyant_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/clairvoyant-general");
    for &n in &[6u32, 9, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let out =
                    run_adversary(dbp_algos::HybridAlgorithm::new(), &AdversaryConfig::new(n))
                        .expect("legal");
                bracket::ratio_vs_opt_r(&out.instance, out.result.cost).0
            })
        });
    }
    group.finish();
}

/// Row 2 of Table 1: CDFF on σ_μ, per μ.
fn row_aligned(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/aligned-cdff");
    for &n in &[8u32, 12, 16] {
        let inst = sigma_mu(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                engine::run(inst, dbp_algos::Cdff::new())
                    .expect("legal")
                    .cost
                    .as_bin_ticks()
                    / (1u64 << n) as f64
            })
        });
    }
    group.finish();
}

/// Row 3 of Table 1: FF on the Ω(μ) pathology, per μ.
fn row_nonclairvoyant(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/nonclairvoyant-ff");
    for &n in &[4u32, 5, 6] {
        let inst = ff_pathology_pow2(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                let res = engine::run(inst, dbp_algos::FirstFit::new()).expect("legal");
                bracket::opt_nr(inst).ratio_bracket(res.cost).0
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = row_clairvoyant_general, row_aligned, row_nonclairvoyant
}
criterion_main!(benches);
