//! Exact cost / volume arithmetic.
//!
//! Usage time (`ON(σ)`, `OPT(σ)`) and space-time demand (`d(σ)`) are both
//! *areas* in the time × capacity plane. We measure them exactly in units of
//! one tick × one fixed-point size unit (`2^-32` of a bin), stored as
//! `u128`. A bin open for `T` ticks contributes `T · 2^32`; an item of size
//! `s` active for `T` ticks contributes `T · s.raw()`.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign};

use crate::size::SIZE_SCALE;
use crate::time::Dur;

/// An exact area in the time × capacity plane (tick × `2^-32` bin units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Area(u128);

impl Area {
    /// The empty area.
    pub const ZERO: Area = Area(0);

    /// Raw units (tick × 2^-32 bins).
    #[inline]
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Area of one full bin open for `d` ticks.
    #[inline]
    pub fn from_bin_ticks(d: Dur) -> Area {
        Area(d.ticks() as u128 * SIZE_SCALE as u128)
    }

    /// Area of `n` full bins open for `d` ticks.
    #[inline]
    pub fn from_bins_ticks(n: u64, d: Dur) -> Area {
        Area(n as u128 * d.ticks() as u128 * SIZE_SCALE as u128)
    }

    /// Area of a raw load (fixed-point units) sustained for `d` ticks.
    #[inline]
    pub fn from_load_ticks(load_raw: u64, d: Dur) -> Area {
        Area(load_raw as u128 * d.ticks() as u128)
    }

    /// Construct from raw units.
    #[inline]
    pub const fn from_raw(raw: u128) -> Area {
        Area(raw)
    }

    /// Value in bin·tick units (for reporting).
    #[inline]
    pub fn as_bin_ticks(self) -> f64 {
        self.0 as f64 / SIZE_SCALE as f64
    }

    /// Whether this area is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Ratio `self / other` as `f64` (for competitive-ratio reporting).
    ///
    /// Returns `f64::INFINITY` when `other` is zero and `self` is not, and
    /// `1.0` when both are zero (an empty instance is served optimally).
    #[inline]
    pub fn ratio_to(self, other: Area) -> f64 {
        if other.is_zero() {
            if self.is_zero() {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    /// Checked multiplication by a small integer factor, consistent with
    /// the crate's exact-arithmetic policy (like [`Area::add`], which also
    /// refuses to wrap or saturate).
    ///
    /// # Panics
    /// Panics on `u128` overflow — silent saturation would corrupt the
    /// cost ledgers the experiments compare.
    #[inline]
    pub fn scale(self, k: u64) -> Area {
        Area(self.0.checked_mul(k as u128).expect("area overflow"))
    }
}

impl Add for Area {
    type Output = Area;
    #[inline]
    fn add(self, other: Area) -> Area {
        Area(self.0.checked_add(other.0).expect("area overflow"))
    }
}

impl AddAssign for Area {
    #[inline]
    fn add_assign(&mut self, other: Area) {
        *self = *self + other;
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        iter.fold(Area::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} bin·ticks", self.as_bin_ticks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_ticks_roundtrip() {
        let a = Area::from_bin_ticks(Dur(10));
        assert_eq!(a.as_bin_ticks(), 10.0);
        assert_eq!(Area::from_bins_ticks(3, Dur(10)).as_bin_ticks(), 30.0);
    }

    #[test]
    fn load_ticks_scaling() {
        // Half a bin for 8 ticks = 4 bin·ticks.
        let a = Area::from_load_ticks(SIZE_SCALE / 2, Dur(8));
        assert_eq!(a.as_bin_ticks(), 4.0);
    }

    #[test]
    fn ratio_semantics() {
        let a = Area::from_bin_ticks(Dur(10));
        let b = Area::from_bin_ticks(Dur(5));
        assert_eq!(a.ratio_to(b), 2.0);
        assert_eq!(Area::ZERO.ratio_to(Area::ZERO), 1.0);
        assert_eq!(a.ratio_to(Area::ZERO), f64::INFINITY);
    }

    #[test]
    fn sum_and_scale() {
        let parts = [Area::from_bin_ticks(Dur(1)), Area::from_bin_ticks(Dur(2))];
        let total: Area = parts.into_iter().sum();
        assert_eq!(total, Area::from_bin_ticks(Dur(3)));
        assert_eq!(total.scale(4), Area::from_bin_ticks(Dur(12)));
    }

    #[test]
    #[should_panic(expected = "area overflow")]
    fn scale_panics_on_overflow_instead_of_saturating() {
        let _ = Area::from_raw(u128::MAX / 2).scale(3);
    }
}
