//! Exact fixed-point item sizes and bin loads.
//!
//! Item sizes live in `[0, 1]` and bins have capacity exactly 1. The paper's
//! constructions use sizes such as `1/√(log μ)` and `1/log μ`; representing
//! them as `f64` would make "does this item fit" queries drift under
//! accumulation, which corrupts First-Fit decisions and therefore the
//! measured competitive ratios. We instead use a `u64` fixed-point
//! representation with `2^32` units per bin capacity: all additions are
//! exact, and every size expressible as `n / d` is represented by the floor
//! of `n·2^32 / d`, which can only make adversarial loads *slightly* smaller
//! (never larger), preserving feasibility of the intended packings.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of fixed-point units in a full bin (capacity 1.0).
pub const SIZE_SCALE: u64 = 1 << 32;

/// An item size in `[0, 1]`, in units of `1 / 2^32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Size(u64);

/// A bin load: a sum of item sizes. Unlike [`Size`] it may exceed 1 when
/// aggregating across bins (e.g. computing `S_t(σ)`, the total active load).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Load(u64);

impl Size {
    /// Full bin capacity (size 1.0).
    pub const FULL: Size = Size(SIZE_SCALE);

    /// Creates a size from raw fixed-point units.
    ///
    /// # Panics
    /// Panics if `raw > SIZE_SCALE` (sizes cannot exceed bin capacity).
    #[inline]
    pub fn from_raw(raw: u64) -> Size {
        assert!(raw <= SIZE_SCALE, "size {raw} exceeds bin capacity");
        Size(raw)
    }

    /// Checked [`Size::from_raw`]: `None` when `raw > SIZE_SCALE`. Use this
    /// on untrusted inputs (wire decoders) where an oversized raw value
    /// must become a typed error, not a panic.
    #[inline]
    pub fn try_from_raw(raw: u64) -> Option<Size> {
        (raw <= SIZE_SCALE).then_some(Size(raw))
    }

    /// The size `num / den`, rounded down to the grid.
    ///
    /// # Panics
    /// Panics if `den == 0` or `num > den`.
    #[inline]
    pub fn from_ratio(num: u64, den: u64) -> Size {
        assert!(den > 0, "zero denominator");
        assert!(num <= den, "size {num}/{den} exceeds 1");
        Size(((num as u128 * SIZE_SCALE as u128) / den as u128) as u64)
    }

    /// The size closest to (and not above) the given float.
    ///
    /// # Panics
    /// Panics if `v` is not in `[0, 1]` or is NaN.
    #[inline]
    pub fn from_f64(v: f64) -> Size {
        assert!(
            v.is_finite() && (0.0..=1.0).contains(&v),
            "size {v} not in [0,1]"
        );
        Size((v * SIZE_SCALE as f64).floor() as u64)
    }

    /// Raw fixed-point units.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Approximate floating-point value (for reporting only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / SIZE_SCALE as f64
    }

    /// Whether this is the degenerate zero size.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Load {
    /// An empty load.
    pub const ZERO: Load = Load(0);

    /// Creates a load from raw fixed-point units.
    #[inline]
    pub const fn from_raw(raw: u64) -> Load {
        Load(raw)
    }

    /// Raw fixed-point units.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether adding `s` would stay within a single bin's capacity.
    #[inline]
    pub fn fits(self, s: Size) -> bool {
        self.0 + s.0 <= SIZE_SCALE
    }

    /// `⌈load⌉` in whole-bin units: the minimum number of unit bins that
    /// could hold this much volume (ignoring item granularity). Used for the
    /// `∫⌈S_t⌉ dt` bound.
    #[inline]
    pub fn ceil_bins(self) -> u64 {
        self.0.div_ceil(SIZE_SCALE)
    }

    /// Approximate floating-point value (for reporting only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / SIZE_SCALE as f64
    }

    /// Whether the load is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Strict comparison against a rational threshold: `self > num/den`.
    ///
    /// Exact: compares `self·den` with `num·2^32` in 128-bit arithmetic, so
    /// thresholds like HA's `1/(2√i)` (supplied as a rational approximation)
    /// never suffer rounding at the comparison itself.
    #[inline]
    pub fn exceeds_ratio(self, num: u64, den: u64) -> bool {
        assert!(den > 0, "zero denominator");
        (self.0 as u128) * (den as u128) > (num as u128) * (SIZE_SCALE as u128)
    }
}

impl Add<Size> for Load {
    type Output = Load;
    #[inline]
    fn add(self, s: Size) -> Load {
        Load(self.0.checked_add(s.0).expect("load overflow"))
    }
}

impl AddAssign<Size> for Load {
    #[inline]
    fn add_assign(&mut self, s: Size) {
        *self = *self + s;
    }
}

impl Sub<Size> for Load {
    type Output = Load;
    #[inline]
    fn sub(self, s: Size) -> Load {
        Load(
            self.0
                .checked_sub(s.0)
                .expect("load underflow: removing more than present"),
        )
    }
}

impl SubAssign<Size> for Load {
    #[inline]
    fn sub_assign(&mut self, s: Size) {
        *self = *self - s;
    }
}

impl Add for Load {
    type Output = Load;
    #[inline]
    fn add(self, other: Load) -> Load {
        Load(self.0.checked_add(other.0).expect("load overflow"))
    }
}

impl AddAssign for Load {
    #[inline]
    fn add_assign(&mut self, other: Load) {
        *self = *self + other;
    }
}

impl From<Size> for Load {
    #[inline]
    fn from(s: Size) -> Load {
        Load(s.0)
    }
}

/// Maximum number of resource dimensions a [`SizeVec`] can carry.
///
/// Three covers the cloud workloads the DVBP literature evaluates
/// (CPU/memory/network or CPU/HBM/KV-cache); keeping the bound a small
/// compile-time constant lets items stay `Copy` and keeps the scalar
/// (D = 1) path free of any indirection.
pub const MAX_DIMS: usize = 3;

/// A multi-dimensional item size: one [`Size`] per resource dimension.
///
/// Unused trailing dimensions are exactly zero, so a scalar instance is a
/// `SizeVec` whose dimensions 1.. are all zero — the derived lexicographic
/// ordering, equality, and hashing then coincide bit-for-bit with the
/// scalar [`Size`] they wrap (the D = 1 bit-identity contract, DESIGN.md
/// §16). An item *fits* a bin iff it fits in **every** dimension; size
/// classification (Harmonic classes, duration-band thresholds, analytic
/// brackets) uses the max-dimension norm [`SizeVec::max_raw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SizeVec([Size; MAX_DIMS]);

impl SizeVec {
    /// The all-zero size vector.
    pub const ZERO: SizeVec = SizeVec([Size(0); MAX_DIMS]);

    /// A scalar (one-dimensional) size.
    #[inline]
    pub const fn scalar(s: Size) -> SizeVec {
        SizeVec([s, Size(0), Size(0)])
    }

    /// A size vector from up to [`MAX_DIMS`] per-dimension sizes. `None`
    /// when the slice is empty or longer than [`MAX_DIMS`].
    pub fn from_sizes(sizes: &[Size]) -> Option<SizeVec> {
        if sizes.is_empty() || sizes.len() > MAX_DIMS {
            return None;
        }
        let mut dims = [Size(0); MAX_DIMS];
        dims[..sizes.len()].copy_from_slice(sizes);
        Some(SizeVec(dims))
    }

    /// A size vector from raw fixed-point units per dimension (wire
    /// decoder form). `None` when the slice is empty, longer than
    /// [`MAX_DIMS`], or any component exceeds bin capacity.
    pub fn try_from_raws(raws: &[u64]) -> Option<SizeVec> {
        if raws.is_empty() || raws.len() > MAX_DIMS {
            return None;
        }
        let mut dims = [Size(0); MAX_DIMS];
        for (d, &raw) in raws.iter().enumerate() {
            dims[d] = Size::try_from_raw(raw)?;
        }
        Some(SizeVec(dims))
    }

    /// The size in dimension `d` (zero for unused dimensions).
    #[inline]
    pub const fn get(self, d: usize) -> Size {
        self.0[d]
    }

    /// The first (primary) dimension — the whole size for scalar items.
    #[inline]
    pub const fn primary(self) -> Size {
        self.0[0]
    }

    /// Raw fixed-point units per dimension.
    #[inline]
    pub const fn raws(self) -> [u64; MAX_DIMS] {
        [self.0[0].0, self.0[1].0, self.0[2].0]
    }

    /// The max-dimension norm `max_d s_d` in raw units — the scalar by
    /// which vector items are classified (Harmonic classes, thresholds,
    /// demand accounting). Equals [`Size::raw`] of the primary dimension
    /// for scalar sizes.
    #[inline]
    pub fn max_raw(self) -> u64 {
        self.0[0].0.max(self.0[1].0).max(self.0[2].0)
    }

    /// The max-dimension norm as a [`Size`].
    #[inline]
    pub fn max_size(self) -> Size {
        Size(self.max_raw())
    }

    /// Whether every dimension past the first is zero (the scalar shape).
    #[inline]
    pub const fn is_scalar(self) -> bool {
        self.0[1].0 == 0 && self.0[2].0 == 0
    }

    /// Number of dimensions up to the last non-zero one (min 1): the
    /// canonical width of this size on the wire.
    #[inline]
    pub const fn dims_used(self) -> usize {
        if self.0[2].0 != 0 {
            3
        } else if self.0[1].0 != 0 {
            2
        } else {
            1
        }
    }

    /// Whether every dimension is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0[0].0 == 0 && self.is_scalar()
    }

    /// Per-dimension remaining capacity of a fresh bin after placing this
    /// size: `SIZE_SCALE − s_d` in every dimension.
    #[inline]
    pub fn remaining(self) -> [u64; MAX_DIMS] {
        [
            SIZE_SCALE - self.0[0].0,
            SIZE_SCALE - self.0[1].0,
            SIZE_SCALE - self.0[2].0,
        ]
    }
}

impl From<Size> for SizeVec {
    #[inline]
    fn from(s: Size) -> SizeVec {
        SizeVec::scalar(s)
    }
}

impl From<SizeVec> for LoadVec {
    #[inline]
    fn from(s: SizeVec) -> LoadVec {
        LoadVec([Load(s.0[0].0), Load(s.0[1].0), Load(s.0[2].0)])
    }
}

/// A multi-dimensional bin load: one [`Load`] per resource dimension.
/// The vector twin of [`Load`], with the same exactness guarantees
/// per dimension; ordering is lexicographic, which coincides with the
/// scalar ordering when dimensions 1.. are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LoadVec([Load; MAX_DIMS]);

impl LoadVec {
    /// The empty load vector.
    pub const ZERO: LoadVec = LoadVec([Load(0); MAX_DIMS]);

    /// The load in dimension `d`.
    #[inline]
    pub const fn get(self, d: usize) -> Load {
        self.0[d]
    }

    /// The first (primary) dimension.
    #[inline]
    pub const fn primary(self) -> Load {
        self.0[0]
    }

    /// Raw fixed-point units per dimension.
    #[inline]
    pub const fn raws(self) -> [u64; MAX_DIMS] {
        [self.0[0].0, self.0[1].0, self.0[2].0]
    }

    /// A load vector from raw per-dimension units.
    #[inline]
    pub const fn from_raws(raws: [u64; MAX_DIMS]) -> LoadVec {
        LoadVec([Load(raws[0]), Load(raws[1]), Load(raws[2])])
    }

    /// The bottleneck dimension's load in raw units (`max_d L_d`).
    #[inline]
    pub fn max_raw(self) -> u64 {
        self.0[0].0.max(self.0[1].0).max(self.0[2].0)
    }

    /// Whether adding `s` stays within capacity in **every** dimension —
    /// the vector fit test. Identical to [`Load::fits`] for scalar shapes.
    #[inline]
    pub fn fits(self, s: SizeVec) -> bool {
        self.0[0].0 + s.0[0].0 <= SIZE_SCALE
            && self.0[1].0 + s.0[1].0 <= SIZE_SCALE
            && self.0[2].0 + s.0[2].0 <= SIZE_SCALE
    }

    /// Whether every dimension is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0[0].0 == 0 && self.0[1].0 == 0 && self.0[2].0 == 0
    }

    /// Per-dimension remaining capacity `SIZE_SCALE − L_d` in raw units —
    /// the tournament-tree key source.
    #[inline]
    pub fn remaining(self) -> [u64; MAX_DIMS] {
        [
            SIZE_SCALE - self.0[0].0,
            SIZE_SCALE - self.0[1].0,
            SIZE_SCALE - self.0[2].0,
        ]
    }

    /// `max_d ⌈L_d⌉` in whole-bin units: no feasible packing of this load
    /// uses fewer unit bins, whichever dimension binds.
    #[inline]
    pub fn ceil_bins(self) -> u64 {
        self.0[0]
            .ceil_bins()
            .max(self.0[1].ceil_bins())
            .max(self.0[2].ceil_bins())
    }
}

impl Add<SizeVec> for LoadVec {
    type Output = LoadVec;
    #[inline]
    fn add(self, s: SizeVec) -> LoadVec {
        LoadVec([self.0[0] + s.0[0], self.0[1] + s.0[1], self.0[2] + s.0[2]])
    }
}

impl AddAssign<SizeVec> for LoadVec {
    #[inline]
    fn add_assign(&mut self, s: SizeVec) {
        *self = *self + s;
    }
}

impl Sub<SizeVec> for LoadVec {
    type Output = LoadVec;
    #[inline]
    fn sub(self, s: SizeVec) -> LoadVec {
        LoadVec([self.0[0] - s.0[0], self.0[1] - s.0[1], self.0[2] - s.0[2]])
    }
}

impl SubAssign<SizeVec> for LoadVec {
    #[inline]
    fn sub_assign(&mut self, s: SizeVec) {
        *self = *self - s;
    }
}

impl Add for LoadVec {
    type Output = LoadVec;
    #[inline]
    fn add(self, other: LoadVec) -> LoadVec {
        LoadVec([
            self.0[0] + other.0[0],
            self.0[1] + other.0[1],
            self.0[2] + other.0[2],
        ])
    }
}

impl AddAssign for LoadVec {
    #[inline]
    fn add_assign(&mut self, other: LoadVec) {
        *self = *self + other;
    }
}

impl From<Load> for LoadVec {
    #[inline]
    fn from(l: Load) -> LoadVec {
        LoadVec([l, Load(0), Load(0)])
    }
}

impl fmt::Display for SizeVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_scalar() {
            write!(f, "{}", self.0[0])
        } else {
            write!(f, "[")?;
            for d in 0..self.dims_used() {
                if d > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.0[d])?;
            }
            write!(f, "]")
        }
    }
}

impl fmt::Display for LoadVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0[1].0 == 0 && self.0[2].0 == 0 {
            write!(f, "{}", self.0[0])
        } else {
            write!(f, "[{},{},{}]", self.0[0], self.0[1], self.0[2])
        }
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_f64())
    }
}

impl fmt::Display for Load {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_exact_for_divisors_of_scale() {
        assert_eq!(Size::from_ratio(1, 2).raw(), SIZE_SCALE / 2);
        assert_eq!(Size::from_ratio(1, 4).raw(), SIZE_SCALE / 4);
        assert_eq!(Size::from_ratio(1, 1), Size::FULL);
        assert_eq!(Size::from_ratio(0, 7).raw(), 0);
    }

    #[test]
    fn ratio_rounds_down() {
        // 1/3 is not representable; floor keeps 3·(1/3) ≤ 1 exactly.
        let third = Size::from_ratio(1, 3);
        let sum = Load::ZERO + third + third + third;
        assert!(sum.raw() <= SIZE_SCALE);
        assert!(Load::from(third).fits(third));
    }

    #[test]
    #[should_panic(expected = "exceeds 1")]
    fn ratio_rejects_oversize() {
        Size::from_ratio(3, 2);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn ratio_rejects_zero_den() {
        Size::from_ratio(1, 0);
    }

    #[test]
    fn fits_is_exact_at_boundary() {
        let half = Size::from_ratio(1, 2);
        let mut load = Load::ZERO;
        load += half;
        assert!(load.fits(half), "two exact halves fill a bin");
        load += half;
        assert!(
            !load.fits(Size::from_raw(1)),
            "a full bin rejects even 1 unit"
        );
        assert_eq!(load.raw(), SIZE_SCALE);
    }

    #[test]
    fn ceil_bins_matches_paper_ceiling() {
        assert_eq!(Load::ZERO.ceil_bins(), 0);
        assert_eq!(Load::from(Size::from_raw(1)).ceil_bins(), 1);
        assert_eq!(Load::from(Size::FULL).ceil_bins(), 1);
        assert_eq!((Load::from(Size::FULL) + Size::from_raw(1)).ceil_bins(), 2);
    }

    #[test]
    fn exceeds_ratio_exact() {
        let half = Load::from(Size::from_ratio(1, 2));
        assert!(!half.exceeds_ratio(1, 2), "exactly 1/2 does not exceed 1/2");
        assert!((half + Size::from_raw(1)).exceeds_ratio(1, 2));
        assert!(half.exceeds_ratio(1, 3));
        assert!(!half.exceeds_ratio(2, 3));
    }

    #[test]
    fn from_f64_floor_behaviour() {
        assert_eq!(Size::from_f64(0.0).raw(), 0);
        assert_eq!(Size::from_f64(1.0), Size::FULL);
        assert_eq!(Size::from_f64(0.5).raw(), SIZE_SCALE / 2);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn from_f64_rejects_nan_range() {
        Size::from_f64(1.5);
    }

    #[test]
    fn load_subtraction_roundtrips() {
        let a = Size::from_ratio(3, 7);
        let b = Size::from_ratio(2, 7);
        let mut l = Load::ZERO;
        l += a;
        l += b;
        l -= a;
        assert_eq!(l, Load::from(b));
        l -= b;
        assert!(l.is_zero());
    }

    #[test]
    #[should_panic(expected = "load underflow")]
    fn load_subtraction_underflow_panics() {
        let mut l = Load::ZERO;
        l -= Size::from_raw(1);
    }
}
