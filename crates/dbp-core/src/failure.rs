//! Fault injection for the serving layer: server-crash schedules,
//! re-admission backoff policies, and the resilience ledger.
//!
//! A [`FailurePlan`] tells the engine *when bins die*. A bin failure at
//! time `t` displaces every in-flight item of that bin (each emitted as an
//! `ItemDisplaced` event, the bin itself as `BinFailed`), after which each
//! displaced item is re-admitted through the online algorithm as a fresh
//! arrival at `t + delay`, where the delay comes from a [`RetryPolicy`].
//! An item whose re-admission would land at or past its original departure
//! is *dropped* instead. All of it is tallied in a [`ResilienceReport`]
//! returned beside the run metrics.
//!
//! Two plan shapes exist:
//!
//! * [`FailurePlan::scripted`] — an explicit `(time, bin)` crash schedule
//!   (what the chaos generator in `dbp-workloads` emits). Crashes naming a
//!   bin that is not open at fire time are no-ops.
//! * [`FailurePlan::seeded`] — each bin draws its fate when it opens, from
//!   a splitmix64 stream keyed on `(seed, bin id)`: with probability
//!   `rate` the bin is doomed and crashes a bounded random delay after
//!   opening. Because bin ids are allocated deterministically, the whole
//!   crash schedule is a pure function of `(algorithm, instance, seed)` —
//!   seeded runs replay bit-identically.
//!
//! The empty plan ([`FailurePlan::none`]) is the default everywhere and is
//! guaranteed to leave the engine's output — cost, assignment, event
//! stream, metrics — bit-identical to a build without the failure layer at
//! all (DESIGN.md §11).

use core::fmt;

use crate::bin_state::BinId;
use crate::cost::Area;
use crate::time::{Dur, Time};

/// When (and whether) servers crash during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum FailurePlan {
    /// No failures: the engine behaves exactly as if the failure layer did
    /// not exist.
    #[default]
    None,
    /// An explicit crash schedule: `(time, bin)` pairs. Entries whose bin
    /// is not open when the time arrives are silently skipped.
    Scripted(Vec<(Time, BinId)>),
    /// Seeded random crashes: each bin is doomed independently with
    /// probability `rate` the moment it opens, and a doomed bin crashes
    /// `1 + (u mod mtbf)` ticks later (`u` from the bin's splitmix64
    /// stream).
    Seeded {
        /// Probability, in `[0, 1]`, that a freshly-opened bin will crash.
        rate: f64,
        /// Stream seed; same seed → same crash schedule.
        seed: u64,
        /// Upper bound (exclusive, plus one tick) on the open-to-crash
        /// delay of a doomed bin.
        mtbf: Dur,
    },
}

impl FailurePlan {
    /// The empty plan (no failures ever).
    pub fn none() -> FailurePlan {
        FailurePlan::None
    }

    /// An explicit `(time, bin)` crash schedule.
    pub fn scripted(schedule: Vec<(Time, BinId)>) -> FailurePlan {
        FailurePlan::Scripted(schedule)
    }

    /// A seeded random plan (see the type-level docs for the model).
    ///
    /// # Panics
    /// Panics if `rate` is not a probability or `mtbf` is zero.
    pub fn seeded(rate: f64, seed: u64, mtbf: Dur) -> FailurePlan {
        assert!(
            (0.0..=1.0).contains(&rate),
            "failure rate {rate} is not a probability"
        );
        assert!(!mtbf.is_zero(), "mtbf must be at least one tick");
        if rate == 0.0 {
            // A zero rate must be *exactly* the empty plan, so the
            // bit-identity guarantee holds by construction.
            return FailurePlan::None;
        }
        FailurePlan::Seeded { rate, seed, mtbf }
    }

    /// Whether this plan can ever fire.
    pub fn is_none(&self) -> bool {
        matches!(self, FailurePlan::None)
            || matches!(self, FailurePlan::Scripted(s) if s.is_empty())
    }

    /// Decides the crash time (if any) for bin `bin` opening at `t`.
    /// Only [`FailurePlan::Seeded`] answers here; scripted schedules are
    /// queued up-front by the engine.
    pub(crate) fn crash_time(&self, bin: BinId, t: Time) -> Option<Time> {
        let FailurePlan::Seeded { rate, seed, mtbf } = *self else {
            return None;
        };
        let h = splitmix64(seed ^ (u64::from(bin.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // 53 high bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= rate {
            return None;
        }
        let delay = 1 + splitmix64(h) % mtbf.ticks();
        Some(t.saturating_add(Dur(delay)))
    }
}

/// The splitmix64 step: a full-period 64-bit mixer, good enough for crash
/// scheduling and dependency-free (the workspace's `rand` is a shim).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How long a displaced item waits before it is re-admitted.
///
/// `attempt` counts how many times the *same logical request* has been
/// displaced so far (1 on the first displacement), so exponential backoff
/// grows across repeated failures of the same request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Re-admit in the same tick the failure happened.
    #[default]
    Immediate,
    /// Re-admit after a fixed delay.
    Fixed(Dur),
    /// Re-admit after `base · 2^(attempt−1)` ticks (saturating).
    Exponential {
        /// First-attempt delay.
        base: Dur,
    },
}

impl RetryPolicy {
    /// The wait before re-admission on the `attempt`-th displacement
    /// (`attempt ≥ 1`).
    pub fn delay(&self, attempt: u32) -> Dur {
        match *self {
            RetryPolicy::Immediate => Dur::ZERO,
            RetryPolicy::Fixed(d) => d,
            RetryPolicy::Exponential { base } => {
                let shift = attempt.saturating_sub(1).min(63);
                Dur(base.ticks().saturating_mul(1u64 << shift))
            }
        }
    }

    /// Parses the CLI spelling: `immediate`, `fixed=<ticks>`, or
    /// `exp=<ticks>` / `exponential=<ticks>`.
    pub fn parse(s: &str) -> Option<RetryPolicy> {
        if s == "immediate" {
            return Some(RetryPolicy::Immediate);
        }
        if let Some(d) = s.strip_prefix("fixed=") {
            return d.parse().ok().map(|t| RetryPolicy::Fixed(Dur(t)));
        }
        if let Some(d) = s
            .strip_prefix("exp=")
            .or_else(|| s.strip_prefix("exponential="))
        {
            return d
                .parse()
                .ok()
                .map(|t| RetryPolicy::Exponential { base: Dur(t) });
        }
        None
    }
}

impl fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryPolicy::Immediate => write!(f, "immediate"),
            RetryPolicy::Fixed(d) => write!(f, "fixed={}", d.ticks()),
            RetryPolicy::Exponential { base } => write!(f, "exp={}", base.ticks()),
        }
    }
}

/// The failure-side ledger of one run, reported beside
/// [`crate::engine::RunMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Bins that crashed while holding at least one item, plus crashes of
    /// open-but-empty bins. Scheduled crashes of bins already closed are
    /// not counted (they never fired).
    pub bin_failures: u64,
    /// Items displaced by crashes (each displacement counts, so a request
    /// bounced twice contributes two).
    pub displacements: u64,
    /// Displaced items successfully re-admitted through the algorithm.
    pub readmissions: u64,
    /// Displaced items whose re-admission would have landed at or past
    /// their original departure — their remaining service is lost.
    pub dropped: u64,
    /// `Σ size · (service gap)` over all displacements: the demand-area
    /// that was requested but not served while items waited out their
    /// backoff (for dropped items, the whole remaining interval).
    pub degraded_area: Area,
    /// The largest displacement count any single logical request reached.
    pub max_attempts: u32,
}

impl ResilienceReport {
    /// Whether the run saw any failure activity at all. `false` is the
    /// bit-identity regime: the run's observable output matches a plain
    /// run exactly.
    pub fn any(&self) -> bool {
        *self != ResilienceReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_collapses_to_the_empty_plan() {
        assert_eq!(FailurePlan::seeded(0.0, 42, Dur(10)), FailurePlan::None);
        assert!(FailurePlan::seeded(0.0, 42, Dur(10)).is_none());
        assert!(FailurePlan::scripted(vec![]).is_none());
        assert!(!FailurePlan::seeded(0.5, 42, Dur(10)).is_none());
    }

    #[test]
    fn seeded_crash_times_are_deterministic_and_bounded() {
        let plan = FailurePlan::seeded(1.0, 7, Dur(16));
        for bin in 0..64u32 {
            let a = plan.crash_time(BinId(bin), Time(100));
            let b = plan.crash_time(BinId(bin), Time(100));
            assert_eq!(a, b, "same (seed, bin) → same fate");
            let t = a.expect("rate 1.0 dooms every bin");
            assert!(t > Time(100), "crash strictly after opening");
            assert!(t <= Time(116), "delay bounded by mtbf");
        }
    }

    #[test]
    fn seeded_rate_is_roughly_honoured() {
        let plan = FailurePlan::seeded(0.25, 3, Dur(8));
        let doomed = (0..4000u32)
            .filter(|&b| plan.crash_time(BinId(b), Time(0)).is_some())
            .count();
        // 4000 draws at p=0.25: expect ~1000, allow a wide deterministic
        // margin.
        assert!((800..1200).contains(&doomed), "doomed = {doomed}");
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn out_of_range_rate_panics() {
        let _ = FailurePlan::seeded(1.5, 0, Dur(1));
    }

    #[test]
    fn retry_delays() {
        assert_eq!(RetryPolicy::Immediate.delay(1), Dur::ZERO);
        assert_eq!(RetryPolicy::Immediate.delay(9), Dur::ZERO);
        assert_eq!(RetryPolicy::Fixed(Dur(5)).delay(1), Dur(5));
        assert_eq!(RetryPolicy::Fixed(Dur(5)).delay(4), Dur(5));
        let exp = RetryPolicy::Exponential { base: Dur(3) };
        assert_eq!(exp.delay(1), Dur(3));
        assert_eq!(exp.delay(2), Dur(6));
        assert_eq!(exp.delay(4), Dur(24));
        // Saturation, not overflow.
        assert_eq!(exp.delay(200), Dur(u64::MAX));
    }

    #[test]
    fn retry_parse_round_trips() {
        for s in ["immediate", "fixed=12", "exp=4"] {
            let p = RetryPolicy::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert_eq!(
            RetryPolicy::parse("exponential=4"),
            Some(RetryPolicy::Exponential { base: Dur(4) })
        );
        assert_eq!(RetryPolicy::parse("never"), None);
        assert_eq!(RetryPolicy::parse("fixed=x"), None);
    }

    #[test]
    fn fresh_report_reads_as_no_activity() {
        let r = ResilienceReport::default();
        assert!(!r.any());
        let r = ResilienceReport {
            bin_failures: 1,
            ..ResilienceReport::default()
        };
        assert!(r.any());
    }
}
