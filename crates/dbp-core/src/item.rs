//! Items (requests) and their active intervals.

use core::fmt;

use crate::size::SizeVec;
use crate::time::{Dur, Time};

/// Dense identifier of an item within an [`crate::instance::Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// Index into per-item arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A single request: active on the half-open interval `[arrival, departure)`
/// with a fixed resource demand `size`.
///
/// The paper writes closed intervals `I(r) = [t_r, f_r]`; we use half-open
/// intervals so that "departures are processed before arrivals at the same
/// moment" (the paper's `t⁻`/`t⁺` convention for aligned inputs) falls out
/// of interval arithmetic: an item departing at `t` does not overlap an item
/// arriving at `t`, and their lengths are unchanged (`f_r − t_r`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Item {
    /// Identifier, equal to the item's index in its instance.
    pub id: ItemId,
    /// Arrival time `t_r` (also when the online algorithm must place it).
    pub arrival: Time,
    /// Departure time `f_r`, strictly greater than `arrival`.
    pub departure: Time,
    /// Resource demand, one component per dimension, each in `(0, 1]`.
    /// Scalar instances carry a [`SizeVec`] whose dimensions 1.. are zero;
    /// [`crate::size::Size`] converts via `Into`, so scalar call sites
    /// construct items unchanged.
    pub size: SizeVec,
}

impl Item {
    /// Constructs an item; invariants are validated by
    /// [`crate::instance::InstanceBuilder`], not here.
    #[inline]
    pub fn new(id: ItemId, arrival: Time, departure: Time, size: impl Into<SizeVec>) -> Item {
        Item {
            id,
            arrival,
            departure,
            size: size.into(),
        }
    }

    /// Interval length `l(I(r)) = f_r − t_r`.
    ///
    /// # Panics
    /// Panics in debug builds if `departure < arrival`.
    #[inline]
    pub fn duration(&self) -> Dur {
        self.departure.since(self.arrival)
    }

    /// Whether the item is active at time `t` (half-open convention).
    #[inline]
    pub fn active_at(&self, t: Time) -> bool {
        self.arrival <= t && t < self.departure
    }

    /// Whether two items' active intervals intersect.
    #[inline]
    pub fn overlaps(&self, other: &Item) -> bool {
        self.arrival < other.departure && other.arrival < self.departure
    }

    /// The duration-class index `i` with `l(I(r)) ∈ (2^{i-1}, 2^i]`.
    #[inline]
    pub fn class_index(&self) -> u32 {
        self.duration().class_index()
    }

    /// The arrival-window index `c ∈ ℕ` with
    /// `t_r ∈ ((c−1)·2^i, c·2^i]`, where `i` is the duration class.
    ///
    /// `t_r = 0` maps to `c = 0` (the window `(−2^i, 0]`), matching the
    /// paper's convention that the very first window is the one containing
    /// time zero.
    #[inline]
    pub fn window_index(&self) -> u64 {
        let i = self.class_index();
        let w = 1u64 << i;
        // c = ⌈t_r / 2^i⌉ (so multiples of 2^i map to their own window).
        self.arrival.ticks().div_ceil(w)
    }

    /// The item's HA type `T = (i, c)`.
    #[inline]
    pub fn ha_type(&self) -> (u32, u64) {
        (self.class_index(), self.window_index())
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{},{})×{}",
            self.id,
            self.arrival.ticks(),
            self.departure.ticks(),
            self.size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::Size;

    fn item(a: u64, d: u64) -> Item {
        Item::new(ItemId(0), Time(a), Time(d), Size::from_ratio(1, 2))
    }

    #[test]
    fn duration_and_activity() {
        let r = item(2, 7);
        assert_eq!(r.duration(), Dur(5));
        assert!(!r.active_at(Time(1)));
        assert!(r.active_at(Time(2)));
        assert!(r.active_at(Time(6)));
        assert!(
            !r.active_at(Time(7)),
            "half-open: departed at its departure time"
        );
    }

    #[test]
    fn overlap_half_open_touching_intervals_do_not_overlap() {
        assert!(!item(0, 5).overlaps(&item(5, 10)));
        assert!(item(0, 6).overlaps(&item(5, 10)));
        assert!(item(5, 10).overlaps(&item(0, 6)));
        assert!(item(3, 4).overlaps(&item(0, 10)));
    }

    #[test]
    fn ha_type_examples() {
        // Length 1 at t=0: class 0, window 0.
        assert_eq!(item(0, 1).ha_type(), (0, 0));
        // Length 4 at t=5: class 2 (∈(2,4]), window ⌈5/4⌉ = 2, i.e. (4,8].
        assert_eq!(item(5, 9).ha_type(), (2, 2));
        // Length 3 at t=4: class 2, arrival exactly at window edge (0,4] → c=1.
        assert_eq!(item(4, 7).ha_type(), (2, 1));
        // Length 8 at t=8: class 3, window (0,8] → c=1.
        assert_eq!(item(8, 16).ha_type(), (3, 1));
        // Length 8 at t=9: window (8,16] → c=2.
        assert_eq!(item(9, 17).ha_type(), (3, 2));
    }

    #[test]
    fn window_index_zero_arrival_is_window_zero() {
        for d in [1u64, 2, 3, 7, 64] {
            assert_eq!(item(0, d).window_index(), 0);
        }
    }
}
