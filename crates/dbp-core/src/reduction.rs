//! The σ → σ′ departure-rounding reduction (paper, Section 3).
//!
//! For an item `r` with duration class `i` (length in `(2^{i-1}, 2^i]`) and
//! arrival window `c` (arrival in `((c−1)·2^i, c·2^i]`), the reduced item
//! `r′` keeps its arrival and size but departs at `(c+1)·2^i`. Consequences
//! proved in the paper and asserted by our tests:
//!
//! * departures never move earlier, and lengths grow by at most 4×
//!   (Observations 1–2: `span(σ′) ≤ 4·span(σ)`, `d(σ′) ≤ 4·d(σ)`);
//! * any two items of the same HA type `(i, c)` depart together in σ′;
//! * `OPT_R(σ′) ≤ 16·OPT_R(σ)` for busy-period inputs (Corollary 3.4).
//!
//! The reduction is an *analysis* device — the online algorithms never see
//! σ′ — but it is load-bearing for the experiments that recreate Lemma 3.5
//! and Theorem 5.1, so it is a first-class, tested operation here.

use crate::instance::{Instance, InstanceBuilder};
use crate::item::Item;
use crate::time::Time;

/// The reduced departure time of `item`: `(c+1)·2^i` for its type `(i, c)`.
pub fn reduced_departure(item: &Item) -> Time {
    let i = item.class_index();
    let c = item.window_index();
    let w = 1u64 << i;
    Time((c + 1).checked_mul(w).expect("reduced departure overflow"))
}

/// Applies the reduction to every item, preserving order and ids.
pub fn reduce(instance: &Instance) -> Instance {
    let mut builder = InstanceBuilder::with_capacity(instance.len());
    for it in instance.items() {
        builder.push_interval(it.arrival, reduced_departure(it), it.size);
    }
    builder
        .build()
        .expect("reduction preserves validity: departures only move later")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::Size;
    use crate::time::{Dur, Time};

    fn sz(n: u64, d: u64) -> Size {
        Size::from_ratio(n, d)
    }

    fn single(arrival: u64, dur: u64) -> Item {
        let inst = Instance::from_triples([(Time(arrival), Dur(dur), sz(1, 2))]).unwrap();
        inst.items()[0]
    }

    #[test]
    fn reduced_departure_examples() {
        // Length 1 at t=0: i=0, window (−1,0] → c=0 → departs at 1·1 = 1.
        assert_eq!(reduced_departure(&single(0, 1)), Time(1));
        // Length 1 at t=3: c=3 → departs at 4.
        assert_eq!(reduced_departure(&single(3, 1)), Time(4));
        // Length 3 at t=5: i=2, window (4,8] → c=2 → departs at 3·4 = 12.
        assert_eq!(reduced_departure(&single(5, 3)), Time(12));
        // Length 4 at t=4 (aligned): c=1 → departs at 8 (next multiple).
        assert_eq!(reduced_departure(&single(4, 4)), Time(8));
        // Aligned case: arrival c·2^i, departure already (c+1)·2^i → unchanged.
        assert_eq!(reduced_departure(&single(8, 2)), Time(10));
    }

    #[test]
    fn departures_never_move_earlier() {
        for (a, d) in [(0u64, 1u64), (1, 1), (7, 3), (16, 16), (5, 9), (1023, 1)] {
            let it = single(a, d);
            assert!(
                reduced_departure(&it) >= it.departure,
                "reduction shortened [{a},{})",
                a + d
            );
        }
    }

    #[test]
    fn length_grows_by_at_most_four() {
        for (a, d) in [
            (0u64, 1u64),
            (1, 1),
            (7, 3),
            (16, 16),
            (5, 9),
            (1023, 1),
            (9, 8),
        ] {
            let it = single(a, d);
            let new_len = reduced_departure(&it).since(it.arrival).ticks();
            assert!(
                new_len <= 4 * d,
                "[{a},{}): reduced length {new_len} > 4·{d}",
                a + d
            );
        }
    }

    #[test]
    fn same_type_items_depart_together() {
        // Two items of type (i=2, c=2): lengths in (2,4], arrivals in (4,8].
        let inst =
            Instance::from_triples([(Time(5), Dur(3), sz(1, 2)), (Time(8), Dur(4), sz(1, 4))])
                .unwrap();
        let reduced = reduce(&inst);
        assert_eq!(inst.items()[0].ha_type(), inst.items()[1].ha_type());
        assert_eq!(reduced.items()[0].departure, reduced.items()[1].departure);
    }

    #[test]
    fn observation_1_and_2_bounds_hold() {
        // A mixed busy-period instance.
        let inst = Instance::from_triples([
            (Time(0), Dur(16), sz(1, 2)),
            (Time(3), Dur(1), sz(1, 4)),
            (Time(4), Dur(6), sz(1, 8)),
            (Time(9), Dur(2), sz(1, 2)),
            (Time(12), Dur(5), sz(3, 4)),
        ])
        .unwrap();
        let red = reduce(&inst);
        assert!(red.span_dur().ticks() <= 4 * inst.span_dur().ticks());
        assert!(red.demand().raw() <= inst.demand().raw() * 4);
    }

    #[test]
    fn reduction_preserves_ids_arrivals_sizes() {
        let inst =
            Instance::from_triples([(Time(2), Dur(3), sz(1, 3)), (Time(0), Dur(7), sz(2, 3))])
                .unwrap();
        let red = reduce(&inst);
        for (a, b) in inst.items().iter().zip(red.items()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.size, b.size);
        }
    }
}
