//! The event-driven packing simulator.
//!
//! Two front doors share one implementation:
//!
//! * [`run`] — batch mode: replay a whole [`Instance`] through an algorithm.
//! * [`InteractiveSim`] — adaptive mode: a driver (e.g. the Theorem 4.3
//!   adversary) feeds items one at a time and may inspect the open-bin
//!   count between arrivals before deciding what to release next.
//!
//! Semantics: time moves on the integer tick grid; at each moment all
//! departures are processed before any arrival (the paper's `t⁻`/`t⁺`
//! convention), bins close permanently when they empty, and the
//! MinUsageTime cost of a bin is `closed_at − opened_at`.
//!
//! Per-event cost: an arrival is O(log B) when the algorithm answers
//! through the store's capacity tournament tree (placement validation is
//! O(1)); a departure is O(1) amortized ([`BinStore`]'s position indexes).
//! [`run`] pre-reserves every per-item and per-bin table from the
//! instance size, so batch replays allocate O(1) times.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::algorithm::{OnlineAlgorithm, Placement, SimView};
use crate::bin_state::{BinId, BinStore};
use crate::cost::Area;
use crate::error::EngineError;
use crate::instance::{Instance, InstanceBuilder};
use crate::item::{Item, ItemId};
use crate::size::Size;
use crate::time::{Dur, Time};

/// Everything measured during one packing run.
#[derive(Debug, Clone)]
pub struct PackingResult {
    /// `assignment[item.id.index()]` is the bin the item was placed in.
    pub assignment: Vec<BinId>,
    /// Total usage time `ON(σ) = Σ_bins (closed_at − opened_at)`.
    pub cost: Area,
    /// Peak number of simultaneously open bins.
    pub max_open: usize,
    /// Total number of bins ever opened.
    pub bins_opened: usize,
    /// Per-bin `(opened_at, closed_at)` intervals, indexed by `BinId`.
    pub bin_intervals: Vec<(Time, Time)>,
    /// Open-bin-count breakpoints: `(time, open_count)` at every change,
    /// recorded *after* all events at that time. Enables `∫ ON_t dt`
    /// recomputation and the Corollary 5.8 experiments.
    pub timeline: Vec<(Time, usize)>,
}

impl PackingResult {
    /// Recomputes the cost by integrating the open-bin timeline; equals
    /// [`PackingResult::cost`] by construction and is used in tests as an
    /// independent cross-check.
    pub fn cost_from_timeline(&self) -> Area {
        let mut total = Area::ZERO;
        for w in self.timeline.windows(2) {
            let dt = w[1].0.since(w[0].0);
            total += Area::from_bins_ticks(w[0].1 as u64, dt);
        }
        total
    }

    /// The number of open bins immediately after all events at time `t`
    /// (i.e. `ON_{t⁺}`). Times before the first breakpoint have zero bins.
    pub fn open_at(&self, t: Time) -> usize {
        match self.timeline.binary_search_by_key(&t, |&(s, _)| s) {
            Ok(idx) => self.timeline[idx].1,
            Err(0) => 0,
            Err(idx) => self.timeline[idx - 1].1,
        }
    }
}

/// An in-flight simulation accepting items one at a time.
pub struct InteractiveSim<A: OnlineAlgorithm> {
    algo: A,
    bins: BinStore,
    now: Time,
    started: bool,
    /// Pending departures: `(departure, item index)`.
    departures: BinaryHeap<Reverse<(Time, u32)>>,
    items: Vec<Item>,
    assignment: Vec<BinId>,
    cost: Area,
    max_open: usize,
    timeline: Vec<(Time, usize)>,
    undated: usize,
}

impl<A: OnlineAlgorithm> InteractiveSim<A> {
    /// Starts a simulation driving `algo`. The algorithm is reset first.
    pub fn new(algo: A) -> InteractiveSim<A> {
        InteractiveSim::with_capacity(algo, 0)
    }

    /// Starts a simulation pre-reserving space for `items` items (and as
    /// many bins — the worst case opens one per item). Behaviour is
    /// identical to [`InteractiveSim::new`]; runs within the estimate just
    /// never reallocate their bookkeeping or rebuild the placement tree.
    pub fn with_capacity(mut algo: A, items: usize) -> InteractiveSim<A> {
        algo.reset();
        InteractiveSim {
            algo,
            bins: BinStore::with_capacity(items, items),
            now: Time::ZERO,
            started: false,
            departures: BinaryHeap::with_capacity(items),
            items: Vec::with_capacity(items),
            assignment: Vec::with_capacity(items),
            cost: Area::ZERO,
            max_open: 0,
            timeline: Vec::new(),
            undated: 0,
        }
    }

    /// The current simulation clock.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of currently open bins (what the Theorem 4.3 adversary
    /// watches).
    #[inline]
    pub fn open_count(&self) -> usize {
        self.bins.open_count()
    }

    /// Total bins opened so far.
    #[inline]
    pub fn bins_opened(&self) -> usize {
        self.bins.total_opened()
    }

    /// Read-only view of the bins (for drivers that render figures).
    #[inline]
    pub fn bins(&self) -> &BinStore {
        &self.bins
    }

    /// The driven algorithm.
    #[inline]
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Advances the clock to `t`, processing all departures with
    /// `departure ≤ t`.
    ///
    /// # Panics
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: Time) {
        assert!(
            t >= self.now || !self.started,
            "clock regression: {t} < {}",
            self.now
        );
        self.process_departures_up_to(t);
        self.now = self.now.max(t);
        self.started = true;
    }

    /// Submits an item arriving *now* and returns the bin it was placed in.
    pub fn arrive(&mut self, dur: Dur, size: Size) -> Result<BinId, EngineError> {
        let arrival = self.now;
        self.arrive_at(arrival, dur, size)
    }

    /// Submits an item arriving *now* whose departure is not yet decided —
    /// the non-clairvoyant adaptive-adversary interface: the driver may
    /// watch where the item lands and only then choose its departure via
    /// [`InteractiveSim::set_departure`].
    ///
    /// The algorithm sees a placeholder departure in the far future
    /// (`Time(u64::MAX)`), so this entry point is only meaningful for
    /// algorithms that do not read departures (the non-clairvoyant
    /// family); a clairvoyant algorithm would be reacting to the
    /// placeholder. Every undated item must be dated before
    /// [`InteractiveSim::finish`].
    pub fn arrive_undated(&mut self, size: Size) -> Result<(ItemId, BinId), EngineError> {
        let arrival = self.now;
        let id = ItemId(u32::try_from(self.items.len()).expect("too many items"));
        self.advance_to(arrival);
        let item = Item::new(id, arrival, Time(u64::MAX), size);
        let bin = self.place(item)?;
        self.items.push(item);
        self.assignment.push(bin);
        self.undated += 1;
        // No departure queued yet: set_departure will queue it.
        Ok((id, bin))
    }

    /// Fixes the departure time of an item submitted via
    /// [`InteractiveSim::arrive_undated`]. `at` must not be in the past
    /// and the item must still be undated.
    ///
    /// # Panics
    /// Panics if the item is unknown, already dated, or `at ≤ arrival`.
    pub fn set_departure(&mut self, item: ItemId, at: Time) {
        assert!(
            at >= self.now,
            "departure {at} is in the past (now {})",
            self.now
        );
        let it = &mut self.items[item.index()];
        assert_eq!(it.departure, Time(u64::MAX), "{item} already dated");
        assert!(at > it.arrival, "departure must be after arrival");
        it.departure = at;
        self.departures.push(Reverse((at, item.0)));
        self.undated -= 1;
    }

    /// Submits an item arriving at `arrival ≥ now` (advancing the clock),
    /// active for `dur`.
    pub fn arrive_at(&mut self, arrival: Time, dur: Dur, size: Size) -> Result<BinId, EngineError> {
        let id = ItemId(u32::try_from(self.items.len()).expect("too many items"));
        if self.started && arrival < self.now {
            return Err(EngineError::TimeRegression {
                item: id,
                now: self.now,
                arrival,
            });
        }
        self.advance_to(arrival);
        let item = Item::new(id, arrival, arrival + dur, size);
        let bin = self.place(item)?;
        self.items.push(item);
        self.assignment.push(bin);
        self.departures.push(Reverse((item.departure, id.0)));
        Ok(bin)
    }

    /// Asks the algorithm for a placement and validates it.
    fn place(&mut self, item: Item) -> Result<BinId, EngineError> {
        let id = item.id;
        let size = item.size;
        let placement = {
            let view = SimView::new(self.now, &self.bins);
            self.algo.on_arrival(&view, &item)
        };
        let bin = match placement {
            Placement::Existing(b) => {
                let rec = self.bins.record(b);
                match rec {
                    None => {
                        return Err(EngineError::BinNotOpen {
                            item: id,
                            bin: b,
                            at: self.now,
                        })
                    }
                    Some(r) if !r.is_open() => {
                        return Err(EngineError::BinNotOpen {
                            item: id,
                            bin: b,
                            at: self.now,
                        })
                    }
                    Some(r) if !r.fits(size) => {
                        return Err(EngineError::CapacityExceeded {
                            item: id,
                            bin: b,
                            at: self.now,
                        })
                    }
                    Some(_) => b,
                }
            }
            Placement::OpenNew => {
                let b = self.bins.open(self.now);
                self.record_open_count();
                b
            }
        };
        self.bins.add(bin, id, size);
        Ok(bin)
    }

    /// Drains all remaining departures and returns the instance that was
    /// actually played plus the measurements.
    pub fn finish(mut self) -> (Instance, PackingResult) {
        assert_eq!(
            self.undated, 0,
            "finish() with undated items still in flight"
        );
        self.process_departures_up_to(Time(u64::MAX));
        debug_assert_eq!(self.bins.open_count(), 0, "all bins close at the end");
        let mut builder = InstanceBuilder::with_capacity(self.items.len());
        for it in &self.items {
            builder.push_interval(it.arrival, it.departure, it.size);
        }
        let instance = builder.build().expect("engine-built items are valid");
        // Items were pushed in (arrival, submission) order, so the stable
        // sort in `build` keeps ids aligned with our assignment vector.
        let bin_intervals = self
            .bins
            .all()
            .iter()
            .map(|r| (r.opened_at, r.closed_at.expect("all closed")))
            .collect();
        let result = PackingResult {
            assignment: self.assignment,
            cost: self.cost,
            max_open: self.max_open,
            bins_opened: self.bins.total_opened(),
            bin_intervals,
            timeline: self.timeline,
        };
        (instance, result)
    }

    fn process_departures_up_to(&mut self, t: Time) {
        while let Some(&Reverse((dep, idx))) = self.departures.peek() {
            if dep > t {
                break;
            }
            self.departures.pop();
            self.now = self.now.max(dep);
            let item = self.items[idx as usize];
            let bin = self.assignment[idx as usize];
            let closed = self.bins.remove(bin, item.id, item.size, dep);
            if closed {
                let rec = self.bins.record(bin).expect("bin exists");
                self.cost += Area::from_bin_ticks(dep.since(rec.opened_at));
                self.record_open_count_at(dep);
            }
            self.algo.on_departure(&item, bin, closed);
        }
    }

    fn record_open_count(&mut self) {
        self.record_open_count_at(self.now);
    }

    fn record_open_count_at(&mut self, t: Time) {
        let count = self.bins.open_count();
        self.max_open = self.max_open.max(count);
        match self.timeline.last_mut() {
            Some(last) if last.0 == t => last.1 = count,
            _ => self.timeline.push((t, count)),
        }
    }
}

/// Replays a whole instance through `algo` and returns the measurements.
///
/// Items are served in the instance's canonical order (sorted by arrival,
/// ties in builder insertion order); the returned assignment is indexed by
/// the instance's item ids.
///
/// ```
/// use dbp_core::{engine, Instance, Size, Time, Dur};
/// use dbp_core::{OnlineAlgorithm, Placement, SimView, Item};
///
/// struct Ff;
/// impl OnlineAlgorithm for Ff {
///     fn name(&self) -> &str { "ff" }
///     fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
///         view.first_fit(item.size).map(Placement::Existing).unwrap_or(Placement::OpenNew)
///     }
///     fn reset(&mut self) {}
/// }
///
/// let inst = Instance::from_triples([
///     (Time(0), Dur(10), Size::from_ratio(1, 2)),
///     (Time(2), Dur(5),  Size::from_ratio(1, 2)),
/// ]).unwrap();
/// let result = engine::run(&inst, Ff).unwrap();
/// assert_eq!(result.bins_opened, 1);
/// assert_eq!(result.cost.as_bin_ticks(), 10.0);
/// ```
pub fn run<A: OnlineAlgorithm>(instance: &Instance, algo: A) -> Result<PackingResult, EngineError> {
    let mut sim = InteractiveSim::with_capacity(algo, instance.len());
    for it in instance.items() {
        sim.arrive_at(it.arrival, it.duration(), it.size)?;
    }
    let (replayed, result) = sim.finish();
    debug_assert_eq!(replayed.items().len(), instance.items().len());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain First-Fit over all open bins (the canonical smoke-test
    /// algorithm; the production version lives in `dbp-algos`).
    struct Ff;
    impl OnlineAlgorithm for Ff {
        fn name(&self) -> &str {
            "ff-test"
        }
        fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
            match view.first_fit(item.size) {
                Some(b) => Placement::Existing(b),
                None => Placement::OpenNew,
            }
        }
        fn reset(&mut self) {}
    }

    /// An algorithm that cheats by stuffing everything into bin 0.
    struct Stuffer;
    impl OnlineAlgorithm for Stuffer {
        fn name(&self) -> &str {
            "stuffer"
        }
        fn on_arrival(&mut self, _view: &SimView<'_>, _item: &Item) -> Placement {
            Placement::Existing(BinId(0))
        }
        fn reset(&mut self) {}
    }

    fn sz(n: u64, d: u64) -> Size {
        Size::from_ratio(n, d)
    }

    #[test]
    fn single_item_cost_is_its_duration() {
        let inst = Instance::from_triples([(Time(3), Dur(7), sz(1, 2))]).unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.cost.as_bin_ticks(), 7.0);
        assert_eq!(res.bins_opened, 1);
        assert_eq!(res.max_open, 1);
        assert_eq!(res.bin_intervals, vec![(Time(3), Time(10))]);
    }

    #[test]
    fn ff_shares_bins_and_reuses_nothing_after_close() {
        // Two half items overlap → same bin; a later item gets a NEW bin
        // because the first closed at t=10.
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 2)),
            (Time(2), Dur(5), sz(1, 2)),
            (Time(10), Dur(4), sz(1, 2)),
        ])
        .unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.assignment[0], res.assignment[1]);
        assert_ne!(res.assignment[0], res.assignment[2]);
        assert_eq!(res.bins_opened, 2);
        assert_eq!(res.cost.as_bin_ticks(), 10.0 + 4.0);
    }

    #[test]
    fn departures_processed_before_arrivals_at_same_tick() {
        // Item A occupies a full bin on [0,5); item B (full) arrives at 5.
        // A's bin closed at 5⁻, so B cannot reuse it — but crucially the
        // engine does not report max_open = 2.
        let inst =
            Instance::from_triples([(Time(0), Dur(5), Size::FULL), (Time(5), Dur(5), Size::FULL)])
                .unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.max_open, 1);
        assert_eq!(res.bins_opened, 2);
        assert_eq!(res.cost.as_bin_ticks(), 10.0);
    }

    #[test]
    fn engine_rejects_overflow_placement() {
        /// Opens one bin, then stuffs everything else into it.
        struct OverStuffer;
        impl OnlineAlgorithm for OverStuffer {
            fn name(&self) -> &str {
                "overstuffer"
            }
            fn on_arrival(&mut self, view: &SimView<'_>, _item: &Item) -> Placement {
                if view.open_count() == 0 {
                    Placement::OpenNew
                } else {
                    Placement::Existing(BinId(0))
                }
            }
            fn reset(&mut self) {}
        }
        let inst =
            Instance::from_triples([(Time(0), Dur(5), Size::FULL), (Time(1), Dur(5), sz(1, 2))])
                .unwrap();
        let err = run(&inst, OverStuffer).unwrap_err();
        assert!(matches!(err, EngineError::CapacityExceeded { .. }));
    }

    #[test]
    fn engine_rejects_placement_into_unknown_bin() {
        let inst = Instance::from_triples([(Time(0), Dur(5), sz(1, 2))]).unwrap();
        let err = run(&inst, Stuffer).unwrap_err();
        assert!(matches!(err, EngineError::BinNotOpen { .. }));
    }

    #[test]
    fn engine_rejects_placement_into_closed_bin() {
        struct ReuseFirst;
        impl OnlineAlgorithm for ReuseFirst {
            fn name(&self) -> &str {
                "reuse-first"
            }
            fn on_arrival(&mut self, view: &SimView<'_>, _item: &Item) -> Placement {
                if view.bin(BinId(0)).is_some() {
                    Placement::Existing(BinId(0))
                } else {
                    Placement::OpenNew
                }
            }
            fn reset(&mut self) {}
        }
        let inst = Instance::from_triples([
            (Time(0), Dur(2), sz(1, 2)),
            (Time(5), Dur(2), sz(1, 2)), // bin 0 closed at t=2
        ])
        .unwrap();
        let err = run(&inst, ReuseFirst).unwrap_err();
        assert!(matches!(err, EngineError::BinNotOpen { .. }));
    }

    #[test]
    fn timeline_integrates_to_cost() {
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(2, 3)),
            (Time(2), Dur(5), sz(2, 3)),
            (Time(4), Dur(9), sz(2, 3)),
            (Time(20), Dur(1), sz(1, 8)),
        ])
        .unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.cost, res.cost_from_timeline());
    }

    #[test]
    fn open_at_queries_timeline() {
        let inst =
            Instance::from_triples([(Time(0), Dur(4), Size::FULL), (Time(1), Dur(1), Size::FULL)])
                .unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.open_at(Time(0)), 1);
        assert_eq!(res.open_at(Time(1)), 2);
        assert_eq!(res.open_at(Time(2)), 1);
        assert_eq!(res.open_at(Time(4)), 0);
        assert_eq!(res.open_at(Time(100)), 0);
    }

    #[test]
    fn interactive_time_regression_rejected() {
        let mut sim = InteractiveSim::new(Ff);
        sim.arrive_at(Time(5), Dur(1), sz(1, 2)).unwrap();
        let err = sim.arrive_at(Time(3), Dur(1), sz(1, 2)).unwrap_err();
        assert!(matches!(err, EngineError::TimeRegression { .. }));
    }

    #[test]
    fn undated_arrivals_support_adaptive_departures() {
        let mut sim = InteractiveSim::new(Ff);
        sim.advance_to(Time(0));
        let (a, bin_a) = sim.arrive_undated(sz(1, 2)).unwrap();
        let (b, bin_b) = sim.arrive_undated(sz(1, 2)).unwrap();
        assert_eq!(bin_a, bin_b, "FF co-locates two halves");
        // The adversary decides AFTER seeing placements.
        sim.set_departure(a, Time(100));
        sim.set_departure(b, Time(1));
        let (inst, res) = sim.finish();
        assert_eq!(inst.item(a).departure, Time(100));
        assert_eq!(inst.item(b).departure, Time(1));
        assert_eq!(res.cost.as_bin_ticks(), 100.0, "survivor pins the bin");
        let audit = crate::assignment::audit(&inst, &res.assignment).unwrap();
        assert_eq!(audit.cost, res.cost);
    }

    #[test]
    #[should_panic(expected = "already dated")]
    fn double_dating_panics() {
        let mut sim = InteractiveSim::new(Ff);
        let (a, _) = sim.arrive_undated(sz(1, 2)).unwrap();
        sim.set_departure(a, Time(5));
        sim.set_departure(a, Time(6));
    }

    #[test]
    #[should_panic(expected = "undated items still in flight")]
    fn finish_with_undated_items_panics() {
        let mut sim = InteractiveSim::new(Ff);
        let _ = sim.arrive_undated(sz(1, 2)).unwrap();
        let _ = sim.finish();
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn dating_in_the_past_panics() {
        let mut sim = InteractiveSim::new(Ff);
        let (a, _) = sim.arrive_undated(sz(1, 2)).unwrap();
        sim.arrive_at(Time(10), Dur(1), sz(1, 4)).unwrap();
        sim.set_departure(a, Time(5));
    }

    #[test]
    fn undated_items_outlive_interleaved_dated_traffic() {
        let mut sim = InteractiveSim::new(Ff);
        let (a, _) = sim.arrive_undated(sz(1, 4)).unwrap();
        sim.arrive_at(Time(2), Dur(3), sz(1, 4)).unwrap(); // departs at 5
        sim.advance_to(Time(6));
        sim.set_departure(a, Time(9));
        let (inst, res) = sim.finish();
        assert_eq!(inst.len(), 2);
        assert_eq!(res.cost_from_timeline(), res.cost);
    }

    #[test]
    fn interactive_open_count_visible_mid_run() {
        let mut sim = InteractiveSim::new(Ff);
        sim.arrive_at(Time(0), Dur(10), Size::FULL).unwrap();
        assert_eq!(sim.open_count(), 1);
        sim.arrive_at(Time(0), Dur(10), Size::FULL).unwrap();
        assert_eq!(sim.open_count(), 2);
        sim.advance_to(Time(10));
        assert_eq!(sim.open_count(), 0);
        let (inst, res) = sim.finish();
        assert_eq!(inst.len(), 2);
        assert_eq!(res.cost.as_bin_ticks(), 20.0);
    }
}
