//! The event-driven packing simulator.
//!
//! Two front doors share one implementation:
//!
//! * [`run`] — batch mode: replay a whole [`Instance`] through an algorithm.
//! * [`InteractiveSim`] — adaptive mode: a driver (e.g. the Theorem 4.3
//!   adversary) feeds items one at a time and may inspect the open-bin
//!   count between arrivals before deciding what to release next.
//!
//! Semantics: time moves on the integer tick grid; at each moment all
//! departures are processed before any arrival (the paper's `t⁻`/`t⁺`
//! convention), bins close permanently when they empty, and the
//! MinUsageTime cost of a bin is `closed_at − opened_at`.
//!
//! Per-event cost: an arrival is O(log B) when the algorithm answers
//! through the store's capacity tournament tree (placement validation is
//! O(1)); a departure is O(1) amortized ([`BinStore`]'s position indexes).
//! [`run`] pre-reserves every per-item and per-bin table from the
//! instance size, so batch replays allocate O(1) times.
//!
//! Observability: the simulator emits a structured [`EngineEvent`] stream
//! through an [`EventSink`] type parameter (default [`NoopSink`], whose
//! empty callback compiles away) and tallies [`RunMetrics`] — arrival
//! counts, fast-path vs. scan placements, tree/heap work — returned on
//! every [`PackingResult`]. Attach [`crate::audit::InvariantAuditor`] (or
//! any sink) via [`run_with_sink`] / [`InteractiveSim::with_sink`].

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::algorithm::{OnlineAlgorithm, Placement, SimView};
use crate::bin_state::{BinId, BinStore};
use crate::cost::Area;
use crate::error::EngineError;
use crate::failure::{FailurePlan, ResilienceReport, RetryPolicy};
use crate::instance::{Instance, InstanceBuilder};
use crate::item::{Item, ItemId};
use crate::recourse::{
    Migration, RecourseBudget, RecourseCtl, RecourseEpoch, RecourseReport, RecourseView,
};
use crate::size::SizeVec;
use crate::time::{Dur, Time};
use crate::trace::{EngineEvent, EventSink, NoopSink, PlacementPath};

/// Engine-side execution counters for one run.
///
/// All counters are engine-attributed: sink callbacks that probe the bin
/// store (e.g. the invariant auditor re-running both First-Fit paths) do
/// not inflate them, because the engine accounts store queries as deltas
/// snapshotted around each algorithm decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Items submitted (each produces exactly one placement on success).
    pub arrivals: u64,
    /// Placements decided without enumerating the open list (tournament
    /// tree, O(1) rules, or unconditional `OpenNew`).
    pub fast_path_placements: u64,
    /// Placements that walked the open list at least once.
    pub scan_placements: u64,
    /// Capacity-tree First-Fit queries issued by algorithm decisions.
    pub tree_queries: u64,
    /// Linear open-list enumerations issued by algorithm decisions.
    pub linear_scans: u64,
    /// Open-list tombstone compactions over the whole run.
    pub tree_compactions: u64,
    /// Departure-heap pushes.
    pub heap_pushes: u64,
    /// Departure-heap pops.
    pub heap_pops: u64,
    /// Engine events emitted to the sink.
    pub events: u64,
}

impl RunMetrics {
    /// Fraction of placements that avoided a linear scan (1.0 when no
    /// items were placed).
    pub fn fast_path_share(&self) -> f64 {
        let placed = self.fast_path_placements + self.scan_placements;
        if placed == 0 {
            1.0
        } else {
            self.fast_path_placements as f64 / placed as f64
        }
    }
}

/// Everything measured during one packing run.
#[derive(Debug, Clone)]
pub struct PackingResult {
    /// `assignment[item.id.index()]` is the bin the item was placed in.
    pub assignment: Vec<BinId>,
    /// Total usage time `ON(σ) = Σ_bins (closed_at − opened_at)`.
    pub cost: Area,
    /// Peak number of simultaneously open bins.
    pub max_open: usize,
    /// Total number of bins ever opened.
    pub bins_opened: usize,
    /// Per-bin `(opened_at, closed_at)` intervals, indexed by `BinId`.
    pub bin_intervals: Vec<(Time, Time)>,
    /// Open-bin-count breakpoints: `(time, open_count)` at every change,
    /// recorded *after* all events at that time. Enables `∫ ON_t dt`
    /// recomputation and the Corollary 5.8 experiments.
    pub timeline: Vec<(Time, usize)>,
    /// Engine execution counters for this run.
    pub metrics: RunMetrics,
    /// Failure-side ledger: crash, displacement, re-admission and drop
    /// counts plus the degraded demand-area. All-zero (the `Default`)
    /// whenever the run used the empty [`FailurePlan`].
    pub resilience: ResilienceReport,
    /// Recourse-side ledger: voluntary migrations, migration-driven bin
    /// closures, and epochs offered. All-zero (the `Default`) whenever the
    /// run used [`RecourseBudget::None`].
    pub recourse: RecourseReport,
}

impl PackingResult {
    /// Recomputes the cost by integrating the open-bin timeline; equals
    /// [`PackingResult::cost`] by construction and is used in tests as an
    /// independent cross-check.
    pub fn cost_from_timeline(&self) -> Area {
        let mut total = Area::ZERO;
        for w in self.timeline.windows(2) {
            let dt = w[1].0.since(w[0].0);
            total += Area::from_bins_ticks(w[0].1 as u64, dt);
        }
        total
    }

    /// The number of open bins immediately after all events at time `t`
    /// (i.e. `ON_{t⁺}`). Times before the first breakpoint have zero bins.
    pub fn open_at(&self, t: Time) -> usize {
        match self.timeline.binary_search_by_key(&t, |&(s, _)| s) {
            Ok(idx) => self.timeline[idx].1,
            Err(0) => 0,
            Err(idx) => self.timeline[idx - 1].1,
        }
    }
}

/// A re-admission waiting out its backoff, ordered by `(at, parent)` so
/// the retry queue drains deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingReadmit {
    /// When the item re-enters.
    at: Time,
    /// The displaced item (raw id) this retry continues.
    parent: u32,
    /// Displacement count of the logical request (1 on first retry).
    attempt: u32,
    /// The original departure the retry still targets.
    departure: Time,
    /// Item size.
    size: SizeVec,
}

impl Ord for PendingReadmit {
    fn cmp(&self, other: &PendingReadmit) -> Ordering {
        (self.at, self.parent).cmp(&(other.at, other.parent))
    }
}

impl PartialOrd for PendingReadmit {
    fn partial_cmp(&self, other: &PendingReadmit) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One pending re-admission as exposed to external serializers (the serve
/// daemon's snapshot): everything
/// [`InteractiveSim::restore_pending_readmission`] needs to rebuild the
/// queue entry — and its dead parent row — in a fresh engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingReadmission {
    /// The displaced parent row this retry continues.
    pub parent: ItemId,
    /// The parent row's arrival.
    pub arrival: Time,
    /// When the parent was displaced (its truncated departure column).
    pub displaced_at: Time,
    /// When the retry re-enters.
    pub at: Time,
    /// Displacement count of the logical request.
    pub attempt: u32,
    /// The original departure the retry still targets.
    pub departure: Time,
    /// Item size.
    pub size: SizeVec,
}

/// The failure layer of one simulation: the plan, the retry policy, the
/// scheduled-crash and pending-re-admission queues, and the ledger. With
/// the empty plan every queue stays empty and the layer is inert — the
/// engine's output is bit-identical to a failure-free build.
struct FailureCtl {
    plan: FailurePlan,
    retry: RetryPolicy,
    /// Scheduled crashes: `(crash time, bin id)`.
    crashes: BinaryHeap<Reverse<(Time, u32)>>,
    /// Displaced items waiting out their backoff.
    readmits: BinaryHeap<Reverse<PendingReadmit>>,
    /// Displacement count per item id, indexed by raw id (ids are dense;
    /// the vector is grown lazily, so failure-free runs never touch it).
    /// Zero = never displaced; clones inherit their creation attempt so
    /// backoff compounds.
    attempts: Vec<u32>,
    /// Reusable buffer for the residents of a crashing bin, so repeated
    /// crashes drain through one warm allocation.
    crash_scratch: Vec<u32>,
    /// Seeded fate draws for a freshly-opened bin use
    /// `BinId(bin + fate_offset)` — zero except in restored sessions,
    /// where it re-aligns the renumbered bins with the fate sequence of
    /// the uninterrupted run (see [`InteractiveSim::set_fate_offset`]).
    fate_offset: u32,
    report: ResilienceReport,
}

impl FailureCtl {
    fn new(plan: FailurePlan, retry: RetryPolicy) -> FailureCtl {
        let mut crashes = BinaryHeap::new();
        if let FailurePlan::Scripted(schedule) = &plan {
            for &(at, bin) in schedule {
                crashes.push(Reverse((at, bin.0)));
            }
        }
        FailureCtl {
            plan,
            retry,
            crashes,
            readmits: BinaryHeap::new(),
            attempts: Vec::new(),
            crash_scratch: Vec::new(),
            fate_offset: 0,
            report: ResilienceReport::default(),
        }
    }

    /// The displacement count recorded for raw item id `i`.
    #[inline]
    fn attempts_of(&self, i: u32) -> u32 {
        self.attempts.get(i as usize).copied().unwrap_or(0)
    }

    /// Records `attempt` as raw item id `i`'s displacement count.
    fn set_attempts(&mut self, i: u32, attempt: u32) {
        let idx = i as usize;
        if self.attempts.len() <= idx {
            self.attempts.resize(idx + 1, 0);
        }
        self.attempts[idx] = attempt;
    }
}

/// Struct-of-arrays item state: the engine's per-item columns, parallel to
/// the assignment vector. The drain loops touch exactly one column per
/// check (a departure-staleness test reads only `departures`), so the hot
/// path streams over dense `u64`s instead of striding across whole
/// [`Item`] records.
struct ItemTable {
    arrivals: Vec<Time>,
    departures: Vec<Time>,
    sizes: Vec<SizeVec>,
}

/// Checked `usize → u32` for item-table row indices. Rows, heap entries
/// and compaction remaps are keyed by `u32`; a table past `u32::MAX` rows
/// must fail loudly here rather than silently truncate an id.
#[inline]
fn row_id(i: usize) -> u32 {
    u32::try_from(i).expect("item table exceeds u32::MAX rows")
}

impl ItemTable {
    fn with_capacity(n: usize) -> ItemTable {
        ItemTable {
            arrivals: Vec::with_capacity(n),
            departures: Vec::with_capacity(n),
            sizes: Vec::with_capacity(n),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.arrivals.len()
    }

    fn push(&mut self, item: Item) {
        self.arrivals.push(item.arrival);
        self.departures.push(item.departure);
        self.sizes.push(item.size);
    }

    /// Materializes the row as an [`Item`] (for algorithm callbacks).
    #[inline]
    fn get(&self, i: u32) -> Item {
        let idx = i as usize;
        Item::new(
            ItemId(i),
            self.arrivals[idx],
            self.departures[idx],
            self.sizes[idx],
        )
    }
}

/// An in-flight simulation accepting items one at a time.
///
/// The second type parameter is the attached [`EventSink`]; it defaults to
/// [`NoopSink`], so plain `InteractiveSim<A>` is the silent (zero-cost)
/// simulator. To inspect a sink after [`InteractiveSim::finish`] consumes
/// the sim, attach it by mutable reference (`&mut S` implements
/// [`EventSink`]).
pub struct InteractiveSim<A: OnlineAlgorithm, S: EventSink = NoopSink> {
    algo: A,
    bins: BinStore,
    now: Time,
    started: bool,
    /// Pending departures: `(departure, item index)`. An entry is *stale*
    /// (and skipped on pop) when the item's departure column no longer
    /// matches its queued time — displacement truncates the column, which
    /// acts as the entry's generation check.
    departures: BinaryHeap<Reverse<(Time, u32)>>,
    items: ItemTable,
    assignment: Vec<BinId>,
    cost: Area,
    max_open: usize,
    timeline: Vec<(Time, usize)>,
    undated: usize,
    /// Items currently resident in a bin (arrived, not yet departed or
    /// displaced). Drives the daemon's compaction policy.
    resident: usize,
    sink: S,
    metrics: RunMetrics,
    failures: FailureCtl,
    recourse: RecourseCtl,
}

impl<A: OnlineAlgorithm> InteractiveSim<A> {
    /// Starts a simulation driving `algo`. The algorithm is reset first.
    pub fn new(algo: A) -> InteractiveSim<A> {
        InteractiveSim::with_capacity(algo, 0)
    }

    /// Starts a simulation pre-reserving space for `items` items (and as
    /// many bins — the worst case opens one per item). Behaviour is
    /// identical to [`InteractiveSim::new`]; runs within the estimate just
    /// never reallocate their bookkeeping or rebuild the placement tree.
    pub fn with_capacity(algo: A, items: usize) -> InteractiveSim<A> {
        InteractiveSim::with_capacity_and_sink(algo, items, NoopSink)
    }

    /// Starts a simulation with fault injection: bins crash per `plan`,
    /// and displaced items are re-admitted under `retry` (see
    /// [`crate::failure`]). With [`FailurePlan::none`] this is exactly
    /// [`InteractiveSim::new`].
    pub fn with_failures(algo: A, plan: FailurePlan, retry: RetryPolicy) -> InteractiveSim<A> {
        InteractiveSim::with_capacity_failures_and_sink(algo, 0, plan, retry, NoopSink)
    }
}

impl<A: OnlineAlgorithm, S: EventSink> InteractiveSim<A, S> {
    /// Starts a simulation driving `algo` with `sink` attached to the
    /// engine event stream.
    pub fn with_sink(algo: A, sink: S) -> InteractiveSim<A, S> {
        InteractiveSim::with_capacity_and_sink(algo, 0, sink)
    }

    /// [`InteractiveSim::with_capacity`] plus an attached sink.
    pub fn with_capacity_and_sink(algo: A, items: usize, sink: S) -> InteractiveSim<A, S> {
        InteractiveSim::with_capacity_failures_and_sink(
            algo,
            items,
            FailurePlan::None,
            RetryPolicy::Immediate,
            sink,
        )
    }

    /// The fully-general constructor: capacity hint, failure plan, retry
    /// policy and event sink.
    pub fn with_capacity_failures_and_sink(
        mut algo: A,
        items: usize,
        plan: FailurePlan,
        retry: RetryPolicy,
        sink: S,
    ) -> InteractiveSim<A, S> {
        algo.reset();
        InteractiveSim {
            algo,
            bins: BinStore::with_capacity(items, items),
            now: Time::ZERO,
            started: false,
            departures: BinaryHeap::with_capacity(items),
            items: ItemTable::with_capacity(items),
            assignment: Vec::with_capacity(items),
            cost: Area::ZERO,
            max_open: 0,
            // One breakpoint per open plus one per close bounds the
            // timeline at 2·items + 1 entries; reserving it up front keeps
            // the steady-state loop free of growth reallocations.
            timeline: Vec::with_capacity(if items > 0 { 2 * items + 1 } else { 0 }),
            undated: 0,
            resident: 0,
            sink,
            metrics: RunMetrics::default(),
            failures: FailureCtl::new(plan, retry),
            recourse: RecourseCtl::new(RecourseBudget::None),
        }
    }

    /// Arms a recourse budget (builder form): at every arrival/departure
    /// epoch the algorithm's `propose_migration` hook may move resident
    /// items within the budget (see [`crate::recourse`]). The default is
    /// [`RecourseBudget::None`], under which the hook is never consulted
    /// and the engine's output is bit-identical to a recourse-free build.
    pub fn with_recourse(mut self, budget: RecourseBudget) -> InteractiveSim<A, S> {
        self.set_recourse(budget);
        self
    }

    /// Swaps the recourse budget mid-run (the serve daemon re-arms after a
    /// muted snapshot replay). Amortized credit restarts from zero —
    /// conservative: a restored session can never out-spend an
    /// uninterrupted one — while the ledger is preserved.
    pub fn set_recourse(&mut self, budget: RecourseBudget) {
        self.recourse.set_budget(budget);
    }

    /// The recourse ledger accumulated so far (finalized copies land on
    /// [`PackingResult::recourse`]).
    #[inline]
    pub fn recourse(&self) -> &RecourseReport {
        &self.recourse.report
    }

    /// The current simulation clock.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of currently open bins (what the Theorem 4.3 adversary
    /// watches).
    #[inline]
    pub fn open_count(&self) -> usize {
        self.bins.open_count()
    }

    /// Total bins opened so far.
    #[inline]
    pub fn bins_opened(&self) -> usize {
        self.bins.total_opened()
    }

    /// Read-only view of the bins (for drivers that render figures).
    #[inline]
    pub fn bins(&self) -> &BinStore {
        &self.bins
    }

    /// The driven algorithm.
    #[inline]
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// The execution counters accumulated so far (finalized copies land on
    /// [`PackingResult::metrics`]).
    #[inline]
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The failure-side ledger accumulated so far.
    #[inline]
    pub fn resilience(&self) -> &ResilienceReport {
        &self.failures.report
    }

    /// Usage cost of all bins *closed* so far (open bins bill on close).
    #[inline]
    pub fn cost_so_far(&self) -> Area {
        self.cost
    }

    /// Items currently resident in a bin (arrived, not departed/displaced).
    #[inline]
    pub fn resident_items(&self) -> usize {
        self.resident
    }

    /// Peak simultaneously-open bin count so far (the quantity
    /// [`PackingResult::max_open`] reports at the end of a batch run).
    #[inline]
    pub fn max_open(&self) -> usize {
        self.max_open
    }

    /// Rows in the item table — the quantity [`InteractiveSim::compact`]
    /// bounds. Grows by one per arrival/re-admission, shrinks on compaction.
    #[inline]
    pub fn table_len(&self) -> usize {
        self.items.len()
    }

    /// Mutable access to the attached sink (e.g. to drain a buffer the
    /// sink filled during the last call).
    #[inline]
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Read-only access to the attached sink.
    #[inline]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Displaced items currently waiting out their re-admission backoff.
    /// Serializers (the serve daemon's snapshot) use this to detect
    /// in-flight failure state a snapshot cannot carry.
    #[inline]
    pub fn pending_readmissions(&self) -> usize {
        self.failures.readmits.len()
    }

    /// The pending re-admissions, sorted in drain order `(at, parent)`.
    /// Each entry carries exactly the fields
    /// [`InteractiveSim::restore_pending_readmission`] takes, so
    /// serializers can round-trip the retry queue across a restart.
    pub fn pending_readmit_entries(&self) -> Vec<PendingReadmission> {
        let mut entries: Vec<PendingReadmission> = self
            .failures
            .readmits
            .iter()
            .map(|Reverse(p)| {
                let idx = p.parent as usize;
                PendingReadmission {
                    parent: ItemId(p.parent),
                    arrival: self.items.arrivals[idx],
                    displaced_at: self.items.departures[idx],
                    at: p.at,
                    attempt: p.attempt,
                    departure: p.departure,
                    size: p.size,
                }
            })
            .collect();
        entries.sort_unstable_by_key(|e| (e.at, e.parent.0));
        entries
    }

    /// Re-injects a pending re-admission recorded by an external
    /// serializer: creates a dead *parent* row for the displaced item —
    /// arrival and size as recorded, departure truncated at `displaced_at`
    /// exactly as the crash left it — and queues the retry at `at`, so the
    /// forthcoming [`EngineEvent::ItemReadmitted`] names a real row and
    /// the shared relocation drain replays it like the original engine
    /// would have. Returns the parent row's id.
    ///
    /// The parent row is not resident anywhere; its assignment slot holds
    /// a placeholder that is never dereferenced (dead rows have no heap
    /// entry and no bin membership).
    ///
    /// # Panics
    /// Panics unless `arrival < displaced_at ≤ now ≤ at < departure` — any
    /// other shape could not have come out of a real crash.
    pub fn restore_pending_readmission(
        &mut self,
        arrival: Time,
        displaced_at: Time,
        at: Time,
        attempt: u32,
        departure: Time,
        size: impl Into<SizeVec>,
    ) -> ItemId {
        let size = size.into();
        assert!(
            arrival < displaced_at && displaced_at <= self.now && self.now <= at && at < departure,
            "restored re-admission violates arrival < displaced ≤ now ≤ retry < departure"
        );
        let id = ItemId(u32::try_from(self.items.len()).expect("too many items"));
        self.items.push(Item::new(id, arrival, displaced_at, size));
        self.assignment.push(BinId(u32::MAX));
        // The pending entry itself carries `attempt`; the dead parent row's
        // own counter is never read again (it cannot be crashed twice).
        self.failures.readmits.push(Reverse(PendingReadmit {
            at,
            parent: id.0,
            attempt,
            departure,
            size,
        }));
        id
    }

    /// Pending scheduled crashes as `(bin, crash time)`, in firing order.
    /// Snapshotting drivers serialize these so seeded dooms survive a
    /// restart instead of being re-drawn under the restored numbering.
    pub fn pending_dooms(&self) -> Vec<(BinId, Time)> {
        let mut out: Vec<(BinId, Time)> = self
            .failures
            .crashes
            .iter()
            .map(|&Reverse((at, bin))| (BinId(bin), at))
            .collect();
        out.sort_unstable_by_key(|&(bin, at)| (at, bin.0));
        out
    }

    /// Drops every scheduled crash. Restore-support: a muted snapshot
    /// replay re-draws fates for reopened bins under their *new* ids; the
    /// driver clears those draws and re-arms the recorded dooms through
    /// [`InteractiveSim::schedule_crash`].
    pub fn clear_crash_schedule(&mut self) {
        self.failures.crashes.clear();
    }

    /// Schedules `bin` to crash at `at` (the re-arming counterpart of
    /// [`InteractiveSim::clear_crash_schedule`]).
    pub fn schedule_crash(&mut self, bin: BinId, at: Time) {
        self.failures.crashes.push(Reverse((at, bin.0)));
    }

    /// Offsets seeded fate draws: a freshly-opened bin `b` draws the fate
    /// of `BinId(b.0 + offset)`. Restore sets this to (bins the session
    /// chain had ever opened) − (bins reopened by the replay), so fresh
    /// bins after a restart draw exactly the fates their counterparts in
    /// the uninterrupted run would have drawn.
    pub fn set_fate_offset(&mut self, offset: u32) {
        self.failures.fate_offset = offset;
    }

    /// The current seeded-fate id offset (see
    /// [`InteractiveSim::set_fate_offset`]).
    pub fn fate_offset(&self) -> u32 {
        self.failures.fate_offset
    }

    /// The live items: `(id, item, bin)` for every resident row, in id
    /// order. Undated items report the `Time(u64::MAX)` placeholder.
    pub fn live_items(&self) -> impl Iterator<Item = (ItemId, Item, BinId)> + '_ {
        (0..row_id(self.items.len())).filter_map(move |i| {
            let dep = self.items.departures[i as usize];
            (dep > self.now).then(|| (ItemId(i), self.items.get(i), self.assignment[i as usize]))
        })
    }

    /// Drains every remaining departure (and scheduled crash /
    /// re-admission) without consuming the simulator or emitting a
    /// `ClockAdvanced` — exactly the terminal drain [`InteractiveSim::finish`]
    /// performs, exposed for drivers (the serve daemon) that need the final
    /// counters but not the replayed [`Instance`].
    pub fn drain_remaining(&mut self) -> Result<(), EngineError> {
        self.process_departures_up_to(Time(u64::MAX))
    }

    /// Compacts the item table: drops every row that is neither resident
    /// (departure in the future, or undated) nor referenced as the parent
    /// of a pending re-admission, renumbering the survivors densely in
    /// their original order. Returns `retained`, where `retained[new]` is
    /// the old id of the row now at index `new`; the same mapping is pushed
    /// to the algorithm and the sink via their `on_compact` hooks before
    /// this returns.
    ///
    /// All engine state is rewritten consistently (departure/re-admission
    /// queues, per-bin resident lists, attempt counters); stale
    /// departure-heap entries discarded here are accounted as heap pops, so
    /// final [`RunMetrics`] match an uncompacted run bit-for-bit. The
    /// open-bin timeline is truncated to its last breakpoint — long-running
    /// daemons cannot afford one entry per event — so
    /// [`PackingResult::cost_from_timeline`] only covers the tail after the
    /// last compaction. Outstanding [`ItemId`]s held by the caller are
    /// invalidated (translate them through `retained`); whole-run mirrors
    /// like the invariant auditor are incompatible with compaction.
    pub fn compact(&mut self) -> Vec<ItemId> {
        let old_len = self.items.len();
        let mut keep = vec![false; old_len];
        for (i, k) in keep.iter_mut().enumerate() {
            *k = self.items.departures[i] > self.now;
        }
        // Parent rows of pending re-admissions stay, so the forthcoming
        // `ItemReadmitted { original }` still names a translatable row.
        for Reverse(p) in self.failures.readmits.iter() {
            keep[p.parent as usize] = true;
        }
        let mut old_to_new = vec![u32::MAX; old_len];
        let mut retained = Vec::new();
        for (i, &k) in keep.iter().enumerate() {
            if k {
                old_to_new[i] = row_id(retained.len());
                retained.push(ItemId(row_id(i)));
            }
        }
        if retained.len() == old_len {
            // Nothing to drop; skip the rewrite (hooks still fire so
            // callers can treat every compact() uniformly).
            self.algo.on_compact(&retained, old_len);
            self.sink.on_compact(&retained, old_len);
            return retained;
        }
        // Columns + assignment: in-place dense retain, preserving order
        // (ids must stay in (arrival, submission) order).
        for (new, &ItemId(old)) in retained.iter().enumerate() {
            let old = old as usize;
            self.items.arrivals[new] = self.items.arrivals[old];
            self.items.departures[new] = self.items.departures[old];
            self.items.sizes[new] = self.items.sizes[old];
            self.assignment[new] = self.assignment[old];
        }
        self.items.arrivals.truncate(retained.len());
        self.items.departures.truncate(retained.len());
        self.items.sizes.truncate(retained.len());
        self.assignment.truncate(retained.len());
        // Departure heap: re-key live entries, discard the rest. A stale
        // entry (queued departure no longer matching its row's column, or
        // a dead row) would have been popped-and-skipped eventually; count
        // it as popped now so final metrics match the lazy path.
        let old_heap = std::mem::take(&mut self.departures);
        let mut rebuilt = BinaryHeap::with_capacity(old_heap.len());
        for Reverse((dep, idx)) in old_heap.into_iter() {
            let new = old_to_new[idx as usize];
            if new != u32::MAX && self.items.departures[new as usize] == dep {
                rebuilt.push(Reverse((dep, new)));
            } else {
                self.metrics.heap_pops += 1;
            }
        }
        self.departures = rebuilt;
        // Re-admission queue: re-key parents. The remap is monotone, so
        // the (at, parent) drain order is unchanged.
        let old_readmits = std::mem::take(&mut self.failures.readmits);
        let mut readmits = BinaryHeap::with_capacity(old_readmits.len());
        for Reverse(mut p) in old_readmits.into_iter() {
            p.parent = old_to_new[p.parent as usize];
            debug_assert!(p.parent != u32::MAX, "parents were kept above");
            readmits.push(Reverse(p));
        }
        self.failures.readmits = readmits;
        // Attempt counters follow their rows.
        if !self.failures.attempts.is_empty() {
            let old_attempts = std::mem::take(&mut self.failures.attempts);
            self.failures.attempts = retained
                .iter()
                .map(|&ItemId(old)| old_attempts.get(old as usize).copied().unwrap_or(0))
                .collect();
        }
        // Per-bin resident lists and the item position index.
        self.bins.remap_items(&old_to_new, retained.len());
        // Timeline: keep only the last breakpoint so the
        // `record_open_count_at` dedup still sees it.
        if self.timeline.len() > 1 {
            let last = *self.timeline.last().expect("checked non-empty");
            self.timeline.clear();
            self.timeline.push(last);
        }
        self.algo.on_compact(&retained, old_len);
        self.sink.on_compact(&retained, old_len);
        retained
    }

    /// Compacts the bin store: reclaims every closed bin's record and
    /// renumbers the surviving open bins densely (opening order
    /// preserved), bounding per-bin memory by the number of *open* bins
    /// instead of the number ever opened. Returns `old_to_new`, where
    /// `old_to_new[old.index()]` is the survivor's new id and
    /// `BinId(u32::MAX)` marks a reclaimed record; the same mapping is
    /// pushed to the algorithm and the sink via their `on_bin_compact`
    /// hooks before this returns.
    ///
    /// All engine state is rewritten consistently: the per-item assignment
    /// column (rows whose bin was reclaimed — departed or displaced rows —
    /// keep a placeholder the engine never dereferences), the
    /// scheduled-crash queue (dooms naming reclaimed bins were already
    /// no-ops and are discarded), and the seeded-fate offset — it grows by
    /// the reclaimed count, so fresh bins keep drawing the fates their
    /// ordinals in the uncompacted run would have and a seeded-chaos run
    /// stays bit-identical with or without bin compaction.
    /// [`InteractiveSim::bins_opened`] keeps counting the whole run. Same
    /// caveats as [`InteractiveSim::compact`]: outstanding [`BinId`]s held
    /// by the caller are invalidated (translate them through the returned
    /// map), and whole-run mirrors — the invariant auditor,
    /// [`InteractiveSim::finish`]'s per-bin interval report — are
    /// incompatible with compaction.
    pub fn compact_bins(&mut self) -> Vec<BinId> {
        let old_to_new = self.bins.compact_bins();
        let new_len = self.bins.all().len();
        let dropped = old_to_new.len() - new_len;
        if dropped > 0 {
            for slot in &mut self.assignment {
                *slot = old_to_new
                    .get(slot.index())
                    .copied()
                    .unwrap_or(BinId(u32::MAX));
            }
            let old_crashes = std::mem::take(&mut self.failures.crashes);
            let mut crashes = BinaryHeap::with_capacity(old_crashes.len());
            for Reverse((at, bin)) in old_crashes.into_iter() {
                let new = old_to_new[bin as usize];
                if new != BinId(u32::MAX) {
                    crashes.push(Reverse((at, new.0)));
                }
            }
            self.failures.crashes = crashes;
            self.failures.fate_offset = self
                .failures
                .fate_offset
                .checked_add(u32::try_from(dropped).expect("reclaimed bins exceed u32"))
                .expect("fate offset overflows u32");
        }
        self.algo.on_bin_compact(&old_to_new, new_len);
        self.sink.on_bin_compact(&old_to_new, &self.bins);
        old_to_new
    }

    /// Renumbers every item row by the given permutation without dropping
    /// any: `order[new]` is the old id of the row now at index `new`.
    ///
    /// Same-tick departures drain in row-id order (the heap key is
    /// `(departure, row)`), so a caller that admitted rows out of their
    /// logical order — snapshot restore replays items grouped by bin to
    /// reproduce bin ids — uses this to put the table back into the order
    /// the uninterrupted run would have, making subsequent tie-breaks
    /// bit-identical. All engine state is rewritten consistently and the
    /// mapping is pushed to the algorithm and sink via `on_compact`, with
    /// the same caveats as [`InteractiveSim::compact`]: outstanding
    /// [`ItemId`]s are invalidated, and whole-run mirrors are
    /// incompatible. The re-admission queue's same-tick drain order is
    /// keyed by parent row, so call this before enqueuing re-admissions
    /// whose relative order matters.
    pub fn permute_rows(&mut self, order: &[ItemId]) {
        let old_len = self.items.len();
        assert_eq!(order.len(), old_len, "order must cover every row");
        let mut old_to_new = vec![u32::MAX; old_len];
        for (new, &ItemId(old)) in order.iter().enumerate() {
            let slot = &mut old_to_new[old as usize];
            assert_eq!(*slot, u32::MAX, "duplicate row in permutation");
            *slot = row_id(new);
        }
        let pick = |col: &[Time]| order.iter().map(|&ItemId(o)| col[o as usize]).collect();
        self.items.arrivals = pick(&self.items.arrivals);
        self.items.departures = pick(&self.items.departures);
        self.items.sizes = order
            .iter()
            .map(|&ItemId(o)| self.items.sizes[o as usize])
            .collect();
        self.assignment = order
            .iter()
            .map(|&ItemId(o)| self.assignment[o as usize])
            .collect();
        let old_heap = std::mem::take(&mut self.departures);
        let mut rebuilt = BinaryHeap::with_capacity(old_heap.len());
        for Reverse((dep, idx)) in old_heap.into_iter() {
            let new = old_to_new[idx as usize];
            if self.items.departures[new as usize] == dep {
                rebuilt.push(Reverse((dep, new)));
            } else {
                // Stale entry (column truncated by displacement): popped
                // now instead of lazily later, exactly like `compact`.
                self.metrics.heap_pops += 1;
            }
        }
        self.departures = rebuilt;
        let old_readmits = std::mem::take(&mut self.failures.readmits);
        let mut readmits = BinaryHeap::with_capacity(old_readmits.len());
        for Reverse(mut p) in old_readmits.into_iter() {
            p.parent = old_to_new[p.parent as usize];
            readmits.push(Reverse(p));
        }
        self.failures.readmits = readmits;
        if !self.failures.attempts.is_empty() {
            let old_attempts = std::mem::take(&mut self.failures.attempts);
            self.failures.attempts = order
                .iter()
                .map(|&ItemId(o)| old_attempts.get(o as usize).copied().unwrap_or(0))
                .collect();
        }
        self.bins.remap_items(&old_to_new, old_len);
        self.algo.on_compact(order, old_len);
        self.sink.on_compact(order, old_len);
    }

    /// Emits an engine event to the attached sink.
    fn emit(&mut self, event: EngineEvent) {
        self.metrics.events += 1;
        self.sink.on_event(&event, &self.bins);
    }

    /// Advances the clock to `t`, processing all departures with
    /// `departure ≤ t`.
    ///
    /// # Panics
    /// Panics if `t` is in the past; [`InteractiveSim::try_advance_to`] is
    /// the fallible equivalent.
    pub fn advance_to(&mut self, t: Time) {
        if let Err(e) = self.try_advance_to(t) {
            panic!("{e}");
        }
    }

    /// Advances the clock to `t`, processing all departures with
    /// `departure ≤ t`; rejects a past `t` with
    /// [`EngineError::ClockRegression`] instead of panicking (the
    /// `Result`-based twin of [`InteractiveSim::advance_to`], matching how
    /// [`InteractiveSim::arrive_at`] reports regressions).
    pub fn try_advance_to(&mut self, t: Time) -> Result<(), EngineError> {
        if self.started && t < self.now {
            return Err(EngineError::ClockRegression {
                now: self.now,
                to: t,
            });
        }
        let from = self.now;
        self.process_departures_up_to(t)?;
        self.now = self.now.max(t);
        self.started = true;
        if self.now > from {
            self.emit(EngineEvent::ClockAdvanced { from, to: self.now });
        }
        Ok(())
    }

    /// Submits an item arriving *now* and returns the bin it was placed in.
    pub fn arrive(&mut self, dur: Dur, size: impl Into<SizeVec>) -> Result<BinId, EngineError> {
        let arrival = self.now;
        self.arrive_at(arrival, dur, size)
    }

    /// Submits an item arriving *now* whose departure is not yet decided —
    /// the non-clairvoyant adaptive-adversary interface: the driver may
    /// watch where the item lands and only then choose its departure via
    /// [`InteractiveSim::set_departure`].
    ///
    /// The algorithm sees a placeholder departure in the far future
    /// (`Time(u64::MAX)`), so this entry point is only meaningful for
    /// algorithms that do not read departures (the non-clairvoyant
    /// family); a clairvoyant algorithm would be reacting to the
    /// placeholder. Every undated item must be dated before
    /// [`InteractiveSim::finish`].
    pub fn arrive_undated(
        &mut self,
        size: impl Into<SizeVec>,
    ) -> Result<(ItemId, BinId), EngineError> {
        let size = size.into();
        let arrival = self.now;
        self.try_advance_to(arrival)?;
        // Allocated after the drain: re-admission clones take slots too.
        let id = ItemId(u32::try_from(self.items.len()).expect("too many items"));
        self.metrics.arrivals += 1;
        self.emit(EngineEvent::Arrival {
            item: id,
            at: arrival,
            size,
            departure: None,
        });
        let item = Item::new(id, arrival, Time(u64::MAX), size);
        let bin = self.place(item)?;
        self.items.push(item);
        self.assignment.push(bin);
        self.undated += 1;
        self.recourse_epoch(RecourseEpoch::Arrival)?;
        // No departure queued yet: set_departure will queue it.
        Ok((id, bin))
    }

    /// Fixes the departure time of an item submitted via
    /// [`InteractiveSim::arrive_undated`]. `at` must not be in the past
    /// and the item must still be undated.
    ///
    /// # Panics
    /// Panics if the item is unknown, already dated, or `at` is in the past
    /// or `≤ arrival`; [`InteractiveSim::try_set_departure`] is the
    /// fallible equivalent.
    pub fn set_departure(&mut self, item: ItemId, at: Time) {
        if let Err(e) = self.try_set_departure(item, at) {
            panic!("{e}");
        }
    }

    /// Fixes the departure time of an undated item, rejecting illegal
    /// requests with a typed error instead of panicking: unknown or
    /// already-dated items yield [`EngineError::NotUndated`]; a time in the
    /// past or not strictly after the arrival yields
    /// [`EngineError::BadDeparture`].
    pub fn try_set_departure(&mut self, item: ItemId, at: Time) -> Result<(), EngineError> {
        let now = self.now;
        let idx = item.index();
        if idx >= self.items.len() || self.items.departures[idx] != Time(u64::MAX) {
            return Err(EngineError::NotUndated { item });
        }
        if at < now || at <= self.items.arrivals[idx] {
            return Err(EngineError::BadDeparture { item, at, now });
        }
        self.items.departures[idx] = at;
        self.departures.push(Reverse((at, item.0)));
        self.metrics.heap_pushes += 1;
        self.undated -= 1;
        Ok(())
    }

    /// Submits an item arriving at `arrival ≥ now` (advancing the clock),
    /// active for `dur`.
    pub fn arrive_at(
        &mut self,
        arrival: Time,
        dur: Dur,
        size: impl Into<SizeVec>,
    ) -> Result<BinId, EngineError> {
        let size = size.into();
        if self.started && arrival < self.now {
            return Err(EngineError::TimeRegression {
                item: ItemId(u32::try_from(self.items.len()).expect("too many items")),
                now: self.now,
                arrival,
            });
        }
        self.try_advance_to(arrival)?;
        // The id is allocated only after the drain: advancing the clock can
        // re-admit displaced items, and each clone takes the next slot.
        let id = ItemId(u32::try_from(self.items.len()).expect("too many items"));
        let item = Item::new(id, arrival, arrival + dur, size);
        self.metrics.arrivals += 1;
        self.emit(EngineEvent::Arrival {
            item: id,
            at: arrival,
            size,
            departure: Some(item.departure),
        });
        let bin = self.place(item)?;
        self.items.push(item);
        self.assignment.push(bin);
        self.departures.push(Reverse((item.departure, id.0)));
        self.metrics.heap_pushes += 1;
        self.recourse_epoch(RecourseEpoch::Arrival)?;
        Ok(bin)
    }

    /// Asks the algorithm for a placement and validates it.
    fn place(&mut self, item: Item) -> Result<BinId, EngineError> {
        let id = item.id;
        let size = item.size;
        // Snapshot the store's query counters around the decision so the
        // deltas attribute exactly this algorithm call — sink probes after
        // emission (e.g. the auditor re-running First-Fit) stay excluded.
        let (tree_before, linear_before) = self.bins.query_counters();
        let placement = {
            let view = SimView::new(self.now, &self.bins);
            self.algo.on_arrival(&view, &item)
        };
        let (tree_after, linear_after) = self.bins.query_counters();
        let tree_delta = tree_after - tree_before;
        let linear_delta = linear_after - linear_before;
        self.metrics.tree_queries += tree_delta;
        self.metrics.linear_scans += linear_delta;
        let via = if linear_delta > 0 {
            PlacementPath::Scan
        } else {
            PlacementPath::FastPath
        };
        let bin = match placement {
            Placement::Existing(b) => {
                let rec = self.bins.record(b);
                match rec {
                    None => {
                        return Err(EngineError::BinNotOpen {
                            item: id,
                            bin: b,
                            at: self.now,
                        })
                    }
                    Some(r) if !r.is_open() => {
                        return Err(EngineError::BinNotOpen {
                            item: id,
                            bin: b,
                            at: self.now,
                        })
                    }
                    Some(r) if !r.fits(size) => {
                        return Err(EngineError::CapacityExceeded {
                            item: id,
                            bin: b,
                            at: self.now,
                        })
                    }
                    Some(_) => b,
                }
            }
            Placement::OpenNew => {
                let b = self.bins.open(self.now);
                // Seeded fault injection: a freshly-opened bin draws its
                // fate here (a no-op match for the empty plan). The draw
                // is keyed by the offset id so restored sessions continue
                // the uninterrupted run's fate sequence.
                let fate_bin = BinId(
                    b.0.checked_add(self.failures.fate_offset)
                        .expect("bin id plus fate offset overflows u32"),
                );
                if let Some(crash) = self.failures.plan.crash_time(fate_bin, self.now) {
                    self.failures.crashes.push(Reverse((crash, b.0)));
                }
                self.record_open_count();
                self.emit(EngineEvent::BinOpened {
                    bin: b,
                    at: self.now,
                });
                b
            }
        };
        let opened = matches!(placement, Placement::OpenNew);
        self.bins.add(bin, id, size);
        match via {
            PlacementPath::FastPath => self.metrics.fast_path_placements += 1,
            PlacementPath::Scan => self.metrics.scan_placements += 1,
        }
        let load_after = self.bins.record(bin).expect("bin just used").load;
        self.resident += 1;
        self.emit(EngineEvent::Placed {
            item: id,
            at: self.now,
            bin,
            opened,
            via,
            load_after,
        });
        Ok(bin)
    }

    /// Drains all remaining departures and returns the instance that was
    /// actually played plus the measurements.
    pub fn finish(mut self) -> (Instance, PackingResult) {
        assert_eq!(
            self.undated, 0,
            "finish() with undated items still in flight"
        );
        if let Err(e) = self.process_departures_up_to(Time(u64::MAX)) {
            panic!("illegal re-admission placement while draining: {e}");
        }
        debug_assert_eq!(self.bins.open_count(), 0, "all bins close at the end");
        let mut builder = InstanceBuilder::with_capacity(self.items.len());
        for i in 0..self.items.len() {
            builder.push_interval(
                self.items.arrivals[i],
                self.items.departures[i],
                self.items.sizes[i],
            );
        }
        let instance = builder.build().expect("engine-built items are valid");
        // Items were pushed in (arrival, submission) order — re-admission
        // clones included, since they are created while the clock advances
        // toward the next arrival — so the stable sort in `build` keeps
        // ids aligned with our assignment vector.
        let bin_intervals = self
            .bins
            .all()
            .iter()
            .map(|r| (r.opened_at, r.closed_at.expect("all closed")))
            .collect();
        self.metrics.tree_compactions = self.bins.compactions();
        let result = PackingResult {
            assignment: self.assignment,
            cost: self.cost,
            max_open: self.max_open,
            bins_opened: self.bins.total_opened(),
            bin_intervals,
            timeline: self.timeline,
            metrics: self.metrics,
            resilience: self.failures.report,
            recourse: self.recourse.report,
        };
        (instance, result)
    }

    /// Drains, in time order, every pending departure, scheduled bin
    /// crash, and backoff-expired re-admission stamped `≤ t`. Ties at one
    /// moment resolve departures → crashes → re-admissions: a crash at `t`
    /// sees the post-departure state (the `t⁻`/`t⁺` convention extended),
    /// and a re-admission lands at `t⁺` like any fresh arrival.
    ///
    /// With the empty [`FailurePlan`] both failure queues stay empty and
    /// this loop is exactly the classic departure drain — bit-identical
    /// output, the §11 safety net.
    fn process_departures_up_to(&mut self, t: Time) -> Result<(), EngineError> {
        loop {
            let dep_t = self.departures.peek().map(|&Reverse((d, _))| d);
            let crash_t = self.failures.crashes.peek().map(|&Reverse((d, _))| d);
            let re_t = self.failures.readmits.peek().map(|Reverse(p)| p.at);
            let Some(next) = [dep_t, crash_t, re_t].into_iter().flatten().min() else {
                break;
            };
            if next > t {
                break;
            }
            if dep_t == Some(next) {
                self.pop_departure()?;
            } else if crash_t == Some(next) {
                self.pop_crash();
            } else {
                self.pop_readmit()?;
            }
        }
        Ok(())
    }

    /// Processes the earliest pending departure (stale entries for items
    /// displaced after queuing are skipped). A real departure opens a
    /// recourse epoch, which can fail on an illegal migration proposal.
    fn pop_departure(&mut self) -> Result<(), EngineError> {
        let Reverse((dep, idx)) = self.departures.pop().expect("peeked before pop");
        self.metrics.heap_pops += 1;
        if self.items.departures[idx as usize] != dep {
            // Generation check: displacement truncated the departure
            // column after this entry was queued, marking it stale. One
            // column load decides — the full record is never touched; the
            // re-admission (if any) carries its own entry.
            return Ok(());
        }
        let item = self.items.get(idx);
        self.now = self.now.max(dep);
        let bin = self.assignment[idx as usize];
        let closed = self.detach(bin, item.id, item.size, dep);
        self.emit(EngineEvent::Departure {
            item: item.id,
            at: dep,
            bin,
            size: item.size,
        });
        if closed {
            self.settle_close(bin, dep);
        }
        self.algo.on_departure(&item, bin, closed);
        self.recourse_epoch(RecourseEpoch::Departure)
    }

    /// Detaches a resident item from its bin — the shared first half of
    /// every relocation, whether the item is leaving for good (departure),
    /// being displaced by a crash, or being voluntarily migrated. Returns
    /// whether the removal emptied (closed) the bin.
    fn detach(&mut self, bin: BinId, item: ItemId, size: SizeVec, at: Time) -> bool {
        self.resident -= 1;
        self.bins.remove(bin, item, size, at)
    }

    /// Settles a bin that just emptied cleanly: bills its interval,
    /// records the open-count breakpoint, and emits `BinClosed`. Shared by
    /// the departure and migration paths (a crash bills the same interval
    /// but announces itself as `BinFailed`).
    fn settle_close(&mut self, bin: BinId, at: Time) {
        let opened_at = self.bins.record(bin).expect("bin exists").opened_at;
        self.cost += Area::from_bin_ticks(at.since(opened_at));
        self.record_open_count_at(at);
        self.emit(EngineEvent::BinClosed { bin, at, opened_at });
    }

    /// Fires the earliest scheduled bin crash: displaces every resident
    /// (emitting `ItemDisplaced` per item, then `BinFailed`), bills the
    /// bin's interval exactly like a clean close, and queues each
    /// displaced item's re-admission per the retry policy (or drops it
    /// when the backoff outlives the item's remaining interval). Crashes
    /// naming a bin that already closed are no-ops.
    fn pop_crash(&mut self) {
        let Reverse((at, bin_raw)) = self.failures.crashes.pop().expect("peeked before pop");
        let bin = BinId(bin_raw);
        let opened_at = match self.bins.record(bin) {
            Some(rec) if rec.is_open() => rec.opened_at,
            // The scheduled victim closed (or never existed): nothing to
            // crash. Seeded dooms whose bin drained first land here too.
            _ => return,
        };
        self.now = self.now.max(at);
        self.failures.report.bin_failures += 1;
        // Residents come straight off the bin's own resident list —
        // O(residents), not a scan of every item ever admitted. Sorting
        // ascending restores the deterministic event order of the old
        // full-table scan (the list itself is swap_remove-shuffled).
        // The list is exactly the population the scan found: departures
        // `≤ at` drained before this crash (tie order), displaced items
        // were removed at displacement, and bins never readmit.
        let mut residents = std::mem::take(&mut self.failures.crash_scratch);
        residents.clear();
        residents.extend(
            self.bins
                .record(bin)
                .expect("bin checked open above")
                .items
                .iter()
                .map(|id| id.0),
        );
        residents.sort_unstable();
        debug_assert!(!residents.is_empty(), "open bins always hold an item");
        for &i in &residents {
            let item = self.items.get(i);
            assert!(
                item.departure != Time(u64::MAX),
                "cannot displace undated item {} (date it before injecting failures)",
                item.id
            );
            let closed = self.detach(bin, item.id, item.size, at);
            self.emit(EngineEvent::ItemDisplaced {
                item: item.id,
                at,
                bin,
                size: item.size,
            });
            self.algo.on_departure(&item, bin, closed);
            self.failures.report.displacements += 1;
            // Truncate the played interval at the displacement; this also
            // marks the departure-heap entry stale (the generation check
            // in pop_departure).
            self.items.departures[i as usize] = at;
            let attempt = self.failures.attempts_of(i) + 1;
            self.failures.report.max_attempts = self.failures.report.max_attempts.max(attempt);
            let readmit_at = at.saturating_add(self.failures.retry.delay(attempt));
            if readmit_at >= item.departure {
                // Backoff outlives the request: the rest of its service
                // area is lost.
                self.failures.report.dropped += 1;
                self.failures.report.degraded_area +=
                    Area::from_load_ticks(item.size.max_raw(), item.departure.since(at));
            } else {
                self.failures.report.degraded_area +=
                    Area::from_load_ticks(item.size.max_raw(), readmit_at.since(at));
                self.failures.readmits.push(Reverse(PendingReadmit {
                    at: readmit_at,
                    parent: i,
                    attempt,
                    departure: item.departure,
                    size: item.size,
                }));
            }
        }
        self.failures.crash_scratch = residents;
        debug_assert!(
            self.bins.record(bin).is_some_and(|r| !r.is_open()),
            "draining every resident closes the failed bin"
        );
        self.cost += Area::from_bin_ticks(at.since(opened_at));
        self.record_open_count_at(at);
        self.emit(EngineEvent::BinFailed { bin, at, opened_at });
    }

    /// Re-admits the earliest backoff-expired displaced item as a fresh
    /// arrival: a new item id, placed through the algorithm like any
    /// other, keeping the original departure target.
    fn pop_readmit(&mut self) -> Result<(), EngineError> {
        let Reverse(p) = self.failures.readmits.pop().expect("peeked before pop");
        self.now = self.now.max(p.at);
        let id = ItemId(u32::try_from(self.items.len()).expect("too many items"));
        self.failures.report.readmissions += 1;
        self.emit(EngineEvent::ItemReadmitted {
            item: id,
            original: ItemId(p.parent),
            at: p.at,
            size: p.size,
            departure: p.departure,
            attempt: p.attempt,
        });
        let item = Item::new(id, p.at, p.departure, p.size);
        let bin = self.place(item)?;
        self.items.push(item);
        self.assignment.push(bin);
        self.failures.set_attempts(id.0, p.attempt);
        self.departures.push(Reverse((p.departure, id.0)));
        self.metrics.heap_pushes += 1;
        // A re-admission is an arrival for recourse purposes: the shared
        // relocation drain treats the involuntary move's completion as a
        // chance to consolidate voluntarily.
        self.recourse_epoch(RecourseEpoch::Arrival)
    }

    /// Runs one migration epoch: offers the algorithm up to the budget's
    /// allowance of moves, validating and applying each through the shared
    /// relocation drain. With [`RecourseBudget::None`] (the default) this
    /// is a single branch — no view is built, no counters move, no epoch
    /// is ledgered — so recourse-free runs stay bit-identical by
    /// construction.
    fn recourse_epoch(&mut self, epoch: RecourseEpoch) -> Result<(), EngineError> {
        if self.recourse.budget.is_none() {
            return Ok(());
        }
        let mut left = self.recourse.begin_epoch();
        while left > 0 {
            // Same delta-snapshot discipline as `place`: store queries the
            // algorithm issues while deciding are engine-attributed.
            let (tree_before, linear_before) = self.bins.query_counters();
            let proposal = {
                let view = RecourseView::new(
                    SimView::new(self.now, &self.bins),
                    &self.items.sizes,
                    &self.items.departures,
                );
                self.algo.propose_migration(&view, epoch, left)
            };
            let (tree_after, linear_after) = self.bins.query_counters();
            self.metrics.tree_queries += tree_after - tree_before;
            self.metrics.linear_scans += linear_after - linear_before;
            let Some(m) = proposal else {
                break;
            };
            self.apply_migration(m)?;
            self.recourse.spend();
            left -= 1;
        }
        Ok(())
    }

    /// Validates and executes one migration: detach from the source bin,
    /// re-book into the target, emit `ItemMigrated` (followed by
    /// `BinClosed` if the move emptied the source). Validation runs
    /// entirely before any mutation, so an illegal request leaves no
    /// half-applied state behind.
    fn apply_migration(&mut self, m: Migration) -> Result<(), EngineError> {
        let at = self.now;
        let idx = m.item.index();
        // The item must be physically resident in its assigned bin, and
        // the move must actually move it.
        let from = match self.assignment.get(idx) {
            Some(&b) => b,
            None => {
                return Err(EngineError::IllegalMigration {
                    item: m.item,
                    to: m.to,
                    at,
                })
            }
        };
        let resident = self
            .bins
            .record(from)
            .is_some_and(|r| r.is_open() && r.items.contains(&m.item));
        if !resident || m.to == from {
            return Err(EngineError::IllegalMigration {
                item: m.item,
                to: m.to,
                at,
            });
        }
        // Target checks mirror placement validation.
        let size = self.items.sizes[idx];
        match self.bins.record(m.to) {
            None => {
                return Err(EngineError::BinNotOpen {
                    item: m.item,
                    bin: m.to,
                    at,
                })
            }
            Some(r) if !r.is_open() => {
                return Err(EngineError::BinNotOpen {
                    item: m.item,
                    bin: m.to,
                    at,
                })
            }
            Some(r) if !r.fits(size) => {
                return Err(EngineError::CapacityExceeded {
                    item: m.item,
                    bin: m.to,
                    at,
                })
            }
            Some(_) => {}
        }
        // The shared relocation: detach from the source, re-book into the
        // target. Engine-level residency is unchanged.
        let closed = self.detach(from, m.item, size, at);
        self.bins.add(m.to, m.item, size);
        self.resident += 1;
        self.assignment[idx] = m.to;
        let load_after = self.bins.record(m.to).expect("target validated open").load;
        self.emit(EngineEvent::ItemMigrated {
            item: m.item,
            at,
            from,
            to: m.to,
            size,
            load_after,
        });
        if closed {
            self.recourse.report.migration_closures += 1;
            self.settle_close(from, at);
        }
        Ok(())
    }

    fn record_open_count(&mut self) {
        self.record_open_count_at(self.now);
    }

    fn record_open_count_at(&mut self, t: Time) {
        let count = self.bins.open_count();
        self.max_open = self.max_open.max(count);
        match self.timeline.last_mut() {
            Some(last) if last.0 == t => last.1 = count,
            _ => self.timeline.push((t, count)),
        }
    }
}

/// Replays a whole instance through `algo` and returns the measurements.
///
/// Items are served in the instance's canonical order (sorted by arrival,
/// ties in builder insertion order); the returned assignment is indexed by
/// the instance's item ids.
///
/// ```
/// use dbp_core::{engine, Instance, Size, Time, Dur};
/// use dbp_core::{OnlineAlgorithm, Placement, SimView, Item};
///
/// struct Ff;
/// impl OnlineAlgorithm for Ff {
///     fn name(&self) -> &str { "ff" }
///     fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
///         view.first_fit(item.size).map(Placement::Existing).unwrap_or(Placement::OpenNew)
///     }
///     fn reset(&mut self) {}
/// }
///
/// let inst = Instance::from_triples([
///     (Time(0), Dur(10), Size::from_ratio(1, 2)),
///     (Time(2), Dur(5),  Size::from_ratio(1, 2)),
/// ]).unwrap();
/// let result = engine::run(&inst, Ff).unwrap();
/// assert_eq!(result.bins_opened, 1);
/// assert_eq!(result.cost.as_bin_ticks(), 10.0);
/// ```
pub fn run<A: OnlineAlgorithm>(instance: &Instance, algo: A) -> Result<PackingResult, EngineError> {
    run_with_sink(instance, algo, NoopSink)
}

/// [`run`] with an [`EventSink`] attached to the engine event stream.
///
/// Pass the sink by mutable reference (`&mut S` implements [`EventSink`])
/// to inspect it after the run:
///
/// ```
/// use dbp_core::{engine, Instance, Size, Time, Dur, VecSink};
/// use dbp_core::{OnlineAlgorithm, Placement, SimView, Item};
///
/// struct Ff;
/// impl OnlineAlgorithm for Ff {
///     fn name(&self) -> &str { "ff" }
///     fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
///         view.first_fit(item.size).map(Placement::Existing).unwrap_or(Placement::OpenNew)
///     }
///     fn reset(&mut self) {}
/// }
///
/// let inst = Instance::from_triples([(Time(0), Dur(3), Size::FULL)]).unwrap();
/// let mut sink = VecSink::new();
/// let result = engine::run_with_sink(&inst, Ff, &mut sink).unwrap();
/// assert_eq!(result.metrics.events as usize, sink.events.len());
/// ```
pub fn run_with_sink<A: OnlineAlgorithm, S: EventSink>(
    instance: &Instance,
    algo: A,
    sink: S,
) -> Result<PackingResult, EngineError> {
    let mut sim = InteractiveSim::with_capacity_and_sink(algo, instance.len(), sink);
    for it in instance.items() {
        sim.arrive_at(it.arrival, it.duration(), it.size)?;
    }
    let (replayed, result) = sim.finish();
    debug_assert_eq!(replayed.items().len(), instance.items().len());
    Ok(result)
}

/// [`run_with_sink`] under fault injection: bins crash per `plan` and
/// displaced items are re-admitted under `retry` (see [`crate::failure`]
/// for the model, DESIGN.md §11 for the semantics).
///
/// With [`FailurePlan::none`] the output — cost, assignment, event
/// stream, metrics — is bit-identical to [`run_with_sink`]. With a seeded
/// plan the run is a pure function of `(instance, algorithm, seed)`:
/// replays are deterministic.
///
/// The returned assignment covers the items *actually played*, i.e. the
/// original items (truncated at their displacement when a bin failed
/// under them) plus one fresh item per re-admission; the failure tallies
/// land on [`PackingResult::resilience`].
pub fn run_with_failures<A: OnlineAlgorithm, S: EventSink>(
    instance: &Instance,
    algo: A,
    plan: FailurePlan,
    retry: RetryPolicy,
    sink: S,
) -> Result<PackingResult, EngineError> {
    run_with_failures_recourse(instance, algo, plan, retry, RecourseBudget::None, sink)
}

/// [`run_with_sink`] with a recourse budget: at every arrival/departure
/// epoch the algorithm's `propose_migration` hook may move resident items,
/// billed against `budget` (see [`crate::recourse`]). With
/// [`RecourseBudget::None`] the output — cost, assignment, event stream,
/// metrics — is bit-identical to [`run_with_sink`].
pub fn run_with_recourse<A: OnlineAlgorithm, S: EventSink>(
    instance: &Instance,
    algo: A,
    budget: RecourseBudget,
    sink: S,
) -> Result<PackingResult, EngineError> {
    run_with_failures_recourse(
        instance,
        algo,
        FailurePlan::None,
        RetryPolicy::Immediate,
        budget,
        sink,
    )
}

/// The fully-general batch entry: fault injection and recourse together.
/// Crashes displace items through the shared relocation drain (pending
/// re-admissions), while the budget lets the algorithm relocate
/// voluntarily at every epoch; both kinds of moves flow through the same
/// engine paths and the same event stream.
pub fn run_with_failures_recourse<A: OnlineAlgorithm, S: EventSink>(
    instance: &Instance,
    algo: A,
    plan: FailurePlan,
    retry: RetryPolicy,
    budget: RecourseBudget,
    sink: S,
) -> Result<PackingResult, EngineError> {
    let mut sim =
        InteractiveSim::with_capacity_failures_and_sink(algo, instance.len(), plan, retry, sink)
            .with_recourse(budget);
    for it in instance.items() {
        sim.arrive_at(it.arrival, it.duration(), it.size)?;
    }
    let (_played, result) = sim.finish();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::Size;

    /// Plain First-Fit over all open bins (the canonical smoke-test
    /// algorithm; the production version lives in `dbp-algos`).
    struct Ff;
    impl OnlineAlgorithm for Ff {
        fn name(&self) -> &str {
            "ff-test"
        }
        fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
            match view.first_fit(item.size) {
                Some(b) => Placement::Existing(b),
                None => Placement::OpenNew,
            }
        }
        fn reset(&mut self) {}
    }

    /// An algorithm that cheats by stuffing everything into bin 0.
    struct Stuffer;
    impl OnlineAlgorithm for Stuffer {
        fn name(&self) -> &str {
            "stuffer"
        }
        fn on_arrival(&mut self, _view: &SimView<'_>, _item: &Item) -> Placement {
            Placement::Existing(BinId(0))
        }
        fn reset(&mut self) {}
    }

    fn sz(n: u64, d: u64) -> Size {
        Size::from_ratio(n, d)
    }

    #[test]
    fn single_item_cost_is_its_duration() {
        let inst = Instance::from_triples([(Time(3), Dur(7), sz(1, 2))]).unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.cost.as_bin_ticks(), 7.0);
        assert_eq!(res.bins_opened, 1);
        assert_eq!(res.max_open, 1);
        assert_eq!(res.bin_intervals, vec![(Time(3), Time(10))]);
    }

    #[test]
    fn ff_shares_bins_and_reuses_nothing_after_close() {
        // Two half items overlap → same bin; a later item gets a NEW bin
        // because the first closed at t=10.
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 2)),
            (Time(2), Dur(5), sz(1, 2)),
            (Time(10), Dur(4), sz(1, 2)),
        ])
        .unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.assignment[0], res.assignment[1]);
        assert_ne!(res.assignment[0], res.assignment[2]);
        assert_eq!(res.bins_opened, 2);
        assert_eq!(res.cost.as_bin_ticks(), 10.0 + 4.0);
    }

    #[test]
    fn departures_processed_before_arrivals_at_same_tick() {
        // Item A occupies a full bin on [0,5); item B (full) arrives at 5.
        // A's bin closed at 5⁻, so B cannot reuse it — but crucially the
        // engine does not report max_open = 2.
        let inst =
            Instance::from_triples([(Time(0), Dur(5), Size::FULL), (Time(5), Dur(5), Size::FULL)])
                .unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.max_open, 1);
        assert_eq!(res.bins_opened, 2);
        assert_eq!(res.cost.as_bin_ticks(), 10.0);
    }

    #[test]
    fn engine_rejects_overflow_placement() {
        /// Opens one bin, then stuffs everything else into it.
        struct OverStuffer;
        impl OnlineAlgorithm for OverStuffer {
            fn name(&self) -> &str {
                "overstuffer"
            }
            fn on_arrival(&mut self, view: &SimView<'_>, _item: &Item) -> Placement {
                if view.open_count() == 0 {
                    Placement::OpenNew
                } else {
                    Placement::Existing(BinId(0))
                }
            }
            fn reset(&mut self) {}
        }
        let inst =
            Instance::from_triples([(Time(0), Dur(5), Size::FULL), (Time(1), Dur(5), sz(1, 2))])
                .unwrap();
        let err = run(&inst, OverStuffer).unwrap_err();
        assert!(matches!(err, EngineError::CapacityExceeded { .. }));
    }

    #[test]
    fn engine_rejects_placement_into_unknown_bin() {
        let inst = Instance::from_triples([(Time(0), Dur(5), sz(1, 2))]).unwrap();
        let err = run(&inst, Stuffer).unwrap_err();
        assert!(matches!(err, EngineError::BinNotOpen { .. }));
    }

    #[test]
    fn engine_rejects_placement_into_closed_bin() {
        struct ReuseFirst;
        impl OnlineAlgorithm for ReuseFirst {
            fn name(&self) -> &str {
                "reuse-first"
            }
            fn on_arrival(&mut self, view: &SimView<'_>, _item: &Item) -> Placement {
                if view.bin(BinId(0)).is_some() {
                    Placement::Existing(BinId(0))
                } else {
                    Placement::OpenNew
                }
            }
            fn reset(&mut self) {}
        }
        let inst = Instance::from_triples([
            (Time(0), Dur(2), sz(1, 2)),
            (Time(5), Dur(2), sz(1, 2)), // bin 0 closed at t=2
        ])
        .unwrap();
        let err = run(&inst, ReuseFirst).unwrap_err();
        assert!(matches!(err, EngineError::BinNotOpen { .. }));
    }

    #[test]
    fn timeline_integrates_to_cost() {
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(2, 3)),
            (Time(2), Dur(5), sz(2, 3)),
            (Time(4), Dur(9), sz(2, 3)),
            (Time(20), Dur(1), sz(1, 8)),
        ])
        .unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.cost, res.cost_from_timeline());
    }

    #[test]
    fn open_at_queries_timeline() {
        let inst =
            Instance::from_triples([(Time(0), Dur(4), Size::FULL), (Time(1), Dur(1), Size::FULL)])
                .unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.open_at(Time(0)), 1);
        assert_eq!(res.open_at(Time(1)), 2);
        assert_eq!(res.open_at(Time(2)), 1);
        assert_eq!(res.open_at(Time(4)), 0);
        assert_eq!(res.open_at(Time(100)), 0);
    }

    #[test]
    fn interactive_time_regression_rejected() {
        let mut sim = InteractiveSim::new(Ff);
        sim.arrive_at(Time(5), Dur(1), sz(1, 2)).unwrap();
        let err = sim.arrive_at(Time(3), Dur(1), sz(1, 2)).unwrap_err();
        assert!(matches!(err, EngineError::TimeRegression { .. }));
    }

    #[test]
    fn undated_arrivals_support_adaptive_departures() {
        let mut sim = InteractiveSim::new(Ff);
        sim.advance_to(Time(0));
        let (a, bin_a) = sim.arrive_undated(sz(1, 2)).unwrap();
        let (b, bin_b) = sim.arrive_undated(sz(1, 2)).unwrap();
        assert_eq!(bin_a, bin_b, "FF co-locates two halves");
        // The adversary decides AFTER seeing placements.
        sim.set_departure(a, Time(100));
        sim.set_departure(b, Time(1));
        let (inst, res) = sim.finish();
        assert_eq!(inst.item(a).departure, Time(100));
        assert_eq!(inst.item(b).departure, Time(1));
        assert_eq!(res.cost.as_bin_ticks(), 100.0, "survivor pins the bin");
        let audit = crate::assignment::audit(&inst, &res.assignment).unwrap();
        assert_eq!(audit.cost, res.cost);
    }

    #[test]
    #[should_panic(expected = "already dated")]
    fn double_dating_panics() {
        let mut sim = InteractiveSim::new(Ff);
        let (a, _) = sim.arrive_undated(sz(1, 2)).unwrap();
        sim.set_departure(a, Time(5));
        sim.set_departure(a, Time(6));
    }

    #[test]
    #[should_panic(expected = "undated items still in flight")]
    fn finish_with_undated_items_panics() {
        let mut sim = InteractiveSim::new(Ff);
        let _ = sim.arrive_undated(sz(1, 2)).unwrap();
        let _ = sim.finish();
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn dating_in_the_past_panics() {
        let mut sim = InteractiveSim::new(Ff);
        let (a, _) = sim.arrive_undated(sz(1, 2)).unwrap();
        sim.arrive_at(Time(10), Dur(1), sz(1, 4)).unwrap();
        sim.set_departure(a, Time(5));
    }

    #[test]
    fn undated_items_outlive_interleaved_dated_traffic() {
        let mut sim = InteractiveSim::new(Ff);
        let (a, _) = sim.arrive_undated(sz(1, 4)).unwrap();
        sim.arrive_at(Time(2), Dur(3), sz(1, 4)).unwrap(); // departs at 5
        sim.advance_to(Time(6));
        sim.set_departure(a, Time(9));
        let (inst, res) = sim.finish();
        assert_eq!(inst.len(), 2);
        assert_eq!(res.cost_from_timeline(), res.cost);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        let mut sim = InteractiveSim::new(Ff);
        sim.try_advance_to(Time(5)).unwrap();
        let err = sim.try_advance_to(Time(3)).unwrap_err();
        assert!(matches!(err, EngineError::ClockRegression { .. }));
        // Unknown item: not an undated in-flight arrival.
        let err = sim.try_set_departure(ItemId(9), Time(10)).unwrap_err();
        assert!(matches!(err, EngineError::NotUndated { .. }));
        let (a, _) = sim.arrive_undated(sz(1, 2)).unwrap();
        // `at == arrival` is not strictly after the arrival.
        let err = sim.try_set_departure(a, Time(5)).unwrap_err();
        assert!(matches!(err, EngineError::BadDeparture { .. }));
        sim.try_set_departure(a, Time(6)).unwrap();
        let err = sim.try_set_departure(a, Time(7)).unwrap_err();
        assert!(matches!(err, EngineError::NotUndated { .. }));
        let (_, res) = sim.finish();
        assert_eq!(res.cost.as_bin_ticks(), 1.0);
    }

    #[test]
    fn event_stream_matches_run_shape() {
        use crate::trace::{EngineEvent, VecSink};
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 2)),
            (Time(2), Dur(5), sz(1, 2)),
            (Time(10), Dur(4), sz(1, 2)),
        ])
        .unwrap();
        let mut sink = VecSink::new();
        let res = run_with_sink(&inst, Ff, &mut sink).unwrap();
        let events = &sink.events;
        assert_eq!(res.metrics.events as usize, events.len());
        let count = |f: fn(&EngineEvent) -> bool| events.iter().filter(|e| f(e)).count();
        assert_eq!(count(|e| matches!(e, EngineEvent::Arrival { .. })), 3);
        assert_eq!(count(|e| matches!(e, EngineEvent::Placed { .. })), 3);
        assert_eq!(count(|e| matches!(e, EngineEvent::Departure { .. })), 3);
        assert_eq!(
            count(|e| matches!(e, EngineEvent::BinOpened { .. })),
            res.bins_opened
        );
        assert_eq!(
            count(|e| matches!(e, EngineEvent::BinClosed { .. })),
            res.bins_opened
        );
        assert!(
            events.windows(2).all(|w| w[0].time() <= w[1].time()),
            "event timestamps never regress"
        );
        assert_eq!(res.metrics.arrivals, 3);
        assert_eq!(res.metrics.heap_pushes, 3);
        assert_eq!(res.metrics.heap_pops, 3);
        assert_eq!(
            res.metrics.fast_path_placements + res.metrics.scan_placements,
            3
        );
    }

    #[test]
    fn noop_run_reports_metrics_too() {
        let inst = Instance::from_triples([(Time(0), Dur(3), Size::FULL)]).unwrap();
        let res = run(&inst, Ff).unwrap();
        assert_eq!(res.metrics.arrivals, 1);
        assert_eq!(
            res.metrics.events, 5,
            "arrival+opened+placed+departure+closed"
        );
        assert_eq!(res.metrics.fast_path_share(), 1.0);
    }

    #[test]
    fn scripted_crash_displaces_and_readmits_immediately() {
        use crate::trace::VecSink;
        // Two halves share bin 0 on [0, 10); the server dies at t=4.
        let inst =
            Instance::from_triples([(Time(0), Dur(10), sz(1, 2)), (Time(0), Dur(10), sz(1, 2))])
                .unwrap();
        let plan = FailurePlan::scripted(vec![(Time(4), BinId(0))]);
        let mut sink = VecSink::new();
        let res = run_with_failures(&inst, Ff, plan, RetryPolicy::Immediate, &mut sink).unwrap();
        // Bin 0 billed [0,4), the replacement bin [4,10).
        assert_eq!(res.cost.as_bin_ticks(), 4.0 + 6.0);
        assert_eq!(res.bins_opened, 2);
        assert_eq!(res.assignment.len(), 4, "two originals + two re-admissions");
        let r = &res.resilience;
        assert_eq!(r.bin_failures, 1);
        assert_eq!(r.displacements, 2);
        assert_eq!(r.readmissions, 2);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.max_attempts, 1);
        assert!(r.degraded_area.is_zero(), "immediate retry loses nothing");
        let count = |f: fn(&EngineEvent) -> bool| sink.events.iter().filter(|e| f(e)).count();
        assert_eq!(count(|e| matches!(e, EngineEvent::BinFailed { .. })), 1);
        assert_eq!(count(|e| matches!(e, EngineEvent::ItemDisplaced { .. })), 2);
        assert_eq!(
            count(|e| matches!(e, EngineEvent::ItemReadmitted { .. })),
            2
        );
        assert_eq!(count(|e| matches!(e, EngineEvent::BinClosed { .. })), 1);
        // Displacements precede the BinFailed at the same moment.
        let fail_pos = sink
            .events
            .iter()
            .position(|e| matches!(e, EngineEvent::BinFailed { .. }))
            .unwrap();
        assert!(
            sink.events[..fail_pos]
                .iter()
                .filter(|e| matches!(e, EngineEvent::ItemDisplaced { .. }))
                .count()
                == 2
        );
        assert_eq!(res.cost, res.cost_from_timeline());
    }

    #[test]
    fn fixed_backoff_delays_readmission_and_accrues_degraded_area() {
        let inst =
            Instance::from_triples([(Time(0), Dur(10), sz(1, 2)), (Time(0), Dur(10), sz(1, 2))])
                .unwrap();
        let plan = FailurePlan::scripted(vec![(Time(4), BinId(0))]);
        let res = run_with_failures(&inst, Ff, plan, RetryPolicy::Fixed(Dur(2)), NoopSink).unwrap();
        // Bin 0 billed [0,4); the replacement opens at 6 and runs to 10.
        assert_eq!(res.cost.as_bin_ticks(), 4.0 + 4.0);
        assert_eq!(res.resilience.readmissions, 2);
        // Two halves idle for 2 ticks each: 2 × (1/2 × 2) = 2 bin·ticks.
        assert_eq!(res.resilience.degraded_area.as_bin_ticks(), 2.0);
    }

    #[test]
    fn backoff_past_the_departure_drops_the_item() {
        let inst =
            Instance::from_triples([(Time(0), Dur(10), sz(1, 2)), (Time(0), Dur(10), sz(1, 2))])
                .unwrap();
        let plan = FailurePlan::scripted(vec![(Time(4), BinId(0))]);
        let res =
            run_with_failures(&inst, Ff, plan, RetryPolicy::Fixed(Dur(100)), NoopSink).unwrap();
        assert_eq!(res.cost.as_bin_ticks(), 4.0, "nothing re-enters");
        assert_eq!(res.resilience.dropped, 2);
        assert_eq!(res.resilience.readmissions, 0);
        // The whole remaining service is lost: 2 × (1/2 × 6).
        assert_eq!(res.resilience.degraded_area.as_bin_ticks(), 6.0);
        assert_eq!(res.assignment.len(), 2, "no clones were created");
    }

    #[test]
    fn crash_of_a_closed_bin_is_a_noop() {
        let inst = Instance::from_triples([(Time(0), Dur(3), sz(1, 2))]).unwrap();
        // Bin 0 closes at t=3; the scheduled crash at t=5 finds it gone.
        let plan = FailurePlan::scripted(vec![(Time(5), BinId(0)), (Time(1), BinId(7))]);
        let res = run_with_failures(&inst, Ff, plan, RetryPolicy::Immediate, NoopSink).unwrap();
        assert_eq!(res.cost.as_bin_ticks(), 3.0);
        assert!(!res.resilience.any());
    }

    #[test]
    fn zero_failure_plan_is_bit_identical_to_a_plain_run() {
        use crate::trace::VecSink;
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 2)),
            (Time(2), Dur(5), sz(1, 2)),
            (Time(4), Dur(9), sz(2, 3)),
            (Time(20), Dur(1), sz(1, 8)),
        ])
        .unwrap();
        let mut plain_sink = VecSink::new();
        let plain = run_with_sink(&inst, Ff, &mut plain_sink).unwrap();
        let mut fail_sink = VecSink::new();
        let failed = run_with_failures(
            &inst,
            Ff,
            FailurePlan::none(),
            RetryPolicy::Exponential { base: Dur(3) },
            &mut fail_sink,
        )
        .unwrap();
        assert_eq!(plain.cost, failed.cost);
        assert_eq!(plain.assignment, failed.assignment);
        assert_eq!(plain.timeline, failed.timeline);
        assert_eq!(plain.metrics, failed.metrics);
        assert_eq!(
            plain_sink.events, fail_sink.events,
            "event streams identical"
        );
        assert!(!failed.resilience.any());
    }

    #[test]
    fn seeded_failures_replay_deterministically() {
        use crate::trace::VecSink;
        let inst = Instance::from_triples(
            (0..40u64).map(|k| (Time(k / 2), Dur(6 + k % 9), sz(1 + k % 3, 4))),
        )
        .unwrap();
        let plan = || FailurePlan::seeded(0.6, 11, Dur(4));
        let retry = RetryPolicy::Exponential { base: Dur(1) };
        let mut a_sink = VecSink::new();
        let a = run_with_failures(&inst, Ff, plan(), retry, &mut a_sink).unwrap();
        let mut b_sink = VecSink::new();
        let b = run_with_failures(&inst, Ff, plan(), retry, &mut b_sink).unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a_sink.events, b_sink.events);
        assert!(
            a.resilience.bin_failures > 0,
            "rate 0.6 fires on this input"
        );
        assert_eq!(a.cost, a.cost_from_timeline());
        assert_eq!(
            a.resilience.displacements,
            a.resilience.readmissions + a.resilience.dropped,
            "every displacement either re-enters or is dropped"
        );
    }

    #[test]
    fn repeated_failures_compound_the_attempt_counter() {
        // The item's first bin dies at t=2, its re-admission bin at t=4.
        let inst = Instance::from_triples([(Time(0), Dur(20), sz(1, 2))]).unwrap();
        let plan = FailurePlan::scripted(vec![(Time(2), BinId(0)), (Time(4), BinId(1))]);
        let res = run_with_failures(&inst, Ff, plan, RetryPolicy::Immediate, NoopSink).unwrap();
        assert_eq!(res.resilience.bin_failures, 2);
        assert_eq!(res.resilience.displacements, 2);
        assert_eq!(res.resilience.max_attempts, 2, "same request bounced twice");
        assert_eq!(res.bins_opened, 3);
        assert_eq!(res.cost.as_bin_ticks(), 2.0 + 2.0 + 16.0);
    }

    #[test]
    fn compaction_preserves_cost_and_metrics() {
        let items: Vec<(Time, Dur, Size)> = (0..400u64)
            .map(|k| (Time(k / 2), Dur(3 + k % 7), sz(1 + k % 3, 4)))
            .collect();
        let mut plain = InteractiveSim::new(Ff);
        for &(t, d, s) in &items {
            plain.arrive_at(t, d, s).unwrap();
        }
        plain.drain_remaining().unwrap();
        let mut compacted = InteractiveSim::new(Ff);
        for (k, &(t, d, s)) in items.iter().enumerate() {
            compacted.arrive_at(t, d, s).unwrap();
            if k % 50 == 49 {
                compacted.compact();
            }
        }
        compacted.drain_remaining().unwrap();
        assert_eq!(plain.cost_so_far(), compacted.cost_so_far());
        assert_eq!(plain.metrics(), compacted.metrics());
        assert_eq!(plain.bins_opened(), compacted.bins_opened());
        assert_eq!(compacted.resident_items(), 0);
        assert!(
            compacted.table_len() < items.len(),
            "compaction dropped departed rows ({} of {})",
            compacted.table_len(),
            items.len()
        );
    }

    #[test]
    fn compaction_with_failures_matches_uncompacted_run() {
        // Displacements truncate departure columns, so the compacted run
        // must discard stale heap entries AND bill them as pops; pending
        // re-admission parents must survive the row drop.
        let items: Vec<(Time, Dur, Size)> = (0..200u64)
            .map(|k| (Time(k / 2), Dur(6 + k % 9), sz(1 + k % 3, 4)))
            .collect();
        let plan = || FailurePlan::seeded(0.6, 11, Dur(4));
        let retry = RetryPolicy::Fixed(Dur(2));
        let mut plain =
            InteractiveSim::with_capacity_failures_and_sink(Ff, 0, plan(), retry, NoopSink);
        for &(t, d, s) in &items {
            plain.arrive_at(t, d, s).unwrap();
        }
        plain.drain_remaining().unwrap();
        let mut compacted =
            InteractiveSim::with_capacity_failures_and_sink(Ff, 0, plan(), retry, NoopSink);
        for (k, &(t, d, s)) in items.iter().enumerate() {
            compacted.arrive_at(t, d, s).unwrap();
            if k % 17 == 16 {
                compacted.compact();
            }
        }
        compacted.drain_remaining().unwrap();
        assert!(plain.resilience().bin_failures > 0, "plan fires");
        assert_eq!(plain.cost_so_far(), compacted.cost_so_far());
        assert_eq!(plain.metrics(), compacted.metrics());
        assert_eq!(plain.resilience(), compacted.resilience());
        assert_eq!(plain.bins_opened(), compacted.bins_opened());
    }

    #[test]
    fn compaction_bounds_the_table_under_churn() {
        // 2000 sequential short items, never more than ~2 live at once: the
        // compacted table must stay within a constant of the live count.
        let mut sim = InteractiveSim::new(Ff);
        let mut peak_live = 0;
        for k in 0..2000u64 {
            sim.arrive_at(Time(k), Dur(2), sz(1, 2)).unwrap();
            peak_live = peak_live.max(sim.resident_items());
            if sim.table_len() >= 2 * sim.resident_items() + 16 {
                sim.compact();
            }
        }
        assert!(peak_live <= 3);
        assert!(
            sim.table_len() <= 2 * peak_live + 16,
            "table {} vs peak live {}",
            sim.table_len(),
            peak_live
        );
        sim.drain_remaining().unwrap();
        assert_eq!(sim.resident_items(), 0);
    }

    #[test]
    fn bin_compaction_matches_uncompacted_run_under_seeded_chaos() {
        // Bin renumbering must disturb neither placement decisions nor
        // seeded fate draws: the fate offset grows by the reclaimed count,
        // so every fresh bin still draws its uncompacted-run ordinal.
        let items: Vec<(Time, Dur, Size)> = (0..200u64)
            .map(|k| (Time(k / 2), Dur(6 + k % 9), sz(1 + k % 3, 4)))
            .collect();
        let plan = || FailurePlan::seeded(0.6, 11, Dur(4));
        let retry = RetryPolicy::Fixed(Dur(2));
        let mut plain =
            InteractiveSim::with_capacity_failures_and_sink(Ff, 0, plan(), retry, NoopSink);
        for &(t, d, s) in &items {
            plain.arrive_at(t, d, s).unwrap();
        }
        plain.drain_remaining().unwrap();
        let mut compacted =
            InteractiveSim::with_capacity_failures_and_sink(Ff, 0, plan(), retry, NoopSink);
        for (k, &(t, d, s)) in items.iter().enumerate() {
            compacted.arrive_at(t, d, s).unwrap();
            if k % 17 == 16 {
                compacted.compact();
                compacted.compact_bins();
            }
        }
        compacted.drain_remaining().unwrap();
        assert!(plain.resilience().bin_failures > 0, "plan fires");
        assert_eq!(plain.cost_so_far(), compacted.cost_so_far());
        assert_eq!(plain.metrics(), compacted.metrics());
        assert_eq!(plain.resilience(), compacted.resilience());
        assert_eq!(plain.bins_opened(), compacted.bins_opened());
        assert!(
            compacted.bins().all().len() < compacted.bins_opened(),
            "bin compaction reclaimed closed records"
        );
    }

    #[test]
    fn bin_compaction_bounds_the_record_table_under_churn() {
        // Sequential near-full items: one bin each, never more than ~2
        // open at once. The compacted record table must stay within a
        // constant of the open count while `bins_opened` keeps counting.
        let mut sim = InteractiveSim::new(Ff);
        for k in 0..2000u64 {
            sim.arrive_at(Time(k), Dur(2), sz(3, 4)).unwrap();
            if sim.bins().all().len() >= 2 * sim.bins().open_count() + 16 {
                sim.compact_bins();
            }
        }
        assert!(
            sim.bins().all().len() <= 2 * sim.bins().open_count() + 16,
            "record table {} vs open {}",
            sim.bins().all().len(),
            sim.bins().open_count()
        );
        sim.drain_remaining().unwrap();
        assert_eq!(sim.bins_opened(), 2000);
        assert_eq!(sim.cost_so_far().as_bin_ticks(), 2.0 * 2000.0);
    }

    #[test]
    fn on_compact_reports_the_retained_mapping() {
        use std::collections::HashMap;
        /// First-Fit that checks every departure against what it recorded
        /// at arrival, following compaction remaps.
        #[derive(Default)]
        struct Tracking {
            sizes: HashMap<u32, SizeVec>,
            compactions: usize,
        }
        impl OnlineAlgorithm for Tracking {
            fn name(&self) -> &str {
                "tracking"
            }
            fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
                self.sizes.insert(item.id.0, item.size);
                match view.first_fit(item.size) {
                    Some(b) => Placement::Existing(b),
                    None => Placement::OpenNew,
                }
            }
            fn on_departure(&mut self, item: &Item, _bin: BinId, _closed: bool) {
                let recorded = self.sizes.remove(&item.id.0);
                assert_eq!(recorded, Some(item.size), "id {} remapped wrong", item.id);
            }
            fn on_compact(&mut self, retained: &[ItemId], old_len: usize) {
                self.compactions += 1;
                let mut next = HashMap::with_capacity(retained.len());
                for (new, &old) in retained.iter().enumerate() {
                    assert!((old.0 as usize) < old_len);
                    if let Some(s) = self.sizes.remove(&old.0) {
                        next.insert(new as u32, s);
                    }
                }
                assert!(self.sizes.is_empty(), "live state beyond the mapping");
                self.sizes = next;
            }
            fn reset(&mut self) {
                self.sizes.clear();
            }
        }
        let mut sim = InteractiveSim::new(Tracking::default());
        for k in 0..300u64 {
            sim.arrive_at(Time(k), Dur(4), sz(1, 3)).unwrap();
            if k % 25 == 24 {
                sim.compact();
            }
        }
        sim.drain_remaining().unwrap();
        assert!(sim.algorithm().compactions >= 10);
        assert!(sim.algorithm().sizes.is_empty(), "all departures matched");
    }

    #[test]
    fn interactive_open_count_visible_mid_run() {
        let mut sim = InteractiveSim::new(Ff);
        sim.arrive_at(Time(0), Dur(10), Size::FULL).unwrap();
        assert_eq!(sim.open_count(), 1);
        sim.arrive_at(Time(0), Dur(10), Size::FULL).unwrap();
        assert_eq!(sim.open_count(), 2);
        sim.advance_to(Time(10));
        assert_eq!(sim.open_count(), 0);
        let (inst, res) = sim.finish();
        assert_eq!(inst.len(), 2);
        assert_eq!(res.cost.as_bin_ticks(), 20.0);
    }

    /// First-Fit that, at every departure epoch, evacuates the
    /// lowest-loaded open bin into the others one resident at a time — a
    /// miniature of the dbp-algos consolidator, small enough to reason
    /// about exactly in these tests.
    struct Consolidator;
    impl OnlineAlgorithm for Consolidator {
        fn name(&self) -> &str {
            "consolidator-test"
        }
        fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
            match view.first_fit(item.size) {
                Some(b) => Placement::Existing(b),
                None => Placement::OpenNew,
            }
        }
        fn propose_migration(
            &mut self,
            view: &RecourseView<'_>,
            epoch: RecourseEpoch,
            _moves_left: u32,
        ) -> Option<Migration> {
            if !matches!(epoch, RecourseEpoch::Departure) {
                return None;
            }
            let sim = view.sim();
            let source = sim
                .open_bins()
                .min_by_key(|r| (r.load, r.id.0))
                .map(|r| r.id)?;
            let (item, size, _) = view.residents(source).into_iter().next()?;
            let to = sim
                .open_bins()
                .find(|r| r.id != source && r.fits(size))
                .map(|r| r.id)?;
            Some(Migration { item, to })
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn migration_consolidates_and_bills_the_closed_bin() {
        use crate::trace::VecSink;
        // r0 [0,4) and r1 [0,10) share bin 0; r2 (3/4) pins bin 1 to t=20.
        // When r0 departs, the consolidator moves r1 into bin 1: bin 0
        // closes at 4 instead of 10.
        let inst = Instance::from_triples([
            (Time(0), Dur(4), sz(1, 4)),
            (Time(0), Dur(10), sz(1, 4)),
            (Time(0), Dur(20), sz(3, 4)),
        ])
        .unwrap();
        let mut sink = VecSink::new();
        let res =
            run_with_recourse(&inst, Consolidator, RecourseBudget::Unlimited, &mut sink).unwrap();
        assert_eq!(res.cost.as_bin_ticks(), 4.0 + 20.0);
        assert_eq!(res.recourse.migrations, 1);
        assert_eq!(res.recourse.migration_closures, 1);
        assert_eq!(res.assignment[1], BinId(1), "r1 ends up in bin 1");
        assert_eq!(res.cost, res.cost_from_timeline());
        // ItemMigrated precedes the BinClosed it caused.
        let mig = sink
            .events
            .iter()
            .position(|e| matches!(e, EngineEvent::ItemMigrated { .. }))
            .expect("one migration");
        assert!(matches!(
            sink.events[mig],
            EngineEvent::ItemMigrated {
                item: ItemId(1),
                at: Time(4),
                from: BinId(0),
                to: BinId(1),
                ..
            }
        ));
        assert!(matches!(
            sink.events[mig + 1],
            EngineEvent::BinClosed {
                bin: BinId(0),
                at: Time(4),
                ..
            }
        ));
        // Without recourse the same instance costs 10 + 20.
        let base = run(&inst, Consolidator).unwrap();
        assert_eq!(base.cost.as_bin_ticks(), 30.0);
    }

    #[test]
    fn none_budget_never_consults_the_algorithm() {
        use crate::trace::VecSink;
        let inst = Instance::from_triples([
            (Time(0), Dur(4), sz(1, 4)),
            (Time(0), Dur(10), sz(1, 4)),
            (Time(0), Dur(20), sz(3, 4)),
        ])
        .unwrap();
        let mut plain_sink = VecSink::new();
        let plain = run_with_sink(&inst, Ff, &mut plain_sink).unwrap();
        let mut rec_sink = VecSink::new();
        let gated =
            run_with_recourse(&inst, Consolidator, RecourseBudget::None, &mut rec_sink).unwrap();
        assert_eq!(plain.cost, gated.cost);
        assert_eq!(plain.assignment, gated.assignment);
        assert_eq!(plain.timeline, gated.timeline);
        assert_eq!(plain.metrics, gated.metrics);
        assert_eq!(plain_sink.events, rec_sink.events);
        assert!(!gated.recourse.any(), "no epoch was ever opened");
    }

    #[test]
    fn per_epoch_budget_caps_moves_and_cost_shrinks_with_budget() {
        // After r0 departs at t=4, bin 0 still holds two quarters that
        // both fit into bin 1. Unlimited moves them in one epoch (bin 0
        // closes at 4); epoch=1 moves one per departure epoch (bin 0
        // closes at 10); none leaves bin 0 open to t=12.
        let inst = Instance::from_triples([
            (Time(0), Dur(4), sz(1, 4)),
            (Time(0), Dur(10), sz(1, 4)),
            (Time(0), Dur(12), sz(1, 4)),
            (Time(0), Dur(20), sz(1, 2)),
        ])
        .unwrap();
        let unlimited =
            run_with_recourse(&inst, Consolidator, RecourseBudget::Unlimited, NoopSink).unwrap();
        let one =
            run_with_recourse(&inst, Consolidator, RecourseBudget::per_epoch(1), NoopSink).unwrap();
        let none = run(&inst, Consolidator).unwrap();
        assert_eq!(unlimited.cost.as_bin_ticks(), 4.0 + 20.0);
        assert_eq!(unlimited.recourse.migrations, 2);
        assert_eq!(one.cost.as_bin_ticks(), 10.0 + 20.0);
        assert_eq!(one.recourse.migrations, 2, "second move waits an epoch");
        assert_eq!(none.cost.as_bin_ticks(), 12.0 + 20.0);
        assert!(unlimited.cost < one.cost && one.cost < none.cost);
    }

    /// Proposes one fixed migration at every arrival epoch with two open
    /// bins (so tests can aim a specific illegal request at the engine).
    struct BadMover(Migration);
    impl OnlineAlgorithm for BadMover {
        fn name(&self) -> &str {
            "bad-mover"
        }
        fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
            match view.first_fit(item.size) {
                Some(b) => Placement::Existing(b),
                None => Placement::OpenNew,
            }
        }
        fn propose_migration(
            &mut self,
            view: &RecourseView<'_>,
            epoch: RecourseEpoch,
            _moves_left: u32,
        ) -> Option<Migration> {
            (matches!(epoch, RecourseEpoch::Arrival) && view.sim().open_count() == 2)
                .then_some(self.0)
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn illegal_migrations_are_rejected_with_typed_errors() {
        let inst = Instance::from_triples([
            (Time(0), Dur(10), Size::FULL),
            (Time(0), Dur(10), Size::FULL),
        ])
        .unwrap();
        let cases = [
            (
                Migration {
                    item: ItemId(0),
                    to: BinId(0),
                },
                "own bin",
            ),
            (
                Migration {
                    item: ItemId(99),
                    to: BinId(1),
                },
                "unknown item",
            ),
        ];
        for (m, what) in cases {
            let err = run_with_recourse(&inst, BadMover(m), RecourseBudget::per_epoch(1), NoopSink)
                .unwrap_err();
            assert!(
                matches!(err, EngineError::IllegalMigration { .. }),
                "{what}: {err}"
            );
        }
        let err = run_with_recourse(
            &inst,
            BadMover(Migration {
                item: ItemId(0),
                to: BinId(9),
            }),
            RecourseBudget::per_epoch(1),
            NoopSink,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::BinNotOpen { .. }));
        let err = run_with_recourse(
            &inst,
            BadMover(Migration {
                item: ItemId(0),
                to: BinId(1),
            }),
            RecourseBudget::per_epoch(1),
            NoopSink,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::CapacityExceeded { .. }));
    }

    #[test]
    fn restored_pending_readmission_drains_like_the_original() {
        use crate::trace::VecSink;
        let mut sink = VecSink::new();
        let mut sim = InteractiveSim::with_sink(Ff, &mut sink);
        sim.try_advance_to(Time(5)).unwrap();
        let parent =
            sim.restore_pending_readmission(Time(0), Time(4), Time(6), 1, Time(12), sz(1, 2));
        assert_eq!(sim.pending_readmissions(), 1);
        assert_eq!(
            sim.pending_readmit_entries(),
            vec![PendingReadmission {
                parent,
                arrival: Time(0),
                displaced_at: Time(4),
                at: Time(6),
                attempt: 1,
                departure: Time(12),
                size: sz(1, 2).into(),
            }]
        );
        let (inst, res) = sim.finish();
        assert_eq!(inst.len(), 2, "dead parent row + live clone");
        assert_eq!(res.resilience.readmissions, 1);
        assert_eq!(res.cost.as_bin_ticks(), 6.0, "clone serves [6, 12)");
        let readmit = sink
            .events
            .iter()
            .find(|e| matches!(e, EngineEvent::ItemReadmitted { .. }))
            .expect("retry replayed");
        assert!(matches!(
            *readmit,
            EngineEvent::ItemReadmitted {
                original,
                at: Time(6),
                attempt: 1,
                departure: Time(12),
                ..
            } if original == parent
        ));
    }
}
