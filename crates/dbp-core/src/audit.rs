//! Streaming invariant auditor for engine runs.
//!
//! [`InvariantAuditor`] is an [`EventSink`] that mirrors the simulation
//! from the event stream alone and cross-checks, event by event:
//!
//! * **Load conservation** — every bin's mirrored load matches the
//!   `load_after` the engine reports, never exceeds capacity, and returns
//!   to exactly zero when the bin closes;
//! * **Lifecycle discipline** — bins open before they are used, close only
//!   when empty, and are never touched again after closing;
//! * **Timeline monotonicity** — event timestamps never regress, and
//!   departures precede arrivals within a tick by emission order;
//! * **First-Fit agreement** — at every arrival, the capacity tournament
//!   tree and the naive linear scan name the same bin (the live
//!   [`BinStore`] is probed *at the decision point*, so a divergence is
//!   caught on the exact event where it first matters);
//! * **Cost triple-entry** — after the run, the incremental engine cost,
//!   the sum of per-bin `closed − opened` intervals, and the integral of
//!   the mirrored open-bin count over time must all agree
//!   ([`InvariantAuditor::verify_result`]);
//! * **Failure bookkeeping** — a failed bin must be drained (every
//!   resident displaced) before its `BinFailed`, every re-admission must
//!   name an item that was actually displaced and not yet re-admitted,
//!   and the [`crate::failure::ResilienceReport`] totals must match the
//!   event stream exactly (displacements = re-admissions + drops);
//! * **Demand ≤ bill** — the integral of the mirrored total load never
//!   exceeds the integral of the open-bin count (`d(σ) ≤ cost`); an
//!   over-unity utilisation is reported as a violation instead of being
//!   clamped away;
//! * **Recourse bookkeeping** — a migration must move a genuinely resident
//!   item between two distinct open bins, conserve total load across the
//!   move, respect the target's capacity and reported `load_after`, and —
//!   when the expected [`RecourseBudget`] is declared via
//!   [`InvariantAuditor::expect_budget`] — never exceed the allowance a
//!   faithful budget replay grants its epoch. Post-run, the stream's
//!   migration/closure counts must match the
//!   [`crate::recourse::RecourseReport`].
//!
//! The auditor latches the **first** violation with its event index and
//! full context, then stops mirroring — later checks would only cascade
//! from the first divergence. [`run_audited`] is the test-friendly
//! wrapper: a batch run with the auditor attached that panics on any
//! violation.

use core::fmt;

use crate::algorithm::OnlineAlgorithm;
use crate::bin_state::BinStore;
use crate::cost::Area;
use crate::engine::{run_with_sink, PackingResult};
use crate::error::EngineError;
use crate::instance::Instance;
use crate::item::ItemId;
use crate::recourse::{RecourseBudget, RecourseCtl};
use crate::size::{SizeVec, MAX_DIMS, SIZE_SCALE};
use crate::time::Time;
use crate::trace::{EngineEvent, EventSink};

/// The first invariant violation an auditor observed, with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// 0-based index of the divergent event in the run's event stream
    /// (`u64::MAX` for violations found post-run by `verify_result`).
    pub index: u64,
    /// The divergent event, when the violation is tied to one.
    pub event: Option<EngineEvent>,
    /// What went wrong, with the values that disagreed.
    pub message: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.event {
            Some(ev) => write!(
                f,
                "audit violation at event #{} ({:?}): {}",
                self.index, ev, self.message
            ),
            None => write!(f, "audit violation (post-run): {}", self.message),
        }
    }
}

impl std::error::Error for AuditViolation {}

/// Mirror of one bin, rebuilt purely from the event stream.
#[derive(Debug, Clone)]
struct MirrorBin {
    opened_at: Time,
    load: [u64; MAX_DIMS],
    residents: u32,
    open: bool,
}

/// An [`EventSink`] that re-derives the simulation state from events and
/// flags the first inconsistency (see the module docs for the invariant
/// list). Cheap enough to stay attached in every test run.
#[derive(Debug, Default, Clone)]
pub struct InvariantAuditor {
    bins: Vec<MirrorBin>,
    open_count: usize,
    /// Time up to which `integral_cost` has been accumulated.
    cur: Time,
    /// `∫ (mirrored open-bin count) dt`, exact.
    integral_cost: Area,
    /// `Σ (closed_at − opened_at)` over closed bins, exact.
    interval_cost: Area,
    /// Arrival awaiting its `Placed` event: `(item, at, size)`.
    pending_arrival: Option<(ItemId, Time, SizeVec)>,
    /// Sum of all mirrored bin loads (raw units), per dimension.
    total_load: [u64; MAX_DIMS],
    /// `∫ (mirrored total load) dt` — the served-demand area, which may
    /// never exceed `integral_cost` (utilisation ≤ 1).
    load_area: Area,
    /// Items displaced by a crash and not yet re-admitted. Whatever is
    /// left after the run must equal the report's `dropped` count.
    displaced_outstanding: std::collections::HashSet<u32>,
    failures_seen: u64,
    displacements_seen: u64,
    readmissions_seen: u64,
    migrations_seen: u64,
    migration_closures_seen: u64,
    /// Independent budget replay, armed by [`InvariantAuditor::expect_budget`]:
    /// every `Placed`/`Departure` event opens an epoch exactly as the engine
    /// does, and each `ItemMigrated` must fit the replayed allowance.
    budget_replay: Option<RecourseCtl>,
    events_seen: u64,
    violation: Option<AuditViolation>,
}

impl InvariantAuditor {
    /// A fresh auditor.
    pub fn new() -> InvariantAuditor {
        InvariantAuditor::default()
    }

    /// The first violation observed during streaming, if any.
    pub fn violation(&self) -> Option<&AuditViolation> {
        self.violation.as_ref()
    }

    /// Number of events received (including any after a latched
    /// violation).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Declares the [`RecourseBudget`] the audited run was configured with
    /// and arms the budget replay: the auditor then re-derives the per-epoch
    /// move allowance from the event stream alone (every `Placed` and
    /// `Departure` opens an epoch, exactly mirroring the engine) and flags
    /// any `ItemMigrated` the declared budget could not have afforded.
    /// Call before the run starts.
    pub fn expect_budget(&mut self, budget: RecourseBudget) {
        self.budget_replay = Some(RecourseCtl::new(budget));
    }

    /// Voluntary migrations observed in the stream so far.
    pub fn migrations_seen(&self) -> u64 {
        self.migrations_seen
    }

    /// Exact `∫ (open bins) dt` accumulated from the event stream so far.
    pub fn integral_cost(&self) -> Area {
        self.integral_cost
    }

    /// Exact `Σ (closed − opened)` over bins the stream has closed.
    pub fn interval_cost(&self) -> Area {
        self.interval_cost
    }

    fn fail(&mut self, event: &EngineEvent, message: String) {
        if self.violation.is_none() {
            self.violation = Some(AuditViolation {
                index: self.events_seen - 1,
                event: Some(*event),
                message,
            });
        }
    }

    fn fail_post(&mut self, message: String) {
        if self.violation.is_none() {
            self.violation = Some(AuditViolation {
                index: u64::MAX,
                event: None,
                message,
            });
        }
    }

    /// Advances the cost and served-demand integrals to `t` using the
    /// current open count and total load.
    fn integrate_to(&mut self, t: Time) {
        if t > self.cur {
            let dt = t.since(self.cur);
            self.integral_cost += Area::from_bins_ticks(self.open_count as u64, dt);
            // The bottleneck dimension binds: every open bin serves at most
            // one unit of each dimension, so `max_d ΣL_d ≤ open bins` is the
            // tightest served-demand bound (and equals the scalar load at
            // D = 1).
            let bottleneck = self.total_load.iter().copied().max().unwrap_or(0);
            self.load_area += Area::from_load_ticks(bottleneck, dt);
            self.cur = t;
        }
    }

    /// Post-run check: every bin closed, and the three cost ledgers —
    /// engine-incremental ([`PackingResult::cost`]), per-bin intervals,
    /// and the open-count integral (both mirrored here, plus the result's
    /// own timeline integral) — agree exactly.
    ///
    /// Returns the streaming violation if one was latched mid-run.
    pub fn verify_result(&mut self, result: &PackingResult) -> Result<(), AuditViolation> {
        if self.violation.is_none() {
            if self.open_count != 0 {
                self.fail_post(format!(
                    "{} bin(s) still open after the run",
                    self.open_count
                ));
            } else if result.bins_opened != self.bins.len() {
                self.fail_post(format!(
                    "result says {} bins opened, event stream saw {}",
                    result.bins_opened,
                    self.bins.len()
                ));
            } else if self.interval_cost != result.cost {
                self.fail_post(format!(
                    "cost mismatch: per-bin intervals give {}, engine accumulated {}",
                    self.interval_cost, result.cost
                ));
            } else if self.integral_cost != result.cost {
                self.fail_post(format!(
                    "cost mismatch: open-count integral gives {}, engine accumulated {}",
                    self.integral_cost, result.cost
                ));
            } else if result.cost_from_timeline() != result.cost {
                self.fail_post(format!(
                    "cost mismatch: result timeline integrates to {}, engine accumulated {}",
                    result.cost_from_timeline(),
                    result.cost
                ));
            } else if self.load_area > self.integral_cost {
                self.fail_post(format!(
                    "over-unity utilisation: served demand {} exceeds bill {}",
                    self.load_area, self.integral_cost
                ));
            } else if self.failures_seen != result.resilience.bin_failures {
                self.fail_post(format!(
                    "resilience mismatch: stream saw {} bin failure(s), report says {}",
                    self.failures_seen, result.resilience.bin_failures
                ));
            } else if self.displacements_seen != result.resilience.displacements {
                self.fail_post(format!(
                    "resilience mismatch: stream saw {} displacement(s), report says {}",
                    self.displacements_seen, result.resilience.displacements
                ));
            } else if self.readmissions_seen != result.resilience.readmissions {
                self.fail_post(format!(
                    "resilience mismatch: stream saw {} re-admission(s), report says {}",
                    self.readmissions_seen, result.resilience.readmissions
                ));
            } else if result.resilience.displacements
                != result.resilience.readmissions + result.resilience.dropped
            {
                self.fail_post(format!(
                    "resilience ledger broken: {} displaced ≠ {} re-admitted + {} dropped",
                    result.resilience.displacements,
                    result.resilience.readmissions,
                    result.resilience.dropped
                ));
            } else if self.displaced_outstanding.len() as u64 != result.resilience.dropped {
                self.fail_post(format!(
                    "{} displaced item(s) never re-admitted, report counts {} dropped",
                    self.displaced_outstanding.len(),
                    result.resilience.dropped
                ));
            } else if self.migrations_seen != result.recourse.migrations {
                self.fail_post(format!(
                    "recourse mismatch: stream saw {} migration(s), report says {}",
                    self.migrations_seen, result.recourse.migrations
                ));
            } else if self.migration_closures_seen != result.recourse.migration_closures {
                self.fail_post(format!(
                    "recourse mismatch: stream saw {} migration closure(s), report says {}",
                    self.migration_closures_seen, result.recourse.migration_closures
                ));
            } else if let Some(replayed) = self
                .budget_replay
                .as_ref()
                .filter(|ctl| !ctl.budget.is_none())
                .map(|ctl| ctl.report.epochs)
            {
                if replayed != result.recourse.epochs {
                    self.fail_post(format!(
                        "recourse mismatch: budget replay opened {} epoch(s), report says {}",
                        replayed, result.recourse.epochs
                    ));
                }
            }
        }
        match &self.violation {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }
}

impl EventSink for InvariantAuditor {
    fn on_event(&mut self, event: &EngineEvent, bins: &BinStore) {
        self.events_seen += 1;
        if self.violation.is_some() {
            return;
        }
        // Monotonicity first: no event may be stamped before the integral
        // frontier (the latest time already seen).
        let t = event.time();
        if t < self.cur {
            self.fail(
                event,
                format!("time regressed: {t} < frontier {}", self.cur),
            );
            return;
        }
        self.integrate_to(t);
        match *event {
            EngineEvent::Arrival { item, at, size, .. } => {
                if let Some((prev, _, _)) = self.pending_arrival {
                    self.fail(
                        event,
                        format!("arrival of {item} while {prev} still awaits placement"),
                    );
                    return;
                }
                // The store is pre-placement here: the exact state both
                // First-Fit implementations answer from.
                let tree = bins.first_fit(size);
                let linear = bins.first_fit_linear(size);
                if tree != linear {
                    self.fail(
                        event,
                        format!(
                            "First-Fit divergence for {item} (size {:?}): tree says {:?}, linear scan says {:?}",
                            size.raws(),
                            tree,
                            linear
                        ),
                    );
                    return;
                }
                self.pending_arrival = Some((item, at, size));
            }
            EngineEvent::BinOpened { bin, at } => {
                if bin.index() != self.bins.len() {
                    self.fail(
                        event,
                        format!("{bin} opened out of order (expected b{})", self.bins.len()),
                    );
                    return;
                }
                self.bins.push(MirrorBin {
                    opened_at: at,
                    load: [0; MAX_DIMS],
                    residents: 0,
                    open: true,
                });
                self.open_count += 1;
                if bins.open_count() != self.open_count {
                    self.fail(
                        event,
                        format!(
                            "open-count mismatch: store has {}, mirror has {}",
                            bins.open_count(),
                            self.open_count
                        ),
                    );
                }
            }
            EngineEvent::Placed {
                item,
                at,
                bin,
                opened,
                load_after,
                ..
            } => {
                let (p_item, p_at, p_size) = match self.pending_arrival.take() {
                    Some(p) => p,
                    None => {
                        self.fail(event, format!("{item} placed without a pending arrival"));
                        return;
                    }
                };
                if p_item != item || p_at != at {
                    self.fail(
                        event,
                        format!("placement of {item}@{at} does not match pending arrival {p_item}@{p_at}"),
                    );
                    return;
                }
                let Some(m) = self.bins.get_mut(bin.index()) else {
                    self.fail(event, format!("{item} placed into never-opened {bin}"));
                    return;
                };
                if !m.open {
                    self.fail(event, format!("{item} placed into closed {bin}"));
                    return;
                }
                if opened != (m.residents == 0) {
                    let residents = m.residents;
                    self.fail(
                        event,
                        format!(
                            "opened={opened} disagrees with mirror ({residents} resident(s) in {bin})"
                        ),
                    );
                    return;
                }
                let raws = p_size.raws();
                for (l, r) in m.load.iter_mut().zip(raws) {
                    *l += r;
                }
                m.residents += 1;
                if m.load.iter().any(|&l| l > SIZE_SCALE) {
                    let load = m.load;
                    self.fail(
                        event,
                        format!("{bin} over capacity: mirrored load {load:?} > {SIZE_SCALE}"),
                    );
                    return;
                }
                if m.load != load_after.raws() {
                    let load = m.load;
                    self.fail(
                        event,
                        format!(
                            "load conservation broken in {bin}: mirror says {load:?}, engine reports {:?}",
                            load_after.raws()
                        ),
                    );
                    return;
                }
                for (l, r) in self.total_load.iter_mut().zip(raws) {
                    *l += r;
                }
                // The engine opens an arrival recourse epoch right after a
                // placement settles (fresh arrival or re-admission alike).
                if let Some(ctl) = &mut self.budget_replay {
                    if !ctl.budget.is_none() {
                        ctl.begin_epoch();
                    }
                }
            }
            EngineEvent::Departure {
                item, bin, size, ..
            } => {
                let Some(m) = self.bins.get_mut(bin.index()) else {
                    self.fail(event, format!("{item} departs never-opened {bin}"));
                    return;
                };
                if !m.open {
                    self.fail(event, format!("{item} departs closed {bin}"));
                    return;
                }
                let raws = size.raws();
                if m.residents == 0 || m.load.iter().zip(raws).any(|(&l, r)| l < r) {
                    let (load, residents) = (m.load, m.residents);
                    self.fail(
                        event,
                        format!(
                            "{item} (size {:?}) departs {bin} holding load {load:?} with {residents} resident(s)",
                            raws
                        ),
                    );
                    return;
                }
                for (l, r) in m.load.iter_mut().zip(raws) {
                    *l -= r;
                }
                m.residents -= 1;
                for (l, r) in self.total_load.iter_mut().zip(raws) {
                    *l -= r;
                }
                // A (non-stale) departure opens a departure recourse epoch;
                // any closure event for the emptied bin follows *before*
                // migrations, but closures never touch the allowance.
                if let Some(ctl) = &mut self.budget_replay {
                    if !ctl.budget.is_none() {
                        ctl.begin_epoch();
                    }
                }
            }
            EngineEvent::ItemDisplaced {
                item, bin, size, ..
            } => {
                // A displacement drains the bin exactly like a departure —
                // same conservation checks — but additionally opens a
                // re-admission obligation that `ItemReadmitted` (or the
                // report's `dropped` count) must later discharge.
                let Some(m) = self.bins.get_mut(bin.index()) else {
                    self.fail(event, format!("{item} displaced from never-opened {bin}"));
                    return;
                };
                if !m.open {
                    self.fail(event, format!("{item} displaced from closed {bin}"));
                    return;
                }
                let raws = size.raws();
                if m.residents == 0 || m.load.iter().zip(raws).any(|(&l, r)| l < r) {
                    let (load, residents) = (m.load, m.residents);
                    self.fail(
                        event,
                        format!(
                            "{item} (size {:?}) displaced from {bin} holding load {load:?} with {residents} resident(s)",
                            raws
                        ),
                    );
                    return;
                }
                for (l, r) in m.load.iter_mut().zip(raws) {
                    *l -= r;
                }
                m.residents -= 1;
                for (l, r) in self.total_load.iter_mut().zip(raws) {
                    *l -= r;
                }
                self.displacements_seen += 1;
                if !self.displaced_outstanding.insert(item.0) {
                    self.fail(event, format!("{item} displaced twice"));
                }
            }
            EngineEvent::ItemReadmitted {
                item,
                original,
                at,
                size,
                ..
            } => {
                if let Some((prev, _, _)) = self.pending_arrival {
                    self.fail(
                        event,
                        format!("re-admission of {item} while {prev} still awaits placement"),
                    );
                    return;
                }
                if !self.displaced_outstanding.remove(&original.0) {
                    self.fail(
                        event,
                        format!("{item} re-admits {original}, which was never displaced (or already re-admitted)"),
                    );
                    return;
                }
                // Same pre-placement First-Fit probe as a fresh arrival.
                let tree = bins.first_fit(size);
                let linear = bins.first_fit_linear(size);
                if tree != linear {
                    self.fail(
                        event,
                        format!(
                            "First-Fit divergence for re-admitted {item} (size {:?}): tree says {:?}, linear scan says {:?}",
                            size.raws(),
                            tree,
                            linear
                        ),
                    );
                    return;
                }
                self.readmissions_seen += 1;
                self.pending_arrival = Some((item, at, size));
            }
            EngineEvent::ItemMigrated {
                item,
                from,
                to,
                size,
                load_after,
                ..
            } => {
                if let Some((prev, _, _)) = self.pending_arrival {
                    self.fail(
                        event,
                        format!("migration of {item} while {prev} still awaits placement"),
                    );
                    return;
                }
                if from == to {
                    self.fail(event, format!("{item} \"migrated\" within {from}"));
                    return;
                }
                // Validate both endpoints before mutating either mirror, so
                // a latched violation leaves the divergent state intact.
                let (src_open, src_load, src_residents) = match self.bins.get(from.index()) {
                    Some(m) => (m.open, m.load, m.residents),
                    None => {
                        self.fail(event, format!("{item} migrated out of never-opened {from}"));
                        return;
                    }
                };
                if !src_open {
                    self.fail(event, format!("{item} migrated out of closed {from}"));
                    return;
                }
                let raws = size.raws();
                if src_residents == 0 || src_load.iter().zip(raws).any(|(&l, r)| l < r) {
                    self.fail(
                        event,
                        format!(
                            "{item} (size {:?}) migrated out of {from} holding load {src_load:?} with {src_residents} resident(s)",
                            raws
                        ),
                    );
                    return;
                }
                let dst_open = match self.bins.get(to.index()) {
                    Some(m) => m.open,
                    None => {
                        self.fail(event, format!("{item} migrated into never-opened {to}"));
                        return;
                    }
                };
                if !dst_open {
                    self.fail(event, format!("{item} migrated into closed {to}"));
                    return;
                }
                let src = &mut self.bins[from.index()];
                for (l, r) in src.load.iter_mut().zip(raws) {
                    *l -= r;
                }
                src.residents -= 1;
                let emptied = src.residents == 0;
                let dst = &mut self.bins[to.index()];
                for (l, r) in dst.load.iter_mut().zip(raws) {
                    *l += r;
                }
                dst.residents += 1;
                let dst_load = dst.load;
                if dst_load.iter().any(|&l| l > SIZE_SCALE) {
                    self.fail(
                        event,
                        format!(
                            "{to} over capacity after migration: mirrored load {dst_load:?} > {SIZE_SCALE}"
                        ),
                    );
                    return;
                }
                if dst_load != load_after.raws() {
                    self.fail(
                        event,
                        format!(
                            "load conservation broken by migration into {to}: mirror says {dst_load:?}, engine reports {:?}",
                            load_after.raws()
                        ),
                    );
                    return;
                }
                // `total_load` is deliberately untouched: a migration moves
                // load between bins, it never creates or destroys any.
                self.migrations_seen += 1;
                if emptied {
                    self.migration_closures_seen += 1;
                }
                let over_budget = match &mut self.budget_replay {
                    Some(ctl) => {
                        if ctl.allowance() == 0 {
                            true
                        } else {
                            ctl.spend();
                            false
                        }
                    }
                    None => false,
                };
                if over_budget {
                    let budget = self.budget_replay.as_ref().expect("just matched").budget;
                    self.fail(
                        event,
                        format!("migration of {item} exceeds the declared budget ({budget})"),
                    );
                }
            }
            EngineEvent::BinFailed { bin, at, opened_at } => {
                // A failed bin is a closed bin whose residents were forced
                // out: by the time `BinFailed` fires the mirror must be
                // fully drained, exactly as for a voluntary close.
                let Some(m) = self.bins.get_mut(bin.index()) else {
                    self.fail(event, format!("never-opened {bin} failed"));
                    return;
                };
                if !m.open {
                    self.fail(event, format!("{bin} failed after closing"));
                    return;
                }
                if m.residents != 0 || m.load != [0; MAX_DIMS] {
                    let (load, residents) = (m.load, m.residents);
                    self.fail(
                        event,
                        format!(
                            "{bin} failed while still holding load {load:?} ({residents} resident(s) not displaced)"
                        ),
                    );
                    return;
                }
                if m.opened_at != opened_at {
                    let mirror_opened = m.opened_at;
                    self.fail(
                        event,
                        format!(
                            "{bin} opened_at mismatch: mirror {mirror_opened}, event {opened_at}"
                        ),
                    );
                    return;
                }
                m.open = false;
                self.open_count -= 1;
                self.interval_cost += Area::from_bin_ticks(at.since(opened_at));
                self.failures_seen += 1;
            }
            EngineEvent::BinClosed { bin, at, opened_at } => {
                let Some(m) = self.bins.get_mut(bin.index()) else {
                    self.fail(event, format!("never-opened {bin} closed"));
                    return;
                };
                if !m.open {
                    self.fail(event, format!("{bin} closed twice"));
                    return;
                }
                if m.residents != 0 || m.load != [0; MAX_DIMS] {
                    let (load, residents) = (m.load, m.residents);
                    self.fail(
                        event,
                        format!(
                            "{bin} closed while holding load {load:?} ({residents} resident(s))"
                        ),
                    );
                    return;
                }
                if m.opened_at != opened_at {
                    let mirror_opened = m.opened_at;
                    self.fail(
                        event,
                        format!(
                            "{bin} opened_at mismatch: mirror {mirror_opened}, event {opened_at}"
                        ),
                    );
                    return;
                }
                m.open = false;
                self.open_count -= 1;
                self.interval_cost += Area::from_bin_ticks(at.since(opened_at));
            }
            EngineEvent::ClockAdvanced { from, to } => {
                if from > to {
                    self.fail(event, format!("clock moved backwards: {from} -> {to}"));
                }
            }
        }
    }
}

/// Batch-runs `instance` through `algo` with an [`InvariantAuditor`]
/// attached and the full post-run cost cross-check applied.
///
/// # Panics
/// Panics with the first [`AuditViolation`] if any engine invariant is
/// broken — the intended always-on harness for tests.
pub fn run_audited<A: OnlineAlgorithm>(
    instance: &Instance,
    algo: A,
) -> Result<PackingResult, EngineError> {
    let mut auditor = InvariantAuditor::new();
    let result = run_with_sink(instance, algo, &mut auditor)?;
    if let Err(v) = auditor.verify_result(&result) {
        panic!("{v}");
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Placement, SimView};
    use crate::item::Item;
    use crate::size::Size;
    use crate::time::Dur;

    struct Ff;
    impl OnlineAlgorithm for Ff {
        fn name(&self) -> &str {
            "ff"
        }
        fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
            match view.first_fit(item.size) {
                Some(b) => Placement::Existing(b),
                None => Placement::OpenNew,
            }
        }
        fn reset(&mut self) {}
    }

    fn sz(n: u64, d: u64) -> Size {
        Size::from_ratio(n, d)
    }

    #[test]
    fn clean_run_passes_the_full_audit() {
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 2)),
            (Time(2), Dur(5), sz(1, 2)),
            (Time(4), Dur(9), sz(2, 3)),
            (Time(20), Dur(1), sz(1, 8)),
        ])
        .unwrap();
        let res = run_audited(&inst, Ff).unwrap();
        assert_eq!(res.cost, res.cost_from_timeline());
    }

    #[test]
    fn auditor_costs_match_engine_on_interactive_runs() {
        use crate::engine::InteractiveSim;
        let mut auditor = InvariantAuditor::new();
        let mut sim = InteractiveSim::with_sink(Ff, &mut auditor);
        sim.advance_to(Time(0));
        let (a, _) = sim.arrive_undated(sz(1, 2)).unwrap();
        sim.arrive_at(Time(3), Dur(4), sz(1, 3)).unwrap();
        sim.set_departure(a, Time(10));
        let (_, res) = sim.finish();
        auditor.verify_result(&res).unwrap();
        assert_eq!(auditor.integral_cost(), res.cost);
        assert_eq!(auditor.interval_cost(), res.cost);
    }

    /// Forwards a live run's events to an auditor, letting the test doctor
    /// (or drop) events in flight — the engine's own stream is truthful,
    /// so this is how the "auditor catches the bug" path gets exercised.
    struct TamperSink<'a, F: FnMut(EngineEvent) -> Option<EngineEvent>> {
        inner: &'a mut InvariantAuditor,
        tweak: F,
    }

    impl<F: FnMut(EngineEvent) -> Option<EngineEvent>> EventSink for TamperSink<'_, F> {
        fn on_event(&mut self, event: &EngineEvent, bins: &BinStore) {
            if let Some(ev) = (self.tweak)(*event) {
                self.inner.on_event(&ev, bins);
            }
        }
    }

    #[test]
    fn auditor_names_the_first_corrupted_event() {
        use crate::engine::run_with_sink;
        let inst =
            Instance::from_triples([(Time(0), Dur(5), sz(1, 2)), (Time(1), Dur(3), sz(1, 4))])
                .unwrap();
        let mut auditor = InvariantAuditor::new();
        let mut seen = 0u64;
        let mut corrupted_at = None;
        let sink = TamperSink {
            inner: &mut auditor,
            tweak: |mut ev| {
                let idx = seen;
                seen += 1;
                if let EngineEvent::Placed {
                    item, load_after, ..
                } = &mut ev
                {
                    // Corrupt r1's reported post-placement load by one raw
                    // unit.
                    if item.index() == 1 {
                        let mut raws = load_after.raws();
                        raws[0] += 1;
                        *load_after = crate::size::LoadVec::from_raws(raws);
                        corrupted_at = Some(idx);
                    }
                }
                Some(ev)
            },
        };
        run_with_sink(&inst, Ff, sink).unwrap();
        let v = auditor.violation().expect("corruption detected");
        assert_eq!(Some(v.index), corrupted_at, "first divergent event named");
        assert!(v.message.contains("load conservation"), "{}", v.message);
        assert!(v.event.is_some());
    }

    #[test]
    fn auditor_flags_a_suppressed_bin_close() {
        use crate::engine::run_with_sink;
        let inst = Instance::from_triples([(Time(0), Dur(5), sz(1, 2))]).unwrap();
        let mut auditor = InvariantAuditor::new();
        let sink = TamperSink {
            inner: &mut auditor,
            tweak: |ev| match ev {
                EngineEvent::BinClosed { .. } => None,
                other => Some(other),
            },
        };
        let res = run_with_sink(&inst, Ff, sink).unwrap();
        let err = auditor.verify_result(&res).unwrap_err();
        assert_eq!(err.index, u64::MAX, "post-run violation");
        assert!(err.message.contains("still open"), "{}", err.message);
    }

    #[test]
    fn budget_replay_accepts_a_faithful_recourse_run() {
        use crate::engine::run_with_recourse;
        use crate::recourse::{Migration, RecourseEpoch, RecourseView};

        /// First-Fit that, at every departure epoch, tries to empty the
        /// lightest open bin into any other bin with room.
        struct Consolidator;
        impl OnlineAlgorithm for Consolidator {
            fn name(&self) -> &str {
                "consolidator-audit"
            }
            fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
                match view.first_fit(item.size) {
                    Some(b) => Placement::Existing(b),
                    None => Placement::OpenNew,
                }
            }
            fn propose_migration(
                &mut self,
                view: &RecourseView<'_>,
                epoch: RecourseEpoch,
                _moves_left: u32,
            ) -> Option<Migration> {
                if !matches!(epoch, RecourseEpoch::Departure) {
                    return None;
                }
                let sim = view.sim();
                let source = sim
                    .open_bins()
                    .min_by_key(|r| (r.load, r.id.0))
                    .map(|r| r.id)?;
                let (item, size, _) = view.residents(source).into_iter().next()?;
                let to = sim
                    .open_bins()
                    .find(|r| r.id != source && r.fits(size))
                    .map(|r| r.id)?;
                Some(Migration { item, to })
            }
            fn reset(&mut self) {}
        }

        let inst = Instance::from_triples([
            (Time(0), Dur(4), sz(1, 4)),
            (Time(0), Dur(10), sz(1, 4)),
            (Time(0), Dur(20), sz(3, 4)),
        ])
        .unwrap();
        let budget = RecourseBudget::per_epoch(1);
        let mut auditor = InvariantAuditor::new();
        auditor.expect_budget(budget);
        let res = run_with_recourse(&inst, Consolidator, budget, &mut auditor).unwrap();
        auditor.verify_result(&res).unwrap();
        assert_eq!(auditor.migrations_seen(), 1);
        assert_eq!(res.recourse.migrations, 1);
        assert_eq!(res.recourse.migration_closures, 1);
        assert_eq!(res.cost.as_bin_ticks(), 4.0 + 20.0);
    }

    /// Satellite fixture: an event stream forging a migration the declared
    /// budget could never afford must latch a violation at that event, even
    /// when the forged move itself is perfectly load-conserving.
    #[test]
    fn auditor_flags_a_forged_migration() {
        use crate::bin_state::BinId;
        use crate::engine::run_with_sink;

        /// Forwards the truthful stream and injects one forged event right
        /// after the first `Departure`.
        struct InjectSink<'a> {
            inner: &'a mut InvariantAuditor,
            forged: Option<EngineEvent>,
        }
        impl EventSink for InjectSink<'_> {
            fn on_event(&mut self, event: &EngineEvent, bins: &BinStore) {
                self.inner.on_event(event, bins);
                if matches!(event, EngineEvent::Departure { .. }) {
                    if let Some(f) = self.forged.take() {
                        self.inner.on_event(&f, bins);
                    }
                }
            }
        }

        // r0 [0,4) and r1 [0,10) share bin 0; r2 [0,20) pins bin 1. After
        // r0 departs, "moving" r1 into bin 1 conserves load exactly — only
        // the budget replay can tell it was never allowed.
        let inst = Instance::from_triples([
            (Time(0), Dur(4), sz(1, 2)),
            (Time(0), Dur(10), sz(1, 4)),
            (Time(0), Dur(20), sz(3, 4)),
        ])
        .unwrap();
        let mut auditor = InvariantAuditor::new();
        auditor.expect_budget(RecourseBudget::None);
        let forged = EngineEvent::ItemMigrated {
            item: ItemId(1),
            at: Time(4),
            from: BinId(0),
            to: BinId(1),
            size: sz(1, 4).into(),
            load_after: crate::size::LoadVec::from_raws([sz(3, 4).raw() + sz(1, 4).raw(), 0, 0]),
        };
        let sink = InjectSink {
            inner: &mut auditor,
            forged: Some(forged),
        };
        run_with_sink(&inst, Ff, sink).unwrap();
        let v = auditor.violation().expect("forged migration detected");
        assert!(
            v.message.contains("exceeds the declared budget"),
            "{}",
            v.message
        );
        assert!(matches!(
            v.event,
            Some(EngineEvent::ItemMigrated {
                item: ItemId(1),
                ..
            })
        ));
    }

    #[test]
    fn placement_paths_are_classified() {
        let inst =
            Instance::from_triples([(Time(0), Dur(5), sz(1, 2)), (Time(1), Dur(3), sz(1, 4))])
                .unwrap();
        let res = crate::engine::run(&inst, Ff).unwrap();
        // Ff answers through the tree only: every placement is fast-path.
        assert_eq!(res.metrics.fast_path_placements, 2);
        assert_eq!(res.metrics.scan_placements, 0);
        assert_eq!(res.metrics.arrivals, 2);
        assert!(res.metrics.tree_queries >= 2);
        assert_eq!(res.metrics.linear_scans, 0);
    }
}
