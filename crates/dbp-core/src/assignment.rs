//! Independent auditing of finished assignments.
//!
//! The engine already refuses illegal placements online, but experiments
//! should not have to trust the engine's incremental bookkeeping either.
//! [`audit`] recomputes, from scratch and only from `(instance, assignment)`:
//! capacity feasibility at every moment, the non-repacking "closed bins stay
//! closed" discipline, and the exact MinUsageTime cost. Tests assert it
//! agrees with the engine on every run.

use std::collections::HashMap;

use crate::bin_state::BinId;
use crate::cost::Area;
use crate::error::VerifyError;
use crate::instance::Instance;
use crate::item::ItemId;
use crate::size::{MAX_DIMS, SIZE_SCALE};
use crate::time::Time;

/// The audited measurements of an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Exact MinUsageTime cost recomputed from per-bin item intervals.
    pub cost: Area,
    /// Number of distinct bins used.
    pub bins_used: usize,
    /// Peak simultaneous open bins.
    pub max_open: usize,
}

/// Audits `assignment` (indexed by item id) against `instance`.
pub fn audit(instance: &Instance, assignment: &[BinId]) -> Result<AuditReport, VerifyError> {
    if assignment.len() != instance.len() {
        let id = ItemId(assignment.len().min(instance.len()) as u32);
        return Err(VerifyError::MissingItem { id });
    }

    // Group item ids per bin.
    let mut per_bin: HashMap<BinId, Vec<ItemId>> = HashMap::new();
    for (idx, &bin) in assignment.iter().enumerate() {
        per_bin.entry(bin).or_default().push(ItemId(idx as u32));
    }

    let mut cost = Area::ZERO;
    let mut spans: Vec<(Time, Time)> = Vec::with_capacity(per_bin.len());

    for (&bin, ids) in &per_bin {
        // Event sweep inside one bin: departures free capacity before
        // arrivals at the same tick (half-open intervals).
        let mut events: Vec<(Time, bool, [u64; MAX_DIMS])> = Vec::with_capacity(ids.len() * 2);
        let mut open_from = Time(u64::MAX);
        let mut close_at = Time::ZERO;
        for &id in ids {
            let it = instance.item(id);
            events.push((it.arrival, true, it.size.raws()));
            events.push((it.departure, false, it.size.raws()));
            open_from = open_from.min(it.arrival);
            close_at = close_at.max(it.departure);
        }
        events.sort_by_key(|&(t, is_arr, _)| (t, is_arr));

        // Per-dimension load sweep; a bin is empty iff every dimension is.
        let mut load = [0u64; MAX_DIMS];
        let mut ever_emptied_at: Option<Time> = None;
        for &(t, is_arr, raws) in &events {
            if is_arr {
                // Non-repacking discipline: once a bin empties it is closed
                // forever; a later arrival into the same BinId is a reuse.
                if let Some(closed) = ever_emptied_at {
                    if t >= closed && load == [0; MAX_DIMS] && closed < close_at {
                        return Err(VerifyError::BinReusedAfterClose { bin, at: t });
                    }
                }
                for (l, raw) in load.iter_mut().zip(raws) {
                    *l += raw;
                    if *l > SIZE_SCALE {
                        return Err(VerifyError::CapacityViolated { bin, at: t });
                    }
                }
            } else {
                for (l, raw) in load.iter_mut().zip(raws) {
                    *l -= raw;
                }
                if load == [0; MAX_DIMS] {
                    ever_emptied_at = Some(t);
                }
            }
        }
        debug_assert_eq!(load, [0; MAX_DIMS]);
        cost += Area::from_bin_ticks(close_at.since(open_from));
        spans.push((open_from, close_at));
    }

    // Peak open bins: sweep bin spans.
    let mut events: Vec<(Time, i32)> = Vec::with_capacity(spans.len() * 2);
    for &(s, e) in &spans {
        events.push((s, 1));
        events.push((e, -1));
    }
    events.sort_by_key(|&(t, d)| (t, d)); // closes (−1) before opens at same tick
    let mut cur = 0i64;
    let mut max_open = 0i64;
    for (_, d) in events {
        cur += d as i64;
        max_open = max_open.max(cur);
    }

    Ok(AuditReport {
        cost,
        bins_used: per_bin.len(),
        max_open: max_open as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::Size;
    use crate::time::Dur;

    fn sz(n: u64, d: u64) -> Size {
        Size::from_ratio(n, d)
    }

    fn inst(triples: &[(u64, u64, (u64, u64))]) -> Instance {
        Instance::from_triples(
            triples
                .iter()
                .map(|&(a, d, (n, den))| (Time(a), Dur(d), sz(n, den))),
        )
        .unwrap()
    }

    #[test]
    fn audit_cost_single_bin() {
        let instance = inst(&[(0, 10, (1, 2)), (2, 5, (1, 2))]);
        let report = audit(&instance, &[BinId(0), BinId(0)]).unwrap();
        assert_eq!(report.cost.as_bin_ticks(), 10.0);
        assert_eq!(report.bins_used, 1);
        assert_eq!(report.max_open, 1);
    }

    #[test]
    fn audit_detects_capacity_violation() {
        let instance = inst(&[(0, 10, (2, 3)), (2, 5, (2, 3))]);
        let err = audit(&instance, &[BinId(0), BinId(0)]).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::CapacityViolated { at: Time(2), .. }
        ));
    }

    #[test]
    fn audit_allows_touching_intervals_in_one_bin_only_if_never_emptied() {
        // [0,5) and [5,10) in the same bin: the bin empties at 5, so the
        // second item is a reuse of a closed bin.
        let instance = inst(&[(0, 5, (1, 1)), (5, 5, (1, 1))]);
        let err = audit(&instance, &[BinId(0), BinId(0)]).unwrap_err();
        assert!(matches!(err, VerifyError::BinReusedAfterClose { .. }));
    }

    #[test]
    fn audit_allows_chained_occupancy() {
        // [0,6) and [5,10): the bin never empties in between. Cost 10.
        let instance = inst(&[(0, 6, (1, 2)), (5, 5, (1, 2))]);
        let report = audit(&instance, &[BinId(0), BinId(0)]).unwrap();
        assert_eq!(report.cost.as_bin_ticks(), 10.0);
    }

    #[test]
    fn audit_detects_missing_items() {
        let instance = inst(&[(0, 5, (1, 2)), (1, 5, (1, 2))]);
        let err = audit(&instance, &[BinId(0)]).unwrap_err();
        assert!(matches!(err, VerifyError::MissingItem { .. }));
    }

    #[test]
    fn audit_max_open_with_half_open_semantics() {
        let instance = inst(&[(0, 5, (1, 1)), (5, 5, (1, 1))]);
        let report = audit(&instance, &[BinId(0), BinId(1)]).unwrap();
        assert_eq!(report.max_open, 1, "bin 0 closes before bin 1 opens");
        assert_eq!(report.cost.as_bin_ticks(), 10.0);
    }

    #[test]
    fn audit_two_bins_cost_adds() {
        let instance = inst(&[(0, 4, (1, 1)), (1, 5, (1, 1))]);
        let report = audit(&instance, &[BinId(0), BinId(1)]).unwrap();
        assert_eq!(report.cost.as_bin_ticks(), 9.0);
        assert_eq!(report.max_open, 2);
        assert_eq!(report.bins_used, 2);
    }
}
