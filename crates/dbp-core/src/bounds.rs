//! Certified bounds on the optimal cost.
//!
//! True `OPT_R(σ)` / `OPT_NR(σ)` are intractable at experiment scale, so
//! competitive ratios are reported against a *certified bracket*:
//!
//! * **Lower bounds** (all from the paper's Section 2/3): the span bound
//!   `OPT_R ≥ span(σ)`, the time–space bound `OPT_R ≥ d(σ)`, and the
//!   sharper load-ceiling bound `OPT_R ≥ ∫⌈S_t⌉ dt` (which dominates both
//!   whenever it applies pointwise; we still take the max of all three).
//! * **Upper bound**: Lemma 3.1 gives `OPT_R ≤ 2·∫⌈S_t⌉ dt ≤ 2d + 2span`,
//!   realized constructively by the repack-every-event FFD algorithm in
//!   `dbp-algos`; callers can tighten the bracket with any concrete
//!   packing's cost via [`OptBracket::tighten_upper`].
//!
//! Reporting `ON/upper ≤ ON/OPT ≤ ON/lower` gives sound two-sided estimates
//! of the competitive ratio without ever solving for OPT.

use crate::cost::Area;
use crate::instance::Instance;
use crate::profile::StepProfile;

/// A two-sided certified estimate of an optimal cost.
///
/// ```
/// use dbp_core::{Instance, OptBracket, Size, Time, Dur, Area};
///
/// let inst = Instance::from_triples([
///     (Time(0), Dur(8), Size::from_ratio(1, 2)),
///     (Time(0), Dur(8), Size::from_ratio(1, 2)),
///     (Time(0), Dur(8), Size::from_ratio(1, 2)),
/// ]).unwrap();
/// let bracket = OptBracket::of(&inst);      // Lemma 3.1 two-sided bound
/// assert!(bracket.lower <= bracket.upper);
/// // A measured online cost turns into a certified ratio interval:
/// let (at_least, at_most) = bracket.ratio_bracket(Area::from_bins_ticks(3, Dur(8)));
/// assert!(at_least <= at_most);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptBracket {
    /// Certified `OPT ≥ lower`.
    pub lower: Area,
    /// Certified `OPT ≤ upper`.
    pub upper: Area,
}

/// The individual lower bounds, kept separate for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBounds {
    /// `span(σ)` — at least one bin whenever anything is active.
    pub span: Area,
    /// `d(σ)` — total space-time demand must fit somewhere.
    pub demand: Area,
    /// `∫⌈S_t⌉ dt` — at least `⌈S_t⌉` bins at each moment.
    pub ceil_integral: Area,
}

impl LowerBounds {
    /// Computes all three lower bounds for an instance.
    ///
    /// For vector instances each bound is applied *per dimension* and the
    /// max is taken: any packing must serve every dimension, so the binding
    /// dimension's `d(σ)` and `∫⌈S_t⌉` are valid lower bounds on the whole
    /// vector optimum. At D = 1 this is byte-identical to the scalar
    /// bounds.
    pub fn of(instance: &Instance) -> LowerBounds {
        let ceil_integral = (0..instance.dims())
            .map(|d| StepProfile::from_items_dim(instance.items(), d).ceil_integral())
            .max()
            .unwrap_or(Area::ZERO);
        LowerBounds {
            span: instance.span(),
            demand: instance.demand(),
            ceil_integral,
        }
    }

    /// The best (largest) of the lower bounds.
    pub fn best(&self) -> Area {
        self.span.max(self.demand).max(self.ceil_integral)
    }
}

impl OptBracket {
    /// The Lemma 3.1 bracket: `max(span, d, ∫⌈S_t⌉) ≤ OPT_R ≤ 2∫⌈S_t⌉`.
    ///
    /// Note the upper side only bounds the *repacking* optimum; since
    /// `OPT_R ≤ OPT_NR`, the lower side is valid for both optima while the
    /// upper side is an upper bound on `OPT_R` only (tighten with a concrete
    /// non-repacking packing for `OPT_NR`).
    ///
    /// For vector instances the upper side uses the *max-component*
    /// scalarized profile: a scalar packing that is feasible on
    /// `max_d s_d(r)` sizes is feasible on the vectors themselves (every
    /// per-dimension bin load is ≤ the max-component load), so Lemma 3.1's
    /// `2∫⌈S_t⌉ dt` applied to that profile certifies the vector optimum.
    /// The lower side is the per-dimension max from [`LowerBounds::of`];
    /// at D = 1 both sides collapse to the scalar bracket.
    pub fn of(instance: &Instance) -> OptBracket {
        let lb = LowerBounds::of(instance);
        let lower = lb.best();
        let upper = StepProfile::from_items_max(instance.items())
            .ceil_integral()
            .scale(2);
        debug_assert!(lower <= upper);
        OptBracket { lower, upper }
    }

    /// Tightens the upper side with the measured cost of any feasible
    /// packing (e.g. offline FFD-with-repacking for `OPT_R`, or the best
    /// offline non-repacking heuristic for `OPT_NR`).
    pub fn tighten_upper(self, feasible_cost: Area) -> OptBracket {
        OptBracket {
            lower: self.lower,
            upper: self.upper.min(feasible_cost).max(self.lower),
        }
    }

    /// Intersects two sound brackets on the same optimum: the tighter of
    /// each side. If rounding or an unsound input would cross the sides,
    /// the upper is clamped to the lower (as in [`OptBracket::tighten_upper`]).
    pub fn intersect(self, other: OptBracket) -> OptBracket {
        let lower = self.lower.max(other.lower);
        OptBracket {
            lower,
            upper: self.upper.min(other.upper).max(lower),
        }
    }

    /// Ratio bracket for an online cost: `(on/upper, on/lower)`.
    ///
    /// The true competitive ratio on this instance lies inside the returned
    /// interval.
    pub fn ratio_bracket(&self, online_cost: Area) -> (f64, f64) {
        (
            online_cost.ratio_to(self.upper),
            online_cost.ratio_to(self.lower),
        )
    }

    /// Width of the bracket as `upper/lower` (1.0 = exact).
    pub fn looseness(&self) -> f64 {
        self.upper.ratio_to(self.lower)
    }
}

/// The rung of the bracket-refinement ladder that certified a bound.
///
/// The experiment harness refines brackets through a fixed ladder — the
/// analytic Lemma 3.1 bracket, FFD-repack tightening, the non-repacking
/// portfolio, and (budgeted) exact search. The ordering is refinement
/// depth: a higher rung never certifies a looser bracket than a lower one
/// on the same instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BracketRung {
    /// The closed-form Lemma 3.1 / Section 2 bounds alone.
    Analytic,
    /// Tightened by (possibly budget-truncated) FFD-repack.
    FfdRepack,
    /// Tightened by the best non-repacking portfolio member.
    Portfolio,
    /// Tightened (often collapsed) by exact search.
    Exact,
}

impl BracketRung {
    /// Stable lowercase name, used in reports and the cache spill format.
    pub fn as_str(self) -> &'static str {
        match self {
            BracketRung::Analytic => "analytic",
            BracketRung::FfdRepack => "ffd-repack",
            BracketRung::Portfolio => "portfolio",
            BracketRung::Exact => "exact",
        }
    }

    /// Inverse of [`BracketRung::as_str`].
    pub fn parse(s: &str) -> Option<BracketRung> {
        Some(match s {
            "analytic" => BracketRung::Analytic,
            "ffd-repack" => BracketRung::FfdRepack,
            "portfolio" => BracketRung::Portfolio,
            "exact" => BracketRung::Exact,
            _ => return None,
        })
    }
}

impl core::fmt::Display for BracketRung {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a certified bracket came from, for cache-hit accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BracketSource {
    /// Computed cold in this process.
    Computed,
    /// Served from the in-memory cache layer.
    WarmMemory,
    /// Served from the JSONL spill of an earlier process.
    WarmDisk,
}

impl BracketSource {
    /// Short stable label for report columns.
    pub fn as_str(self) -> &'static str {
        match self {
            BracketSource::Computed => "cold",
            BracketSource::WarmMemory => "mem",
            BracketSource::WarmDisk => "disk",
        }
    }

    /// Whether the bracket was served from either cache layer.
    pub fn is_warm(self) -> bool {
        !matches!(self, BracketSource::Computed)
    }
}

impl core::fmt::Display for BracketSource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An [`OptBracket`] together with its provenance: the ladder rung that
/// certified it and the cache layer (if any) that served it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifiedBracket {
    /// The certified two-sided bound.
    pub bracket: OptBracket,
    /// Deepest ladder rung that tightened the bracket.
    pub rung: BracketRung,
    /// Cold computation or warm cache layer.
    pub source: BracketSource,
}

impl CertifiedBracket {
    /// Delegates to [`OptBracket::ratio_bracket`].
    pub fn ratio_bracket(&self, online_cost: Area) -> (f64, f64) {
        self.bracket.ratio_bracket(online_cost)
    }

    /// Delegates to [`OptBracket::looseness`].
    pub fn looseness(&self) -> f64 {
        self.bracket.looseness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::Size;
    use crate::time::{Dur, Time};

    fn sz(n: u64, d: u64) -> Size {
        Size::from_ratio(n, d)
    }

    #[test]
    fn lower_bounds_simple_instance() {
        // One full-size item for 10 ticks: span = d = ceil = 10.
        let inst = Instance::from_triples([(Time(0), Dur(10), Size::FULL)]).unwrap();
        let lb = LowerBounds::of(&inst);
        assert_eq!(lb.span.as_bin_ticks(), 10.0);
        assert_eq!(lb.demand.as_bin_ticks(), 10.0);
        assert_eq!(lb.ceil_integral.as_bin_ticks(), 10.0);
        assert_eq!(lb.best().as_bin_ticks(), 10.0);
    }

    #[test]
    fn ceil_integral_dominates_span_under_load() {
        // Three half items overlapping: S_t = 1.5 → ⌈S_t⌉ = 2 over 10 ticks.
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 2)),
            (Time(0), Dur(10), sz(1, 2)),
            (Time(0), Dur(10), sz(1, 2)),
        ])
        .unwrap();
        let lb = LowerBounds::of(&inst);
        assert_eq!(lb.span.as_bin_ticks(), 10.0);
        assert_eq!(lb.demand.as_bin_ticks(), 15.0);
        assert_eq!(lb.ceil_integral.as_bin_ticks(), 20.0);
        assert_eq!(lb.best(), lb.ceil_integral);
    }

    #[test]
    fn span_dominates_for_tiny_items() {
        // A sparse chain of tiny items: span 30 ≫ demand.
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 100)),
            (Time(10), Dur(10), sz(1, 100)),
            (Time(20), Dur(10), sz(1, 100)),
        ])
        .unwrap();
        let lb = LowerBounds::of(&inst);
        assert_eq!(lb.best(), lb.span);
        assert_eq!(lb.span.as_bin_ticks(), 30.0);
    }

    #[test]
    fn bracket_is_ordered_and_tightens() {
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 2)),
            (Time(0), Dur(10), sz(1, 2)),
            (Time(0), Dur(10), sz(1, 2)),
        ])
        .unwrap();
        let b = OptBracket::of(&inst);
        assert!(b.lower <= b.upper);
        assert_eq!(b.upper.as_bin_ticks(), 40.0);
        // A concrete packing of cost 20 tightens the upper bound.
        let tightened = b.tighten_upper(Area::from_bins_ticks(2, Dur(10)));
        assert_eq!(tightened.upper.as_bin_ticks(), 20.0);
        assert_eq!(tightened.looseness(), 1.0);
        // A worse packing does not loosen it back.
        let same = tightened.tighten_upper(Area::from_bins_ticks(5, Dur(10)));
        assert_eq!(same.upper, tightened.upper);
    }

    #[test]
    fn tighten_never_crosses_lower() {
        let inst = Instance::from_triples([(Time(0), Dur(10), Size::FULL)]).unwrap();
        let b = OptBracket::of(&inst);
        // A (bogus) claimed cost below the certified lower bound is clamped.
        let t = b.tighten_upper(Area::from_bin_ticks(Dur(1)));
        assert_eq!(t.upper, t.lower);
    }

    #[test]
    fn ratio_bracket_contains_truth_for_known_opt() {
        // OPT = 10 (single bin suffices); ON = 20.
        let inst = Instance::from_triples([(Time(0), Dur(10), sz(1, 2))]).unwrap();
        let b = OptBracket::of(&inst).tighten_upper(Area::from_bin_ticks(Dur(10)));
        let (lo, hi) = b.ratio_bracket(Area::from_bins_ticks(2, Dur(10)));
        assert!(lo <= 2.0 && 2.0 <= hi);
    }

    #[test]
    fn intersect_takes_the_tighter_side_and_clamps() {
        let a = OptBracket {
            lower: Area::from_bin_ticks(Dur(5)),
            upper: Area::from_bin_ticks(Dur(20)),
        };
        let b = OptBracket {
            lower: Area::from_bin_ticks(Dur(8)),
            upper: Area::from_bin_ticks(Dur(30)),
        };
        let i = a.intersect(b);
        assert_eq!(i.lower.as_bin_ticks(), 8.0);
        assert_eq!(i.upper.as_bin_ticks(), 20.0);
        // Disjoint (unsound) inputs clamp instead of inverting.
        let c = OptBracket {
            lower: Area::from_bin_ticks(Dur(25)),
            upper: Area::from_bin_ticks(Dur(30)),
        };
        let clamped = a.intersect(c);
        assert_eq!(clamped.lower, clamped.upper);
    }

    #[test]
    fn rung_and_source_round_trip() {
        for rung in [
            BracketRung::Analytic,
            BracketRung::FfdRepack,
            BracketRung::Portfolio,
            BracketRung::Exact,
        ] {
            assert_eq!(BracketRung::parse(rung.as_str()), Some(rung));
        }
        assert_eq!(BracketRung::parse("martian"), None);
        assert!(BracketRung::Analytic < BracketRung::Exact);
        assert!(BracketSource::WarmDisk.is_warm());
        assert!(!BracketSource::Computed.is_warm());
    }

    #[test]
    fn vector_bracket_reflects_the_binding_dimension() {
        use crate::size::SizeVec;
        // Three items tiny in dim 0 but half-sized in dim 1: a dim-0-only
        // bracket would certify almost nothing.
        let s = SizeVec::from_sizes(&[sz(1, 100), sz(1, 2)]).unwrap();
        let inst = Instance::from_triples([
            (Time(0), Dur(10), s),
            (Time(0), Dur(10), s),
            (Time(0), Dur(10), s),
        ])
        .unwrap();
        let lb = LowerBounds::of(&inst);
        // Dimension 1 binds: S_t = 1.5 there → ⌈S_t⌉ = 2 over 10 ticks.
        assert_eq!(lb.ceil_integral.as_bin_ticks(), 20.0);
        assert_eq!(lb.demand.as_bin_ticks(), 15.0);
        let b = OptBracket::of(&inst);
        assert_eq!(b.lower.as_bin_ticks(), 20.0);
        // Max-component profile equals the dim-1 profile here.
        assert_eq!(b.upper.as_bin_ticks(), 40.0);
        // Matching scalar instance on the max component gives the same
        // bracket (D = 1 contract seen from the other side).
        let scalar = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 2)),
            (Time(0), Dur(10), sz(1, 2)),
            (Time(0), Dur(10), sz(1, 2)),
        ])
        .unwrap();
        assert_eq!(OptBracket::of(&scalar), b);
    }

    #[test]
    fn empty_instance_bracket() {
        let b = OptBracket::of(&Instance::empty());
        assert_eq!(b.lower, Area::ZERO);
        assert_eq!(b.upper, Area::ZERO);
        assert_eq!(b.ratio_bracket(Area::ZERO), (1.0, 1.0));
    }
}
