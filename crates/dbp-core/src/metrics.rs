//! Alternative goal functions and packing-quality metrics.
//!
//! The paper's introduction contrasts MinUsageTime with the older
//! *momentary* goal function — the worst instantaneous ratio between the
//! online algorithm's open bins and the optimum's — and argues MinUsageTime
//! captures total performance better (a single bad moment should not
//! dominate). This module makes both views measurable on a finished run,
//! plus utilisation diagnostics used in reports:
//!
//! * [`momentary_ratio`] — `max_t ON_t / ⌈S_t⌉`, the certified momentary
//!   competitive ratio (using the load-ceiling lower bound on `OPT_t`);
//! * [`average_open_ratio`] — the usage-time analogue `∫ON_t / ∫⌈S_t⌉`;
//! * [`UtilisationStats`] — how full the algorithm's bins actually were,
//!   time-averaged.

use crate::engine::PackingResult;
use crate::instance::Instance;
use crate::time::Time;

/// The certified momentary ratio: the maximum over all moments of
/// `ON_t / ⌈S_t(σ)⌉` (the denominator lower-bounds any algorithm's open
/// bins). Returns 1.0 for empty instances.
///
/// A large momentary ratio with a small usage-time ratio is exactly the
/// regime the introduction describes: momentarily bad, globally fine.
pub fn momentary_ratio(instance: &Instance, result: &PackingResult) -> f64 {
    let profile = instance.load_profile();
    let mut worst: f64 = 1.0;
    // Breakpoints of either step function.
    let mut times: Vec<Time> = profile.segments().iter().map(|&(t, _)| t).collect();
    times.extend(result.timeline.iter().map(|&(t, _)| t));
    times.sort_unstable();
    times.dedup();
    for t in times {
        let on = result.open_at(t) as f64;
        let opt = profile.load_at(t).ceil_bins() as f64;
        if opt > 0.0 {
            worst = worst.max(on / opt);
        }
    }
    worst
}

/// The time-integrated analogue: `∫ ON_t dt / ∫ ⌈S_t⌉ dt` — an upper
/// estimate of the usage-time competitive ratio using the load-ceiling
/// lower bound.
pub fn average_open_ratio(instance: &Instance, result: &PackingResult) -> f64 {
    let denom = instance.load_profile().ceil_integral();
    result.cost.ratio_to(denom)
}

/// Time-averaged bin utilisation of a finished run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilisationStats {
    /// `d(σ) / ON(σ)`: fraction of paid bin-time actually used by items.
    pub volume_utilisation: f64,
    /// Mean number of simultaneously open bins over the busy period.
    pub mean_open_bins: f64,
    /// Peak open bins.
    pub peak_open_bins: usize,
}

/// Computes [`UtilisationStats`] for a run.
pub fn utilisation(instance: &Instance, result: &PackingResult) -> UtilisationStats {
    let demand = instance.demand();
    let busy = instance.span_dur();
    let mean = if busy.is_zero() {
        0.0
    } else {
        result.cost.as_bin_ticks() / busy.ticks() as f64
    };
    UtilisationStats {
        volume_utilisation: if result.cost.is_zero() {
            1.0
        } else {
            demand.ratio_to(result.cost).min(1.0)
        },
        mean_open_bins: mean,
        peak_open_bins: result.max_open,
    }
}

/// Where the paid-but-unused bin time went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WasteBreakdown {
    /// Total paid bin·ticks (`ON(σ)`).
    pub paid: f64,
    /// Bin·ticks actually carrying items (`d(σ)`).
    pub used: f64,
    /// Unavoidable granularity waste even for a repacking optimum:
    /// `∫(⌈S_t⌉ − S_t) dt`.
    pub granularity: f64,
    /// Everything else — the algorithm's own packing waste:
    /// `ON − ∫⌈S_t⌉` (can be zero, never negative for feasible packings).
    pub packing: f64,
}

/// Decomposes a run's cost into used volume, unavoidable granularity
/// waste, and algorithm-attributable packing waste.
pub fn waste_breakdown(instance: &Instance, result: &PackingResult) -> WasteBreakdown {
    let profile = instance.load_profile();
    let paid = result.cost.as_bin_ticks();
    let used = profile.integral().as_bin_ticks();
    let ceil = profile.ceil_integral().as_bin_ticks();
    WasteBreakdown {
        paid,
        used,
        granularity: (ceil - used).max(0.0),
        packing: (paid - ceil).max(0.0),
    }
}

/// Convenience: both ratios at once for reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoalComparison {
    /// The paper's MinUsageTime ratio estimate (vs `∫⌈S_t⌉`).
    pub usage_time: f64,
    /// The momentary ratio (vs `⌈S_t⌉` pointwise).
    pub momentary: f64,
}

/// Computes the two goal functions side by side.
pub fn compare_goals(instance: &Instance, result: &PackingResult) -> GoalComparison {
    GoalComparison {
        usage_time: average_open_ratio(instance, result),
        momentary: momentary_ratio(instance, result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{OnlineAlgorithm, Placement, SimView};
    use crate::engine;
    use crate::item::Item;
    use crate::size::Size;
    use crate::time::Dur;

    struct Ff;
    impl OnlineAlgorithm for Ff {
        fn name(&self) -> &str {
            "ff"
        }
        fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
            match view.first_fit(item.size) {
                Some(b) => Placement::Existing(b),
                None => Placement::OpenNew,
            }
        }
        fn reset(&mut self) {}
    }

    /// One bin per item even though loads are tiny: the "momentarily bad"
    /// regime — intentionally wasteful packer.
    struct Spreader;
    impl OnlineAlgorithm for Spreader {
        fn name(&self) -> &str {
            "spreader"
        }
        fn on_arrival(&mut self, _view: &SimView<'_>, _item: &Item) -> Placement {
            Placement::OpenNew
        }
        fn reset(&mut self) {}
    }

    fn sz(n: u64, d: u64) -> Size {
        Size::from_ratio(n, d)
    }

    #[test]
    fn optimal_run_scores_one() {
        let inst = Instance::from_triples([(Time(0), Dur(10), sz(1, 2))]).unwrap();
        let res = engine::run(&inst, Ff).unwrap();
        assert_eq!(momentary_ratio(&inst, &res), 1.0);
        assert_eq!(average_open_ratio(&inst, &res), 1.0);
    }

    #[test]
    fn spreader_pays_in_both_metrics() {
        let inst = Instance::from_triples([
            (Time(0), Dur(10), sz(1, 4)),
            (Time(0), Dur(10), sz(1, 4)),
            (Time(0), Dur(10), sz(1, 4)),
        ])
        .unwrap();
        let res = engine::run(&inst, Spreader).unwrap();
        assert_eq!(momentary_ratio(&inst, &res), 3.0);
        assert_eq!(average_open_ratio(&inst, &res), 3.0);
    }

    #[test]
    fn momentary_spike_vs_flat_usage() {
        // A brief 3-bin spike inside a long 1-bin run: momentary ratio 3,
        // usage-time ratio stays near 1 — the introduction's motivating
        // distinction.
        let inst = Instance::from_triples([
            (Time(0), Dur(100), sz(1, 4)),
            (Time(50), Dur(1), sz(1, 4)),
            (Time(50), Dur(1), sz(1, 4)),
        ])
        .unwrap();
        let res = engine::run(&inst, Spreader).unwrap();
        let goals = compare_goals(&inst, &res);
        assert_eq!(goals.momentary, 3.0);
        assert!(goals.usage_time < 1.1, "usage ratio {}", goals.usage_time);
    }

    #[test]
    fn utilisation_stats_sane() {
        let inst =
            Instance::from_triples([(Time(0), Dur(10), sz(1, 2)), (Time(0), Dur(10), sz(1, 2))])
                .unwrap();
        let res = engine::run(&inst, Ff).unwrap();
        let u = utilisation(&inst, &res);
        assert_eq!(u.volume_utilisation, 1.0, "two halves fill the bin");
        assert_eq!(u.mean_open_bins, 1.0);
        assert_eq!(u.peak_open_bins, 1);
        let res = engine::run(&inst, Spreader).unwrap();
        let u = utilisation(&inst, &res);
        assert_eq!(u.volume_utilisation, 0.5);
        assert_eq!(u.peak_open_bins, 2);
    }

    #[test]
    fn waste_breakdown_partitions_cost() {
        // Three 1/4 items spread over one bin, plus a spreader run.
        let inst = Instance::from_triples([
            (Time(0), Dur(8), sz(1, 4)),
            (Time(0), Dur(8), sz(1, 4)),
            (Time(0), Dur(8), sz(1, 4)),
        ])
        .unwrap();
        let res = engine::run(&inst, Ff).unwrap();
        let w = waste_breakdown(&inst, &res);
        assert_eq!(w.paid, 8.0);
        assert_eq!(w.used, 6.0);
        assert_eq!(w.granularity, 2.0, "ceil(0.75)=1 bin for 8 ticks");
        assert_eq!(w.packing, 0.0, "FF is ceil-optimal here");
        // Paid = used + granularity + packing holds when packing ≥ 0.
        assert!((w.paid - (w.used + w.granularity + w.packing)).abs() < 1e-9);

        let res = engine::run(&inst, Spreader).unwrap();
        let w = waste_breakdown(&inst, &res);
        assert_eq!(w.paid, 24.0);
        assert_eq!(w.packing, 16.0, "two extra bins for 8 ticks");
    }

    #[test]
    fn empty_instance_degenerate_values() {
        let inst = Instance::empty();
        let res = engine::run(&inst, Ff).unwrap();
        assert_eq!(momentary_ratio(&inst, &res), 1.0);
        assert_eq!(average_open_ratio(&inst, &res), 1.0);
        let u = utilisation(&inst, &res);
        assert_eq!(u.volume_utilisation, 1.0);
        assert_eq!(u.mean_open_bins, 0.0);
    }
}
