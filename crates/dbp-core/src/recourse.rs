//! Recourse budgets: bounded voluntary item migration (ROADMAP item 3).
//!
//! The classic MinUsageTime model is irrevocable: once placed, an item
//! stays in its bin until it departs (or a crash displaces it — see
//! [`crate::failure`]). The *limited-repacking* literature (Gupta,
//! Krishnaswamy, Kumar & Sandeep; Feldkord et al.) sits between that and
//! offline full repacking: at each arrival/departure epoch the algorithm
//! may additionally *move* a bounded number of resident items between open
//! bins. This module supplies the vocabulary the engine speaks:
//!
//! * [`RecourseBudget`] — how many moves an epoch may spend: a hard
//!   per-epoch cap, an amortized earn-per-event credit with a burst cap,
//!   unlimited, or (the default) none at all. With [`RecourseBudget::None`]
//!   the engine never consults the algorithm and its output is
//!   bit-identical to a recourse-free build — the same safety-net shape as
//!   the empty [`crate::failure::FailurePlan`].
//! * [`Migration`] — one requested move (resident item → open bin).
//! * [`RecourseEpoch`] — whether an arrival or a departure opened the
//!   epoch. Crashes are involuntary and never open one.
//! * [`RecourseView`] — the read-only view handed to
//!   [`crate::algorithm::OnlineAlgorithm::propose_migration`]: the plain
//!   [`SimView`] plus per-item sizes and (clairvoyant) departures, so
//!   repacking algorithms need not mirror the item table themselves.
//! * [`RecourseReport`] — the per-run ledger landing on
//!   [`crate::engine::PackingResult::recourse`].
//!
//! Every executed migration is emitted as an
//! [`crate::trace::EngineEvent::ItemMigrated`] and cross-checked by the
//! [`crate::audit::InvariantAuditor`] (load conservation across the move,
//! budget replay, closure billing).

use crate::algorithm::SimView;
use crate::bin_state::BinId;
use crate::item::ItemId;
use crate::size::Size;
use crate::time::Time;

/// Credit units per whole move in the amortized budget: credits are
/// tracked in milli-moves so sub-unity earn rates (e.g. one move per four
/// events = 250) stay integral and replayable.
pub const MOVE_MILLI: u64 = 1000;

/// Burst cap used when `amortized=<earn>` is parsed without an explicit
/// cap: eight epochs of earning, floored at one whole move.
const DEFAULT_BURST_EPOCHS: u32 = 8;

/// How many voluntary item moves a run may spend (see the module docs).
///
/// Degenerate forms collapse to [`RecourseBudget::None`] in the
/// constructors (`epoch=0`, a zero earn rate, a burst below one move), so
/// "no budget" is structurally `None` and the engine's bit-identity
/// short-circuit applies by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RecourseBudget {
    /// No recourse: the migration hook is never consulted (the default).
    #[default]
    None,
    /// Up to this many moves at every arrival/departure epoch.
    PerEpoch(u32),
    /// Amortized pacing: every epoch earns `earn_milli` milli-moves
    /// (capped at `burst_milli`), and each executed move costs
    /// [`MOVE_MILLI`]. `earn_milli = 250` is "one move per four events" —
    /// the Gupta-et-al-style amortized-Θ(1) regime.
    Amortized {
        /// Milli-moves earned at each epoch.
        earn_milli: u32,
        /// Credit cap in milli-moves (the burst allowance).
        burst_milli: u32,
    },
    /// No cap: every proposal the algorithm makes is executed.
    Unlimited,
}

impl RecourseBudget {
    /// A per-epoch cap; `0` collapses to [`RecourseBudget::None`].
    pub fn per_epoch(moves: u32) -> RecourseBudget {
        if moves == 0 {
            RecourseBudget::None
        } else {
            RecourseBudget::PerEpoch(moves)
        }
    }

    /// An amortized budget; a zero earn rate or a burst below one whole
    /// move collapses to [`RecourseBudget::None`].
    pub fn amortized(earn_milli: u32, burst_milli: u32) -> RecourseBudget {
        if earn_milli == 0 || (burst_milli as u64) < MOVE_MILLI {
            RecourseBudget::None
        } else {
            RecourseBudget::Amortized {
                earn_milli,
                burst_milli,
            }
        }
    }

    /// Whether this is the inert [`RecourseBudget::None`] budget.
    #[inline]
    pub fn is_none(&self) -> bool {
        matches!(self, RecourseBudget::None)
    }

    /// Parses the CLI spelling: `none` (or `off`), `epoch=<moves>`,
    /// `amortized=<earn_milli>[/<burst_milli>]`, `unlimited`. Inverse of
    /// [`RecourseBudget`]'s `Display` (degenerate forms collapse to
    /// `none`, exactly as the constructors do).
    pub fn parse(s: &str) -> Option<RecourseBudget> {
        match s {
            "none" | "off" => Some(RecourseBudget::None),
            "unlimited" => Some(RecourseBudget::Unlimited),
            _ => {
                if let Some(v) = s.strip_prefix("epoch=") {
                    return v.parse().ok().map(RecourseBudget::per_epoch);
                }
                let v = s.strip_prefix("amortized=")?;
                let (earn, burst): (u32, u32) = match v.split_once('/') {
                    Some((e, b)) => (e.parse().ok()?, b.parse().ok()?),
                    None => {
                        let e: u32 = v.parse().ok()?;
                        let burst = e
                            .saturating_mul(DEFAULT_BURST_EPOCHS)
                            .max(u32::try_from(MOVE_MILLI).expect("const fits"));
                        (e, burst)
                    }
                };
                Some(RecourseBudget::amortized(earn, burst))
            }
        }
    }
}

impl core::fmt::Display for RecourseBudget {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecourseBudget::None => write!(f, "none"),
            RecourseBudget::PerEpoch(moves) => write!(f, "epoch={moves}"),
            RecourseBudget::Amortized {
                earn_milli,
                burst_milli,
            } => write!(f, "amortized={earn_milli}/{burst_milli}"),
            RecourseBudget::Unlimited => write!(f, "unlimited"),
        }
    }
}

/// One requested move: take the (currently resident) `item` out of its
/// bin and re-book it into the open bin `to`. The engine validates the
/// request (residency, target open, capacity, `to` differs from the
/// source) and rejects illegal ones with a typed
/// [`crate::error::EngineError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The resident item to move (it keeps its id across the move).
    pub item: ItemId,
    /// The open bin to move it into.
    pub to: BinId,
}

/// Which kind of event opened a migration epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecourseEpoch {
    /// An item was just placed (fresh arrival or re-admission).
    Arrival,
    /// An item just departed (and its bin possibly closed).
    Departure,
}

/// Per-run recourse ledger (all-zero unless a budget was active).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecourseReport {
    /// Voluntary migrations executed.
    pub migrations: u64,
    /// Bins that closed because a migration emptied them.
    pub migration_closures: u64,
    /// Migration epochs opened (arrival/departure events offered to the
    /// algorithm while a non-`None` budget was active).
    pub epochs: u64,
}

impl RecourseReport {
    /// Whether any recourse machinery engaged during the run.
    pub fn any(&self) -> bool {
        self.migrations != 0 || self.epochs != 0
    }
}

/// The read-only view handed to
/// [`crate::algorithm::OnlineAlgorithm::propose_migration`]: everything a
/// [`SimView`] offers, plus the engine's per-item size and departure
/// columns so repacking decisions (which bin can be emptied, where its
/// residents fit, who outlives whom) need no algorithm-side mirror.
#[derive(Debug, Clone, Copy)]
pub struct RecourseView<'a> {
    sim: SimView<'a>,
    sizes: &'a [Size],
    departures: &'a [Time],
}

impl<'a> RecourseView<'a> {
    pub(crate) fn new(
        sim: SimView<'a>,
        sizes: &'a [Size],
        departures: &'a [Time],
    ) -> RecourseView<'a> {
        RecourseView {
            sim,
            sizes,
            departures,
        }
    }

    /// The plain simulation view (open bins, First-Fit queries, the clock).
    #[inline]
    pub fn sim(&self) -> &SimView<'a> {
        &self.sim
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// The size of any item the engine has ever admitted.
    #[inline]
    pub fn item_size(&self, item: ItemId) -> Option<Size> {
        self.sizes.get(item.index()).copied()
    }

    /// The engine's recorded departure for an item: the clairvoyant
    /// departure for live items, `Time(u64::MAX)` for undated ones, and
    /// the truncated displacement time for rows a crash evicted.
    #[inline]
    pub fn item_departure(&self, item: ItemId) -> Option<Time> {
        self.departures.get(item.index()).copied()
    }

    /// The resident items of `bin` as `(id, size, departure)`, sorted by
    /// ascending id. The underlying resident list is swap-shuffled by
    /// removals; sorting keeps migration proposals deterministic.
    pub fn residents(&self, bin: BinId) -> Vec<(ItemId, Size, Time)> {
        let mut out: Vec<(ItemId, Size, Time)> = match self.sim.bin(bin) {
            Some(rec) if rec.is_open() => rec
                .items
                .iter()
                .map(|&id| (id, self.sizes[id.index()], self.departures[id.index()]))
                .collect(),
            _ => Vec::new(),
        };
        out.sort_unstable_by_key(|&(id, _, _)| id);
        out
    }
}

/// The recourse layer of one simulation: the budget, the amortized credit
/// balance, the open epoch's remaining allowance, and the ledger. With
/// [`RecourseBudget::None`] the layer is inert and the engine's output is
/// bit-identical to a recourse-free build. The
/// [`crate::audit::InvariantAuditor`] embeds a second copy to replay the
/// budget from the event stream alone.
#[derive(Debug, Clone)]
pub(crate) struct RecourseCtl {
    pub(crate) budget: RecourseBudget,
    credit_milli: u64,
    epoch_left: u32,
    pub(crate) report: RecourseReport,
}

impl RecourseCtl {
    pub(crate) fn new(budget: RecourseBudget) -> RecourseCtl {
        RecourseCtl {
            budget,
            credit_milli: 0,
            epoch_left: 0,
            report: RecourseReport::default(),
        }
    }

    /// Swaps the budget mid-run (the serve daemon's snapshot restore keeps
    /// migrations gated during its muted replay, then re-arms). Amortized
    /// credit restarts from zero — conservative: a restored session can
    /// never exceed what an uninterrupted one could have spent.
    pub(crate) fn set_budget(&mut self, budget: RecourseBudget) {
        self.budget = budget;
        self.credit_milli = 0;
        self.epoch_left = 0;
    }

    /// Opens a new epoch: accrues amortized credit, resets the allowance,
    /// and returns how many whole moves may be spent right now.
    pub(crate) fn begin_epoch(&mut self) -> u32 {
        self.report.epochs += 1;
        self.epoch_left = match self.budget {
            RecourseBudget::None => 0,
            RecourseBudget::PerEpoch(moves) => moves,
            RecourseBudget::Amortized {
                earn_milli,
                burst_milli,
            } => {
                self.credit_milli = (self.credit_milli + earn_milli as u64).min(burst_milli as u64);
                u32::try_from(self.credit_milli / MOVE_MILLI).unwrap_or(u32::MAX)
            }
            RecourseBudget::Unlimited => u32::MAX,
        };
        self.epoch_left
    }

    /// Whole moves still spendable in the open epoch.
    #[inline]
    pub(crate) fn allowance(&self) -> u32 {
        self.epoch_left
    }

    /// Bills one executed move against the open epoch.
    pub(crate) fn spend(&mut self) {
        debug_assert!(self.epoch_left > 0, "spend() without allowance");
        self.epoch_left -= 1;
        if matches!(self.budget, RecourseBudget::Amortized { .. }) {
            self.credit_milli -= MOVE_MILLI;
        }
        self.report.migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for spec in [
            "none",
            "epoch=1",
            "epoch=16",
            "amortized=250/2000",
            "unlimited",
        ] {
            let b = RecourseBudget::parse(spec).unwrap();
            assert_eq!(b.to_string(), spec);
            assert_eq!(RecourseBudget::parse(&b.to_string()), Some(b));
        }
        assert_eq!(RecourseBudget::parse("off"), Some(RecourseBudget::None));
        // Bare amortized spellings get the default burst and still
        // round-trip through Display.
        let b = RecourseBudget::parse("amortized=500").unwrap();
        assert_eq!(
            b,
            RecourseBudget::Amortized {
                earn_milli: 500,
                burst_milli: 4000
            }
        );
        assert_eq!(RecourseBudget::parse(&b.to_string()), Some(b));
    }

    #[test]
    fn degenerate_budgets_collapse_to_none() {
        assert_eq!(RecourseBudget::parse("epoch=0"), Some(RecourseBudget::None));
        assert_eq!(
            RecourseBudget::parse("amortized=0"),
            Some(RecourseBudget::None)
        );
        assert_eq!(
            RecourseBudget::parse("amortized=500/999"),
            Some(RecourseBudget::None)
        );
        assert!(RecourseBudget::parse("epoch=").is_none());
        assert!(RecourseBudget::parse("amortized=x/2").is_none());
        assert!(RecourseBudget::parse("sometimes").is_none());
    }

    #[test]
    fn per_epoch_allowance_resets_each_epoch() {
        let mut ctl = RecourseCtl::new(RecourseBudget::per_epoch(2));
        assert_eq!(ctl.begin_epoch(), 2);
        ctl.spend();
        ctl.spend();
        assert_eq!(ctl.begin_epoch(), 2, "allowance is per-epoch");
        assert_eq!(ctl.report.migrations, 2);
        assert_eq!(ctl.report.epochs, 2);
    }

    #[test]
    fn amortized_credit_accrues_and_caps() {
        // Earn 1/4 move per epoch, burst two whole moves.
        let mut ctl = RecourseCtl::new(RecourseBudget::amortized(250, 2000));
        assert_eq!(ctl.begin_epoch(), 0);
        assert_eq!(ctl.begin_epoch(), 0);
        assert_eq!(ctl.begin_epoch(), 0);
        assert_eq!(ctl.begin_epoch(), 1, "four epochs buy one move");
        ctl.spend();
        assert_eq!(ctl.begin_epoch(), 0, "credit was spent");
        for _ in 0..100 {
            ctl.begin_epoch();
        }
        assert_eq!(ctl.begin_epoch(), 2, "burst caps the hoard at two moves");
    }
}
