//! Recourse budgets: bounded voluntary item migration (ROADMAP item 3).
//!
//! The classic MinUsageTime model is irrevocable: once placed, an item
//! stays in its bin until it departs (or a crash displaces it — see
//! [`crate::failure`]). The *limited-repacking* literature (Gupta,
//! Krishnaswamy, Kumar & Sandeep; Feldkord et al.) sits between that and
//! offline full repacking: at each arrival/departure epoch the algorithm
//! may additionally *move* a bounded number of resident items between open
//! bins. This module supplies the vocabulary the engine speaks:
//!
//! * [`RecourseBudget`] — how many moves an epoch may spend: a hard
//!   per-epoch cap, an amortized earn-per-event credit with a burst cap,
//!   unlimited, or (the default) none at all. With [`RecourseBudget::None`]
//!   the engine never consults the algorithm and its output is
//!   bit-identical to a recourse-free build — the same safety-net shape as
//!   the empty [`crate::failure::FailurePlan`].
//! * [`Migration`] — one requested move (resident item → open bin).
//! * [`RecourseEpoch`] — whether an arrival or a departure opened the
//!   epoch. Crashes are involuntary and never open one.
//! * [`RecourseView`] — the read-only view handed to
//!   [`crate::algorithm::OnlineAlgorithm::propose_migration`]: the plain
//!   [`SimView`] plus per-item sizes and (clairvoyant) departures, so
//!   repacking algorithms need not mirror the item table themselves.
//! * [`RecourseReport`] — the per-run ledger landing on
//!   [`crate::engine::PackingResult::recourse`].
//!
//! Every executed migration is emitted as an
//! [`crate::trace::EngineEvent::ItemMigrated`] and cross-checked by the
//! [`crate::audit::InvariantAuditor`] (load conservation across the move,
//! budget replay, closure billing).

use crate::algorithm::SimView;
use crate::bin_state::BinId;
use crate::item::ItemId;
use crate::size::SizeVec;
use crate::time::Time;

/// Credit units per whole move in the amortized budget: credits are
/// tracked in milli-moves so sub-unity earn rates (e.g. one move per four
/// events = 250) stay integral and replayable.
pub const MOVE_MILLI: u64 = 1000;

/// Burst cap used when `amortized=<earn>` is parsed without an explicit
/// cap: eight epochs of earning, floored at one whole move.
const DEFAULT_BURST_EPOCHS: u32 = 8;

/// How many voluntary item moves a run may spend (see the module docs).
///
/// Degenerate forms collapse to [`RecourseBudget::None`] in the
/// constructors (`epoch=0`, a zero earn rate, a burst below one move), so
/// "no budget" is structurally `None` and the engine's bit-identity
/// short-circuit applies by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RecourseBudget {
    /// No recourse: the migration hook is never consulted (the default).
    #[default]
    None,
    /// Up to this many moves at every arrival/departure epoch.
    PerEpoch(u32),
    /// Amortized pacing: every epoch earns `earn_milli` milli-moves
    /// (capped at `burst_milli`), and each executed move costs
    /// [`MOVE_MILLI`]. `earn_milli = 250` is "one move per four events" —
    /// the Gupta-et-al-style amortized-Θ(1) regime.
    Amortized {
        /// Milli-moves earned at each epoch.
        earn_milli: u32,
        /// Credit cap in milli-moves (the burst allowance).
        burst_milli: u32,
    },
    /// No cap: every proposal the algorithm makes is executed.
    Unlimited,
}

impl RecourseBudget {
    /// A per-epoch cap; `0` collapses to [`RecourseBudget::None`].
    pub fn per_epoch(moves: u32) -> RecourseBudget {
        if moves == 0 {
            RecourseBudget::None
        } else {
            RecourseBudget::PerEpoch(moves)
        }
    }

    /// An amortized budget; a zero earn rate or a burst below one whole
    /// move collapses to [`RecourseBudget::None`].
    pub fn amortized(earn_milli: u32, burst_milli: u32) -> RecourseBudget {
        if earn_milli == 0 || (burst_milli as u64) < MOVE_MILLI {
            RecourseBudget::None
        } else {
            RecourseBudget::Amortized {
                earn_milli,
                burst_milli,
            }
        }
    }

    /// Whether this is the inert [`RecourseBudget::None`] budget.
    #[inline]
    pub fn is_none(&self) -> bool {
        matches!(self, RecourseBudget::None)
    }

    /// Parses the CLI spelling: `none` (or `off`), `epoch=<moves>`,
    /// `amortized=<earn_milli>[/<burst_milli>]`, `unlimited`. Inverse of
    /// [`RecourseBudget`]'s `Display` (degenerate forms collapse to
    /// `none`, exactly as the constructors do).
    ///
    /// Every failure is a typed [`RecourseParseError`]; in particular a
    /// numeric field that would overflow the `u32` milli-move ledger —
    /// including the derived default burst of a bare `amortized=<earn>`
    /// spec — is [`RecourseParseError::Overflow`], never a silent
    /// saturation.
    pub fn parse(s: &str) -> Result<RecourseBudget, RecourseParseError> {
        fn field(name: &'static str, v: &str) -> Result<u32, RecourseParseError> {
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(RecourseParseError::BadNumber {
                    field: name,
                    value: v.to_string(),
                });
            }
            v.parse::<u128>()
                .ok()
                .and_then(|wide| u32::try_from(wide).ok())
                .ok_or(RecourseParseError::Overflow {
                    field: name,
                    value: v.to_string(),
                })
        }
        match s {
            "none" | "off" => Ok(RecourseBudget::None),
            "unlimited" => Ok(RecourseBudget::Unlimited),
            _ => {
                if let Some(v) = s.strip_prefix("epoch=") {
                    return field("epoch", v).map(RecourseBudget::per_epoch);
                }
                let Some(v) = s.strip_prefix("amortized=") else {
                    return Err(RecourseParseError::UnknownForm(s.to_string()));
                };
                let (earn, burst): (u32, u32) = match v.split_once('/') {
                    Some((e, b)) => (field("earn", e)?, field("burst", b)?),
                    None => {
                        let e = field("earn", v)?;
                        let implied = u64::from(e)
                            .checked_mul(u64::from(DEFAULT_BURST_EPOCHS))
                            .expect("u64 product of two u32 factors")
                            .max(MOVE_MILLI);
                        let burst =
                            u32::try_from(implied).map_err(|_| RecourseParseError::Overflow {
                                field: "burst",
                                value: implied.to_string(),
                            })?;
                        (e, burst)
                    }
                };
                Ok(RecourseBudget::amortized(earn, burst))
            }
        }
    }
}

/// Why a [`RecourseBudget`] spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecourseParseError {
    /// The spec matched none of the known spellings.
    UnknownForm(String),
    /// A numeric field was empty or not a base-10 integer.
    BadNumber {
        /// Which field was malformed (`epoch`, `earn`, or `burst`).
        field: &'static str,
        /// The offending text.
        value: String,
    },
    /// A numeric field — or the default burst derived from a bare
    /// `amortized=<earn>` spec — exceeds the `u32` milli-move ledger.
    Overflow {
        /// Which field overflowed (`epoch`, `earn`, or `burst`).
        field: &'static str,
        /// The offending value.
        value: String,
    },
}

impl core::fmt::Display for RecourseParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecourseParseError::UnknownForm(s) => write!(
                f,
                "unrecognised budget spec {s:?} (expected none, off, epoch=<moves>, \
                 amortized=<earn>[/<burst>], or unlimited)"
            ),
            RecourseParseError::BadNumber { field, value } => {
                write!(f, "budget field `{field}` is not a number: {value:?}")
            }
            RecourseParseError::Overflow { field, value } => write!(
                f,
                "budget field `{field}` overflows the milli-move ledger (max {}): {value}",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for RecourseParseError {}

impl core::fmt::Display for RecourseBudget {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecourseBudget::None => write!(f, "none"),
            RecourseBudget::PerEpoch(moves) => write!(f, "epoch={moves}"),
            RecourseBudget::Amortized {
                earn_milli,
                burst_milli,
            } => write!(f, "amortized={earn_milli}/{burst_milli}"),
            RecourseBudget::Unlimited => write!(f, "unlimited"),
        }
    }
}

/// One requested move: take the (currently resident) `item` out of its
/// bin and re-book it into the open bin `to`. The engine validates the
/// request (residency, target open, capacity, `to` differs from the
/// source) and rejects illegal ones with a typed
/// [`crate::error::EngineError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The resident item to move (it keeps its id across the move).
    pub item: ItemId,
    /// The open bin to move it into.
    pub to: BinId,
}

/// Which kind of event opened a migration epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecourseEpoch {
    /// An item was just placed (fresh arrival or re-admission).
    Arrival,
    /// An item just departed (and its bin possibly closed).
    Departure,
}

/// Per-run recourse ledger (all-zero unless a budget was active).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecourseReport {
    /// Voluntary migrations executed.
    pub migrations: u64,
    /// Bins that closed because a migration emptied them.
    pub migration_closures: u64,
    /// Migration epochs opened (arrival/departure events offered to the
    /// algorithm while a non-`None` budget was active).
    pub epochs: u64,
}

impl RecourseReport {
    /// Whether any recourse machinery engaged during the run.
    pub fn any(&self) -> bool {
        self.migrations != 0 || self.epochs != 0
    }
}

/// The read-only view handed to
/// [`crate::algorithm::OnlineAlgorithm::propose_migration`]: everything a
/// [`SimView`] offers, plus the engine's per-item size and departure
/// columns so repacking decisions (which bin can be emptied, where its
/// residents fit, who outlives whom) need no algorithm-side mirror.
#[derive(Debug, Clone, Copy)]
pub struct RecourseView<'a> {
    sim: SimView<'a>,
    sizes: &'a [SizeVec],
    departures: &'a [Time],
}

impl<'a> RecourseView<'a> {
    pub(crate) fn new(
        sim: SimView<'a>,
        sizes: &'a [SizeVec],
        departures: &'a [Time],
    ) -> RecourseView<'a> {
        RecourseView {
            sim,
            sizes,
            departures,
        }
    }

    /// The plain simulation view (open bins, First-Fit queries, the clock).
    #[inline]
    pub fn sim(&self) -> &SimView<'a> {
        &self.sim
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// The size of any item the engine has ever admitted.
    #[inline]
    pub fn item_size(&self, item: ItemId) -> Option<SizeVec> {
        self.sizes.get(item.index()).copied()
    }

    /// The engine's recorded departure for an item: the clairvoyant
    /// departure for live items, `Time(u64::MAX)` for undated ones, and
    /// the truncated displacement time for rows a crash evicted.
    #[inline]
    pub fn item_departure(&self, item: ItemId) -> Option<Time> {
        self.departures.get(item.index()).copied()
    }

    /// The resident items of `bin` as `(id, size, departure)`, sorted by
    /// ascending id. The underlying resident list is swap-shuffled by
    /// removals; sorting keeps migration proposals deterministic.
    pub fn residents(&self, bin: BinId) -> Vec<(ItemId, SizeVec, Time)> {
        let mut out: Vec<(ItemId, SizeVec, Time)> = match self.sim.bin(bin) {
            Some(rec) if rec.is_open() => rec
                .items
                .iter()
                .map(|&id| (id, self.sizes[id.index()], self.departures[id.index()]))
                .collect(),
            _ => Vec::new(),
        };
        out.sort_unstable_by_key(|&(id, _, _)| id);
        out
    }
}

/// The recourse layer of one simulation: the budget, the amortized credit
/// balance, the open epoch's remaining allowance, and the ledger. With
/// [`RecourseBudget::None`] the layer is inert and the engine's output is
/// bit-identical to a recourse-free build. The
/// [`crate::audit::InvariantAuditor`] embeds a second copy to replay the
/// budget from the event stream alone.
#[derive(Debug, Clone)]
pub(crate) struct RecourseCtl {
    pub(crate) budget: RecourseBudget,
    credit_milli: u64,
    epoch_left: u32,
    pub(crate) report: RecourseReport,
}

impl RecourseCtl {
    pub(crate) fn new(budget: RecourseBudget) -> RecourseCtl {
        RecourseCtl {
            budget,
            credit_milli: 0,
            epoch_left: 0,
            report: RecourseReport::default(),
        }
    }

    /// Swaps the budget mid-run (the serve daemon's snapshot restore keeps
    /// migrations gated during its muted replay, then re-arms). Amortized
    /// credit restarts from zero — conservative: a restored session can
    /// never exceed what an uninterrupted one could have spent.
    pub(crate) fn set_budget(&mut self, budget: RecourseBudget) {
        self.budget = budget;
        self.credit_milli = 0;
        self.epoch_left = 0;
    }

    /// Opens a new epoch: accrues amortized credit, resets the allowance,
    /// and returns how many whole moves may be spent right now.
    pub(crate) fn begin_epoch(&mut self) -> u32 {
        self.report.epochs += 1;
        self.epoch_left = match self.budget {
            RecourseBudget::None => 0,
            RecourseBudget::PerEpoch(moves) => moves,
            RecourseBudget::Amortized {
                earn_milli,
                burst_milli,
            } => {
                self.credit_milli = (self.credit_milli + earn_milli as u64).min(burst_milli as u64);
                u32::try_from(self.credit_milli / MOVE_MILLI).unwrap_or(u32::MAX)
            }
            RecourseBudget::Unlimited => u32::MAX,
        };
        self.epoch_left
    }

    /// Whole moves still spendable in the open epoch.
    #[inline]
    pub(crate) fn allowance(&self) -> u32 {
        self.epoch_left
    }

    /// Bills one executed move against the open epoch.
    pub(crate) fn spend(&mut self) {
        debug_assert!(self.epoch_left > 0, "spend() without allowance");
        self.epoch_left -= 1;
        if matches!(self.budget, RecourseBudget::Amortized { .. }) {
            self.credit_milli -= MOVE_MILLI;
        }
        self.report.migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for spec in [
            "none",
            "epoch=1",
            "epoch=16",
            "amortized=250/2000",
            "unlimited",
        ] {
            let b = RecourseBudget::parse(spec).unwrap();
            assert_eq!(b.to_string(), spec);
            assert_eq!(RecourseBudget::parse(&b.to_string()), Ok(b));
        }
        assert_eq!(RecourseBudget::parse("off"), Ok(RecourseBudget::None));
        // Bare amortized spellings get the default burst and still
        // round-trip through Display.
        let b = RecourseBudget::parse("amortized=500").unwrap();
        assert_eq!(
            b,
            RecourseBudget::Amortized {
                earn_milli: 500,
                burst_milli: 4000
            }
        );
        assert_eq!(RecourseBudget::parse(&b.to_string()), Ok(b));
    }

    #[test]
    fn degenerate_budgets_collapse_to_none() {
        assert_eq!(RecourseBudget::parse("epoch=0"), Ok(RecourseBudget::None));
        assert_eq!(
            RecourseBudget::parse("amortized=0"),
            Ok(RecourseBudget::None)
        );
        assert_eq!(
            RecourseBudget::parse("amortized=500/999"),
            Ok(RecourseBudget::None)
        );
        assert!(matches!(
            RecourseBudget::parse("epoch="),
            Err(RecourseParseError::BadNumber { field: "epoch", .. })
        ));
        assert!(matches!(
            RecourseBudget::parse("amortized=x/2"),
            Err(RecourseParseError::BadNumber { field: "earn", .. })
        ));
        assert!(matches!(
            RecourseBudget::parse("sometimes"),
            Err(RecourseParseError::UnknownForm(_))
        ));
    }

    #[test]
    fn overflowing_specs_are_typed_errors_not_saturations() {
        // Direct field overflow: one past u32::MAX, and absurdly beyond.
        assert!(matches!(
            RecourseBudget::parse("epoch=4294967296"),
            Err(RecourseParseError::Overflow { field: "epoch", .. })
        ));
        assert!(matches!(
            RecourseBudget::parse("amortized=99999999999999999999999999999999999999999"),
            Err(RecourseParseError::Overflow { field: "earn", .. })
        ));
        assert!(matches!(
            RecourseBudget::parse("amortized=250/4294967296"),
            Err(RecourseParseError::Overflow { field: "burst", .. })
        ));
        // The derived default burst (earn × 8) overflowing the ledger is
        // the historical silent-saturation bug: it must now be typed.
        assert!(matches!(
            RecourseBudget::parse("amortized=4000000000"),
            Err(RecourseParseError::Overflow { field: "burst", .. })
        ));
        // The largest bare earn whose derived burst still fits is accepted.
        let max_ok = u32::MAX / 8;
        let b = RecourseBudget::parse(&format!("amortized={max_ok}")).unwrap();
        assert_eq!(
            b,
            RecourseBudget::Amortized {
                earn_milli: max_ok,
                burst_milli: max_ok * 8,
            }
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// Satellite contract: `parse ∘ Display` is the identity on every
        /// budget any spec can produce (degenerate forms collapse before
        /// Display ever sees them, so the composite is a true round-trip).
        #[test]
        fn display_round_trips_every_accepted_budget(
            epoch in 0u32..=u32::MAX,
            earn in 0u32..=u32::MAX,
            burst in 0u32..=u32::MAX,
        ) {
            for b in [
                RecourseBudget::None,
                RecourseBudget::Unlimited,
                RecourseBudget::per_epoch(epoch),
                RecourseBudget::amortized(earn, burst),
            ] {
                proptest::prop_assert_eq!(RecourseBudget::parse(&b.to_string()), Ok(b));
            }
        }

        /// Arbitrary input never panics; accepted specs re-parse to the
        /// same budget through Display.
        #[test]
        fn parse_total_on_arbitrary_input(
            bytes in proptest::collection::vec(0x20u8..0x7f, 0..40),
        ) {
            let s = String::from_utf8(bytes).expect("printable ascii");
            if let Ok(b) = RecourseBudget::parse(&s) {
                proptest::prop_assert_eq!(RecourseBudget::parse(&b.to_string()), Ok(b));
            }
        }
    }

    #[test]
    fn per_epoch_allowance_resets_each_epoch() {
        let mut ctl = RecourseCtl::new(RecourseBudget::per_epoch(2));
        assert_eq!(ctl.begin_epoch(), 2);
        ctl.spend();
        ctl.spend();
        assert_eq!(ctl.begin_epoch(), 2, "allowance is per-epoch");
        assert_eq!(ctl.report.migrations, 2);
        assert_eq!(ctl.report.epochs, 2);
    }

    #[test]
    fn amortized_credit_accrues_and_caps() {
        // Earn 1/4 move per epoch, burst two whole moves.
        let mut ctl = RecourseCtl::new(RecourseBudget::amortized(250, 2000));
        assert_eq!(ctl.begin_epoch(), 0);
        assert_eq!(ctl.begin_epoch(), 0);
        assert_eq!(ctl.begin_epoch(), 0);
        assert_eq!(ctl.begin_epoch(), 1, "four epochs buy one move");
        ctl.spend();
        assert_eq!(ctl.begin_epoch(), 0, "credit was spent");
        for _ in 0..100 {
            ctl.begin_epoch();
        }
        assert_eq!(ctl.begin_epoch(), 2, "burst caps the hoard at two moves");
    }
}
