//! Instances: validated collections of items presented to algorithms.

use core::fmt;

use crate::cost::Area;
use crate::error::InstanceError;
use crate::item::{Item, ItemId};
use crate::profile::StepProfile;
use crate::size::{SizeVec, MAX_DIMS};
use crate::time::{Dur, Time};

/// A validated input `σ`: items ordered by `(arrival, id)`, which is the
/// exact order the online algorithm must serve them in (items arriving at
/// the same moment arrive "with some arbitrary order" — the builder's
/// insertion order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    items: Vec<Item>,
}

/// Incrementally builds an [`Instance`], assigning dense [`ItemId`]s.
#[derive(Debug, Default, Clone)]
pub struct InstanceBuilder {
    items: Vec<Item>,
}

impl InstanceBuilder {
    /// An empty builder.
    pub fn new() -> InstanceBuilder {
        InstanceBuilder { items: Vec::new() }
    }

    /// Pre-allocates capacity for `n` items.
    pub fn with_capacity(n: usize) -> InstanceBuilder {
        InstanceBuilder {
            items: Vec::with_capacity(n),
        }
    }

    /// Adds an item active on `[arrival, arrival + dur)`, returning its id.
    pub fn push(&mut self, arrival: Time, dur: Dur, size: impl Into<SizeVec>) -> ItemId {
        let id = ItemId(u32::try_from(self.items.len()).expect("too many items"));
        self.items.push(Item::new(id, arrival, arrival + dur, size));
        id
    }

    /// Adds an item by explicit departure time.
    pub fn push_interval(
        &mut self,
        arrival: Time,
        departure: Time,
        size: impl Into<SizeVec>,
    ) -> ItemId {
        let id = ItemId(u32::try_from(self.items.len()).expect("too many items"));
        self.items.push(Item::new(id, arrival, departure, size));
        id
    }

    /// Number of items added so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items were added.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Validates and freezes the instance.
    ///
    /// Checks: every item has positive duration and positive size, and items
    /// are sorted by arrival (the builder preserves same-time insertion
    /// order, so generators control the adversarial intra-moment order).
    pub fn build(self) -> Result<Instance, InstanceError> {
        for it in &self.items {
            if it.departure <= it.arrival {
                return Err(InstanceError::EmptyInterval { id: it.id });
            }
            if it.size.is_zero() {
                return Err(InstanceError::ZeroSize { id: it.id });
            }
        }
        let mut items = self.items;
        // Stable sort: items sharing an arrival keep their insertion order.
        items.sort_by_key(|it| it.arrival);
        // Re-number so id == index holds after sorting; the pre-sort ids are
        // builder-internal.
        for (idx, it) in items.iter_mut().enumerate() {
            it.id = ItemId(idx as u32);
        }
        Ok(Instance { items })
    }
}

impl Instance {
    /// Builds an instance directly from `(arrival, duration, size)` triples.
    pub fn from_triples<S: Into<SizeVec>>(
        triples: impl IntoIterator<Item = (Time, Dur, S)>,
    ) -> Result<Instance, InstanceError> {
        let mut b = InstanceBuilder::new();
        for (a, d, s) in triples {
            b.push(a, d, s);
        }
        b.build()
    }

    /// The empty instance.
    pub fn empty() -> Instance {
        Instance { items: Vec::new() }
    }

    /// Items in service order (sorted by `(arrival, insertion order)`).
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Item lookup by id.
    #[inline]
    pub fn item(&self, id: ItemId) -> &Item {
        &self.items[id.index()]
    }

    /// Number of items, `|σ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the instance has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The max/min item-duration ratio `μ` (≥ 1), or `None` when empty.
    ///
    /// Computed on the tick grid: `μ = max l / min l` as an exact rational,
    /// reported as `f64` (all experiments use power-of-two durations, for
    /// which this is exact).
    pub fn mu(&self) -> Option<f64> {
        let (mut min, mut max) = (u64::MAX, 0u64);
        for it in &self.items {
            let l = it.duration().ticks();
            min = min.min(l);
            max = max.max(l);
        }
        if self.items.is_empty() {
            None
        } else {
            Some(max as f64 / min as f64)
        }
    }

    /// `log2 μ`, clamped below at 1 (several bounds divide by `log μ`; the
    /// paper implicitly assumes `μ ≥ 2` wherever that happens).
    pub fn log2_mu(&self) -> f64 {
        self.mu().map_or(1.0, |m| m.log2().max(1.0))
    }

    /// Longest item duration, or zero when empty.
    pub fn max_duration(&self) -> Dur {
        self.items
            .iter()
            .map(Item::duration)
            .max()
            .unwrap_or(Dur::ZERO)
    }

    /// Shortest item duration, or zero when empty.
    pub fn min_duration(&self) -> Dur {
        self.items
            .iter()
            .map(Item::duration)
            .min()
            .unwrap_or(Dur::ZERO)
    }

    /// Total space-time demand `d(σ) = Σ_r s(r)·l(I(r))` (exact). For
    /// vector instances this is the *bottleneck* demand `max_d Σ_r
    /// s_d(r)·l(I(r))`: a valid space-time lower bound whichever dimension
    /// binds, and identical to the scalar sum at D = 1.
    pub fn demand(&self) -> Area {
        (0..self.dims())
            .map(|d| {
                self.items
                    .iter()
                    .map(|it| Area::from_load_ticks(it.size.get(d).raw(), it.duration()))
                    .sum()
            })
            .max()
            .unwrap_or(Area::ZERO)
    }

    /// Number of dimensions any item actually uses (1 for scalar
    /// instances, up to [`MAX_DIMS`]).
    pub fn dims(&self) -> usize {
        self.items
            .iter()
            .map(|it| it.size.dims_used())
            .max()
            .unwrap_or(1)
    }

    /// `span(σ)`: the measure of times at which ≥ 1 item is active, as an
    /// [`Area`] of one bin running for that long (the paper's span bound
    /// compares it against costs directly).
    pub fn span(&self) -> Area {
        Area::from_bin_ticks(self.span_dur())
    }

    /// `span(σ)` as a duration.
    pub fn span_dur(&self) -> Dur {
        // Items are sorted by arrival: sweep the union of intervals.
        let mut total = 0u64;
        let mut cur: Option<(Time, Time)> = None;
        for it in &self.items {
            match cur {
                None => cur = Some((it.arrival, it.departure)),
                Some((s, e)) => {
                    if it.arrival <= e {
                        cur = Some((s, e.max(it.departure)));
                    } else {
                        total += e.since(s).ticks();
                        cur = Some((it.arrival, it.departure));
                    }
                }
            }
        }
        if let Some((s, e)) = cur {
            total += e.since(s).ticks();
        }
        Dur(total)
    }

    /// The instantaneous total-load step function `S_t(σ)`.
    pub fn load_profile(&self) -> StepProfile {
        StepProfile::from_items(&self.items)
    }

    /// Earliest arrival, or `None` when empty.
    pub fn start(&self) -> Option<Time> {
        self.items.first().map(|it| it.arrival)
    }

    /// Latest departure, or `None` when empty.
    pub fn end(&self) -> Option<Time> {
        self.items.iter().map(|it| it.departure).max()
    }

    /// Splits the instance into maximal groups of items whose union of
    /// active intervals is contiguous ("continuous intervals of active
    /// items" — the paper's Section 3 preprocessing). Each returned instance
    /// keeps its items' absolute times.
    pub fn split_busy_periods(&self) -> Vec<Instance> {
        let mut out = Vec::new();
        let mut cur: Vec<Item> = Vec::new();
        let mut cur_end = Time::ZERO;
        for it in &self.items {
            if cur.is_empty() || it.arrival <= cur_end {
                cur_end = cur_end.max(it.departure);
                cur.push(*it);
            } else {
                out.push(Self::renumber(std::mem::take(&mut cur)));
                cur.push(*it);
                cur_end = it.departure;
            }
        }
        if !cur.is_empty() {
            out.push(Self::renumber(cur));
        }
        out
    }

    fn renumber(mut items: Vec<Item>) -> Instance {
        for (idx, it) in items.iter_mut().enumerate() {
            it.id = ItemId(idx as u32);
        }
        Instance { items }
    }

    /// Whether the instance is *aligned* (Definition 2.1): every item of
    /// duration class `i` (length in `(2^{i-1}, 2^i]`) arrives at a multiple
    /// of `2^i` ticks.
    pub fn is_aligned(&self) -> bool {
        self.items.iter().all(|it| {
            let w = 1u64 << it.class_index();
            it.arrival.ticks() % w == 0
        })
    }

    /// Content-addressed digest of the instance: a 128-bit FNV-1a hash over
    /// the *sorted* multiset of `(arrival, departure, size)` triples.
    ///
    /// The digest is order-independent: two instances built by pushing the
    /// same triples in any order (including different intra-arrival
    /// insertion orders) share a digest, and any change to a single field of
    /// a single item changes it. Item ids are deliberately excluded — they
    /// are an artifact of builder order, not content.
    ///
    /// Used as the key of the experiment-harness bracket cache: certified
    /// OPT brackets depend only on the triple multiset, never on
    /// presentation order.
    pub fn digest(&self) -> InstanceDigest {
        let dims = self.dims();
        let mut triples: Vec<(u64, u64, [u64; MAX_DIMS])> = self
            .items
            .iter()
            .map(|it| (it.arrival.ticks(), it.departure.ticks(), it.size.raws()))
            .collect();
        triples.sort_unstable();

        // FNV-1a, 128-bit variant (offset basis / prime per the FNV spec).
        const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
        const PRIME: u128 = 0x0000000001000000000000000000013b;
        let mut h = OFFSET;
        let mut absorb = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u128;
                h = h.wrapping_mul(PRIME);
            }
        };
        absorb(self.items.len() as u64);
        for (a, d, s) in triples {
            absorb(a);
            absorb(d);
            absorb(s[0]);
            // Extra dimensions are absorbed only when the instance has any,
            // keeping every scalar instance's digest (and its cached
            // brackets) byte-identical to the pre-vector encoding.
            for &extra in &s[1..dims] {
                absorb(extra);
            }
        }
        InstanceDigest(h)
    }

    /// Maximum number of simultaneously active items.
    pub fn max_concurrency(&self) -> usize {
        let mut events: Vec<(Time, i32)> = Vec::with_capacity(self.items.len() * 2);
        for it in &self.items {
            events.push((it.arrival, 1));
            events.push((it.departure, -1));
        }
        events.sort_by_key(|&(t, delta)| (t, delta)); // departures (−1) first
        let mut cur = 0i64;
        let mut max = 0i64;
        for (_, d) in events {
            cur += d as i64;
            max = max.max(cur);
        }
        max as usize
    }
}

/// A 128-bit content digest of an [`Instance`] (see [`Instance::digest`]).
///
/// Displays as 32 lowercase hex digits; [`InstanceDigest::parse`] inverts
/// that rendering (for cache-spill round trips).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceDigest(pub u128);

impl InstanceDigest {
    /// Parses the 32-hex-digit rendering produced by `Display`.
    pub fn parse(s: &str) -> Option<InstanceDigest> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(InstanceDigest)
    }
}

impl fmt::Display for InstanceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Instance: {} items, μ={:?}", self.len(), self.mu())?;
        for it in &self.items {
            writeln!(f, "  {it}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::Size;

    fn sz(num: u64, den: u64) -> Size {
        Size::from_ratio(num, den)
    }

    #[test]
    fn builder_sorts_stably_and_renumbers() {
        let mut b = InstanceBuilder::new();
        b.push(Time(5), Dur(1), sz(1, 2));
        b.push(Time(0), Dur(2), sz(1, 2));
        b.push(Time(5), Dur(3), sz(1, 4));
        let inst = b.build().unwrap();
        let arrivals: Vec<u64> = inst.items().iter().map(|i| i.arrival.ticks()).collect();
        assert_eq!(arrivals, [0, 5, 5]);
        // Same-arrival order preserved: the Dur(1) item (added first) precedes Dur(3).
        assert_eq!(inst.items()[1].duration(), Dur(1));
        assert_eq!(inst.items()[2].duration(), Dur(3));
        // Ids are dense and match indices.
        for (idx, it) in inst.items().iter().enumerate() {
            assert_eq!(it.id.index(), idx);
        }
    }

    #[test]
    fn rejects_empty_interval_and_zero_size() {
        let mut b = InstanceBuilder::new();
        b.push(Time(3), Dur::ZERO, sz(1, 2));
        assert!(matches!(
            b.build(),
            Err(InstanceError::EmptyInterval { .. })
        ));

        let mut b = InstanceBuilder::new();
        b.push(Time(3), Dur(1), Size::from_raw(0));
        assert!(matches!(b.build(), Err(InstanceError::ZeroSize { .. })));
    }

    #[test]
    fn mu_and_durations() {
        let inst =
            Instance::from_triples([(Time(0), Dur(1), sz(1, 2)), (Time(0), Dur(8), sz(1, 2))])
                .unwrap();
        assert_eq!(inst.mu(), Some(8.0));
        assert_eq!(inst.min_duration(), Dur(1));
        assert_eq!(inst.max_duration(), Dur(8));
        assert_eq!(inst.log2_mu(), 3.0);
        assert_eq!(Instance::empty().mu(), None);
    }

    #[test]
    fn demand_is_exact() {
        let inst = Instance::from_triples([
            (Time(0), Dur(4), sz(1, 2)),  // 2 bin·ticks
            (Time(10), Dur(2), sz(1, 4)), // 0.5 bin·ticks
        ])
        .unwrap();
        assert_eq!(inst.demand().as_bin_ticks(), 2.5);
    }

    #[test]
    fn span_merges_touching_intervals() {
        // [0,5) and [5,8) touch: union is one busy interval of length 8.
        let inst =
            Instance::from_triples([(Time(0), Dur(5), sz(1, 2)), (Time(5), Dur(3), sz(1, 2))])
                .unwrap();
        assert_eq!(inst.span_dur(), Dur(8));
    }

    #[test]
    fn span_counts_gaps_once() {
        let inst = Instance::from_triples([
            (Time(0), Dur(2), sz(1, 2)),
            (Time(10), Dur(3), sz(1, 2)),
            (Time(11), Dur(1), sz(1, 2)),
        ])
        .unwrap();
        assert_eq!(inst.span_dur(), Dur(5));
    }

    #[test]
    fn busy_period_split() {
        let inst = Instance::from_triples([
            (Time(0), Dur(2), sz(1, 2)),
            (Time(1), Dur(3), sz(1, 2)),
            (Time(10), Dur(1), sz(1, 2)),
        ])
        .unwrap();
        let parts = inst.split_busy_periods();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 1);
        assert_eq!(parts[1].items()[0].id, ItemId(0), "parts renumber from 0");
    }

    #[test]
    fn aligned_detection() {
        // Length 4 (class 2) at t=8: aligned. At t=6: not aligned.
        let ok = Instance::from_triples([(Time(8), Dur(4), sz(1, 2))]).unwrap();
        assert!(ok.is_aligned());
        let bad = Instance::from_triples([(Time(6), Dur(4), sz(1, 2))]).unwrap();
        assert!(!bad.is_aligned());
        // Length 3 is class 2, so must arrive at multiples of 4.
        let bad2 = Instance::from_triples([(Time(2), Dur(3), sz(1, 2))]).unwrap();
        assert!(!bad2.is_aligned());
    }

    #[test]
    fn digest_is_order_independent() {
        // Same triples, three presentation orders — including two items
        // sharing an arrival, whose insertion order changes item ids.
        let t1 = [
            (Time(0), Dur(4), sz(1, 2)),
            (Time(0), Dur(7), sz(1, 3)),
            (Time(5), Dur(2), sz(1, 2)),
        ];
        let t2 = [t1[1], t1[0], t1[2]];
        let t3 = [t1[2], t1[1], t1[0]];
        let d1 = Instance::from_triples(t1).unwrap().digest();
        let d2 = Instance::from_triples(t2).unwrap().digest();
        let d3 = Instance::from_triples(t3).unwrap().digest();
        assert_eq!(d1, d2);
        assert_eq!(d1, d3);
    }

    #[test]
    fn digest_distinguishes_every_field() {
        let base = Instance::from_triples([(Time(0), Dur(4), sz(1, 2))])
            .unwrap()
            .digest();
        let arrival = Instance::from_triples([(Time(1), Dur(4), sz(1, 2))])
            .unwrap()
            .digest();
        let duration = Instance::from_triples([(Time(0), Dur(5), sz(1, 2))])
            .unwrap()
            .digest();
        let size = Instance::from_triples([(Time(0), Dur(4), sz(1, 3))])
            .unwrap()
            .digest();
        let duplicated =
            Instance::from_triples([(Time(0), Dur(4), sz(1, 2)), (Time(0), Dur(4), sz(1, 2))])
                .unwrap()
                .digest();
        for other in [arrival, duration, size, duplicated] {
            assert_ne!(base, other);
        }
        assert_ne!(Instance::empty().digest(), base);
    }

    #[test]
    fn digest_hex_round_trips() {
        let d = Instance::from_triples([(Time(3), Dur(9), sz(2, 3))])
            .unwrap()
            .digest();
        let hex = d.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(InstanceDigest::parse(&hex), Some(d));
        assert_eq!(InstanceDigest::parse("xyz"), None);
        assert_eq!(InstanceDigest::parse(&hex[1..]), None);
    }

    #[test]
    fn max_concurrency_departures_free_first() {
        // [0,5) and [5,10): never concurrent.
        let inst =
            Instance::from_triples([(Time(0), Dur(5), sz(1, 2)), (Time(5), Dur(5), sz(1, 2))])
                .unwrap();
        assert_eq!(inst.max_concurrency(), 1);
        let inst2 =
            Instance::from_triples([(Time(0), Dur(6), sz(1, 2)), (Time(5), Dur(5), sz(1, 2))])
                .unwrap();
        assert_eq!(inst2.max_concurrency(), 2);
    }
}
