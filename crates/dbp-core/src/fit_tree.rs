//! The O(log B) placement kernel: a capacity-indexed tournament tree.
//!
//! First-Fit — and every restricted variant the paper's algorithms build on
//! it (HA's per-type CD chains, CDFF's rows, CBD's bands) — asks one query
//! per arrival: *the earliest-opened bin with at least `s` remaining
//! capacity*. A linear scan pays O(open bins), and the paper's own
//! instances (adversary ladders, σ_μ, the Ω(√log μ) families) are exactly
//! the ones that drive the open-bin count into the thousands.
//!
//! [`FitTree`] answers the query in O(log B): a complete binary tournament
//! tree (segment tree) over *bin slots* in opening order, where each leaf
//! holds a key derived from the bin's remaining capacity and each internal
//! node holds the maximum key of its subtree. The First-Fit bin is found by
//! descending from the root, always preferring the left child whose max
//! still qualifies — the leftmost qualifying leaf, i.e. the
//! earliest-opened fitting bin.
//!
//! **Key encoding.** A leaf stores `remaining + 1` for an open slot and `0`
//! for a closed (or never-used) slot. An item of raw size `s` fits iff
//! `remaining ≥ s` iff `key ≥ s + 1`. Because `s + 1 ≥ 1 > 0`, closed
//! slots never qualify — including for zero-size items, which (exactly like
//! the linear scan) match the first *open* bin. Since sizes are exact
//! fixed-point integers ([`crate::size::SIZE_SCALE`]), the tree's
//! comparison is bit-for-bit the same predicate as
//! [`crate::size::Load::fits`]; the tree and the scan cannot disagree.
//!
//! **Tie-breaking invariant.** Slots are allocated in opening order and
//! never reused, so "leftmost qualifying leaf" and "First-Fit over open
//! bins in opening order" are the same bin by construction. [`BinStore`]
//! (crate::bin_state::BinStore) uses slot = [`BinId`] index; per-class
//! [`SubsetFitTree`]s rely on classes inserting their bins in ascending
//! `BinId` order (asserted in debug builds).

use std::collections::HashMap;

use crate::bin_state::BinId;
use crate::size::{SizeVec, MAX_DIMS, SIZE_SCALE};

/// Max-tournament tree over capacity keys, indexed by slot (leaf) number.
///
/// Slots are append-only (`push`); capacity doubles as needed, so `push` is
/// amortized O(1) and point updates / queries are O(log slots).
#[derive(Debug, Default, Clone)]
pub struct FitTree {
    /// Heap-shaped max tree: `keys[1]` is the root, children of `i` are
    /// `2i` and `2i+1`, leaves are `keys[cap..cap + cap]`. Key = remaining
    /// capacity + 1 for open slots, 0 for closed/unused slots.
    keys: Vec<u64>,
    /// Per-dimension key planes for dimensions 1.. of a vector-packing
    /// run, same heap shape and key encoding as `keys` (which remains the
    /// dimension-0 plane). Empty for scalar runs — the D = 1 fast path
    /// never allocates or consults them. An internal node's key is the max
    /// over its subtree *per plane*, so a node qualifying in every plane
    /// is a necessary (not sufficient) condition for a qualifying leaf;
    /// [`FitTree::first_fit_vec`] descends with backtracking and decides
    /// exactly at leaves, where plane keys are the actual remainders.
    planes: Vec<Vec<u64>>,
    /// Number of leaves (a power of two, or 0 before the first push).
    cap: usize,
    /// Number of slots ever allocated.
    len: usize,
}

impl FitTree {
    /// An empty tree.
    pub fn new() -> FitTree {
        FitTree::default()
    }

    /// An empty tree pre-sized for `n` slots.
    pub fn with_capacity(n: usize) -> FitTree {
        let mut t = FitTree::new();
        if n > 0 {
            t.cap = n.next_power_of_two();
            t.keys = vec![0; 2 * t.cap];
        }
        t
    }

    /// Number of slots ever allocated (closed slots included).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot was ever allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocates the next slot with `remaining` capacity and returns it.
    /// Slots are numbered sequentially from 0 — opening order. Extra
    /// dimension planes (if any) start at full capacity; use
    /// [`FitTree::set_remaining_vec`] to set them.
    pub fn push(&mut self, remaining: u64) -> usize {
        if self.len == self.cap {
            self.grow();
        }
        let slot = self.len;
        self.len += 1;
        self.set_key(slot, remaining + 1);
        for d in 0..self.planes.len() {
            self.set_plane_key(d, slot, SIZE_SCALE + 1);
        }
        slot
    }

    /// Sets a slot's remaining capacity (the slot stays open).
    #[inline]
    pub fn set_remaining(&mut self, slot: usize, remaining: u64) {
        self.set_key(slot, remaining + 1);
    }

    /// Sets a slot's per-dimension remaining capacities. Dimensions beyond
    /// the materialized planes are ignored (they are only materialized
    /// once [`FitTree::ensure_dims`] grows the tree).
    pub fn set_remaining_vec(&mut self, slot: usize, remaining: &[u64; MAX_DIMS]) {
        self.set_key(slot, remaining[0] + 1);
        for d in 0..self.planes.len() {
            self.set_plane_key(d, slot, remaining[d + 1] + 1);
        }
    }

    /// Closes a slot: it will never qualify for any query again.
    #[inline]
    pub fn close(&mut self, slot: usize) {
        self.set_key(slot, 0);
        for d in 0..self.planes.len() {
            self.set_plane_key(d, slot, 0);
        }
    }

    /// Number of key planes currently materialized: the dimensionality
    /// queries can discriminate on (scalar trees report 1).
    #[inline]
    pub fn dims(&self) -> usize {
        self.planes.len() + 1
    }

    /// Materializes key planes so the tree discriminates on `nd`
    /// dimensions. New planes backfill every *open* slot at full remaining
    /// capacity: a plane is only materialized lazily, when the first item
    /// with a nonzero component in that dimension shows up, at which point
    /// every previously placed item provably had a zero component there —
    /// so full capacity is the exact remainder, not an approximation.
    /// Scalar runs never call this, keeping the D = 1 layout untouched.
    pub fn ensure_dims(&mut self, nd: usize) {
        assert!(nd <= MAX_DIMS, "dimension count {nd} exceeds {MAX_DIMS}");
        while self.planes.len() + 1 < nd {
            let mut plane = vec![0u64; 2 * self.cap];
            for slot in 0..self.len {
                if self.keys[self.cap + slot] > 0 {
                    plane[self.cap + slot] = SIZE_SCALE + 1;
                }
            }
            for i in (1..self.cap).rev() {
                plane[i] = plane[2 * i].max(plane[2 * i + 1]);
            }
            self.planes.push(plane);
        }
    }

    /// The remaining capacity of an open slot, or `None` if closed/unused.
    #[inline]
    pub fn remaining(&self, slot: usize) -> Option<u64> {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        let k = self.keys[self.cap + slot];
        k.checked_sub(1)
    }

    /// Per-dimension remaining capacities of an open slot (`None` if
    /// closed/unused). Dimensions beyond the materialized planes report
    /// full capacity — exact, by the lazy-materialization invariant of
    /// [`FitTree::ensure_dims`].
    pub fn remaining_vec(&self, slot: usize) -> Option<[u64; MAX_DIMS]> {
        let r0 = self.remaining(slot)?;
        let mut out = [SIZE_SCALE; MAX_DIMS];
        out[0] = r0;
        for (d, plane) in self.planes.iter().enumerate() {
            // Open in dimension 0 ⇒ every plane key is ≥ 1.
            out[d + 1] = plane[self.cap + slot] - 1;
        }
        Some(out)
    }

    /// The lowest-numbered open slot with remaining capacity ≥ `size`, in
    /// O(log len) — the First-Fit choice.
    pub fn first_fit(&self, size: u64) -> Option<usize> {
        let needed = size + 1;
        if self.cap == 0 || self.keys[1] < needed {
            return None;
        }
        let mut i = 1;
        while i < self.cap {
            i <<= 1;
            if self.keys[i] < needed {
                i |= 1; // left subtree cannot serve; the right one must.
            }
        }
        let slot = i - self.cap;
        debug_assert!(slot < self.len);
        Some(slot)
    }

    /// The lowest-numbered open slot `≥ start` with remaining capacity
    /// ≥ `size`, in O(log len). `first_fit(s) == first_fit_from(0, s)`.
    pub fn first_fit_from(&self, start: usize, size: u64) -> Option<usize> {
        if start >= self.len {
            return None;
        }
        let needed = size + 1;
        let mut i = self.cap + start;
        if self.keys[i] >= needed {
            return Some(start);
        }
        // Climb to the first ancestor reached from a left child whose right
        // sibling's subtree holds a qualifying leaf...
        while i > 1 && ((i & 1) == 1 || self.keys[i ^ 1] < needed) {
            i >>= 1;
        }
        if i <= 1 {
            return None;
        }
        // ...then descend to the leftmost qualifying leaf of that sibling.
        i ^= 1;
        while i < self.cap {
            i <<= 1;
            if self.keys[i] < needed {
                i |= 1;
            }
        }
        let slot = i - self.cap;
        debug_assert!(slot > start && slot < self.len);
        Some(slot)
    }

    /// The lowest-numbered open slot whose remaining capacity covers `size`
    /// in *every* dimension — the vector First-Fit choice.
    ///
    /// Dimensions beyond the materialized planes are ignored, which is
    /// exact (every open slot has full remaining capacity there, see
    /// [`FitTree::ensure_dims`]); with no planes this delegates to the
    /// scalar [`FitTree::first_fit`] descent, so D = 1 queries take the
    /// identical code path and return identical answers.
    ///
    /// Internal nodes hold per-plane maxima taken over possibly *different*
    /// leaves, so a node qualifying in every plane is necessary but not
    /// sufficient; the search is a left-first DFS that prunes on that test
    /// and decides exactly at leaves, where plane keys are the actual
    /// remainders. Worst case O(len), but pruning keeps typical queries
    /// near O(log len).
    pub fn first_fit_vec(&self, size: SizeVec) -> Option<usize> {
        let nd = size.dims_used().min(self.planes.len() + 1);
        if nd <= 1 {
            return self.first_fit(size.primary().raw());
        }
        if self.cap == 0 {
            return None;
        }
        let raws = size.raws();
        let needed = raws.map(|r| r + 1);
        let qualifies = |i: usize| {
            self.keys[i] >= needed[0]
                && self.planes[..nd - 1]
                    .iter()
                    .enumerate()
                    .all(|(d, plane)| plane[i] >= needed[d + 1])
        };
        // Explicit DFS stack: ≤ one deferred right sibling per level, so
        // depth + 1 entries suffice (cap ≤ 2^63 ⇒ depth ≤ 63).
        let mut stack = [0usize; 65];
        let mut sp = 0;
        stack[sp] = 1;
        sp += 1;
        while sp > 0 {
            sp -= 1;
            let i = stack[sp];
            if !qualifies(i) {
                continue;
            }
            if i >= self.cap {
                let slot = i - self.cap;
                debug_assert!(slot < self.len);
                return Some(slot);
            }
            stack[sp] = 2 * i + 1; // right sibling, visited after...
            stack[sp + 1] = 2 * i; // ...the left child (popped first).
            sp += 2;
        }
        None
    }

    /// The lowest-numbered open slot `≥ start` fitting `size` in every
    /// dimension. `first_fit_vec(s) == first_fit_vec_from(0, s)`; delegates
    /// to the scalar [`FitTree::first_fit_from`] when no extra plane is in
    /// play, so D = 1 queries stay on the identical code path.
    pub fn first_fit_vec_from(&self, start: usize, size: SizeVec) -> Option<usize> {
        let nd = size.dims_used().min(self.planes.len() + 1);
        if nd <= 1 {
            return self.first_fit_from(start, size.primary().raw());
        }
        if self.cap == 0 || start >= self.len {
            return None;
        }
        let raws = size.raws();
        let needed = raws.map(|r| r + 1);
        let qualifies = |i: usize| {
            self.keys[i] >= needed[0]
                && self.planes[..nd - 1]
                    .iter()
                    .enumerate()
                    .all(|(d, plane)| plane[i] >= needed[d + 1])
        };
        let log_cap = self.cap.ilog2();
        let mut stack = [0usize; 65];
        let mut sp = 0;
        stack[sp] = 1;
        sp += 1;
        while sp > 0 {
            sp -= 1;
            let i = stack[sp];
            // Node i covers leaves [i·2^s, (i+1)·2^s); prune subtrees
            // that end strictly before `start`.
            let s = log_cap - i.ilog2();
            let last_slot = (((i + 1) << s) - 1) - self.cap;
            if last_slot < start || !qualifies(i) {
                continue;
            }
            if i >= self.cap {
                let slot = i - self.cap;
                debug_assert!(slot >= start && slot < self.len);
                return Some(slot);
            }
            stack[sp] = 2 * i + 1;
            stack[sp + 1] = 2 * i;
            sp += 2;
        }
        None
    }

    fn set_key(&mut self, slot: usize, key: u64) {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        let mut i = self.cap + slot;
        self.keys[i] = key;
        while i > 1 {
            i >>= 1;
            let m = self.keys[2 * i].max(self.keys[2 * i + 1]);
            if self.keys[i] == m {
                break;
            }
            self.keys[i] = m;
        }
    }

    fn set_plane_key(&mut self, d: usize, slot: usize, key: u64) {
        let cap = self.cap;
        let keys = &mut self.planes[d];
        let mut i = cap + slot;
        keys[i] = key;
        while i > 1 {
            i >>= 1;
            let m = keys[2 * i].max(keys[2 * i + 1]);
            if keys[i] == m {
                break;
            }
            keys[i] = m;
        }
    }

    fn grow(&mut self) {
        let old_cap = self.cap;
        let new_cap = if old_cap == 0 { 1 } else { old_cap * 2 };
        let len = self.len;
        let regrow = |old: &[u64]| {
            let mut keys = vec![0u64; 2 * new_cap];
            keys[new_cap..new_cap + len].copy_from_slice(&old[old_cap..old_cap + len]);
            for i in (1..new_cap).rev() {
                keys[i] = keys[2 * i].max(keys[2 * i + 1]);
            }
            keys
        };
        self.keys = regrow(&self.keys);
        for plane in &mut self.planes {
            let grown = regrow(plane);
            *plane = grown;
        }
        self.cap = new_cap;
    }
}

/// A First-Fit index over a *subset* of bins (one HA type chain, one CDFF
/// row, one CBD band): the per-class analogue of the store-wide tree.
///
/// The owning algorithm mirrors engine state through `insert` / `place` /
/// `free` / `remove` (driven by its `on_arrival` decisions and
/// `on_departure` notifications), and queries `first_fit` in O(log k) where
/// `k` is the number of bins the class ever held between compactions.
///
/// Slots are assigned in insertion order; inserting bins in ascending
/// [`BinId`] order (every class opens its bins through sequentially
/// allocated engine ids, so this holds naturally) makes the leftmost
/// qualifying slot the earliest-opened bin — identical to the linear scan
/// over the class's bin list. Removed slots are tombstoned in the tree and
/// compacted away once they outnumber live bins.
#[derive(Debug, Default, Clone)]
pub struct SubsetFitTree {
    tree: FitTree,
    /// Slot → bin (parallel to the tree's leaves, including closed slots).
    bins: Vec<BinId>,
    /// Bin → slot, for point updates.
    slot_of: HashMap<BinId, usize>,
}

impl SubsetFitTree {
    /// An empty subset index.
    pub fn new() -> SubsetFitTree {
        SubsetFitTree::default()
    }

    /// Number of live (not removed) bins in the subset.
    #[inline]
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// Whether the subset has no live bins.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Whether `bin` is currently in the subset.
    #[inline]
    pub fn contains(&self, bin: BinId) -> bool {
        self.slot_of.contains_key(&bin)
    }

    /// Adds a bin with `remaining` raw capacity in dimension 0 (full
    /// capacity in any extra dimensions). Bins must be inserted in
    /// ascending id order (the order the engine allocates them), which is
    /// what makes tree queries agree with an opening-order linear scan.
    pub fn insert(&mut self, bin: BinId, remaining: u64) {
        debug_assert!(
            self.bins.last().is_none_or(|&last| last < bin),
            "subset insertions must follow opening order: {bin} after {:?}",
            self.bins.last()
        );
        debug_assert!(!self.contains(bin), "{bin} inserted twice");
        let slot = self.tree.push(remaining);
        debug_assert_eq!(slot, self.bins.len());
        self.bins.push(bin);
        self.slot_of.insert(bin, slot);
    }

    /// Adds a freshly opened bin holding exactly its `first` item — the
    /// form every algorithm's open-new path takes. The per-dimension
    /// remainder is `capacity − first`, so vector components are mirrored
    /// without the caller touching raw plane arithmetic.
    pub fn insert_fresh(&mut self, bin: BinId, first: impl Into<SizeVec>) {
        let s = first.into();
        self.tree.ensure_dims(s.dims_used());
        self.insert(bin, SIZE_SCALE);
        let slot = self.slot_of[&bin];
        self.tree.set_remaining_vec(slot, &s.remaining());
    }

    /// Records an item of `size` placed into `bin`.
    ///
    /// # Panics
    /// Panics if `bin` is not in the subset or `size` exceeds its tracked
    /// remaining capacity in any dimension (the mirror would have diverged
    /// from the engine).
    pub fn place(&mut self, bin: BinId, size: impl Into<SizeVec>) {
        let s = size.into();
        self.tree.ensure_dims(s.dims_used());
        let slot = self.slot_of[&bin];
        let mut rem = self.tree.remaining_vec(slot).expect("live slot");
        for (r, raw) in rem.iter_mut().zip(s.raws()) {
            *r = r.checked_sub(raw).expect("subset mirror overfilled a bin");
        }
        self.tree.set_remaining_vec(slot, &rem);
    }

    /// Records an item of `size` departing from `bin` (which stays open).
    ///
    /// # Panics
    /// Panics if `bin` is not in the subset.
    pub fn free(&mut self, bin: BinId, size: impl Into<SizeVec>) {
        let s = size.into();
        self.tree.ensure_dims(s.dims_used());
        let slot = self.slot_of[&bin];
        let mut rem = self.tree.remaining_vec(slot).expect("live slot");
        for (r, raw) in rem.iter_mut().zip(s.raws()) {
            *r += raw;
        }
        self.tree.set_remaining_vec(slot, &rem);
    }

    /// Removes a bin (closed, or reclassified by the algorithm). Unknown
    /// bins are ignored, mirroring the tolerant `Vec::retain` bookkeeping
    /// this replaces.
    pub fn remove(&mut self, bin: BinId) {
        let Some(slot) = self.slot_of.remove(&bin) else {
            return;
        };
        self.tree.close(slot);
        // Compact once tombstones dominate: amortized O(1) per removal.
        if self.slot_of.len() * 2 < self.tree.len() && self.tree.len() > 64 {
            self.compact();
        }
    }

    /// Earliest-inserted live bin with remaining capacity ≥ `size` in
    /// every dimension.
    #[inline]
    pub fn first_fit(&self, size: impl Into<SizeVec>) -> Option<BinId> {
        self.tree
            .first_fit_vec(size.into())
            .map(|slot| self.bins[slot])
    }

    /// Live bins in insertion (= opening) order, with remaining capacity.
    pub fn iter(&self) -> impl Iterator<Item = (BinId, u64)> + '_ {
        (0..self.tree.len())
            .filter_map(move |slot| self.tree.remaining(slot).map(|rem| (self.bins[slot], rem)))
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.tree = FitTree::new();
        self.bins.clear();
        self.slot_of.clear();
    }

    /// Renames every live bin after an engine bin-store compaction:
    /// `old_to_new[old.index()]` is the bin's new id (`BinId(u32::MAX)`
    /// marks a dropped closed bin — a live subset member is never
    /// dropped, since algorithms only keep open bins). The compaction
    /// renumbering preserves opening order, so rebuilding in slot order
    /// keeps insertion order ascending and first-fit answers unchanged.
    pub fn remap_bins(&mut self, old_to_new: &[BinId]) {
        let nd = self.tree.dims();
        let live: Vec<(BinId, [u64; MAX_DIMS])> = (0..self.tree.len())
            .filter_map(|slot| {
                self.tree.remaining_vec(slot).map(|rem| {
                    let new = old_to_new[self.bins[slot].index()];
                    debug_assert!(new != BinId(u32::MAX), "live bin dropped by compaction");
                    (new, rem)
                })
            })
            .collect();
        let mut tree = FitTree::with_capacity(live.len());
        tree.ensure_dims(nd);
        let mut bins = Vec::with_capacity(live.len());
        self.slot_of.clear();
        for (bin, rem) in live {
            let slot = tree.push(rem[0]);
            tree.set_remaining_vec(slot, &rem);
            bins.push(bin);
            self.slot_of.insert(bin, slot);
        }
        self.tree = tree;
        self.bins = bins;
    }

    fn compact(&mut self) {
        let nd = self.tree.dims();
        let live: Vec<(BinId, [u64; MAX_DIMS])> = (0..self.tree.len())
            .filter_map(|slot| {
                self.tree
                    .remaining_vec(slot)
                    .map(|rem| (self.bins[slot], rem))
            })
            .collect();
        let mut tree = FitTree::with_capacity(live.len());
        tree.ensure_dims(nd);
        let mut bins = Vec::with_capacity(live.len());
        self.slot_of.clear();
        for (bin, rem) in live {
            let slot = tree.push(rem[0]);
            tree.set_remaining_vec(slot, &rem);
            bins.push(bin);
            self.slot_of.insert(bin, slot);
        }
        self.tree = tree;
        self.bins = bins;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::{Size, SIZE_SCALE};

    #[test]
    fn empty_tree_answers_none() {
        let t = FitTree::new();
        assert_eq!(t.first_fit(0), None);
        assert_eq!(t.first_fit_from(0, 0), None);
        assert!(t.is_empty());
    }

    #[test]
    fn leftmost_qualifying_slot_wins() {
        let mut t = FitTree::new();
        for rem in [10, 50, 30, 50] {
            t.push(rem);
        }
        assert_eq!(t.first_fit(5), Some(0));
        assert_eq!(t.first_fit(11), Some(1));
        assert_eq!(t.first_fit(31), Some(1));
        assert_eq!(t.first_fit(51), None);
        assert_eq!(t.first_fit_from(2, 11), Some(2));
        assert_eq!(t.first_fit_from(2, 31), Some(3));
        assert_eq!(t.first_fit_from(3, 11), Some(3));
        assert_eq!(t.first_fit_from(3, 51), None);
    }

    #[test]
    fn closed_slots_never_match_even_zero_size() {
        let mut t = FitTree::new();
        t.push(0); // open, zero remaining
        t.push(7);
        assert_eq!(t.first_fit(0), Some(0), "zero-size fits a full open bin");
        t.close(0);
        assert_eq!(t.first_fit(0), Some(1), "closed slot skipped");
        t.close(1);
        assert_eq!(t.first_fit(0), None);
    }

    #[test]
    fn updates_propagate_and_growth_preserves_keys() {
        let mut t = FitTree::new();
        for i in 0..100u64 {
            t.push(i);
        }
        assert_eq!(t.first_fit(99), Some(99));
        t.set_remaining(4, 1_000);
        assert_eq!(t.first_fit(100), Some(4));
        t.close(4);
        assert_eq!(t.first_fit(100), None);
        assert_eq!(t.remaining(4), None);
        assert_eq!(t.remaining(5), Some(5));
    }

    #[test]
    fn matches_linear_oracle_on_random_ops() {
        // Deterministic xorshift; mirrors slots in a plain Vec<Option<u64>>.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut t = FitTree::new();
        let mut oracle: Vec<Option<u64>> = Vec::new();
        for _ in 0..4_000 {
            match rand() % 4 {
                0 => {
                    let rem = rand() % SIZE_SCALE;
                    t.push(rem);
                    oracle.push(Some(rem));
                }
                1 if !oracle.is_empty() => {
                    let slot = (rand() % oracle.len() as u64) as usize;
                    let rem = rand() % SIZE_SCALE;
                    if oracle[slot].is_some() {
                        t.set_remaining(slot, rem);
                        oracle[slot] = Some(rem);
                    }
                }
                2 if !oracle.is_empty() => {
                    let slot = (rand() % oracle.len() as u64) as usize;
                    t.close(slot);
                    oracle[slot] = None;
                }
                _ => {
                    let size = rand() % SIZE_SCALE;
                    let want = oracle.iter().position(|r| r.is_some_and(|rem| rem >= size));
                    assert_eq!(t.first_fit(size), want);
                    if !oracle.is_empty() {
                        let start = (rand() % oracle.len() as u64) as usize;
                        let want_from = oracle
                            .iter()
                            .enumerate()
                            .skip(start)
                            .find(|(_, r)| r.is_some_and(|rem| rem >= size))
                            .map(|(i, _)| i);
                        assert_eq!(t.first_fit_from(start, size), want_from);
                    }
                }
            }
        }
    }

    #[test]
    fn subset_tracks_place_free_remove() {
        let mut s = SubsetFitTree::new();
        let half = Size::from_ratio(1, 2);
        s.insert(BinId(3), SIZE_SCALE);
        s.insert(BinId(7), SIZE_SCALE);
        assert_eq!(s.first_fit(half), Some(BinId(3)));
        s.place(BinId(3), Size::from_ratio(2, 3));
        assert_eq!(s.first_fit(half), Some(BinId(7)));
        s.free(BinId(3), Size::from_ratio(2, 3));
        assert_eq!(s.first_fit(half), Some(BinId(3)));
        s.remove(BinId(3));
        assert_eq!(s.first_fit(half), Some(BinId(7)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(BinId(7)) && !s.contains(BinId(3)));
        s.remove(BinId(99)); // unknown: ignored
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(BinId(7), SIZE_SCALE)]);
    }

    #[test]
    fn subset_compaction_preserves_order_and_capacities() {
        let mut s = SubsetFitTree::new();
        for i in 0..200u32 {
            s.insert(BinId(i), u64::from(i));
        }
        for i in 0..180u32 {
            s.remove(BinId(i));
        }
        assert_eq!(s.len(), 20);
        let live: Vec<(BinId, u64)> = s.iter().collect();
        assert_eq!(live.len(), 20);
        for (k, &(bin, rem)) in live.iter().enumerate() {
            assert_eq!(bin, BinId(180 + k as u32));
            assert_eq!(rem, u64::from(180 + k as u32));
        }
        // Queries still answer the earliest live bin after compaction.
        assert_eq!(s.first_fit(Size::from_raw(185)), Some(BinId(185)));
    }

    #[test]
    #[should_panic(expected = "overfilled")]
    fn subset_place_overflow_panics() {
        let mut s = SubsetFitTree::new();
        s.insert(BinId(0), 10);
        s.place(BinId(0), Size::from_raw(11));
    }

    fn vec2(a: u64, b: u64) -> SizeVec {
        SizeVec::try_from_raws(&[a, b]).unwrap()
    }

    #[test]
    fn vector_query_needs_every_dimension_to_fit() {
        let mut t = FitTree::new();
        t.push(SIZE_SCALE); // slot 0
        t.push(SIZE_SCALE); // slot 1
        t.ensure_dims(2);
        // Both slots have ample dim-0; dim-1 is nearly exhausted in slot 0
        // and merely tight in slot 1.
        t.set_remaining_vec(0, &[SIZE_SCALE, 10, SIZE_SCALE]);
        t.set_remaining_vec(1, &[SIZE_SCALE, 500, SIZE_SCALE]);
        assert_eq!(t.first_fit(100), Some(0), "scalar sees only dimension 0");
        assert_eq!(t.first_fit_vec(vec2(100, 100)), Some(1));
        assert_eq!(t.first_fit_vec(vec2(100, 5)), Some(0));
        assert_eq!(t.first_fit_vec(vec2(100, 11)), Some(1));
        assert_eq!(t.first_fit_vec(vec2(100, 501)), None);
        // D=1 queries delegate to the scalar descent.
        assert_eq!(
            t.first_fit_vec(SizeVec::scalar(Size::from_raw(100))),
            Some(0)
        );
    }

    #[test]
    fn ensure_dims_backfills_open_slots_at_full_capacity() {
        let mut t = FitTree::new();
        t.push(42);
        t.push(7);
        t.close(1);
        t.ensure_dims(3);
        assert_eq!(t.dims(), 3);
        assert_eq!(t.remaining_vec(0), Some([42, SIZE_SCALE, SIZE_SCALE]));
        assert_eq!(
            t.remaining_vec(1),
            None,
            "closed slots stay closed per plane"
        );
        // A later push starts fully open in every plane.
        let slot = t.push(5);
        assert_eq!(t.remaining_vec(slot), Some([5, SIZE_SCALE, SIZE_SCALE]));
    }

    #[test]
    fn vector_matches_linear_oracle_on_random_ops() {
        let mut state = 0xfeed_face_cafe_beefu64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut t = FitTree::new();
        t.ensure_dims(3);
        let mut oracle: Vec<Option<[u64; MAX_DIMS]>> = Vec::new();
        for _ in 0..4_000 {
            match rand() % 4 {
                0 => {
                    let rem = [
                        rand() % SIZE_SCALE,
                        rand() % SIZE_SCALE,
                        rand() % SIZE_SCALE,
                    ];
                    let slot = t.push(rem[0]);
                    t.set_remaining_vec(slot, &rem);
                    oracle.push(Some(rem));
                }
                1 if !oracle.is_empty() => {
                    let slot = (rand() % oracle.len() as u64) as usize;
                    if oracle[slot].is_some() {
                        let rem = [
                            rand() % SIZE_SCALE,
                            rand() % SIZE_SCALE,
                            rand() % SIZE_SCALE,
                        ];
                        t.set_remaining_vec(slot, &rem);
                        oracle[slot] = Some(rem);
                    }
                }
                2 if !oracle.is_empty() => {
                    let slot = (rand() % oracle.len() as u64) as usize;
                    t.close(slot);
                    oracle[slot] = None;
                }
                _ => {
                    // Bias sizes small so queries hit mid-tree, not just root.
                    let s = [
                        rand() % (SIZE_SCALE / 2) + 1,
                        rand() % (SIZE_SCALE / 2) + 1,
                        rand() % (SIZE_SCALE / 2) + 1,
                    ];
                    let size = SizeVec::try_from_raws(&s).unwrap();
                    let want = oracle
                        .iter()
                        .position(|r| r.is_some_and(|rem| (0..MAX_DIMS).all(|d| rem[d] >= s[d])));
                    assert_eq!(t.first_fit_vec(size), want);
                }
            }
        }
    }

    #[test]
    fn subset_insert_fresh_tracks_vector_remainders_through_compaction() {
        let mut s = SubsetFitTree::new();
        for i in 0..200u32 {
            s.insert_fresh(BinId(i), vec2(SIZE_SCALE - u64::from(i), SIZE_SCALE / 2));
        }
        for i in 0..180u32 {
            s.remove(BinId(i));
        }
        // Remainders: dim0 = i, dim1 = SIZE_SCALE/2, surviving compaction.
        assert_eq!(s.first_fit(vec2(185, SIZE_SCALE / 2)), Some(BinId(185)));
        assert_eq!(s.first_fit(vec2(185, SIZE_SCALE / 2 + 1)), None);
        s.free(BinId(185), vec2(0, SIZE_SCALE / 4));
        assert_eq!(s.first_fit(vec2(185, SIZE_SCALE / 2 + 1)), Some(BinId(185)));
        s.place(BinId(185), vec2(0, SIZE_SCALE / 4));
        assert_eq!(s.first_fit(vec2(185, SIZE_SCALE / 2 + 1)), None);
    }
}
