//! The O(log B) placement kernel: a capacity-indexed tournament tree.
//!
//! First-Fit — and every restricted variant the paper's algorithms build on
//! it (HA's per-type CD chains, CDFF's rows, CBD's bands) — asks one query
//! per arrival: *the earliest-opened bin with at least `s` remaining
//! capacity*. A linear scan pays O(open bins), and the paper's own
//! instances (adversary ladders, σ_μ, the Ω(√log μ) families) are exactly
//! the ones that drive the open-bin count into the thousands.
//!
//! [`FitTree`] answers the query in O(log B): a complete binary tournament
//! tree (segment tree) over *bin slots* in opening order, where each leaf
//! holds a key derived from the bin's remaining capacity and each internal
//! node holds the maximum key of its subtree. The First-Fit bin is found by
//! descending from the root, always preferring the left child whose max
//! still qualifies — the leftmost qualifying leaf, i.e. the
//! earliest-opened fitting bin.
//!
//! **Key encoding.** A leaf stores `remaining + 1` for an open slot and `0`
//! for a closed (or never-used) slot. An item of raw size `s` fits iff
//! `remaining ≥ s` iff `key ≥ s + 1`. Because `s + 1 ≥ 1 > 0`, closed
//! slots never qualify — including for zero-size items, which (exactly like
//! the linear scan) match the first *open* bin. Since sizes are exact
//! fixed-point integers ([`crate::size::SIZE_SCALE`]), the tree's
//! comparison is bit-for-bit the same predicate as
//! [`crate::size::Load::fits`]; the tree and the scan cannot disagree.
//!
//! **Tie-breaking invariant.** Slots are allocated in opening order and
//! never reused, so "leftmost qualifying leaf" and "First-Fit over open
//! bins in opening order" are the same bin by construction. [`BinStore`]
//! (crate::bin_state::BinStore) uses slot = [`BinId`] index; per-class
//! [`SubsetFitTree`]s rely on classes inserting their bins in ascending
//! `BinId` order (asserted in debug builds).

use std::collections::HashMap;

use crate::bin_state::BinId;
use crate::size::Size;

/// Max-tournament tree over capacity keys, indexed by slot (leaf) number.
///
/// Slots are append-only (`push`); capacity doubles as needed, so `push` is
/// amortized O(1) and point updates / queries are O(log slots).
#[derive(Debug, Default, Clone)]
pub struct FitTree {
    /// Heap-shaped max tree: `keys[1]` is the root, children of `i` are
    /// `2i` and `2i+1`, leaves are `keys[cap..cap + cap]`. Key = remaining
    /// capacity + 1 for open slots, 0 for closed/unused slots.
    keys: Vec<u64>,
    /// Number of leaves (a power of two, or 0 before the first push).
    cap: usize,
    /// Number of slots ever allocated.
    len: usize,
}

impl FitTree {
    /// An empty tree.
    pub fn new() -> FitTree {
        FitTree::default()
    }

    /// An empty tree pre-sized for `n` slots.
    pub fn with_capacity(n: usize) -> FitTree {
        let mut t = FitTree::new();
        if n > 0 {
            t.cap = n.next_power_of_two();
            t.keys = vec![0; 2 * t.cap];
        }
        t
    }

    /// Number of slots ever allocated (closed slots included).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot was ever allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocates the next slot with `remaining` capacity and returns it.
    /// Slots are numbered sequentially from 0 — opening order.
    pub fn push(&mut self, remaining: u64) -> usize {
        if self.len == self.cap {
            self.grow();
        }
        let slot = self.len;
        self.len += 1;
        self.set_key(slot, remaining + 1);
        slot
    }

    /// Sets a slot's remaining capacity (the slot stays open).
    #[inline]
    pub fn set_remaining(&mut self, slot: usize, remaining: u64) {
        self.set_key(slot, remaining + 1);
    }

    /// Closes a slot: it will never qualify for any query again.
    #[inline]
    pub fn close(&mut self, slot: usize) {
        self.set_key(slot, 0);
    }

    /// The remaining capacity of an open slot, or `None` if closed/unused.
    #[inline]
    pub fn remaining(&self, slot: usize) -> Option<u64> {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        let k = self.keys[self.cap + slot];
        k.checked_sub(1)
    }

    /// The lowest-numbered open slot with remaining capacity ≥ `size`, in
    /// O(log len) — the First-Fit choice.
    pub fn first_fit(&self, size: u64) -> Option<usize> {
        let needed = size + 1;
        if self.cap == 0 || self.keys[1] < needed {
            return None;
        }
        let mut i = 1;
        while i < self.cap {
            i <<= 1;
            if self.keys[i] < needed {
                i |= 1; // left subtree cannot serve; the right one must.
            }
        }
        let slot = i - self.cap;
        debug_assert!(slot < self.len);
        Some(slot)
    }

    /// The lowest-numbered open slot `≥ start` with remaining capacity
    /// ≥ `size`, in O(log len). `first_fit(s) == first_fit_from(0, s)`.
    pub fn first_fit_from(&self, start: usize, size: u64) -> Option<usize> {
        if start >= self.len {
            return None;
        }
        let needed = size + 1;
        let mut i = self.cap + start;
        if self.keys[i] >= needed {
            return Some(start);
        }
        // Climb to the first ancestor reached from a left child whose right
        // sibling's subtree holds a qualifying leaf...
        while i > 1 && ((i & 1) == 1 || self.keys[i ^ 1] < needed) {
            i >>= 1;
        }
        if i <= 1 {
            return None;
        }
        // ...then descend to the leftmost qualifying leaf of that sibling.
        i ^= 1;
        while i < self.cap {
            i <<= 1;
            if self.keys[i] < needed {
                i |= 1;
            }
        }
        let slot = i - self.cap;
        debug_assert!(slot > start && slot < self.len);
        Some(slot)
    }

    fn set_key(&mut self, slot: usize, key: u64) {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        let mut i = self.cap + slot;
        self.keys[i] = key;
        while i > 1 {
            i >>= 1;
            let m = self.keys[2 * i].max(self.keys[2 * i + 1]);
            if self.keys[i] == m {
                break;
            }
            self.keys[i] = m;
        }
    }

    fn grow(&mut self) {
        let new_cap = if self.cap == 0 { 1 } else { self.cap * 2 };
        let mut keys = vec![0u64; 2 * new_cap];
        keys[new_cap..new_cap + self.len]
            .copy_from_slice(&self.keys[self.cap..self.cap + self.len]);
        for i in (1..new_cap).rev() {
            keys[i] = keys[2 * i].max(keys[2 * i + 1]);
        }
        self.cap = new_cap;
        self.keys = keys;
    }
}

/// A First-Fit index over a *subset* of bins (one HA type chain, one CDFF
/// row, one CBD band): the per-class analogue of the store-wide tree.
///
/// The owning algorithm mirrors engine state through `insert` / `place` /
/// `free` / `remove` (driven by its `on_arrival` decisions and
/// `on_departure` notifications), and queries `first_fit` in O(log k) where
/// `k` is the number of bins the class ever held between compactions.
///
/// Slots are assigned in insertion order; inserting bins in ascending
/// [`BinId`] order (every class opens its bins through sequentially
/// allocated engine ids, so this holds naturally) makes the leftmost
/// qualifying slot the earliest-opened bin — identical to the linear scan
/// over the class's bin list. Removed slots are tombstoned in the tree and
/// compacted away once they outnumber live bins.
#[derive(Debug, Default, Clone)]
pub struct SubsetFitTree {
    tree: FitTree,
    /// Slot → bin (parallel to the tree's leaves, including closed slots).
    bins: Vec<BinId>,
    /// Bin → slot, for point updates.
    slot_of: HashMap<BinId, usize>,
}

impl SubsetFitTree {
    /// An empty subset index.
    pub fn new() -> SubsetFitTree {
        SubsetFitTree::default()
    }

    /// Number of live (not removed) bins in the subset.
    #[inline]
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// Whether the subset has no live bins.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Whether `bin` is currently in the subset.
    #[inline]
    pub fn contains(&self, bin: BinId) -> bool {
        self.slot_of.contains_key(&bin)
    }

    /// Adds a bin with `remaining` raw capacity. Bins must be inserted in
    /// ascending id order (the order the engine allocates them), which is
    /// what makes tree queries agree with an opening-order linear scan.
    pub fn insert(&mut self, bin: BinId, remaining: u64) {
        debug_assert!(
            self.bins.last().is_none_or(|&last| last < bin),
            "subset insertions must follow opening order: {bin} after {:?}",
            self.bins.last()
        );
        debug_assert!(!self.contains(bin), "{bin} inserted twice");
        let slot = self.tree.push(remaining);
        debug_assert_eq!(slot, self.bins.len());
        self.bins.push(bin);
        self.slot_of.insert(bin, slot);
    }

    /// Records an item of `size` placed into `bin`.
    ///
    /// # Panics
    /// Panics if `bin` is not in the subset or `size` exceeds its tracked
    /// remaining capacity (the mirror would have diverged from the engine).
    pub fn place(&mut self, bin: BinId, size: Size) {
        let slot = self.slot_of[&bin];
        let rem = self.tree.remaining(slot).expect("live slot");
        let rem = rem
            .checked_sub(size.raw())
            .expect("subset mirror overfilled a bin");
        self.tree.set_remaining(slot, rem);
    }

    /// Records an item of `size` departing from `bin` (which stays open).
    ///
    /// # Panics
    /// Panics if `bin` is not in the subset.
    pub fn free(&mut self, bin: BinId, size: Size) {
        let slot = self.slot_of[&bin];
        let rem = self.tree.remaining(slot).expect("live slot");
        self.tree.set_remaining(slot, rem + size.raw());
    }

    /// Removes a bin (closed, or reclassified by the algorithm). Unknown
    /// bins are ignored, mirroring the tolerant `Vec::retain` bookkeeping
    /// this replaces.
    pub fn remove(&mut self, bin: BinId) {
        let Some(slot) = self.slot_of.remove(&bin) else {
            return;
        };
        self.tree.close(slot);
        // Compact once tombstones dominate: amortized O(1) per removal.
        if self.slot_of.len() * 2 < self.tree.len() && self.tree.len() > 64 {
            self.compact();
        }
    }

    /// Earliest-inserted live bin with remaining capacity ≥ `size`.
    #[inline]
    pub fn first_fit(&self, size: Size) -> Option<BinId> {
        self.tree.first_fit(size.raw()).map(|slot| self.bins[slot])
    }

    /// Live bins in insertion (= opening) order, with remaining capacity.
    pub fn iter(&self) -> impl Iterator<Item = (BinId, u64)> + '_ {
        (0..self.tree.len())
            .filter_map(move |slot| self.tree.remaining(slot).map(|rem| (self.bins[slot], rem)))
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.tree = FitTree::new();
        self.bins.clear();
        self.slot_of.clear();
    }

    fn compact(&mut self) {
        let live: Vec<(BinId, u64)> = self.iter().collect();
        let mut tree = FitTree::with_capacity(live.len());
        let mut bins = Vec::with_capacity(live.len());
        self.slot_of.clear();
        for (bin, rem) in live {
            let slot = tree.push(rem);
            bins.push(bin);
            self.slot_of.insert(bin, slot);
        }
        self.tree = tree;
        self.bins = bins;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::SIZE_SCALE;

    #[test]
    fn empty_tree_answers_none() {
        let t = FitTree::new();
        assert_eq!(t.first_fit(0), None);
        assert_eq!(t.first_fit_from(0, 0), None);
        assert!(t.is_empty());
    }

    #[test]
    fn leftmost_qualifying_slot_wins() {
        let mut t = FitTree::new();
        for rem in [10, 50, 30, 50] {
            t.push(rem);
        }
        assert_eq!(t.first_fit(5), Some(0));
        assert_eq!(t.first_fit(11), Some(1));
        assert_eq!(t.first_fit(31), Some(1));
        assert_eq!(t.first_fit(51), None);
        assert_eq!(t.first_fit_from(2, 11), Some(2));
        assert_eq!(t.first_fit_from(2, 31), Some(3));
        assert_eq!(t.first_fit_from(3, 11), Some(3));
        assert_eq!(t.first_fit_from(3, 51), None);
    }

    #[test]
    fn closed_slots_never_match_even_zero_size() {
        let mut t = FitTree::new();
        t.push(0); // open, zero remaining
        t.push(7);
        assert_eq!(t.first_fit(0), Some(0), "zero-size fits a full open bin");
        t.close(0);
        assert_eq!(t.first_fit(0), Some(1), "closed slot skipped");
        t.close(1);
        assert_eq!(t.first_fit(0), None);
    }

    #[test]
    fn updates_propagate_and_growth_preserves_keys() {
        let mut t = FitTree::new();
        for i in 0..100u64 {
            t.push(i);
        }
        assert_eq!(t.first_fit(99), Some(99));
        t.set_remaining(4, 1_000);
        assert_eq!(t.first_fit(100), Some(4));
        t.close(4);
        assert_eq!(t.first_fit(100), None);
        assert_eq!(t.remaining(4), None);
        assert_eq!(t.remaining(5), Some(5));
    }

    #[test]
    fn matches_linear_oracle_on_random_ops() {
        // Deterministic xorshift; mirrors slots in a plain Vec<Option<u64>>.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut t = FitTree::new();
        let mut oracle: Vec<Option<u64>> = Vec::new();
        for _ in 0..4_000 {
            match rand() % 4 {
                0 => {
                    let rem = rand() % SIZE_SCALE;
                    t.push(rem);
                    oracle.push(Some(rem));
                }
                1 if !oracle.is_empty() => {
                    let slot = (rand() % oracle.len() as u64) as usize;
                    let rem = rand() % SIZE_SCALE;
                    if oracle[slot].is_some() {
                        t.set_remaining(slot, rem);
                        oracle[slot] = Some(rem);
                    }
                }
                2 if !oracle.is_empty() => {
                    let slot = (rand() % oracle.len() as u64) as usize;
                    t.close(slot);
                    oracle[slot] = None;
                }
                _ => {
                    let size = rand() % SIZE_SCALE;
                    let want = oracle.iter().position(|r| r.is_some_and(|rem| rem >= size));
                    assert_eq!(t.first_fit(size), want);
                    if !oracle.is_empty() {
                        let start = (rand() % oracle.len() as u64) as usize;
                        let want_from = oracle
                            .iter()
                            .enumerate()
                            .skip(start)
                            .find(|(_, r)| r.is_some_and(|rem| rem >= size))
                            .map(|(i, _)| i);
                        assert_eq!(t.first_fit_from(start, size), want_from);
                    }
                }
            }
        }
    }

    #[test]
    fn subset_tracks_place_free_remove() {
        let mut s = SubsetFitTree::new();
        let half = Size::from_ratio(1, 2);
        s.insert(BinId(3), SIZE_SCALE);
        s.insert(BinId(7), SIZE_SCALE);
        assert_eq!(s.first_fit(half), Some(BinId(3)));
        s.place(BinId(3), Size::from_ratio(2, 3));
        assert_eq!(s.first_fit(half), Some(BinId(7)));
        s.free(BinId(3), Size::from_ratio(2, 3));
        assert_eq!(s.first_fit(half), Some(BinId(3)));
        s.remove(BinId(3));
        assert_eq!(s.first_fit(half), Some(BinId(7)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(BinId(7)) && !s.contains(BinId(3)));
        s.remove(BinId(99)); // unknown: ignored
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(BinId(7), SIZE_SCALE)]);
    }

    #[test]
    fn subset_compaction_preserves_order_and_capacities() {
        let mut s = SubsetFitTree::new();
        for i in 0..200u32 {
            s.insert(BinId(i), u64::from(i));
        }
        for i in 0..180u32 {
            s.remove(BinId(i));
        }
        assert_eq!(s.len(), 20);
        let live: Vec<(BinId, u64)> = s.iter().collect();
        assert_eq!(live.len(), 20);
        for (k, &(bin, rem)) in live.iter().enumerate() {
            assert_eq!(bin, BinId(180 + k as u32));
            assert_eq!(rem, u64::from(180 + k as u32));
        }
        // Queries still answer the earliest live bin after compaction.
        assert_eq!(s.first_fit(Size::from_raw(185)), Some(BinId(185)));
    }

    #[test]
    #[should_panic(expected = "overfilled")]
    fn subset_place_overflow_panics() {
        let mut s = SubsetFitTree::new();
        s.insert(BinId(0), 10);
        s.place(BinId(0), Size::from_raw(11));
    }
}
