//! # dbp-core
//!
//! Problem model and event-driven simulation substrate for **MinUsageTime
//! Dynamic Bin Packing**, the setting of *"Tight Bounds for Clairvoyant
//! Dynamic Bin Packing"* (Azar & Vainstein, SPAA 2017).
//!
//! Items with sizes in `(0, 1]` arrive online, each revealing its departure
//! time on arrival (clairvoyance); an online algorithm must irrevocably
//! place each into a bin of capacity 1; the objective is the total *usage
//! time* over all bins ever opened — equivalently `∫ (#open bins at t) dt`.
//!
//! This crate provides:
//!
//! * exact time ([`time`]), size ([`size`]) and area ([`cost`]) arithmetic;
//! * validated instances ([`instance`]) with the paper's derived quantities
//!   (`μ`, `span(σ)`, `d(σ)`, load profiles in [`profile`]);
//! * the [`algorithm::OnlineAlgorithm`] trait and the validating simulator
//!   ([`engine`]) in both batch and adaptive (adversary-driven) forms;
//! * an independent assignment auditor ([`assignment`]);
//! * structured engine-event tracing with pluggable sinks and JSONL
//!   serialization ([`trace`]), run-level execution metrics
//!   ([`engine::RunMetrics`]), and a streaming invariant auditor
//!   ([`audit`]) that cross-checks every run event-by-event;
//! * fault injection ([`failure`]): crash schedules, re-admission backoff
//!   policies, and the per-run [`failure::ResilienceReport`];
//! * budgeted recourse ([`recourse`]): bounded voluntary item migration at
//!   arrival/departure epochs, billed per-epoch or amortized, with the
//!   per-run [`recourse::RecourseReport`];
//! * the σ→σ′ departure-rounding reduction ([`reduction`]) and certified
//!   OPT brackets ([`bounds`]) used by every experiment.
//!
//! Algorithms themselves (HA, CDFF, the First-Fit family, offline
//! comparators) live in the `dbp-algos` crate; workload generators and the
//! lower-bound adversary in `dbp-workloads`.

#![warn(missing_docs)]

pub mod algorithm;
pub mod assignment;
pub mod audit;
pub mod bin_state;
pub mod bounds;
pub mod cost;
pub mod engine;
pub mod error;
pub mod failure;
pub mod fit_tree;
pub mod instance;
pub mod item;
pub mod metrics;
pub mod profile;
pub mod recourse;
pub mod reduction;
pub mod size;
pub mod time;
pub mod trace;

pub use algorithm::{OnlineAlgorithm, Placement, SimView};
pub use assignment::{audit, AuditReport};
pub use audit::{AuditViolation, InvariantAuditor};
pub use bin_state::{BinId, BinRecord, BinStore};
pub use bounds::{BracketRung, BracketSource, CertifiedBracket, LowerBounds, OptBracket};
pub use cost::Area;
pub use engine::{
    run, run_with_failures, run_with_failures_recourse, run_with_recourse, run_with_sink,
    InteractiveSim, PackingResult, PendingReadmission, RunMetrics,
};
pub use error::{EngineError, InstanceError, VerifyError};
pub use failure::{FailurePlan, ResilienceReport, RetryPolicy};
pub use fit_tree::{FitTree, SubsetFitTree};
pub use instance::{Instance, InstanceBuilder, InstanceDigest};
pub use item::{Item, ItemId};
pub use metrics::{
    average_open_ratio, compare_goals, momentary_ratio, utilisation, waste_breakdown,
    GoalComparison, UtilisationStats, WasteBreakdown,
};
pub use profile::StepProfile;
pub use recourse::{
    Migration, RecourseBudget, RecourseEpoch, RecourseParseError, RecourseReport, RecourseView,
};
pub use reduction::{reduce, reduced_departure};
pub use size::{Load, LoadVec, Size, SizeVec, MAX_DIMS, SIZE_SCALE};
pub use time::{Dur, Time};
pub use trace::{
    event_from_json, event_to_json, json_pairs, parse_jsonl, write_event_json, EngineEvent,
    EventSink, JsonlSink, NoopSink, PlacementPath, TraceEvent, TraceParseError, TraceRecorder,
    VecSink,
};
