//! Bin bookkeeping shared by the engine and (read-only) by algorithms.
//!
//! This is the simulator's hot path: every arrival queries First-Fit over
//! the open bins and every departure updates one bin. The store therefore
//! keeps three indexes alongside the flat record table:
//!
//! * a capacity tournament tree ([`crate::fit_tree::FitTree`], slot =
//!   [`BinId`]) answering First-Fit in O(log B) instead of O(B);
//! * a per-bin position index into the opening-order open list, so closing
//!   a bin is O(1) (tombstone + amortized compaction) instead of an O(B)
//!   order-preserving `Vec::remove`;
//! * a per-item slot index into its bin's resident list, so a departure's
//!   item removal is O(1) instead of an O(items) scan.
//!
//! All three are pure indexes: the observable behaviour (which bin
//! First-Fit picks, the iteration order of open bins) is bit-for-bit the
//! linear-scan semantics, and [`BinStore::first_fit_linear`] retains the
//! naive scan as a differential-testing oracle.

use core::cell::Cell;
use core::fmt;

use crate::fit_tree::FitTree;
use crate::item::ItemId;
use crate::size::{LoadVec, SizeVec, SIZE_SCALE};
use crate::time::Time;

/// Identifier of a bin, assigned in opening order (bin 0 opened first).
/// Closed bins are never reused (the problem's w.l.o.g. assumption), so a
/// `BinId` names one bin for the whole run — until a
/// [`BinStore::compact_bins`] reclaims closed records and renumbers the
/// survivors densely (still in opening order); holders are notified
/// through the engine's `on_bin_compact` hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BinId(pub u32);

impl BinId {
    /// Index into per-bin arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Tombstone marking a closed bin's slot in the open list until the next
/// compaction. `u32::MAX` can never collide with a real id: `BinStore::open`
/// rejects that many bins first.
const TOMBSTONE: BinId = BinId(u32::MAX);

/// Sentinel for "no position" in the `u32` position indexes.
const NO_POS: u32 = u32::MAX;

/// The engine-side record of one bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinRecord {
    /// This bin's id.
    pub id: BinId,
    /// When the bin was opened (its first item's arrival).
    pub opened_at: Time,
    /// When the bin closed (its last item's departure), if it has.
    pub closed_at: Option<Time>,
    /// Current total load of resident items, one component per dimension
    /// (scalar runs only ever touch dimension 0).
    pub load: LoadVec,
    /// Number of currently resident items.
    pub resident: u32,
    /// Ids of currently resident items (kept for diagnostics & figures).
    /// Order is not meaningful (removals swap).
    pub items: Vec<ItemId>,
}

impl BinRecord {
    /// Whether the bin is still open.
    #[inline]
    pub fn is_open(&self) -> bool {
        self.closed_at.is_none()
    }

    /// Whether `s` fits in the remaining capacity of every dimension.
    #[inline]
    pub fn fits(&self, s: impl Into<SizeVec>) -> bool {
        self.load.fits(s.into())
    }
}

/// The set of all bins ever opened during a run, indexed by [`BinId`].
///
/// Open bins are additionally tracked in opening order, which is exactly
/// the order First-Fit scans, plus a capacity tournament tree that answers
/// First-Fit queries in O(log B) (see the module docs for the invariants).
#[derive(Debug, Default, Clone)]
pub struct BinStore {
    bins: Vec<BinRecord>,
    /// Open bins in opening order (ascending `BinId`), with [`TOMBSTONE`]
    /// holes for recently closed bins. Trailing tombstones are trimmed
    /// eagerly (so `open.last()` is always live) and interior ones are
    /// compacted away once they outnumber live entries.
    open: Vec<BinId>,
    /// `open_pos[bin] == i` ⇔ `open[i] == bin`; [`NO_POS`] once closed.
    open_pos: Vec<u32>,
    /// Number of tombstones currently in `open`.
    dead: usize,
    /// Capacity tournament tree; slot = `BinId` index, closed bins keyed 0.
    tree: FitTree,
    /// `item_pos[item] == i` ⇔ the item sits at `items[i]` of its bin.
    item_pos: Vec<u32>,
    /// Tournament-tree First-Fit queries answered (observability counter;
    /// `Cell` because queries go through `&self` views).
    tree_queries: Cell<u64>,
    /// Linear enumerations of the open list (naive First-Fit scans and
    /// algorithm-visible `open_bins` walks).
    linear_scans: Cell<u64>,
    /// Open-list tombstone compactions performed.
    compactions: u64,
    /// Recycled resident-list buffers from closed bins. A close donates its
    /// (empty, capacity-bearing) `items` vector here and the next open
    /// takes one back, so steady-state bin churn stops allocating once
    /// capacities have warmed up.
    spare_lists: Vec<Vec<ItemId>>,
    /// Closed-bin records dropped by [`BinStore::compact_bins`]; keeps
    /// [`BinStore::total_opened`] counting the whole run after records are
    /// reclaimed.
    retired: usize,
}

/// Checked `usize → u32` for the store's position indexes, matching the
/// engine's `row_id` idiom: an index past `u32::MAX` must fail loudly
/// here rather than silently truncate.
#[inline]
fn pos_id(i: usize) -> u32 {
    u32::try_from(i).expect("bin store index exceeds u32::MAX")
}

impl BinStore {
    /// An empty store.
    pub fn new() -> BinStore {
        BinStore::default()
    }

    /// An empty store pre-sized for `bins` bins and `items` items: every
    /// index (records, open list, position maps, tournament tree) reserves
    /// up front, so a run that stays within the estimate never reallocates
    /// or rebuilds the tree.
    pub fn with_capacity(bins: usize, items: usize) -> BinStore {
        BinStore {
            bins: Vec::with_capacity(bins),
            open: Vec::with_capacity(bins),
            open_pos: Vec::with_capacity(bins),
            dead: 0,
            tree: FitTree::with_capacity(bins),
            item_pos: Vec::with_capacity(items),
            tree_queries: Cell::new(0),
            linear_scans: Cell::new(0),
            compactions: 0,
            spare_lists: Vec::new(),
            retired: 0,
        }
    }

    /// Opens a new bin at time `t` and returns its id.
    pub fn open(&mut self, t: Time) -> BinId {
        let raw = u32::try_from(self.bins.len()).expect("too many bins");
        assert!(raw != TOMBSTONE.0, "too many bins");
        let id = BinId(raw);
        self.bins.push(BinRecord {
            id,
            opened_at: t,
            closed_at: None,
            load: LoadVec::ZERO,
            resident: 0,
            items: self.spare_lists.pop().unwrap_or_default(),
        });
        self.open_pos.push(pos_id(self.open.len()));
        self.open.push(id);
        let slot = self.tree.push(SIZE_SCALE);
        debug_assert_eq!(slot, id.index());
        id
    }

    /// Adds an item to a bin (capacity is the caller's responsibility; the
    /// engine validates before calling).
    pub fn add(&mut self, bin: BinId, item: ItemId, size: impl Into<SizeVec>) {
        let size = size.into();
        self.tree.ensure_dims(size.dims_used());
        let rec = &mut self.bins[bin.index()];
        debug_assert!(rec.is_open());
        debug_assert!(rec.fits(size));
        rec.load += size;
        rec.resident += 1;
        let idx = item.index();
        if idx >= self.item_pos.len() {
            self.item_pos.resize(idx + 1, NO_POS);
        }
        self.item_pos[idx] = pos_id(rec.items.len());
        rec.items.push(item);
        self.tree
            .set_remaining_vec(bin.index(), &rec.load.remaining());
    }

    /// Removes an item from a bin; closes the bin (recording `t`) when it
    /// empties. Returns `true` if the bin closed.
    pub fn remove(&mut self, bin: BinId, item: ItemId, size: impl Into<SizeVec>, t: Time) -> bool {
        let size = size.into();
        let rec = &mut self.bins[bin.index()];
        debug_assert!(rec.is_open());
        rec.load -= size;
        rec.resident -= 1;
        // O(1) removal through the position index, with the seed's tolerant
        // linear scan as a fallback for items the index never saw.
        let indexed = self
            .item_pos
            .get(item.index())
            .map(|&p| p as usize)
            .filter(|&p| p < rec.items.len() && rec.items[p] == item);
        let pos = indexed.or_else(|| rec.items.iter().position(|&i| i == item));
        if let Some(pos) = pos {
            rec.items.swap_remove(pos);
            self.item_pos[item.index()] = NO_POS;
            if let Some(&moved) = rec.items.get(pos) {
                self.item_pos[moved.index()] = pos_id(pos);
            }
        }
        if rec.resident == 0 {
            rec.closed_at = Some(t);
            // Donate the (now empty) resident buffer to the recycling pool.
            let spare = core::mem::take(&mut rec.items);
            self.spare_lists.push(spare);
            self.tree.close(bin.index());
            // O(1) open-list removal: tombstone the slot; opening order of
            // the survivors is untouched.
            let pos = self.open_pos[bin.index()] as usize;
            debug_assert_eq!(self.open[pos], bin);
            self.open[pos] = TOMBSTONE;
            self.open_pos[bin.index()] = NO_POS;
            self.dead += 1;
            while self.open.last() == Some(&TOMBSTONE) {
                self.open.pop();
                self.dead -= 1;
            }
            if self.dead * 2 > self.open.len() {
                self.compact_open();
            }
            true
        } else {
            self.tree
                .set_remaining_vec(bin.index(), &rec.load.remaining());
            false
        }
    }

    /// Rebuilds the open list without tombstones. Runs when tombstones
    /// outnumber live bins, so its O(B) cost amortizes to O(1) per close.
    fn compact_open(&mut self) {
        self.compactions += 1;
        self.open.retain(|&b| b != TOMBSTONE);
        self.dead = 0;
        for (i, &b) in self.open.iter().enumerate() {
            self.open_pos[b.index()] = pos_id(i);
        }
    }

    /// The record for a bin (open or closed).
    #[inline]
    pub fn record(&self, bin: BinId) -> Option<&BinRecord> {
        self.bins.get(bin.index())
    }

    /// Ids of currently open bins, in opening order.
    #[inline]
    pub fn open_ids(&self) -> impl Iterator<Item = BinId> + '_ {
        self.open.iter().copied().filter(|&b| b != TOMBSTONE)
    }

    /// Number of currently open bins.
    #[inline]
    pub fn open_count(&self) -> usize {
        self.open.len() - self.dead
    }

    /// The most recently opened bin that is still open (Next-Fit's
    /// candidate), in O(1).
    #[inline]
    pub fn newest_open(&self) -> Option<BinId> {
        // Trailing tombstones are trimmed on close, so `last` is live.
        self.open.last().copied()
    }

    /// Total number of bins ever opened, including closed records
    /// reclaimed by [`BinStore::compact_bins`].
    #[inline]
    pub fn total_opened(&self) -> usize {
        self.retired + self.bins.len()
    }

    /// The id the next [`BinStore::open`] call will assign. Ids are dense
    /// over the *current* record table, so after a [`BinStore::compact_bins`]
    /// this is smaller than [`BinStore::total_opened`].
    #[inline]
    pub fn next_id(&self) -> BinId {
        BinId(u32::try_from(self.bins.len()).expect("too many bins"))
    }

    /// Reclaims every closed bin's record and renumbers the surviving open
    /// bins densely, preserving opening order (`old_to_new[old.index()]`
    /// is the survivor's new id; [`TOMBSTONE`] marks a dropped record).
    /// Bounds the record table by the number of *open* bins instead of the
    /// number ever opened. The open list, position index and tournament
    /// tree are rebuilt for the new id space; [`BinStore::total_opened`]
    /// keeps counting retired records. Callers must remap every `BinId`
    /// they hold — the engine pushes the mapping to the algorithm and sink
    /// through their `on_bin_compact` hooks.
    pub(crate) fn compact_bins(&mut self) -> Vec<BinId> {
        let old_len = self.bins.len();
        let mut old_to_new = vec![TOMBSTONE; old_len];
        let mut new_len = 0usize;
        for rec in &self.bins {
            if rec.is_open() {
                old_to_new[rec.id.index()] = BinId(pos_id(new_len));
                new_len += 1;
            }
        }
        if new_len == old_len {
            return old_to_new; // nothing closed: identity map, no rebuild
        }
        self.retired += old_len - new_len;
        self.bins.retain(|r| r.is_open());
        let dims = self.tree.dims();
        let mut tree = FitTree::with_capacity(new_len);
        tree.ensure_dims(dims);
        self.open.clear();
        self.open_pos.clear();
        self.dead = 0;
        for (new, rec) in self.bins.iter_mut().enumerate() {
            rec.id = old_to_new[rec.id.index()];
            debug_assert_eq!(rec.id.index(), new);
            self.open_pos.push(pos_id(new));
            self.open.push(rec.id);
            let slot = tree.push(SIZE_SCALE);
            debug_assert_eq!(slot, new);
            tree.set_remaining_vec(slot, &rec.load.remaining());
        }
        self.tree = tree;
        old_to_new
    }

    /// All bin records, by id.
    #[inline]
    pub fn all(&self) -> &[BinRecord] {
        &self.bins
    }

    /// First open bin (in opening order) that fits `s` — the First-Fit
    /// choice over all open bins, answered by the tournament tree in
    /// O(log B). Selects the identical bin as [`BinStore::first_fit_linear`]
    /// (the key encoding makes the predicates equal; see
    /// [`crate::fit_tree`]).
    pub fn first_fit(&self, s: impl Into<SizeVec>) -> Option<BinId> {
        let s = s.into();
        self.tree_queries.set(self.tree_queries.get() + 1);
        let slot = self.tree.first_fit_vec(s)?;
        let id = self.bins[slot].id;
        debug_assert!(self.bins[slot].is_open() && self.bins[slot].fits(s));
        Some(id)
    }

    /// The seed's naive O(B) First-Fit scan, retained verbatim as the
    /// differential-testing oracle for [`BinStore::first_fit`].
    pub fn first_fit_linear(&self, s: impl Into<SizeVec>) -> Option<BinId> {
        let s = s.into();
        self.note_linear_scan();
        self.open_ids().find(|&b| self.bins[b.index()].fits(s))
    }

    /// Records one linear enumeration of the open list (used by
    /// [`BinStore::first_fit_linear`] and by algorithm-visible `open_bins`
    /// walks in [`crate::algorithm::SimView`]).
    #[inline]
    pub(crate) fn note_linear_scan(&self) {
        self.linear_scans.set(self.linear_scans.get() + 1);
    }

    /// Observability counters: `(tree_queries, linear_scans)` answered so
    /// far. Interior mutability means these tick even through `&self`
    /// views, so auditing sinks that probe First-Fit inflate the raw
    /// totals — consumers wanting per-placement attribution should snapshot
    /// deltas around the call of interest (the engine does).
    #[inline]
    pub fn query_counters(&self) -> (u64, u64) {
        (self.tree_queries.get(), self.linear_scans.get())
    }

    /// Number of open-list tombstone compactions performed so far.
    #[inline]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Renumbers resident item ids after an engine item-table compaction:
    /// `old_to_new[old] == new` (or `u32::MAX` for dropped rows — never a
    /// resident). Rewrites every open bin's resident list and rebuilds the
    /// item position index for the dense new id space of `new_len` rows.
    pub(crate) fn remap_items(&mut self, old_to_new: &[u32], new_len: usize) {
        self.item_pos.clear();
        self.item_pos.resize(new_len, NO_POS);
        for rec in &mut self.bins {
            if !rec.is_open() {
                continue;
            }
            for (pos, item) in rec.items.iter_mut().enumerate() {
                let new = old_to_new[item.index()];
                debug_assert!(new != u32::MAX, "resident items survive compaction");
                *item = ItemId(new);
                self.item_pos[new as usize] = pos_id(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::Size;

    fn half() -> Size {
        Size::from_ratio(1, 2)
    }

    #[test]
    fn open_add_remove_close_lifecycle() {
        let mut store = BinStore::new();
        let b0 = store.open(Time(0));
        let b1 = store.open(Time(0));
        assert_eq!(store.open_count(), 2);
        store.add(b0, ItemId(0), half());
        store.add(b0, ItemId(1), half());
        assert!(!store.record(b0).unwrap().fits(Size::from_raw(1)));

        assert!(!store.remove(b0, ItemId(0), half(), Time(5)));
        assert!(store.remove(b0, ItemId(1), half(), Time(6)));
        assert_eq!(store.record(b0).unwrap().closed_at, Some(Time(6)));
        assert_eq!(store.open_ids().collect::<Vec<_>>(), [b1]);
        assert_eq!(store.total_opened(), 2);
    }

    #[test]
    fn first_fit_scans_in_opening_order() {
        let mut store = BinStore::new();
        let b0 = store.open(Time(0));
        let b1 = store.open(Time(0));
        store.add(b0, ItemId(0), Size::FULL);
        assert_eq!(store.first_fit(half()), Some(b1));
        store.add(b1, ItemId(1), Size::FULL);
        assert_eq!(store.first_fit(half()), None);
        // Free space in b0 again: b0 regains First-Fit priority.
        store.remove(b0, ItemId(0), Size::FULL, Time(1));
        // ...but b0 CLOSED on emptying, so it must not be chosen.
        assert_eq!(store.first_fit(half()), None);
        let b2 = store.open(Time(2));
        assert_eq!(store.first_fit(half()), Some(b2));
    }

    #[test]
    fn closing_middle_bin_preserves_order() {
        let mut store = BinStore::new();
        let b0 = store.open(Time(0));
        let b1 = store.open(Time(0));
        let b2 = store.open(Time(0));
        store.add(b0, ItemId(0), half());
        store.add(b1, ItemId(1), half());
        store.add(b2, ItemId(2), half());
        store.remove(b1, ItemId(1), half(), Time(1));
        assert_eq!(store.open_ids().collect::<Vec<_>>(), [b0, b2]);
    }

    #[test]
    fn tree_and_linear_first_fit_agree_through_churn() {
        let mut store = BinStore::new();
        let sizes = [
            Size::from_ratio(1, 3),
            Size::from_ratio(2, 3),
            Size::from_ratio(1, 7),
            Size::from_raw(0),
            Size::FULL,
        ];
        let mut resident: Vec<(BinId, ItemId, Size)> = Vec::new();
        let mut state = 0xdead_beefu64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..2_000 {
            let s = sizes[(rand() % sizes.len() as u64) as usize];
            for &probe in &sizes {
                assert_eq!(
                    store.first_fit(probe),
                    store.first_fit_linear(probe),
                    "divergence at step {step}"
                );
            }
            let item = ItemId(step as u32);
            let bin = match store.first_fit(s) {
                Some(b) => b,
                None => store.open(Time(step)),
            };
            store.add(bin, item, s);
            resident.push((bin, item, s));
            // Randomly depart ~half the arrivals to churn closes.
            while rand() % 2 == 0 && !resident.is_empty() {
                let k = (rand() % resident.len() as u64) as usize;
                let (b, i, sz) = resident.swap_remove(k);
                store.remove(b, i, sz, Time(step));
            }
        }
        assert!(store.open_count() <= store.total_opened());
    }

    #[test]
    fn vector_tree_and_linear_first_fit_agree_through_churn() {
        // Same differential harness as the scalar test, but with 2-D sizes
        // (the second dimension anti-correlated) so the tree's extra planes
        // and the linear scan's per-dimension fit test must agree.
        let mut store = BinStore::new();
        let sizes: Vec<SizeVec> = [
            (SIZE_SCALE / 3, SIZE_SCALE / 2),
            (2 * SIZE_SCALE / 3, SIZE_SCALE / 7),
            (SIZE_SCALE / 7, 2 * SIZE_SCALE / 3),
            (0, SIZE_SCALE / 2),
            (SIZE_SCALE, SIZE_SCALE / 5),
        ]
        .iter()
        .map(|&(a, b)| SizeVec::try_from_raws(&[a, b]).unwrap())
        .collect();
        let mut resident: Vec<(BinId, ItemId, SizeVec)> = Vec::new();
        let mut state = 0xbeef_deadu64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..2_000 {
            let s = sizes[(rand() % sizes.len() as u64) as usize];
            for &probe in &sizes {
                assert_eq!(
                    store.first_fit(probe),
                    store.first_fit_linear(probe),
                    "divergence at step {step}"
                );
            }
            let item = ItemId(step as u32);
            let bin = match store.first_fit(s) {
                Some(b) => b,
                None => store.open(Time(step)),
            };
            store.add(bin, item, s);
            resident.push((bin, item, s));
            while rand() % 2 == 0 && !resident.is_empty() {
                let k = (rand() % resident.len() as u64) as usize;
                let (b, i, sz) = resident.swap_remove(k);
                store.remove(b, i, sz, Time(step));
            }
        }
        assert!(store.open_count() <= store.total_opened());
    }

    #[test]
    fn newest_open_tracks_closes() {
        let mut store = BinStore::new();
        assert_eq!(store.newest_open(), None);
        let b0 = store.open(Time(0));
        let b1 = store.open(Time(0));
        let b2 = store.open(Time(0));
        store.add(b0, ItemId(0), half());
        store.add(b1, ItemId(1), half());
        store.add(b2, ItemId(2), half());
        assert_eq!(store.newest_open(), Some(b2));
        store.remove(b2, ItemId(2), half(), Time(1));
        assert_eq!(store.newest_open(), Some(b1));
        store.remove(b0, ItemId(0), half(), Time(1));
        assert_eq!(store.newest_open(), Some(b1));
        store.remove(b1, ItemId(1), half(), Time(2));
        assert_eq!(store.newest_open(), None);
        assert_eq!(store.open_count(), 0);
    }

    #[test]
    fn compact_bins_renumbers_and_keeps_first_fit_semantics() {
        let mut store = BinStore::new();
        let mut ids = Vec::new();
        for i in 0..8u32 {
            let b = store.open(Time(0));
            store.add(b, ItemId(i), if i % 2 == 0 { Size::FULL } else { half() });
            ids.push(b);
        }
        // Close the even (full) bins; the odd half-full bins survive.
        for (k, &b) in ids.iter().enumerate() {
            if k % 2 == 0 {
                store.remove(b, ItemId(k as u32), Size::FULL, Time(1));
            }
        }
        let before_ff = store.first_fit(half());
        let map = store.compact_bins();
        assert_eq!(store.total_opened(), 8, "retired records still counted");
        assert_eq!(store.all().len(), 4, "closed records reclaimed");
        assert_eq!(store.next_id(), BinId(4));
        for (old, &new) in map.iter().enumerate() {
            if old % 2 == 0 {
                assert_eq!(new, TOMBSTONE);
            } else {
                assert_eq!(new, BinId(old as u32 / 2), "dense, order-preserving");
            }
        }
        // First-Fit picks the same bin, under its new name.
        assert_eq!(store.first_fit(half()), Some(map[before_ff.unwrap().index()]));
        assert_eq!(store.first_fit(half()), store.first_fit_linear(half()));
        assert_eq!(store.open_ids().collect::<Vec<_>>().len(), 4);
        // Items still removable through the rebuilt indexes; a fresh open
        // continues the dense numbering.
        assert!(store.remove(BinId(0), ItemId(1), half(), Time(2)));
        assert_eq!(store.open(Time(3)), BinId(4));
        assert_eq!(store.total_opened(), 9);
        // A second compaction shifts the survivors again...
        let map2 = store.compact_bins();
        assert_eq!(map2[0], TOMBSTONE);
        assert_eq!(store.total_opened(), 9);
        // ...and with nothing closed, compaction is the identity.
        let id_map = store.compact_bins();
        assert!(id_map.iter().enumerate().all(|(i, b)| b.index() == i));
    }

    #[test]
    fn heavy_interior_closes_stay_consistent() {
        // Open many bins, close every other one from the middle out: the
        // tombstone compaction must preserve opening order and counts.
        let mut store = BinStore::new();
        let mut ids = Vec::new();
        for i in 0..1_000u32 {
            let b = store.open(Time(0));
            store.add(b, ItemId(i), Size::FULL);
            ids.push(b);
        }
        for (k, &b) in ids.iter().enumerate() {
            if k % 2 == 0 {
                store.remove(b, ItemId(k as u32), Size::FULL, Time(1));
            }
        }
        assert_eq!(store.open_count(), 500);
        let survivors: Vec<BinId> = store.open_ids().collect();
        assert_eq!(survivors.len(), 500);
        assert!(survivors.windows(2).all(|w| w[0] < w[1]), "order preserved");
        assert_eq!(store.first_fit(half()), None, "all survivors full");
        store.remove(ids[1], ItemId(1), Size::FULL, Time(2));
        assert_eq!(store.open_count(), 499);
    }
}
