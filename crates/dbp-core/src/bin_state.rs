//! Bin bookkeeping shared by the engine and (read-only) by algorithms.

use core::fmt;

use crate::item::ItemId;
use crate::size::{Load, Size};
use crate::time::Time;

/// Identifier of a bin, assigned in opening order (bin 0 opened first).
/// Closed bins are never reused (the problem's w.l.o.g. assumption), so a
/// `BinId` names one bin for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BinId(pub u32);

impl BinId {
    /// Index into per-bin arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// The engine-side record of one bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinRecord {
    /// This bin's id.
    pub id: BinId,
    /// When the bin was opened (its first item's arrival).
    pub opened_at: Time,
    /// When the bin closed (its last item's departure), if it has.
    pub closed_at: Option<Time>,
    /// Current total load of resident items.
    pub load: Load,
    /// Number of currently resident items.
    pub resident: u32,
    /// Ids of currently resident items (kept for diagnostics & figures).
    pub items: Vec<ItemId>,
}

impl BinRecord {
    /// Whether the bin is still open.
    #[inline]
    pub fn is_open(&self) -> bool {
        self.closed_at.is_none()
    }

    /// Whether `s` fits in the remaining capacity.
    #[inline]
    pub fn fits(&self, s: Size) -> bool {
        self.load.fits(s)
    }
}

/// The set of all bins ever opened during a run, indexed by [`BinId`].
///
/// Open bins are additionally tracked in opening order, which is exactly the
/// order First-Fit scans.
#[derive(Debug, Default, Clone)]
pub struct BinStore {
    bins: Vec<BinRecord>,
    /// Open bins in opening order (ascending `BinId`).
    open: Vec<BinId>,
}

impl BinStore {
    /// An empty store.
    pub fn new() -> BinStore {
        BinStore::default()
    }

    /// Opens a new bin at time `t` and returns its id.
    pub fn open(&mut self, t: Time) -> BinId {
        let id = BinId(u32::try_from(self.bins.len()).expect("too many bins"));
        self.bins.push(BinRecord {
            id,
            opened_at: t,
            closed_at: None,
            load: Load::ZERO,
            resident: 0,
            items: Vec::new(),
        });
        self.open.push(id);
        id
    }

    /// Adds an item to a bin (capacity is the caller's responsibility; the
    /// engine validates before calling).
    pub fn add(&mut self, bin: BinId, item: ItemId, size: Size) {
        let rec = &mut self.bins[bin.index()];
        debug_assert!(rec.is_open());
        debug_assert!(rec.fits(size));
        rec.load += size;
        rec.resident += 1;
        rec.items.push(item);
    }

    /// Removes an item from a bin; closes the bin (recording `t`) when it
    /// empties. Returns `true` if the bin closed.
    pub fn remove(&mut self, bin: BinId, item: ItemId, size: Size, t: Time) -> bool {
        let rec = &mut self.bins[bin.index()];
        debug_assert!(rec.is_open());
        rec.load -= size;
        rec.resident -= 1;
        if let Some(pos) = rec.items.iter().position(|&i| i == item) {
            rec.items.swap_remove(pos);
        }
        if rec.resident == 0 {
            rec.closed_at = Some(t);
            // Bins close in arbitrary order: remove from the open list while
            // preserving the relative (opening) order of the rest.
            if let Some(pos) = self.open.iter().position(|&b| b == bin) {
                self.open.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// The record for a bin (open or closed).
    #[inline]
    pub fn record(&self, bin: BinId) -> Option<&BinRecord> {
        self.bins.get(bin.index())
    }

    /// Ids of currently open bins, in opening order.
    #[inline]
    pub fn open_ids(&self) -> &[BinId] {
        &self.open
    }

    /// Number of currently open bins.
    #[inline]
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Total number of bins ever opened.
    #[inline]
    pub fn total_opened(&self) -> usize {
        self.bins.len()
    }

    /// All bin records, by id.
    #[inline]
    pub fn all(&self) -> &[BinRecord] {
        &self.bins
    }

    /// First open bin (in opening order) that fits `s` — the First-Fit
    /// choice over all open bins.
    pub fn first_fit(&self, s: Size) -> Option<BinId> {
        self.open
            .iter()
            .copied()
            .find(|&b| self.bins[b.index()].fits(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half() -> Size {
        Size::from_ratio(1, 2)
    }

    #[test]
    fn open_add_remove_close_lifecycle() {
        let mut store = BinStore::new();
        let b0 = store.open(Time(0));
        let b1 = store.open(Time(0));
        assert_eq!(store.open_count(), 2);
        store.add(b0, ItemId(0), half());
        store.add(b0, ItemId(1), half());
        assert!(!store.record(b0).unwrap().fits(Size::from_raw(1)));

        assert!(!store.remove(b0, ItemId(0), half(), Time(5)));
        assert!(store.remove(b0, ItemId(1), half(), Time(6)));
        assert_eq!(store.record(b0).unwrap().closed_at, Some(Time(6)));
        assert_eq!(store.open_ids(), &[b1]);
        assert_eq!(store.total_opened(), 2);
    }

    #[test]
    fn first_fit_scans_in_opening_order() {
        let mut store = BinStore::new();
        let b0 = store.open(Time(0));
        let b1 = store.open(Time(0));
        store.add(b0, ItemId(0), Size::FULL);
        assert_eq!(store.first_fit(half()), Some(b1));
        store.add(b1, ItemId(1), Size::FULL);
        assert_eq!(store.first_fit(half()), None);
        // Free space in b0 again: b0 regains First-Fit priority.
        store.remove(b0, ItemId(0), Size::FULL, Time(1));
        // ...but b0 CLOSED on emptying, so it must not be chosen.
        assert_eq!(store.first_fit(half()), None);
        let b2 = store.open(Time(2));
        assert_eq!(store.first_fit(half()), Some(b2));
    }

    #[test]
    fn closing_middle_bin_preserves_order() {
        let mut store = BinStore::new();
        let b0 = store.open(Time(0));
        let b1 = store.open(Time(0));
        let b2 = store.open(Time(0));
        store.add(b0, ItemId(0), half());
        store.add(b1, ItemId(1), half());
        store.add(b2, ItemId(2), half());
        store.remove(b1, ItemId(1), half(), Time(1));
        assert_eq!(store.open_ids(), &[b0, b2]);
    }
}
