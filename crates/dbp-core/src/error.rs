//! Typed errors for instance validation, engine execution, and assignment
//! verification.

use core::fmt;

use crate::bin_state::BinId;
use crate::item::ItemId;
use crate::time::Time;

/// Instance validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// An item departs at or before its arrival.
    EmptyInterval {
        /// The offending item.
        id: ItemId,
    },
    /// An item has zero size (it would never constrain any packing).
    ZeroSize {
        /// The offending item.
        id: ItemId,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::EmptyInterval { id } => {
                write!(f, "item {id} has an empty active interval")
            }
            InstanceError::ZeroSize { id } => write!(f, "item {id} has zero size"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// Faults raised by the engine when an [`crate::algorithm::OnlineAlgorithm`]
/// makes an illegal move. These indicate algorithm bugs, not input problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The algorithm placed an item into a bin that is not open.
    BinNotOpen {
        /// The item being placed.
        item: ItemId,
        /// The offending bin choice.
        bin: BinId,
        /// Simulation time of the placement.
        at: Time,
    },
    /// The algorithm placed an item into a bin without room for it.
    CapacityExceeded {
        /// The item being placed.
        item: ItemId,
        /// The overflowing bin.
        bin: BinId,
        /// Simulation time of the placement.
        at: Time,
    },
    /// Interactive use only: an item arrived before the current clock.
    TimeRegression {
        /// The late item.
        item: ItemId,
        /// Current simulation time.
        now: Time,
        /// The item's (past) arrival time.
        arrival: Time,
    },
    /// Interactive use only: `advance_to` asked to move the clock backwards.
    ClockRegression {
        /// Current simulation time.
        now: Time,
        /// The requested (past) time.
        to: Time,
    },
    /// Interactive use only: `set_departure` on an item that is not an
    /// undated in-flight arrival (unknown id, or already dated).
    NotUndated {
        /// The offending item.
        item: ItemId,
    },
    /// Interactive use only: a departure scheduled in the past or not
    /// strictly after the item's arrival.
    BadDeparture {
        /// The item being dated.
        item: ItemId,
        /// The rejected departure time.
        at: Time,
        /// Current simulation time.
        now: Time,
    },
    /// A prediction-backed wrapper (e.g. the cloudsim `PredictedLens`) was
    /// handed fewer predictions than items: `item` is the first id with no
    /// predicted departure.
    MissingPrediction {
        /// The first item without a prediction.
        item: ItemId,
    },
    /// A recourse migration named an item that is not resident in any open
    /// bin, or asked to "move" it into the bin it already occupies.
    /// (Targets that are closed or too full raise [`EngineError::BinNotOpen`]
    /// / [`EngineError::CapacityExceeded`], same as placements.)
    IllegalMigration {
        /// The item the algorithm asked to move.
        item: ItemId,
        /// The requested target bin.
        to: BinId,
        /// Simulation time of the request.
        at: Time,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BinNotOpen { item, bin, at } => {
                write!(
                    f,
                    "at {at}: item {item} placed into closed/unknown bin {bin}"
                )
            }
            EngineError::CapacityExceeded { item, bin, at } => {
                write!(f, "at {at}: item {item} overflows bin {bin}")
            }
            EngineError::TimeRegression { item, now, arrival } => {
                write!(
                    f,
                    "item {item} arrives at {arrival}, before current time {now}"
                )
            }
            EngineError::ClockRegression { now, to } => {
                write!(f, "clock regression: {to} < {now}")
            }
            EngineError::NotUndated { item } => {
                write!(f, "item {item} is not undated (unknown or already dated)")
            }
            EngineError::BadDeparture { item, at, now } => {
                write!(
                    f,
                    "departure {at} for item {item} is in the past or not after arrival (now {now})"
                )
            }
            EngineError::MissingPrediction { item } => {
                write!(f, "no predicted departure for item {item}")
            }
            EngineError::IllegalMigration { item, to, at } => {
                write!(f, "at {at}: illegal migration of item {item} to bin {to}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Violations found when auditing a finished assignment against its
/// instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Two co-resident items overflow their shared bin at some moment.
    CapacityViolated {
        /// The overfull bin.
        bin: BinId,
        /// First moment of violation.
        at: Time,
    },
    /// The assignment does not cover every item exactly once.
    MissingItem {
        /// The uncovered item.
        id: ItemId,
    },
    /// A non-repacking audit detected bin reuse after the bin emptied.
    BinReusedAfterClose {
        /// The reused bin.
        bin: BinId,
        /// Arrival time of the reusing item.
        at: Time,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::CapacityViolated { bin, at } => {
                write!(f, "bin {bin} over capacity at {at}")
            }
            VerifyError::MissingItem { id } => write!(f, "item {id} missing from assignment"),
            VerifyError::BinReusedAfterClose { bin, at } => {
                write!(f, "bin {bin} reused at {at} after it had emptied")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readably() {
        let e = InstanceError::EmptyInterval { id: ItemId(3) };
        assert!(e.to_string().contains("r3"));
        let e = EngineError::CapacityExceeded {
            item: ItemId(1),
            bin: BinId(2),
            at: Time(5),
        };
        assert!(e.to_string().contains("b2"));
        assert!(e.to_string().contains("t5"));
        let e = VerifyError::BinReusedAfterClose {
            bin: BinId(0),
            at: Time(9),
        };
        assert!(e.to_string().contains("reused"));
    }
}
