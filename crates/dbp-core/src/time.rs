//! Discrete time axis.
//!
//! All simulation time lives on an integer tick grid. The paper's
//! constructions only ever use integer arrival times and power-of-two
//! durations, so an integer grid represents them exactly; arbitrary real
//! traces are discretised by the workload generators before they reach the
//! simulator. Using integers (instead of `f64`) keeps every span/cost
//! computation exact, which matters when experiments assert equalities such
//! as Corollary 5.8 (`CDFF_{t+}(σ_μ) = max_0(binary(t)) + 1`).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point on the discrete time axis, measured in ticks since the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A non-negative span of time, measured in ticks.
///
/// Item durations are always strictly positive (validated by
/// [`crate::instance::Instance`]); `Dur(0)` is still representable because
/// differences of equal times arise naturally in span accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The origin of the simulation clock.
    pub const ZERO: Time = Time(0);

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `earlier > self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        Dur(self.0 - earlier.0)
    }

    /// Checked version of [`Time::since`], returning `None` when
    /// `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: Time) -> Option<Dur> {
        self.0.checked_sub(earlier.0).map(Dur)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);
    /// One tick.
    pub const ONE: Dur = Dur(1);

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whether this duration is zero ticks long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `2^i` ticks.
    ///
    /// # Panics
    /// Panics if `i >= 64`.
    #[inline]
    pub const fn pow2(i: u32) -> Dur {
        Dur(1u64 << i)
    }

    /// The duration-class index `i` such that `self ∈ (2^{i-1}, 2^i]`,
    /// i.e. `i = ⌈log2(ticks)⌉` with `class_index(1) == 0`.
    ///
    /// This is the classification used by both HA (item types `(i, c)`) and
    /// CDFF (row selection).
    ///
    /// # Panics
    /// Panics if the duration is zero.
    #[inline]
    pub fn class_index(self) -> u32 {
        assert!(self.0 > 0, "zero-length duration has no class");
        // ⌈log2(n)⌉ == 64 - (n-1).leading_zeros() for n >= 2; 0 for n == 1.
        if self.0 == 1 {
            0
        } else {
            64 - (self.0 - 1).leading_zeros()
        }
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Dur) -> Time {
        Time(self.0.checked_add(d.0).expect("time overflow"))
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, other: Dur) -> Dur {
        Dur(self.0.checked_add(other.0).expect("duration overflow"))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, other: Dur) {
        *self = *self + other;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, other: Dur) -> Dur {
        Dur(self.0.checked_sub(other.0).expect("duration underflow"))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Δ", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time(10) + Dur(5);
        assert_eq!(t, Time(15));
        assert_eq!(t.since(Time(10)), Dur(5));
        assert_eq!(t.checked_since(Time(20)), None);
        assert_eq!(t.checked_since(Time(15)), Some(Dur::ZERO));
    }

    #[test]
    #[should_panic(expected = "time overflow")]
    fn time_add_overflow_panics() {
        let _ = Time(u64::MAX) + Dur(1);
    }

    #[test]
    fn saturating_add_caps() {
        assert_eq!(Time(u64::MAX).saturating_add(Dur(5)), Time(u64::MAX));
    }

    #[test]
    fn class_index_matches_paper_intervals() {
        // l ∈ (2^{i-1}, 2^i] ⇒ class i.
        assert_eq!(Dur(1).class_index(), 0);
        assert_eq!(Dur(2).class_index(), 1);
        assert_eq!(Dur(3).class_index(), 2);
        assert_eq!(Dur(4).class_index(), 2);
        assert_eq!(Dur(5).class_index(), 3);
        assert_eq!(Dur(8).class_index(), 3);
        assert_eq!(Dur(9).class_index(), 4);
        assert_eq!(Dur(1 << 40).class_index(), 40);
        assert_eq!(Dur((1 << 40) + 1).class_index(), 41);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn class_index_rejects_zero() {
        Dur::ZERO.class_index();
    }

    #[test]
    fn pow2_durations() {
        assert_eq!(Dur::pow2(0), Dur(1));
        assert_eq!(Dur::pow2(10), Dur(1024));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time(7).to_string(), "t7");
        assert_eq!(Dur(7).to_string(), "7Δ");
    }

    #[test]
    fn class_index_boundary_exact_powers() {
        for i in 1..63u32 {
            assert_eq!(Dur(1u64 << i).class_index(), i, "2^{i} must be class {i}");
            assert_eq!(
                Dur((1u64 << i) + 1).class_index(),
                i + 1,
                "2^{i}+1 must be class {}",
                i + 1
            );
        }
    }
}
