//! Structured event traces of packing runs.
//!
//! A [`TraceRecorder`] wraps any [`OnlineAlgorithm`] and records every
//! decision the wrapped algorithm makes — which bin each item went to,
//! whether the bin was fresh, the bin's load after placement, and bin
//! closures. Traces power the figure renderers, debugging sessions
//! ("why did HA open bin 7?") and regression tests that pin down exact
//! decision sequences.

use crate::algorithm::{OnlineAlgorithm, Placement, SimView};
use crate::bin_state::BinId;
use crate::item::{Item, ItemId};
use crate::size::Size;
use crate::time::Time;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An item was placed.
    Placed {
        /// The item.
        item: ItemId,
        /// Its arrival time (the decision moment).
        at: Time,
        /// Chosen bin.
        bin: BinId,
        /// Whether the placement opened the bin.
        opened: bool,
        /// Item size, for load reconstruction.
        size: Size,
    },
    /// An item departed.
    Departed {
        /// The item.
        item: ItemId,
        /// The bin it left.
        bin: BinId,
        /// Whether the departure closed the bin.
        closed: bool,
    },
}

/// Wraps an algorithm and records its decisions.
#[derive(Debug, Clone)]
pub struct TraceRecorder<A> {
    inner: A,
    events: Vec<TraceEvent>,
}

impl<A: OnlineAlgorithm> TraceRecorder<A> {
    /// Wraps `inner`.
    pub fn new(inner: A) -> TraceRecorder<A> {
        TraceRecorder {
            inner,
            events: Vec::new(),
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Consumes the recorder, returning the event log.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of placements that opened a bin.
    pub fn bins_opened(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Placed { opened: true, .. }))
            .count()
    }

    /// Renders a compact textual transcript.
    pub fn transcript(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                TraceEvent::Placed {
                    item,
                    at,
                    bin,
                    opened,
                    ..
                } => {
                    out.push_str(&format!(
                        "{at}: {item} -> {bin}{}\n",
                        if *opened { " (new)" } else { "" }
                    ));
                }
                TraceEvent::Departed { item, bin, closed } => {
                    out.push_str(&format!(
                        "      {item} leaves {bin}{}\n",
                        if *closed { " (closed)" } else { "" }
                    ));
                }
            }
        }
        out
    }
}

impl<A: OnlineAlgorithm> OnlineAlgorithm for TraceRecorder<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
        let placement = self.inner.on_arrival(view, item);
        let (bin, opened) = match placement {
            Placement::Existing(b) => (b, false),
            Placement::OpenNew => (view.next_bin_id(), true),
        };
        self.events.push(TraceEvent::Placed {
            item: item.id,
            at: item.arrival,
            bin,
            opened,
            size: item.size,
        });
        placement
    }

    fn on_departure(&mut self, item: &Item, bin: BinId, bin_closed: bool) {
        self.events.push(TraceEvent::Departed {
            item: item.id,
            bin,
            closed: bin_closed,
        });
        self.inner.on_departure(item, bin, bin_closed);
    }

    fn reset(&mut self) {
        self.events.clear();
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::instance::Instance;
    use crate::time::Dur;

    struct Ff;
    impl OnlineAlgorithm for Ff {
        fn name(&self) -> &str {
            "ff"
        }
        fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
            match view.first_fit(item.size) {
                Some(b) => Placement::Existing(b),
                None => Placement::OpenNew,
            }
        }
        fn reset(&mut self) {}
    }

    fn sz(n: u64, d: u64) -> Size {
        Size::from_ratio(n, d)
    }

    #[test]
    fn records_placements_and_departures_in_order() {
        let inst = Instance::from_triples([
            (Time(0), Dur(4), sz(1, 2)),
            (Time(1), Dur(1), sz(1, 2)),
            (Time(3), Dur(2), sz(1, 1)),
        ])
        .unwrap();
        let mut rec = TraceRecorder::new(Ff);
        let res = engine::run(&inst, &mut rec).unwrap();
        assert_eq!(rec.bins_opened(), res.bins_opened);
        let events = rec.events();
        assert_eq!(events.len(), 6, "3 placements + 3 departures");
        assert!(matches!(
            events[0],
            TraceEvent::Placed {
                opened: true,
                bin: BinId(0),
                at: Time(0),
                ..
            }
        ));
        assert!(matches!(
            events[1],
            TraceEvent::Placed {
                opened: false,
                bin: BinId(0),
                ..
            }
        ));
        // The full-size item at t=3 needs a new bin (bin 0 still holds r0).
        assert!(matches!(
            events[3],
            TraceEvent::Placed {
                opened: true,
                bin: BinId(1),
                ..
            }
        ));
    }

    #[test]
    fn transcript_is_readable() {
        let inst = Instance::from_triples([(Time(2), Dur(3), sz(1, 2))]).unwrap();
        let mut rec = TraceRecorder::new(Ff);
        let _ = engine::run(&inst, &mut rec).unwrap();
        let t = rec.transcript();
        assert!(t.contains("t2: r0 -> b0 (new)"));
        assert!(t.contains("r0 leaves b0 (closed)"));
    }

    #[test]
    fn reset_clears_the_log() {
        let inst = Instance::from_triples([(Time(0), Dur(1), sz(1, 2))]).unwrap();
        let mut rec = TraceRecorder::new(Ff);
        let _ = engine::run(&inst, &mut rec).unwrap();
        assert!(!rec.events().is_empty());
        rec.reset();
        assert!(rec.events().is_empty());
    }
}
