//! Structured event traces of packing runs.
//!
//! Two complementary layers live here:
//!
//! * **Engine events** ([`EngineEvent`]) are emitted by the simulator
//!   itself through an [`EventSink`] — the ground truth of what happened:
//!   arrivals, placements (with their search-path classification),
//!   bin lifecycle, departures, and clock motion. The default sink is
//!   [`NoopSink`], a zero-sized type whose callback compiles away, so the
//!   hot path pays nothing when nobody listens. Sinks receive a borrow of
//!   the live [`BinStore`] alongside each event, which is what lets the
//!   invariant auditor ([`crate::audit`]) cross-check the tree-backed
//!   First-Fit against the linear oracle *at the moment of divergence*.
//!   [`JsonlSink`] streams events as JSON lines (schema in DESIGN.md §9);
//!   [`parse_jsonl`] reads them back for replay and diffing.
//!
//! * **Algorithm traces** ([`TraceRecorder`]) wrap an
//!   [`OnlineAlgorithm`] and record every decision the wrapped algorithm
//!   makes. They power the figure renderers and regression tests that pin
//!   down exact decision sequences.

use std::io::{self, Write};

use crate::algorithm::{OnlineAlgorithm, Placement, SimView};
use crate::bin_state::{BinId, BinStore};
use crate::item::{Item, ItemId};
use crate::size::{LoadVec, SizeVec, MAX_DIMS, SIZE_SCALE};
use crate::time::Time;

/// How the engine classified a placement's search cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPath {
    /// Answered without enumerating the open list: a tournament-tree query,
    /// an O(1) rule (Next-Fit's newest bin), or a stateless `OpenNew`.
    FastPath,
    /// The algorithm walked the open list (`open_bins`) or ran the naive
    /// linear First-Fit to decide.
    Scan,
}

/// One event emitted by the engine during a run, in simulation order.
///
/// Departure events at a time `t` precede arrival events at `t` (the
/// model's `t⁻`/`t⁺` convention), and every `Placed { opened: true, .. }`
/// is immediately preceded by the matching [`EngineEvent::BinOpened`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// An item arrived and is about to be placed.
    Arrival {
        /// The arriving item.
        item: ItemId,
        /// Arrival time (the current clock).
        at: Time,
        /// Item size.
        size: SizeVec,
        /// Known departure, or `None` for a not-yet-dated interactive
        /// arrival.
        departure: Option<Time>,
    },
    /// A validated placement took effect.
    Placed {
        /// The placed item.
        item: ItemId,
        /// Placement time.
        at: Time,
        /// The bin it went to.
        bin: BinId,
        /// Whether this placement opened the bin.
        opened: bool,
        /// Search-path classification of the decision.
        via: PlacementPath,
        /// The bin's total load after the placement.
        load_after: LoadVec,
    },
    /// A fresh bin opened.
    BinOpened {
        /// The new bin.
        bin: BinId,
        /// Opening time.
        at: Time,
    },
    /// An item departed its bin.
    Departure {
        /// The departing item.
        item: ItemId,
        /// Departure time.
        at: Time,
        /// The bin it left.
        bin: BinId,
        /// Item size (for load reconstruction).
        size: SizeVec,
    },
    /// A bin emptied and closed forever.
    BinClosed {
        /// The closed bin.
        bin: BinId,
        /// Closing time.
        at: Time,
        /// When the bin had opened (so a sink can account its interval
        /// without keeping its own per-bin state).
        opened_at: Time,
    },
    /// A bin crashed (failure injection): its interval still counts toward
    /// the bill, but its residents were displaced rather than departing.
    /// Every `ItemDisplaced` of the crash precedes this event.
    BinFailed {
        /// The failed bin.
        bin: BinId,
        /// Crash time.
        at: Time,
        /// When the bin had opened (its billed interval is
        /// `at − opened_at`, same as a clean close).
        opened_at: Time,
    },
    /// An in-flight item was evicted by its bin crashing. Load-wise this
    /// is a departure; the item's remaining service re-enters later as an
    /// [`EngineEvent::ItemReadmitted`] (or is dropped).
    ItemDisplaced {
        /// The displaced item.
        item: ItemId,
        /// Displacement time (the crash time).
        at: Time,
        /// The bin that failed under it.
        bin: BinId,
        /// Item size (for load reconstruction).
        size: SizeVec,
    },
    /// A displaced item re-entered the system as a fresh arrival (a new
    /// item id) and is about to be placed — the failure-side twin of
    /// [`EngineEvent::Arrival`]: exactly one `Placed` follows.
    ItemReadmitted {
        /// The fresh item id of the re-admission.
        item: ItemId,
        /// The displaced item this re-admission continues.
        original: ItemId,
        /// Re-admission time.
        at: Time,
        /// Item size (unchanged by displacement).
        size: SizeVec,
        /// The original departure the re-admission still targets.
        departure: Time,
        /// How many times this logical request has been displaced so far.
        attempt: u32,
    },
    /// A resident item was voluntarily moved between open bins by a
    /// recourse-budgeted algorithm (see [`crate::recourse`]). Load-wise
    /// this is a departure from `from` plus a placement into `to` at one
    /// instant; if the move emptied `from`, the matching
    /// [`EngineEvent::BinClosed`] follows immediately.
    ItemMigrated {
        /// The moved item (it keeps its id across the move).
        item: ItemId,
        /// Migration time.
        at: Time,
        /// The bin it left.
        from: BinId,
        /// The open bin it moved into.
        to: BinId,
        /// Item size (for load reconstruction).
        size: SizeVec,
        /// The *target* bin's total load after the move.
        load_after: LoadVec,
    },
    /// The simulation clock moved forward.
    ClockAdvanced {
        /// Previous clock value.
        from: Time,
        /// New clock value.
        to: Time,
    },
}

impl EngineEvent {
    /// The simulation time this event is stamped with (`to` for clock
    /// motion).
    #[inline]
    pub fn time(&self) -> Time {
        match *self {
            EngineEvent::Arrival { at, .. }
            | EngineEvent::Placed { at, .. }
            | EngineEvent::BinOpened { at, .. }
            | EngineEvent::Departure { at, .. }
            | EngineEvent::BinClosed { at, .. }
            | EngineEvent::BinFailed { at, .. }
            | EngineEvent::ItemDisplaced { at, .. }
            | EngineEvent::ItemReadmitted { at, .. }
            | EngineEvent::ItemMigrated { at, .. } => at,
            EngineEvent::ClockAdvanced { to, .. } => to,
        }
    }

    /// Short tag naming the event kind (the JSONL `"e"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::Arrival { .. } => "arrival",
            EngineEvent::Placed { .. } => "placed",
            EngineEvent::BinOpened { .. } => "bin_opened",
            EngineEvent::Departure { .. } => "departure",
            EngineEvent::BinClosed { .. } => "bin_closed",
            EngineEvent::BinFailed { .. } => "bin_failed",
            EngineEvent::ItemDisplaced { .. } => "displaced",
            EngineEvent::ItemReadmitted { .. } => "readmitted",
            EngineEvent::ItemMigrated { .. } => "migrated",
            EngineEvent::ClockAdvanced { .. } => "clock",
        }
    }
}

/// Receiver of engine events.
///
/// `bins` is the live store *after* the event took effect; sinks may run
/// read-only queries against it (the auditor probes both First-Fit paths),
/// but such probes tick the store's observability counters — the engine's
/// per-placement metrics are delta-based and immune to this.
pub trait EventSink {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &EngineEvent, bins: &BinStore);

    /// Called when the engine compacts its item table: `retained[new]` is
    /// the *old* [`ItemId`] of the row now at index `new`, `old_len` the
    /// pre-compaction table length. Item ids in *subsequent* events use the
    /// new numbering; sinks keeping id-keyed state (or translating ids for
    /// an external consumer) must rewrite it here. The default ignores it —
    /// correct for sinks that only ever see each id between its arrival and
    /// departure, wrong for whole-run mirrors like the invariant auditor
    /// (which is documented as incompatible with compaction).
    fn on_compact(&mut self, retained: &[ItemId], old_len: usize) {
        let _ = (retained, old_len);
    }

    /// Called when the engine compacts its *bin store* (see
    /// [`crate::engine::InteractiveSim::compact_bins`]): closed bins'
    /// records were reclaimed, and `old_to_new[old.index()]` is a
    /// surviving open bin's new id (`BinId(u32::MAX)` marks a dropped
    /// closed bin). `bins` is the store *after* renumbering. Bin ids in
    /// subsequent events use the new numbering; sinks translating bin ids
    /// for an external consumer must rewrite their maps here. Same
    /// default-correctness caveat as [`EventSink::on_compact`].
    fn on_bin_compact(&mut self, old_to_new: &[BinId], bins: &BinStore) {
        let _ = (old_to_new, bins);
    }
}

/// The default sink: listens to nothing, costs nothing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline(always)]
    fn on_event(&mut self, _event: &EngineEvent, _bins: &BinStore) {}
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    #[inline]
    fn on_event(&mut self, event: &EngineEvent, bins: &BinStore) {
        (**self).on_event(event, bins)
    }
    #[inline]
    fn on_compact(&mut self, retained: &[ItemId], old_len: usize) {
        (**self).on_compact(retained, old_len)
    }
    #[inline]
    fn on_bin_compact(&mut self, old_to_new: &[BinId], bins: &BinStore) {
        (**self).on_bin_compact(old_to_new, bins)
    }
}

/// A tee: every event goes to `.0`, then to `.1`. Compose with nesting
/// (`(a, (b, c))`) for wider fan-out — e.g. recording a trace while the
/// invariant auditor watches the same run.
impl<A: EventSink, B: EventSink> EventSink for (A, B) {
    #[inline]
    fn on_event(&mut self, event: &EngineEvent, bins: &BinStore) {
        self.0.on_event(event, bins);
        self.1.on_event(event, bins);
    }
    #[inline]
    fn on_compact(&mut self, retained: &[ItemId], old_len: usize) {
        self.0.on_compact(retained, old_len);
        self.1.on_compact(retained, old_len);
    }
    #[inline]
    fn on_bin_compact(&mut self, old_to_new: &[BinId], bins: &BinStore) {
        self.0.on_bin_compact(old_to_new, bins);
        self.1.on_bin_compact(old_to_new, bins);
    }
}

/// Buffers every event in memory.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// The events received so far, in order.
    pub events: Vec<EngineEvent>,
}

impl VecSink {
    /// An empty buffer.
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl EventSink for VecSink {
    fn on_event(&mut self, event: &EngineEvent, _bins: &BinStore) {
        self.events.push(*event);
    }
}

/// Streams events as JSON lines into any writer.
///
/// Lines are serialized into an internal buffer (no per-event `String`)
/// and handed to the writer in ~32 KiB batches, so tracing a long run
/// costs one `write` syscall per few hundred events instead of one each.
/// Call [`JsonlSink::finish`] to flush the tail.
///
/// I/O errors are latched (subsequent events are dropped) and surfaced by
/// [`JsonlSink::finish`], since the sink callback itself is infallible.
///
/// Dropping the sink without calling `finish` (a panic, an early return)
/// still flushes the buffered tail on a best-effort basis — already-
/// rendered events are never silently discarded — but only `finish` can
/// report whether the flush succeeded.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    /// `None` only after `finish` moved the writer out.
    out: Option<W>,
    buf: String,
    written: u64,
    error: Option<io::Error>,
}

/// Buffered bytes that trigger a batch write in [`JsonlSink`].
const JSONL_FLUSH_BYTES: usize = 32 * 1024;

impl<W: Write> JsonlSink<W> {
    /// Wraps `out`.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out: Some(out),
            buf: String::new(),
            written: 0,
            error: None,
        }
    }

    /// Number of lines serialized so far (buffered lines included).
    pub fn written(&self) -> u64 {
        self.written
    }

    fn flush_buf(&mut self) {
        if self.error.is_some() || self.buf.is_empty() {
            return;
        }
        let out = self.out.as_mut().expect("writer present until finish");
        if let Err(e) = out.write_all(self.buf.as_bytes()) {
            self.error = Some(e);
        }
        self.buf.clear();
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_buf();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut out = self.out.take().expect("finish called once");
        out.flush()?;
        Ok(out)
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    /// Best-effort flush of the buffered tail when the sink is dropped
    /// without [`JsonlSink::finish`] — panic and early-return paths must
    /// not lose up to a batch of already-rendered events. Errors here are
    /// unreportable and ignored.
    fn drop(&mut self) {
        if self.out.is_some() {
            self.flush_buf();
            if let Some(out) = self.out.as_mut() {
                let _ = out.flush();
            }
        }
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn on_event(&mut self, event: &EngineEvent, _bins: &BinStore) {
        if self.error.is_some() {
            return;
        }
        write_event_json(&mut self.buf, event);
        self.buf.push('\n');
        self.written += 1;
        if self.buf.len() >= JSONL_FLUSH_BYTES {
            self.flush_buf();
        }
    }
}

/// Serializes one event as a single flat JSON object (no trailing newline).
///
/// The schema is documented in DESIGN.md §9; [`event_from_json`] is the
/// exact inverse. This is [`write_event_json`] into a fresh `String`;
/// callers serializing many events should append into a reused buffer
/// instead (as [`JsonlSink`] does).
pub fn event_to_json(event: &EngineEvent) -> String {
    let mut out = String::new();
    write_event_json(&mut out, event);
    out
}

/// Appends a raw fixed-point vector in its wire form: the bare scalar when
/// dimensions 1.. are zero (so every D = 1 line stays byte-identical to the
/// pre-vector codec) and `[r0,r1(,r2)]` trimmed of trailing zero
/// dimensions otherwise.
///
/// Public so external serializers of engine state (the serve daemon's
/// snapshot format) encode sizes and loads with the same convention.
pub fn write_raws_json(out: &mut String, raws: [u64; MAX_DIMS]) {
    use std::fmt::Write as _;
    // Writing to a String is infallible; the results are discarded.
    if raws[1..] == [0; MAX_DIMS - 1] {
        let _ = write!(out, "{}", raws[0]);
        return;
    }
    let used = MAX_DIMS - raws.iter().rev().take_while(|&&r| r == 0).count();
    let _ = write!(out, "[{}", raws[0]);
    for &r in &raws[1..used.max(2)] {
        let _ = write!(out, ",{r}");
    }
    out.push(']');
}

/// Appends one event's flat JSON object (no trailing newline) to `out` —
/// the allocation-free form of [`event_to_json`].
pub fn write_event_json(out: &mut String, event: &EngineEvent) {
    use std::fmt::Write as _;
    // Writing to a String is infallible; the results are discarded.
    match *event {
        EngineEvent::Arrival {
            item,
            at,
            size,
            departure,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"arrival\",\"t\":{},\"item\":{},\"size\":",
                at.0, item.0
            );
            write_raws_json(out, size.raws());
            match departure {
                Some(dep) => {
                    let _ = write!(out, ",\"dep\":{}}}", dep.0);
                }
                None => out.push('}'),
            }
        }
        EngineEvent::Placed {
            item,
            at,
            bin,
            opened,
            via,
            load_after,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"placed\",\"t\":{},\"item\":{},\"bin\":{},\"opened\":{},\"via\":\"{}\",\"load\":",
                at.0,
                item.0,
                bin.0,
                opened,
                match via {
                    PlacementPath::FastPath => "fast",
                    PlacementPath::Scan => "scan",
                },
            );
            write_raws_json(out, load_after.raws());
            out.push('}');
        }
        EngineEvent::BinOpened { bin, at } => {
            let _ = write!(
                out,
                "{{\"e\":\"bin_opened\",\"t\":{},\"bin\":{}}}",
                at.0, bin.0
            );
        }
        EngineEvent::Departure {
            item,
            at,
            bin,
            size,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"departure\",\"t\":{},\"item\":{},\"bin\":{},\"size\":",
                at.0, item.0, bin.0
            );
            write_raws_json(out, size.raws());
            out.push('}');
        }
        EngineEvent::BinClosed { bin, at, opened_at } => {
            let _ = write!(
                out,
                "{{\"e\":\"bin_closed\",\"t\":{},\"bin\":{},\"opened_at\":{}}}",
                at.0, bin.0, opened_at.0
            );
        }
        EngineEvent::BinFailed { bin, at, opened_at } => {
            let _ = write!(
                out,
                "{{\"e\":\"bin_failed\",\"t\":{},\"bin\":{},\"opened_at\":{}}}",
                at.0, bin.0, opened_at.0
            );
        }
        EngineEvent::ItemDisplaced {
            item,
            at,
            bin,
            size,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"displaced\",\"t\":{},\"item\":{},\"bin\":{},\"size\":",
                at.0, item.0, bin.0
            );
            write_raws_json(out, size.raws());
            out.push('}');
        }
        EngineEvent::ItemReadmitted {
            item,
            original,
            at,
            size,
            departure,
            attempt,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"readmitted\",\"t\":{},\"item\":{},\"orig\":{},\"size\":",
                at.0, item.0, original.0
            );
            write_raws_json(out, size.raws());
            let _ = write!(out, ",\"dep\":{},\"attempt\":{}}}", departure.0, attempt);
        }
        EngineEvent::ItemMigrated {
            item,
            at,
            from,
            to,
            size,
            load_after,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"migrated\",\"t\":{},\"item\":{},\"from\":{},\"to\":{},\"size\":",
                at.0, item.0, from.0, to.0
            );
            write_raws_json(out, size.raws());
            out.push_str(",\"load\":");
            write_raws_json(out, load_after.raws());
            out.push('}');
        }
        EngineEvent::ClockAdvanced { from, to } => {
            let _ = write!(
                out,
                "{{\"e\":\"clock\",\"from\":{},\"to\":{}}}",
                from.0, to.0
            );
        }
    }
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number within the parsed text (0 for single-line
    /// parses).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.line == 0 {
            write!(f, "trace parse error: {}", self.message)
        } else {
            write!(f, "trace line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceParseError {}

fn bad(message: impl Into<String>) -> TraceParseError {
    TraceParseError {
        line: 0,
        message: message.into(),
    }
}

/// Splits a flat JSON object into raw `(key, value)` token pairs. Values
/// stay unparsed (`"fast"` keeps its quotes). Only the flat schema emitted
/// by [`event_to_json`] is supported — no nesting, no escapes (values
/// containing `,` or `:` inside strings are out of grammar). Duplicate
/// keys are rejected: this codec is a wire format, and a line whose
/// meaning depends on which copy of a key wins must not parse.
///
/// Public so protocol layers (the serve daemon) can peel envelope keys
/// (`tenant`, `op`) off a line before handing the rest to
/// [`event_from_json`], without duplicating this fuzz-hardened splitter.
pub fn json_pairs(s: &str) -> Result<Vec<(&str, &str)>, TraceParseError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| bad("expected a {...} object"))?;
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    // Split on commas at bracket depth 0 only, so array values
    // (`"size":[1,2]`) stay one token. Deeper nesting is out of grammar.
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut parts: Vec<&str> = Vec::new();
    for (i, b) in inner.bytes().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => depth = depth.checked_sub(1).ok_or_else(|| bad("unbalanced `]`"))?,
            b',' if depth == 0 => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(bad("unbalanced `[`"));
    }
    parts.push(&inner[start..]);
    for part in parts {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once(':')
            .ok_or_else(|| bad(format!("expected key:value, got `{part}`")))?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| bad(format!("unquoted key `{}`", k.trim())))?;
        if pairs.iter().any(|&(seen, _)| seen == key) {
            return Err(bad(format!("duplicate key `{key}`")));
        }
        pairs.push((key, v.trim()));
    }
    Ok(pairs)
}

fn field<'a>(pairs: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, TraceParseError> {
    pairs
        .iter()
        .find(|(k, _)| *k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| bad(format!("missing field `{key}`")))
}

fn num(pairs: &[(&str, &str)], key: &str) -> Result<u64, TraceParseError> {
    let v = field(pairs, key)?;
    v.parse::<u64>()
        .map_err(|_| bad(format!("field `{key}`: `{v}` is not an unsigned integer")))
}

/// A `u64` field that must also fit an id-sized `u32` (item/bin ids,
/// attempt counters). Out-of-range values are typed errors — silently
/// truncating an id would make two distinct wire items collide.
fn num_u32(pairs: &[(&str, &str)], key: &str) -> Result<u32, TraceParseError> {
    let v = num(pairs, key)?;
    u32::try_from(v).map_err(|_| bad(format!("field `{key}`: `{v}` exceeds u32 range")))
}

/// Parses a scalar-or-array wire value (`7` or `[7,3]`) into its raw
/// components. Public for the serve daemon's snapshot codec, which encodes
/// sizes with the same convention (see [`write_raws_json`]).
pub fn parse_raws_json(v: &str, key: &str) -> Result<Vec<u64>, TraceParseError> {
    let components: Vec<&str> = match v.strip_prefix('[') {
        Some(body) => {
            let body = body
                .strip_suffix(']')
                .ok_or_else(|| bad(format!("field `{key}`: unterminated array `{v}`")))?;
            body.split(',').collect()
        }
        None => vec![v],
    };
    components
        .iter()
        .map(|c| {
            let c = c.trim();
            c.parse::<u64>()
                .map_err(|_| bad(format!("field `{key}`: `{c}` is not an unsigned integer")))
        })
        .collect()
}

/// A `size` field: raw fixed-point units bounded by bin capacity, either a
/// bare scalar (dimension 0) or a `[..]` array of up to [`MAX_DIMS`]
/// per-dimension components.
fn size_field(pairs: &[(&str, &str)], key: &str) -> Result<SizeVec, TraceParseError> {
    let v = field(pairs, key)?;
    let raws = parse_raws_json(v, key)?;
    if raws.is_empty() || raws.len() > MAX_DIMS {
        return Err(bad(format!(
            "field `{key}`: `{v}` is not a size vector of 1..={MAX_DIMS} components"
        )));
    }
    if let Some(&r) = raws.iter().find(|&&r| r > SIZE_SCALE) {
        return Err(bad(format!(
            "field `{key}`: component {r} exceeds bin capacity ({SIZE_SCALE})"
        )));
    }
    Ok(SizeVec::try_from_raws(&raws).expect("arity and range validated above"))
}

/// A `load` field: like `size` but unbounded per component (loads are
/// engine-reported sums, validated by the auditor rather than the codec —
/// matching the scalar codec's behaviour).
fn load_field(pairs: &[(&str, &str)], key: &str) -> Result<LoadVec, TraceParseError> {
    let v = field(pairs, key)?;
    let raws = parse_raws_json(v, key)?;
    if raws.is_empty() || raws.len() > MAX_DIMS {
        return Err(bad(format!(
            "field `{key}`: `{v}` is not a load vector of 1..={MAX_DIMS} components"
        )));
    }
    let mut arr = [0u64; MAX_DIMS];
    arr[..raws.len()].copy_from_slice(&raws);
    Ok(LoadVec::from_raws(arr))
}

/// Parses one JSON line back into an [`EngineEvent`] (inverse of
/// [`event_to_json`]).
pub fn event_from_json(line: &str) -> Result<EngineEvent, TraceParseError> {
    let pairs = json_pairs(line)?;
    let kind = field(&pairs, "e")?;
    match kind {
        "\"arrival\"" => Ok(EngineEvent::Arrival {
            item: ItemId(num_u32(&pairs, "item")?),
            at: Time(num(&pairs, "t")?),
            size: size_field(&pairs, "size")?,
            departure: match pairs.iter().find(|(k, _)| *k == "dep") {
                Some(_) => Some(Time(num(&pairs, "dep")?)),
                None => None,
            },
        }),
        "\"placed\"" => Ok(EngineEvent::Placed {
            item: ItemId(num_u32(&pairs, "item")?),
            at: Time(num(&pairs, "t")?),
            bin: BinId(num_u32(&pairs, "bin")?),
            opened: match field(&pairs, "opened")? {
                "true" => true,
                "false" => false,
                other => return Err(bad(format!("field `opened`: `{other}` is not a bool"))),
            },
            via: match field(&pairs, "via")? {
                "\"fast\"" => PlacementPath::FastPath,
                "\"scan\"" => PlacementPath::Scan,
                other => return Err(bad(format!("field `via`: unknown path `{other}`"))),
            },
            load_after: load_field(&pairs, "load")?,
        }),
        "\"bin_opened\"" => Ok(EngineEvent::BinOpened {
            bin: BinId(num_u32(&pairs, "bin")?),
            at: Time(num(&pairs, "t")?),
        }),
        "\"departure\"" => Ok(EngineEvent::Departure {
            item: ItemId(num_u32(&pairs, "item")?),
            at: Time(num(&pairs, "t")?),
            bin: BinId(num_u32(&pairs, "bin")?),
            size: size_field(&pairs, "size")?,
        }),
        "\"bin_closed\"" => Ok(EngineEvent::BinClosed {
            bin: BinId(num_u32(&pairs, "bin")?),
            at: Time(num(&pairs, "t")?),
            opened_at: Time(num(&pairs, "opened_at")?),
        }),
        "\"bin_failed\"" => Ok(EngineEvent::BinFailed {
            bin: BinId(num_u32(&pairs, "bin")?),
            at: Time(num(&pairs, "t")?),
            opened_at: Time(num(&pairs, "opened_at")?),
        }),
        "\"displaced\"" => Ok(EngineEvent::ItemDisplaced {
            item: ItemId(num_u32(&pairs, "item")?),
            at: Time(num(&pairs, "t")?),
            bin: BinId(num_u32(&pairs, "bin")?),
            size: size_field(&pairs, "size")?,
        }),
        "\"readmitted\"" => Ok(EngineEvent::ItemReadmitted {
            item: ItemId(num_u32(&pairs, "item")?),
            original: ItemId(num_u32(&pairs, "orig")?),
            at: Time(num(&pairs, "t")?),
            size: size_field(&pairs, "size")?,
            departure: Time(num(&pairs, "dep")?),
            attempt: num_u32(&pairs, "attempt")?,
        }),
        "\"migrated\"" => Ok(EngineEvent::ItemMigrated {
            item: ItemId(num_u32(&pairs, "item")?),
            at: Time(num(&pairs, "t")?),
            from: BinId(num_u32(&pairs, "from")?),
            to: BinId(num_u32(&pairs, "to")?),
            size: size_field(&pairs, "size")?,
            load_after: load_field(&pairs, "load")?,
        }),
        "\"clock\"" => Ok(EngineEvent::ClockAdvanced {
            from: Time(num(&pairs, "from")?),
            to: Time(num(&pairs, "to")?),
        }),
        other => Err(bad(format!("unknown event kind {other}"))),
    }
}

/// Parses a whole JSONL trace (blank lines ignored); errors carry 1-based
/// line numbers.
pub fn parse_jsonl(text: &str) -> Result<Vec<EngineEvent>, TraceParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = event_from_json(line).map_err(|mut e| {
            e.line = i + 1;
            e
        })?;
        events.push(ev);
    }
    Ok(events)
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An item was placed.
    Placed {
        /// The item.
        item: ItemId,
        /// Its arrival time (the decision moment).
        at: Time,
        /// Chosen bin.
        bin: BinId,
        /// Whether the placement opened the bin.
        opened: bool,
        /// Item size, for load reconstruction.
        size: SizeVec,
    },
    /// An item departed.
    Departed {
        /// The item.
        item: ItemId,
        /// The bin it left.
        bin: BinId,
        /// Whether the departure closed the bin.
        closed: bool,
    },
}

/// Wraps an algorithm and records its decisions.
#[derive(Debug, Clone)]
pub struct TraceRecorder<A> {
    inner: A,
    events: Vec<TraceEvent>,
}

impl<A: OnlineAlgorithm> TraceRecorder<A> {
    /// Wraps `inner`.
    pub fn new(inner: A) -> TraceRecorder<A> {
        TraceRecorder {
            inner,
            events: Vec::new(),
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Consumes the recorder, returning the event log.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of placements that opened a bin.
    pub fn bins_opened(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Placed { opened: true, .. }))
            .count()
    }

    /// Renders a compact textual transcript.
    pub fn transcript(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                TraceEvent::Placed {
                    item,
                    at,
                    bin,
                    opened,
                    ..
                } => {
                    out.push_str(&format!(
                        "{at}: {item} -> {bin}{}\n",
                        if *opened { " (new)" } else { "" }
                    ));
                }
                TraceEvent::Departed { item, bin, closed } => {
                    out.push_str(&format!(
                        "      {item} leaves {bin}{}\n",
                        if *closed { " (closed)" } else { "" }
                    ));
                }
            }
        }
        out
    }
}

impl<A: OnlineAlgorithm> OnlineAlgorithm for TraceRecorder<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
        let placement = self.inner.on_arrival(view, item);
        let (bin, opened) = match placement {
            Placement::Existing(b) => (b, false),
            Placement::OpenNew => (view.next_bin_id(), true),
        };
        self.events.push(TraceEvent::Placed {
            item: item.id,
            at: item.arrival,
            bin,
            opened,
            size: item.size,
        });
        placement
    }

    fn on_departure(&mut self, item: &Item, bin: BinId, bin_closed: bool) {
        self.events.push(TraceEvent::Departed {
            item: item.id,
            bin,
            closed: bin_closed,
        });
        self.inner.on_departure(item, bin, bin_closed);
    }

    fn on_compact(&mut self, retained: &[ItemId], old_len: usize) {
        // Recorded events keep the ids that were current when they fired
        // (the log is a transcript, not a live index); only the wrapped
        // algorithm needs the remap.
        self.inner.on_compact(retained, old_len);
    }

    fn propose_migration(
        &mut self,
        view: &crate::recourse::RecourseView<'_>,
        epoch: crate::recourse::RecourseEpoch,
        moves_left: u32,
    ) -> Option<crate::recourse::Migration> {
        self.inner.propose_migration(view, epoch, moves_left)
    }

    fn reset(&mut self) {
        self.events.clear();
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::instance::Instance;
    use crate::size::{Load, Size};
    use crate::time::Dur;

    struct Ff;
    impl OnlineAlgorithm for Ff {
        fn name(&self) -> &str {
            "ff"
        }
        fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
            match view.first_fit(item.size) {
                Some(b) => Placement::Existing(b),
                None => Placement::OpenNew,
            }
        }
        fn reset(&mut self) {}
    }

    fn sz(n: u64, d: u64) -> Size {
        Size::from_ratio(n, d)
    }

    #[test]
    fn records_placements_and_departures_in_order() {
        let inst = Instance::from_triples([
            (Time(0), Dur(4), sz(1, 2)),
            (Time(1), Dur(1), sz(1, 2)),
            (Time(3), Dur(2), sz(1, 1)),
        ])
        .unwrap();
        let mut rec = TraceRecorder::new(Ff);
        let res = engine::run(&inst, &mut rec).unwrap();
        assert_eq!(rec.bins_opened(), res.bins_opened);
        let events = rec.events();
        assert_eq!(events.len(), 6, "3 placements + 3 departures");
        assert!(matches!(
            events[0],
            TraceEvent::Placed {
                opened: true,
                bin: BinId(0),
                at: Time(0),
                ..
            }
        ));
        assert!(matches!(
            events[1],
            TraceEvent::Placed {
                opened: false,
                bin: BinId(0),
                ..
            }
        ));
        // The full-size item at t=3 needs a new bin (bin 0 still holds r0).
        assert!(matches!(
            events[3],
            TraceEvent::Placed {
                opened: true,
                bin: BinId(1),
                ..
            }
        ));
    }

    #[test]
    fn transcript_is_readable() {
        let inst = Instance::from_triples([(Time(2), Dur(3), sz(1, 2))]).unwrap();
        let mut rec = TraceRecorder::new(Ff);
        let _ = engine::run(&inst, &mut rec).unwrap();
        let t = rec.transcript();
        assert!(t.contains("t2: r0 -> b0 (new)"));
        assert!(t.contains("r0 leaves b0 (closed)"));
    }

    #[test]
    fn engine_events_roundtrip_through_json() {
        let events = [
            EngineEvent::Arrival {
                item: ItemId(3),
                at: Time(7),
                size: sz(1, 2).into(),
                departure: Some(Time(12)),
            },
            EngineEvent::Arrival {
                item: ItemId(4),
                at: Time(7),
                size: sz(1, 3).into(),
                departure: None,
            },
            EngineEvent::Placed {
                item: ItemId(3),
                at: Time(7),
                bin: BinId(1),
                opened: true,
                via: PlacementPath::FastPath,
                load_after: Load::from_raw(sz(1, 2).raw()).into(),
            },
            EngineEvent::BinOpened {
                bin: BinId(1),
                at: Time(7),
            },
            EngineEvent::Departure {
                item: ItemId(3),
                at: Time(12),
                bin: BinId(1),
                size: sz(1, 2).into(),
            },
            EngineEvent::BinClosed {
                bin: BinId(1),
                at: Time(12),
                opened_at: Time(7),
            },
            EngineEvent::ClockAdvanced {
                from: Time(7),
                to: Time(12),
            },
            EngineEvent::ItemDisplaced {
                item: ItemId(5),
                at: Time(13),
                bin: BinId(2),
                size: sz(1, 4).into(),
            },
            EngineEvent::BinFailed {
                bin: BinId(2),
                at: Time(13),
                opened_at: Time(9),
            },
            EngineEvent::ItemReadmitted {
                item: ItemId(6),
                original: ItemId(5),
                at: Time(15),
                size: sz(1, 4).into(),
                departure: Time(30),
                attempt: 2,
            },
            EngineEvent::ItemMigrated {
                item: ItemId(6),
                at: Time(16),
                from: BinId(3),
                to: BinId(2),
                size: sz(1, 4).into(),
                load_after: Load::from_raw(sz(1, 2).raw()).into(),
            },
        ];
        let text: String = events.iter().map(|e| event_to_json(e) + "\n").collect();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn jsonl_parse_errors_carry_line_numbers() {
        let text = "{\"e\":\"clock\",\"from\":0,\"to\":1}\nnot json\n";
        let err = parse_jsonl(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        let err = event_from_json("{\"e\":\"clock\",\"from\":0}").unwrap_err();
        assert!(err.message.contains("missing field `to`"));
        let err = event_from_json("{\"e\":\"warp\"}").unwrap_err();
        assert!(err.message.contains("unknown event kind"));
    }

    #[test]
    fn jsonl_sink_streams_events() {
        let mut sink = JsonlSink::new(Vec::new());
        let store = BinStore::new();
        sink.on_event(
            &EngineEvent::ClockAdvanced {
                from: Time(0),
                to: Time(4),
            },
            &store,
        );
        assert_eq!(sink.written(), 1);
        let bytes = sink.finish().unwrap();
        let parsed = parse_jsonl(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(
            parsed,
            [EngineEvent::ClockAdvanced {
                from: Time(0),
                to: Time(4),
            }]
        );
    }

    #[test]
    fn reset_clears_the_log() {
        let inst = Instance::from_triples([(Time(0), Dur(1), sz(1, 2))]).unwrap();
        let mut rec = TraceRecorder::new(Ff);
        let _ = engine::run(&inst, &mut rec).unwrap();
        assert!(!rec.events().is_empty());
        rec.reset();
        assert!(rec.events().is_empty());
    }
}
