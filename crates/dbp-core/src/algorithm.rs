//! The online-algorithm interface.
//!
//! An [`OnlineAlgorithm`] sees items one at a time, in arrival order, and
//! must immediately and irrevocably name a bin for each. Clairvoyance is
//! modelled by handing the algorithm the full [`Item`] (whose `departure` is
//! known on arrival); non-clairvoyant baselines simply never read that
//! field.
//!
//! Algorithms *propose* placements; the engine validates them (bin open,
//! capacity respected) and rejects illegal moves with a typed
//! [`crate::error::EngineError`]. This keeps the trust boundary crisp: an
//! algorithm cannot corrupt the accounting that the experiments depend on.

use crate::bin_state::{BinId, BinRecord, BinStore};
use crate::item::{Item, ItemId};
use crate::recourse::{Migration, RecourseEpoch, RecourseView};
use crate::size::SizeVec;
use crate::time::Time;

/// An algorithm's decision for an arriving item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Put the item into an already-open bin.
    Existing(BinId),
    /// Open a fresh bin for the item.
    OpenNew,
}

/// A read-only view of the simulation the algorithm may consult when
/// placing an item.
#[derive(Debug, Clone, Copy)]
pub struct SimView<'a> {
    now: Time,
    bins: &'a BinStore,
}

impl<'a> SimView<'a> {
    pub(crate) fn new(now: Time, bins: &'a BinStore) -> SimView<'a> {
        SimView { now, bins }
    }

    /// The current simulation time (the arriving item's arrival time).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Currently open bins in opening order (the First-Fit scan order).
    /// Counted as one linear scan for run metrics: any algorithm that walks
    /// this iterator is paying O(open bins) for the decision.
    pub fn open_bins(&self) -> impl Iterator<Item = &'a BinRecord> + '_ {
        let bins = self.bins;
        bins.note_linear_scan();
        bins.open_ids()
            .map(move |b| bins.record(b).expect("open id always has a record"))
    }

    /// Number of currently open bins.
    #[inline]
    pub fn open_count(&self) -> usize {
        self.bins.open_count()
    }

    /// The record of a specific bin, if it was ever opened.
    #[inline]
    pub fn bin(&self, id: BinId) -> Option<&'a BinRecord> {
        self.bins.record(id)
    }

    /// Whether `id` is open and has room for `s` (in every dimension).
    #[inline]
    pub fn fits(&self, id: BinId, s: impl Into<SizeVec>) -> bool {
        self.bins
            .record(id)
            .is_some_and(|r| r.is_open() && r.fits(s))
    }

    /// First-Fit over *all* open bins: the earliest-opened bin with room.
    /// Answered by the capacity tournament tree in O(log B); selects the
    /// identical bin as the linear scan ([`SimView::first_fit_linear`]).
    #[inline]
    pub fn first_fit(&self, s: impl Into<SizeVec>) -> Option<BinId> {
        self.bins.first_fit(s)
    }

    /// The seed's naive O(B) First-Fit scan, retained as a differential
    /// oracle for [`SimView::first_fit`] (and for before/after benchmarks).
    #[inline]
    pub fn first_fit_linear(&self, s: impl Into<SizeVec>) -> Option<BinId> {
        self.bins.first_fit_linear(s)
    }

    /// First-Fit restricted to an explicit candidate list: the first bin
    /// *in slice order* that is open and fits `s`.
    ///
    /// This is the drop-in upgrade for algorithms that keep small candidate
    /// sets as `Vec<BinId>`; each membership test is O(1), so the query is
    /// O(candidates) instead of O(candidates · open-bins). Classes with
    /// *large* candidate sets should mirror them in a
    /// [`crate::fit_tree::SubsetFitTree`] instead, which answers the same
    /// query in O(log candidates).
    pub fn first_fit_among(&self, candidates: &[BinId], s: impl Into<SizeVec>) -> Option<BinId> {
        let s = s.into();
        candidates.iter().copied().find(|&b| self.fits(b, s))
    }

    /// The most recently opened bin still open (Next-Fit's candidate), in
    /// O(1).
    #[inline]
    pub fn newest_open(&self) -> Option<BinId> {
        self.bins.newest_open()
    }

    /// The id the engine will assign to the next freshly opened bin.
    ///
    /// Lets stateful algorithms (HA's CD bins, CDFF's rows) learn the id of
    /// a bin they are about to open by returning [`Placement::OpenNew`]:
    /// bin ids are allocated sequentially over the current record table
    /// (dense again after a bin-store compaction).
    #[inline]
    pub fn next_bin_id(&self) -> BinId {
        self.bins.next_id()
    }
}

/// An online MinUsageTime DBP algorithm.
///
/// Implementations may keep arbitrary internal state; the engine keeps them
/// honest by validating every [`Placement`]. `on_departure` lets algorithms
/// that tag bins (HA's CD bins, CDFF's rows) clean up their indexes.
pub trait OnlineAlgorithm {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// Decide where the arriving `item` goes. Called once per item, in
    /// arrival order, after all departures at the same moment have been
    /// processed (`t⁻` before `t⁺`).
    fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement;

    /// Notification that `item` departed from `bin`; `bin_closed` is true
    /// when the bin emptied (and is then gone forever).
    fn on_departure(&mut self, item: &Item, bin: BinId, bin_closed: bool) {
        let _ = (item, bin, bin_closed);
    }

    /// Notification that the engine compacted its item table (see
    /// [`crate::engine::InteractiveSim::compact`]). `retained[new]` is the
    /// *old* id of the row now living at index `new`; `old_len` was the
    /// table length before compaction, so ids `old_len..` are unassigned in
    /// both numberings. Algorithms keeping [`ItemId`]-keyed state must
    /// rewrite it here; id-oblivious algorithms (the default) ignore it.
    fn on_compact(&mut self, retained: &[ItemId], old_len: usize) {
        let _ = (retained, old_len);
    }

    /// Notification that the engine compacted its *bin store* (see
    /// [`crate::engine::InteractiveSim::compact_bins`]): closed bins'
    /// records were reclaimed and the surviving open bins renumbered
    /// densely, preserving opening order. `old_to_new[old.index()]` is the
    /// bin's new id, or `BinId(u32::MAX)` for a dropped closed bin;
    /// `new_len` is the new record-table length. All subsequent callbacks
    /// use the new numbering, so algorithms keeping [`BinId`]-keyed state
    /// must rewrite it here. Every stateful algorithm in this workspace
    /// prunes closed bins in `on_departure`, so only open (surviving) bins
    /// need translation.
    fn on_bin_compact(&mut self, old_to_new: &[BinId], new_len: usize) {
        let _ = (old_to_new, new_len);
    }

    /// Offer to move a resident item at a recourse epoch (see
    /// [`crate::recourse`]). Called only when the run carries a non-`None`
    /// [`crate::recourse::RecourseBudget`], and repeatedly within one epoch
    /// while allowance remains: return `Some` to execute one migration (the
    /// engine validates and applies it, then asks again with a decremented
    /// `moves_left`), or `None` to end the epoch early. The default never
    /// migrates, so every existing algorithm stays recourse-free.
    fn propose_migration(
        &mut self,
        view: &RecourseView<'_>,
        epoch: RecourseEpoch,
        moves_left: u32,
    ) -> Option<Migration> {
        let _ = (view, epoch, moves_left);
        None
    }

    /// Reset all internal state so the value can run another instance.
    fn reset(&mut self);
}

impl<T: OnlineAlgorithm + ?Sized> OnlineAlgorithm for &mut T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
        (**self).on_arrival(view, item)
    }
    fn on_departure(&mut self, item: &Item, bin: BinId, bin_closed: bool) {
        (**self).on_departure(item, bin, bin_closed)
    }
    fn on_compact(&mut self, retained: &[ItemId], old_len: usize) {
        (**self).on_compact(retained, old_len)
    }
    fn on_bin_compact(&mut self, old_to_new: &[BinId], new_len: usize) {
        (**self).on_bin_compact(old_to_new, new_len)
    }
    fn propose_migration(
        &mut self,
        view: &RecourseView<'_>,
        epoch: RecourseEpoch,
        moves_left: u32,
    ) -> Option<Migration> {
        (**self).propose_migration(view, epoch, moves_left)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

impl<T: OnlineAlgorithm + ?Sized> OnlineAlgorithm for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
        (**self).on_arrival(view, item)
    }
    fn on_departure(&mut self, item: &Item, bin: BinId, bin_closed: bool) {
        (**self).on_departure(item, bin, bin_closed)
    }
    fn on_compact(&mut self, retained: &[ItemId], old_len: usize) {
        (**self).on_compact(retained, old_len)
    }
    fn on_bin_compact(&mut self, old_to_new: &[BinId], new_len: usize) {
        (**self).on_bin_compact(old_to_new, new_len)
    }
    fn propose_migration(
        &mut self,
        view: &RecourseView<'_>,
        epoch: RecourseEpoch,
        moves_left: u32,
    ) -> Option<Migration> {
        (**self).propose_migration(view, epoch, moves_left)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemId;
    use crate::size::Size;

    #[test]
    fn sim_view_first_fit_and_fits() {
        let mut store = BinStore::new();
        let b0 = store.open(Time(0));
        store.add(b0, ItemId(0), Size::from_ratio(3, 4));
        let view = SimView::new(Time(1), &store);
        assert_eq!(view.open_count(), 1);
        assert!(view.fits(b0, Size::from_ratio(1, 4)));
        assert!(!view.fits(b0, Size::from_ratio(1, 2)));
        assert_eq!(view.first_fit(Size::from_ratio(1, 4)), Some(b0));
        assert_eq!(view.first_fit(Size::from_ratio(1, 2)), None);
        assert_eq!(view.bin(BinId(7)), None);
        assert_eq!(view.now(), Time(1));
    }

    #[test]
    fn open_bins_iterates_in_opening_order() {
        let mut store = BinStore::new();
        let _b0 = store.open(Time(0));
        let _b1 = store.open(Time(2));
        let view = SimView::new(Time(3), &store);
        let opened: Vec<Time> = view.open_bins().map(|r| r.opened_at).collect();
        assert_eq!(opened, [Time(0), Time(2)]);
    }
}
