//! Piecewise-constant load profiles `S_t(σ)` and their integrals.
//!
//! The paper's optimal-cost bounds are all integrals of the instantaneous
//! total load: `d(σ) = ∫ S_t dt` (time–space bound) and `∫ ⌈S_t⌉ dt`
//! (Lemma 3.1's two-sided bound). On the tick grid these are finite sums
//! over the O(|σ|) breakpoints, computed exactly.

use crate::cost::Area;
use crate::item::Item;
use crate::size::Load;
use crate::time::{Dur, Time};

/// A piecewise-constant step function of total active load over time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepProfile {
    /// `(start_time, load)` segments; each segment extends to the next
    /// segment's start. The final segment always has zero load and marks the
    /// end of activity.
    segments: Vec<(Time, Load)>,
}

impl StepProfile {
    /// Builds the profile `S_t` from a set of items (dimension 0 of vector
    /// items — the scalar profile; see [`StepProfile::from_items_dim`]).
    pub fn from_items(items: &[Item]) -> StepProfile {
        StepProfile::from_items_dim(items, 0)
    }

    /// Builds the profile of the *max-component* scalarization,
    /// `S_t^∨ = Σ_active max_d size_d`. Scalarizing every item to its max
    /// component gives a scalar instance whose feasible packings are
    /// feasible for the vector instance (each component is ≤ the max), so
    /// Lemma 3.1's upper side on this profile upper-bounds the vector
    /// `OPT_R`. At D = 1 this is exactly the scalar profile.
    pub fn from_items_max(items: &[Item]) -> StepProfile {
        StepProfile::from_raws(items, |it| it.size.max_raw())
    }

    /// Builds the profile of dimension `d`'s total load, `S_t^{(d)}`. The
    /// per-dimension Lemma-3.1 brackets integrate one of these per
    /// dimension and take the binding maximum.
    pub fn from_items_dim(items: &[Item], d: usize) -> StepProfile {
        StepProfile::from_raws(items, |it| it.size.get(d).raw())
    }

    fn from_raws(items: &[Item], raw_of: impl Fn(&Item) -> u64) -> StepProfile {
        // Event deltas: +size at arrival, −size at departure. Departures are
        // processed before arrivals at equal times (half-open intervals), so
        // we sort (time, is_arrival).
        let mut events: Vec<(Time, bool, u64)> = Vec::with_capacity(items.len() * 2);
        for it in items {
            events.push((it.arrival, true, raw_of(it)));
            events.push((it.departure, false, raw_of(it)));
        }
        events.sort_by_key(|&(t, is_arr, _)| (t, is_arr));

        let mut segments: Vec<(Time, Load)> = Vec::new();
        let mut cur: u64 = 0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                let (_, is_arr, raw) = events[i];
                if is_arr {
                    cur = cur.checked_add(raw).expect("load overflow");
                } else {
                    cur -= raw;
                }
                i += 1;
            }
            match segments.last_mut() {
                Some(&mut (_, prev)) if prev.raw() == cur => {} // merged
                _ => segments.push((t, Load::from_raw(cur))),
            }
        }
        debug_assert!(
            segments.last().is_none_or(|&(_, l)| l.is_zero()),
            "profile must end at zero load"
        );
        StepProfile { segments }
    }

    /// The segments `(start, load)`; the last segment has zero load.
    pub fn segments(&self) -> &[(Time, Load)] {
        &self.segments
    }

    /// The load at time `t` (`t⁺` convention: arrivals at `t` counted,
    /// departures at `t` excluded).
    pub fn load_at(&self, t: Time) -> Load {
        match self.segments.binary_search_by_key(&t, |&(s, _)| s) {
            Ok(idx) => self.segments[idx].1,
            Err(0) => Load::ZERO,
            Err(idx) => self.segments[idx - 1].1,
        }
    }

    /// Exact `∫ S_t dt` — equals the instance demand `d(σ)`.
    pub fn integral(&self) -> Area {
        self.fold_segments(|load, dt| Area::from_load_ticks(load.raw(), dt))
    }

    /// Exact `∫ ⌈S_t⌉ dt` — the load-ceiling lower bound on `OPT_R`.
    pub fn ceil_integral(&self) -> Area {
        self.fold_segments(|load, dt| Area::from_bins_ticks(load.ceil_bins(), dt))
    }

    /// Peak load over all time.
    pub fn peak(&self) -> Load {
        self.segments
            .iter()
            .map(|&(_, l)| l)
            .max()
            .unwrap_or(Load::ZERO)
    }

    /// Measure of times with nonzero load (equals `span(σ)`).
    pub fn busy_dur(&self) -> Dur {
        let mut total = 0u64;
        for w in self.segments.windows(2) {
            if !w[0].1.is_zero() {
                total += w[1].0.since(w[0].0).ticks();
            }
        }
        Dur(total)
    }

    fn fold_segments(&self, f: impl Fn(Load, Dur) -> Area) -> Area {
        let mut total = Area::ZERO;
        for w in self.segments.windows(2) {
            let dt = w[1].0.since(w[0].0);
            total += f(w[0].1, dt);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::size::Size;

    fn sz(num: u64, den: u64) -> Size {
        Size::from_ratio(num, den)
    }

    fn profile(triples: &[(u64, u64, (u64, u64))]) -> StepProfile {
        let inst = Instance::from_triples(
            triples
                .iter()
                .map(|&(a, d, (n, den))| (Time(a), Dur(d), sz(n, den))),
        )
        .unwrap();
        inst.load_profile()
    }

    #[test]
    fn single_item_profile() {
        let p = profile(&[(2, 3, (1, 2))]);
        assert_eq!(p.load_at(Time(1)), Load::ZERO);
        assert_eq!(p.load_at(Time(2)), Load::from(sz(1, 2)));
        assert_eq!(p.load_at(Time(4)), Load::from(sz(1, 2)));
        assert_eq!(p.load_at(Time(5)), Load::ZERO);
        assert_eq!(p.integral().as_bin_ticks(), 1.5);
        assert_eq!(p.ceil_integral().as_bin_ticks(), 3.0);
        assert_eq!(p.busy_dur(), Dur(3));
        assert_eq!(p.peak(), Load::from(sz(1, 2)));
    }

    #[test]
    fn departures_before_arrivals_merge_seamlessly() {
        // [0,5) then [5,10): load is a constant 1/2 over [0,10).
        let p = profile(&[(0, 5, (1, 2)), (5, 5, (1, 2))]);
        assert_eq!(p.segments().len(), 2, "constant-load runs are merged");
        assert_eq!(p.load_at(Time(5)), Load::from(sz(1, 2)));
        assert_eq!(p.busy_dur(), Dur(10));
    }

    #[test]
    fn overlapping_items_stack() {
        let p = profile(&[(0, 10, (1, 2)), (3, 4, (1, 2)), (4, 2, (1, 2))]);
        assert_eq!(p.peak(), Load::from_raw(3 * sz(1, 2).raw()));
        // ceil integral: load 1/2 on [0,3)∪[7,10) → ceil 1 each (6 ticks);
        // load 1 on [3,4)∪[6,7) → ceil 1 (2 ticks); load 3/2 on [4,6) → ceil 2 (2 ticks).
        assert_eq!(p.ceil_integral().as_bin_ticks(), 6.0 + 2.0 + 4.0);
    }

    #[test]
    fn integral_equals_demand() {
        let inst = Instance::from_triples([
            (Time(0), Dur(7), sz(1, 3)),
            (Time(2), Dur(9), sz(2, 5)),
            (Time(20), Dur(1), sz(1, 1)),
        ])
        .unwrap();
        assert_eq!(inst.load_profile().integral(), inst.demand());
        assert_eq!(inst.load_profile().busy_dur(), inst.span_dur());
    }

    #[test]
    fn empty_profile() {
        let p = StepProfile::from_items(&[]);
        assert_eq!(p.integral(), Area::ZERO);
        assert_eq!(p.ceil_integral(), Area::ZERO);
        assert_eq!(p.peak(), Load::ZERO);
        assert_eq!(p.busy_dur(), Dur::ZERO);
        assert_eq!(p.load_at(Time(0)), Load::ZERO);
    }
}
