//! Fuzz-style battery for the JSONL event codec — the daemon's wire
//! format. Adversarial input (truncations, bit flips, duplicate keys,
//! stray escapes, trailing garbage) must yield `Ok` or a typed
//! [`TraceParseError`], never a panic; anything that parses must
//! render-then-parse back to the identical event.

use dbp_core::trace::{event_from_json, event_to_json, parse_jsonl, EngineEvent, PlacementPath};
use dbp_core::{BinId, ItemId, LoadVec, SizeVec, Time, SIZE_SCALE};
use proptest::prelude::*;

/// Builds one of the nine event kinds from raw integers. Sizes are kept
/// in range (`≤ SIZE_SCALE`) so the event is renderable; `e` steers how
/// many dimensions the size (and any load) carries, so the vector wire
/// shape is fuzzed alongside the scalar one.
fn event_from_raw(kind: u64, a: u64, b: u64, c: u64, d: u64, e: u64) -> EngineEvent {
    let item = ItemId((a % u32::MAX as u64) as u32);
    let bin = BinId((b % u32::MAX as u64) as u32);
    let mut size_raws = [c % (SIZE_SCALE + 1), 0, 0];
    if e % 3 > 0 {
        size_raws[1] = b % (SIZE_SCALE + 1);
    }
    if e % 3 > 1 {
        size_raws[2] = d % (SIZE_SCALE + 1);
    }
    let size = SizeVec::try_from_raws(&size_raws).expect("components in range");
    let mut load_raws = [c, 0, 0];
    if e % 3 > 0 {
        load_raws[1] = a;
    }
    if e % 3 > 1 {
        load_raws[2] = d;
    }
    let load_after = LoadVec::from_raws(load_raws);
    match kind % 9 {
        0 => EngineEvent::Arrival {
            item,
            at: Time(d),
            size,
            departure: (e % 2 == 0).then_some(Time(e)),
        },
        1 => EngineEvent::Placed {
            item,
            at: Time(d),
            bin,
            opened: e % 2 == 0,
            via: if e % 4 < 2 {
                PlacementPath::FastPath
            } else {
                PlacementPath::Scan
            },
            load_after,
        },
        2 => EngineEvent::BinOpened { bin, at: Time(d) },
        3 => EngineEvent::Departure {
            item,
            at: Time(d),
            bin,
            size,
        },
        4 => EngineEvent::BinClosed {
            bin,
            at: Time(d),
            opened_at: Time(e),
        },
        5 => EngineEvent::BinFailed {
            bin,
            at: Time(d),
            opened_at: Time(e),
        },
        6 => EngineEvent::ItemDisplaced {
            item,
            at: Time(d),
            bin,
            size,
        },
        7 => EngineEvent::ItemReadmitted {
            item,
            original: ItemId((e % u32::MAX as u64) as u32),
            at: Time(d),
            size,
            departure: Time(e),
            attempt: (c % 1000) as u32,
        },
        _ => EngineEvent::ClockAdvanced {
            from: Time(d.min(e)),
            to: Time(d.max(e)),
        },
    }
}

fn arb_event() -> impl Strategy<Value = EngineEvent> {
    (
        0u64..9,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
    )
        .prop_map(|(k, a, b, c, d, e)| event_from_raw(k, a, b, c, d, e))
}

/// `parse` must return without panicking; when it succeeds, the parsed
/// event must survive a render → parse round-trip unchanged.
fn assert_parse_total(line: &str) -> Result<(), TestCaseError> {
    if let Ok(ev) = event_from_json(line) {
        let rendered = event_to_json(&ev);
        let again = event_from_json(&rendered)
            .map_err(|e| TestCaseError::fail(format!("re-parse of `{rendered}` failed: {e}")))?;
        prop_assert_eq!(ev, again, "render/parse round-trip drifted");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every renderable event round-trips exactly; rendering is stable
    /// under parse ∘ render.
    #[test]
    fn valid_events_round_trip(ev in arb_event()) {
        let line = event_to_json(&ev);
        let parsed = event_from_json(&line).expect("own output parses");
        prop_assert_eq!(ev, parsed);
        prop_assert_eq!(event_to_json(&parsed), line);
    }

    /// Truncating a valid line anywhere never panics the parser (the
    /// rendered form is pure ASCII, so every byte offset is a char
    /// boundary).
    #[test]
    fn truncated_lines_never_panic(ev in arb_event(), cut in 0usize..=400) {
        let line = event_to_json(&ev);
        prop_assert!(line.is_ascii());
        let cut = cut.min(line.len());
        assert_parse_total(&line[..cut])?;
    }

    /// Byte-level mutations (bit flips to arbitrary ASCII, including `"`
    /// and `\`), trailing garbage, and duplicated fragments never panic;
    /// surviving parses round-trip.
    #[test]
    fn mutated_lines_never_panic(
        ev in arb_event(),
        pos in 0usize..=400,
        byte in 0x20u8..0x7f,
        suffix in prop::collection::vec(0x20u8..0x7f, 0..12),
    ) {
        let line = event_to_json(&ev);
        let mut bytes = line.clone().into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        bytes.extend_from_slice(&suffix);
        // Mutations are drawn from printable ASCII, so this stays UTF-8.
        let mutated = String::from_utf8(bytes).expect("ascii mutation");
        assert_parse_total(&mutated)?;
        // Duplicate the whole object on one line (trailing garbage).
        assert_parse_total(&format!("{line}{line}"))?;
    }

    /// Out-of-range numerics are typed errors, not truncations or panics:
    /// ids beyond u32, sizes beyond a bin, and u64 overflow digits.
    #[test]
    fn out_of_range_fields_are_typed_errors(t in 0u64..=u64::MAX) {
        let e = event_from_json(&format!("{{\"e\":\"arrival\",\"t\":{t},\"item\":4294967296,\"size\":1}}"))
            .expect_err("item beyond u32");
        prop_assert!(e.message.contains("exceeds u32 range"), "{}", e.message);
        let e = event_from_json(&format!("{{\"e\":\"arrival\",\"t\":{t},\"item\":1,\"size\":4294967297}}"))
            .expect_err("size beyond capacity");
        prop_assert!(e.message.contains("exceeds bin capacity"), "{}", e.message);
        let e = event_from_json(&format!("{{\"e\":\"arrival\",\"t\":{t},\"item\":1,\"size\":99999999999999999999999999}}"))
            .expect_err("u64 overflow");
        prop_assert!(!e.message.is_empty());
    }
}

#[test]
fn duplicate_keys_are_rejected() {
    let err = event_from_json("{\"e\":\"clock\",\"from\":1,\"from\":2,\"to\":3}")
        .expect_err("ambiguous line must not parse");
    assert!(err.message.contains("duplicate key"), "{}", err.message);
    let err = event_from_json("{\"e\":\"arrival\",\"e\":\"clock\",\"t\":0,\"item\":0,\"size\":1}")
        .expect_err("duplicated discriminant");
    assert!(err.message.contains("duplicate key"), "{}", err.message);
}

#[test]
fn hand_rolled_adversarial_lines_are_typed_errors() {
    for line in [
        "",
        "{",
        "}",
        "{}",
        "not json at all",
        "{\"e\":\"arrival\"}",
        "{\"e\":\"arrival\",\"t\":-1,\"item\":0,\"size\":1}",
        "{\"e\":\"arrival\",\"t\":1.5,\"item\":0,\"size\":1}",
        "{\"e\":\"unknown_kind\",\"t\":0}",
        "{\"e\":\"placed\",\"t\":0,\"item\":0,\"bin\":0,\"opened\":maybe,\"via\":\"fast\",\"load\":0}",
        "{\"e\":\"placed\",\"t\":0,\"item\":0,\"bin\":0,\"opened\":true,\"via\":\"warp\",\"load\":0}",
        "{\"e\":\"clock\",\"from\":\"\\u0030\",\"to\":3}",
        "{\"e\":\"clock\",\"from\":1,\"to\":3",
        "{e:\"clock\",\"from\":1,\"to\":3}",
        "{\"e\":\"clock\" \"from\":1 \"to\":3}",
        "{\"e\":\"clock\",\"from\":1,\"to\":3}}",
        "{\"e\":\"clock\",\"from\":1,,\"to\":3}",
        "\u{7f}{\"e\":\"clock\",\"from\":1,\"to\":3}\\",
    ] {
        match event_from_json(line) {
            Ok(ev) => {
                // Anything accepted must round-trip through its render.
                let again = event_from_json(&event_to_json(&ev)).unwrap();
                assert_eq!(ev, again, "line `{line}` parsed but drifted");
            }
            Err(e) => assert!(!e.message.is_empty(), "empty error for `{line}`"),
        }
    }
}

/// A writer whose sink-owned half and test-owned half share one buffer,
/// so the test can inspect what a *dropped* sink managed to write.
#[derive(Clone, Default)]
struct SharedBuf(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn dropped_sink_flushes_already_rendered_events() {
    use dbp_core::trace::{EventSink, JsonlSink};
    use dbp_core::BinStore;
    let buf = SharedBuf::default();
    let bins = BinStore::new();
    let mut sink = JsonlSink::new(buf.clone());
    // Enough to cross the 32 KiB batch boundary at least once, plus an
    // unflushed tail — the bytes a finish()-less drop used to discard.
    let n = 2000u64;
    for k in 0..n {
        sink.on_event(
            &EngineEvent::ClockAdvanced {
                from: Time(k),
                to: Time(k + 1),
            },
            &bins,
        );
    }
    assert_eq!(sink.written(), n);
    drop(sink); // mid-run drop: panic / early-return path, no finish()
    let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
    let events = parse_jsonl(&text).unwrap();
    assert_eq!(events.len() as u64, n, "mid-run drop lost rendered events");
}

#[test]
fn parse_jsonl_reports_line_numbers_and_skips_blanks() {
    let text = "{\"e\":\"clock\",\"from\":0,\"to\":1}\n\n# not json\n";
    let err = parse_jsonl(text).expect_err("comment line is not an object");
    assert_eq!(err.line, 3);
    let ok = parse_jsonl(
        "{\"e\":\"clock\",\"from\":0,\"to\":1}\n\n{\"e\":\"bin_opened\",\"t\":1,\"bin\":0}\n",
    );
    assert_eq!(ok.map(|v| v.len()), Ok(2));
}
