//! Property tests on the core substrate: arithmetic, profiles, the
//! engine's accounting, and the reduction — independent of any concrete
//! packing algorithm (First-Fit here is just a driver).

use dbp_core::{
    audit, engine, reduce, Dur, Instance, InstanceBuilder, Item, LowerBounds, OnlineAlgorithm,
    Placement, SimView, Size, Time, TraceEvent, TraceRecorder,
};
use proptest::prelude::*;

struct Ff;
impl OnlineAlgorithm for Ff {
    fn name(&self) -> &str {
        "ff"
    }
    fn on_arrival(&mut self, view: &SimView<'_>, item: &Item) -> Placement {
        match view.first_fit(item.size) {
            Some(b) => Placement::Existing(b),
            None => Placement::OpenNew,
        }
    }
    fn reset(&mut self) {}
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    prop::collection::vec((0u64..128, 1u64..=32, 1u64..=99), 1..=50).prop_map(|v| {
        let mut b = InstanceBuilder::with_capacity(v.len());
        for (t, d, s) in v {
            b.push(Time(t), Dur(d), Size::from_ratio(s, 100));
        }
        b.build().expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Three independent cost accountings agree; audit validates.
    #[test]
    fn cost_accountings_agree(inst in arb_instance()) {
        let res = engine::run(&inst, Ff).expect("ff legal");
        prop_assert_eq!(res.cost_from_timeline(), res.cost);
        let report = audit(&inst, &res.assignment).expect("valid");
        prop_assert_eq!(report.cost, res.cost);
        prop_assert_eq!(report.bins_used, res.bins_opened);
        prop_assert_eq!(report.max_open, res.max_open);
    }

    /// The engine's per-bin intervals partition the cost exactly.
    #[test]
    fn bin_intervals_sum_to_cost(inst in arb_instance()) {
        let res = engine::run(&inst, Ff).expect("ff legal");
        let sum: u64 = res
            .bin_intervals
            .iter()
            .map(|&(open, close)| close.since(open).ticks())
            .sum();
        prop_assert_eq!(
            dbp_core::Area::from_bin_ticks(Dur(sum)),
            res.cost
        );
        // Bin opening times are non-decreasing in BinId (allocation order).
        for w in res.bin_intervals.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    /// Lower bounds are each ≤ any feasible cost; their max too.
    #[test]
    fn lower_bounds_never_exceed_feasible_cost(inst in arb_instance()) {
        let res = engine::run(&inst, Ff).expect("ff legal");
        let lb = LowerBounds::of(&inst);
        prop_assert!(lb.span <= res.cost);
        prop_assert!(lb.demand <= res.cost);
        prop_assert!(lb.ceil_integral <= res.cost);
    }

    /// The trace recorder is a faithful observer: it never changes the
    /// wrapped algorithm's decisions, and its log reconstructs the
    /// assignment.
    #[test]
    fn trace_recorder_is_transparent(inst in arb_instance()) {
        let plain = engine::run(&inst, Ff).expect("legal");
        let mut rec = TraceRecorder::new(Ff);
        let traced = engine::run(&inst, &mut rec).expect("legal");
        prop_assert_eq!(&plain.assignment, &traced.assignment);
        prop_assert_eq!(plain.cost, traced.cost);
        // Reconstruct assignment from the trace.
        for e in rec.events() {
            if let TraceEvent::Placed { item, bin, .. } = e {
                prop_assert_eq!(traced.assignment[item.index()], *bin);
            }
        }
        prop_assert_eq!(rec.bins_opened(), traced.bins_opened);
    }

    /// Reduced departures land on the original item's class grid: for an
    /// item of duration class `i`, the new departure is `(c+1)·2^i` — a
    /// multiple of `2^i` strictly after the arrival window. (Note the
    /// reduction is *not* idempotent: stretching can push an item into a
    /// higher class, so a second application may stretch again.)
    #[test]
    fn reduction_lands_on_class_grid(inst in arb_instance()) {
        let red = reduce(&inst);
        for (orig, new) in inst.items().iter().zip(red.items()) {
            let w = 1u64 << orig.class_index();
            prop_assert_eq!(new.departure.ticks() % w, 0);
            prop_assert!(new.departure.ticks() > orig.arrival.ticks());
            prop_assert!(new.departure.ticks() <= orig.arrival.ticks() + 2 * w);
        }
    }

    /// The momentary ratio is at least 1 and at least the average ratio is
    /// well-defined & finite for non-empty instances.
    #[test]
    fn metrics_well_defined(inst in arb_instance()) {
        let res = engine::run(&inst, Ff).expect("legal");
        let goals = dbp_core::compare_goals(&inst, &res);
        prop_assert!(goals.momentary >= 1.0);
        prop_assert!(goals.usage_time.is_finite());
        prop_assert!(goals.usage_time >= 0.99, "FF can't beat the ceil bound");
        let u = dbp_core::utilisation(&inst, &res);
        prop_assert!(u.volume_utilisation > 0.0 && u.volume_utilisation <= 1.0);
        prop_assert!(u.peak_open_bins >= 1);
        // Mediant inequality: the pointwise max ratio dominates the
        // integral ratio (both against ⌈S_t⌉).
        prop_assert!(goals.momentary >= goals.usage_time - 1e-9);
    }

    /// `split_busy_periods` partitions items and preserves per-item data.
    #[test]
    fn busy_period_partition(inst in arb_instance()) {
        let parts = inst.split_busy_periods();
        let total: usize = parts.iter().map(Instance::len).sum();
        prop_assert_eq!(total, inst.len());
        // Periods are disjoint and ordered.
        for w in parts.windows(2) {
            let end = w[0].end().expect("non-empty");
            let start = w[1].start().expect("non-empty");
            prop_assert!(end < start, "periods must be separated by a gap");
        }
        // Span is additive across periods.
        let span_sum: u64 = parts.iter().map(|p| p.span_dur().ticks()).sum();
        prop_assert_eq!(span_sum, inst.span_dur().ticks());
    }
}
